"""Benchmark R1: the runner's result cache, cold versus warm.

Runs a two-circuit Table 2 slice through :class:`repro.runner.Runner`
twice against the same cache directory.  The cold pass pays the full
lock + attack + CEC cost per row; the warm pass replays the JSON
artifacts.  The tracked metric is the warm replay time; the cold time
and speedup ride along in ``extra_info`` so the perf trajectory
captures the caching win.
"""

from __future__ import annotations

import time

from repro.experiments.table2 import run_table2
from repro.locking.lut_lock import LutModuleSpec
from repro.runner import ResultCache, Runner

BENCH_CIRCUITS = ("c880", "c1355")


def _run(cache: ResultCache, jobs: int = 1):
    return run_table2(
        circuits=BENCH_CIRCUITS,
        scale=0.2,
        spec=LutModuleSpec.tiny(),
        effort=2,
        parallel=False,
        time_limit_per_task=120.0,
        verify=True,
        runner=Runner(jobs=jobs, cache=cache),
    )


def test_runner_cold_vs_warm(benchmark, tmp_path):
    """Warm-cache replay must be at least 5x faster than the cold run."""
    cache_dir = tmp_path / "cache"

    start = time.perf_counter()
    cold = _run(ResultCache(cache_dir))
    cold_seconds = time.perf_counter() - start

    warm = benchmark.pedantic(
        lambda: _run(ResultCache(cache_dir)), rounds=3, iterations=1
    )

    # The replay is lossless: identical rows, identical formatted table.
    assert warm.rows == cold.rows
    assert warm.format() == cold.format()

    warm_seconds = benchmark.stats.stats.mean
    assert warm_seconds * 5 <= cold_seconds, (
        f"warm cache not >=5x faster: cold={cold_seconds:.3f}s "
        f"warm={warm_seconds:.3f}s"
    )
    benchmark.extra_info["cold_s"] = round(cold_seconds, 3)
    benchmark.extra_info["warm_s"] = round(warm_seconds, 4)
    benchmark.extra_info["speedup"] = round(cold_seconds / warm_seconds, 1)
    benchmark.extra_info["circuits"] = ",".join(BENCH_CIRCUITS)


def test_runner_parallel_cold(benchmark, tmp_path):
    """Cold fan-out across two workers; rows match the serial path."""
    serial = _run(ResultCache(tmp_path / "serial"))

    def cold_parallel():
        cache = ResultCache(tmp_path / "parallel")
        cache.clear()
        return _run(cache, jobs=2)

    fanned = benchmark.pedantic(cold_parallel, rounds=1, iterations=1)
    assert [r.circuit for r in fanned.rows] == [r.circuit for r in serial.rows]
    assert [r.dips_per_task for r in fanned.rows] == [
        r.dips_per_task for r in serial.rows
    ]
    assert all(r.composition_equivalent for r in fanned.rows)
