"""Benchmark S1: compiled-IR evaluation versus the legacy dict walk.

Measures patterns/sec for the two simulation paths on ISCAS-scale
circuits.  ``simulate_reference`` re-sorts the netlist and walks
string-keyed dicts per call; the compiled path evaluates the interned
slot program of :meth:`Netlist.compile`.  The asserted floor is 3x —
measured headroom is typically 4-10x — so a regression in the compiled
core fails tier-1 rather than silently eroding every attack loop.

The large-circuit tier stresses the regime the stand-in cases never
reach, with one 10k+ gate generator per backend's best shape: the
wide-shallow :func:`keyed_match_plane` (~25k gates in ~15 vector
stages) is where the numpy :class:`~repro.circuit.lanes.LaneProgram`
must be >=5x the big-int path, and the deep :func:`array_multiplier`
is the recorded contrast case where ``lanes="auto"`` must stay on
python (big-int carry chains win there at every width).  Parity is
asserted before any timing; without numpy the tier records the python
baseline and the floor is skipped — ``auto`` degrades silently.  A
corpus tier tracks the genuine-format ``real_*`` circuits through the
same parity + throughput telescope.

Each run also appends trajectory entries to ``BENCH_sim.json`` at the
repository root; CI uploads the file as an artifact so the perf
history is tracked per PR.
"""

from __future__ import annotations

import time

import pytest

from repro.bench_circuits.corpus import corpus_names, load_corpus
from repro.bench_circuits.generators import (
    array_multiplier,
    keyed_match_plane,
)
from repro.bench_circuits.iscas85 import iscas85_like
from repro.circuit.lanes import numpy_available, resolve_lanes
from repro.circuit.simulator import random_patterns, simulate, simulate_reference

from benchmarks.conftest import append_trajectory

#: (circuit, scale, parallel width) — the multiplier is the classic
#: simulation stress case; c5315 adds a wide-interface shape.
_CASES = (
    ("c6288", 0.5, 64),
    ("c5315", 0.3, 64),
)


def _median_seconds(fn, rounds: int = 5) -> float:
    times = []
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    times.sort()
    return times[len(times) // 2]


def test_compiled_vs_legacy_simulation(benchmark):
    """Compiled evaluation must be >=3x the legacy patterns/sec."""
    prepared = []
    for name, scale, width in _CASES:
        netlist = iscas85_like(name, scale, match_interface=False)
        stimuli = dict(
            zip(
                netlist.inputs,
                random_patterns(len(netlist.inputs), width, seed=17),
            )
        )
        netlist.compile()  # build cost paid once, outside the timers
        prepared.append((name, netlist, stimuli, width))

    entries = []
    speedups = []
    for name, netlist, stimuli, width in prepared:
        compiled_result = simulate(netlist, stimuli, width)
        legacy_result = simulate_reference(netlist, stimuli, width)
        assert compiled_result == legacy_result  # parity before speed

        legacy_s = _median_seconds(lambda: simulate_reference(netlist, stimuli, width))
        compiled_s = _median_seconds(lambda: simulate(netlist, stimuli, width))
        speedup = legacy_s / compiled_s
        speedups.append((name, speedup))
        entries.append(
            {
                "ts": time.time(),
                "circuit": name,
                "gates": netlist.num_gates,
                "width": width,
                "legacy_pps": round(width / legacy_s),
                "compiled_pps": round(width / compiled_s),
                "speedup": round(speedup, 2),
            }
        )

    # The pytest-benchmark tracked metric: one compiled sweep over the
    # multiplier (the heaviest case), with the comparison in extra_info.
    name, netlist, stimuli, width = prepared[0]
    benchmark.pedantic(
        lambda: simulate(netlist, stimuli, width), rounds=5, iterations=2
    )
    for entry in entries:
        benchmark.extra_info[f"{entry['circuit']}_speedup"] = entry["speedup"]
        benchmark.extra_info[f"{entry['circuit']}_compiled_pps"] = entry[
            "compiled_pps"
        ]

    append_trajectory("sim", entries)

    for name, speedup in speedups:
        assert speedup >= 3.0, (
            f"compiled evaluation only {speedup:.2f}x legacy on {name} "
            "(floor is 3x)"
        )


def test_large_circuit_lanes_tier(benchmark):
    """10k+ gate tier: numpy must be >=5x python on the match plane.

    Two generator shapes, one floor.  The wide-shallow
    ``keyed_match_plane`` (~25k gates collapsing into ~15 vector
    stages) is where the numpy backend has to win >=5x at 128 lanes;
    the deep ``array_multiplier`` rides along as the contrast entry,
    where ``lanes="auto"`` must stay on the big-int path — its carry
    chains produce hundreds of tiny stages and numpy loses at every
    width.  Parity is asserted on the full sweep before a single
    timer starts.  Without numpy the floor is skipped, ``auto`` must
    resolve to the python backend (silent degradation), and the tier
    still records the big-int baseline so the trajectory keeps one
    line per run.
    """
    width = 128
    netlist = keyed_match_plane()
    compiled = netlist.compile()
    assert compiled.num_gates >= 10_000
    words = random_patterns(len(compiled.inputs), width, seed=29)

    python_out = compiled.eval_outputs_wide(words, width, lanes="python")
    python_s = _median_seconds(
        lambda: compiled.eval_outputs_wide(words, width, lanes="python"),
        rounds=3,
    )
    ops, stages = compiled.lane_stage_hint()
    entry = {
        "ts": time.time(),
        "tier": "large",
        "circuit": netlist.name,
        "gates": compiled.num_gates,
        "stages": stages,
        "width": width,
        "python_pps": round(width / python_s),
        "numpy_pps": None,
        "speedup": None,
        "auto_backend": resolve_lanes(
            "auto", num_gates=compiled.num_gates, width=width, stages=stages
        ),
    }

    # The contrast shape: deep carry chains, ~20 ops per stage.  The
    # shape-aware heuristic must keep it on the never-a-regression
    # backend whether or not numpy is installed.
    mult = array_multiplier(48, name="mult48").compile()
    assert mult.num_gates >= 10_000
    mult_words = random_patterns(len(mult.inputs), width, seed=29)
    mult_s = _median_seconds(
        lambda: mult.eval_outputs_wide(mult_words, width, lanes="python"),
        rounds=3,
    )
    mult_auto = resolve_lanes(
        "auto",
        num_gates=mult.num_gates,
        width=width,
        stages=mult.lane_stage_hint()[1],
    )
    assert mult_auto == "python"
    contrast = {
        "ts": time.time(),
        "tier": "large",
        "circuit": "mult48",
        "gates": mult.num_gates,
        "stages": mult.lane_stage_hint()[1],
        "width": width,
        "python_pps": round(width / mult_s),
        "numpy_pps": None,
        "speedup": None,
        "auto_backend": mult_auto,
    }

    if not numpy_available():
        assert entry["auto_backend"] == "python"  # silent fallback
        append_trajectory("sim", [entry, contrast])
        benchmark.pedantic(
            lambda: compiled.eval_outputs_wide(words, width, lanes="auto"),
            rounds=1,
            iterations=1,
        )
        pytest.skip("numpy absent: large-tier floor not enforced")

    # A wide-shallow plane this size must auto-select the vector
    # backend.
    assert entry["auto_backend"] == "numpy"
    numpy_out = compiled.eval_outputs_wide(words, width, lanes="numpy")
    assert numpy_out == python_out  # parity before timing
    numpy_s = _median_seconds(
        lambda: compiled.eval_outputs_wide(words, width, lanes="numpy"),
        rounds=3,
    )
    speedup = python_s / numpy_s
    entry["numpy_pps"] = round(width / numpy_s)
    entry["speedup"] = round(speedup, 2)
    append_trajectory("sim", [entry, contrast])

    benchmark.pedantic(
        lambda: compiled.eval_outputs_wide(words, width, lanes="numpy"),
        rounds=3,
        iterations=1,
    )
    benchmark.extra_info["gates"] = compiled.num_gates
    benchmark.extra_info["speedup_vs_python"] = entry["speedup"]

    assert speedup >= 5.0, (
        f"numpy lanes only {speedup:.2f}x python on {compiled.num_gates} "
        f"gates x {width} lanes (floor is 5x)"
    )


def test_real_corpus_sim_tier(benchmark):
    """Corpus tier: genuine-format circuits through the same telescope.

    The shipped ``real_*`` netlists are small, so no backend floor is
    enforced — the tier exists to keep parity (compiled vs legacy vs
    lanes) and throughput tracked on circuits that arrived as files.
    """
    width = 256
    entries = []
    for name in corpus_names():
        netlist = load_corpus(name)
        compiled = netlist.compile()
        stimuli = dict(
            zip(
                netlist.inputs,
                random_patterns(len(netlist.inputs), width, seed=31),
            )
        )
        assert simulate(netlist, stimuli, width) == simulate_reference(
            netlist, stimuli, width
        )
        words = [stimuli[net] for net in compiled.inputs]
        python_out = compiled.eval_outputs_wide(words, width, lanes="python")
        if numpy_available():
            assert (
                compiled.eval_outputs_wide(words, width, lanes="numpy")
                == python_out
            )
        compiled_s = _median_seconds(
            lambda: simulate(netlist, stimuli, width), rounds=3
        )
        entries.append(
            {
                "ts": time.time(),
                "tier": "corpus",
                "circuit": name,
                "gates": compiled.num_gates,
                "width": width,
                "compiled_pps": round(width / compiled_s),
            }
        )
    assert entries, "corpus registry is empty"
    append_trajectory("sim", entries)
    netlist = load_corpus("real_c880")
    stimuli = dict(
        zip(
            netlist.inputs,
            random_patterns(len(netlist.inputs), width, seed=31),
        )
    )
    benchmark.pedantic(
        lambda: simulate(netlist, stimuli, width), rounds=3, iterations=2
    )


def test_compile_cost_amortizes(benchmark):
    """One compile + N sweeps beats N legacy sweeps well before N=10."""
    netlist = iscas85_like("c6288", 0.5, match_interface=False)
    stimuli = dict(
        zip(netlist.inputs, random_patterns(len(netlist.inputs), 64, seed=3))
    )
    sweeps = 10

    def compiled_batch():
        netlist.invalidate_compiled()  # pay compilation inside the timer
        for _ in range(sweeps):
            simulate(netlist, stimuli, 64)

    legacy_s = _median_seconds(
        lambda: [simulate_reference(netlist, stimuli, 64) for _ in range(sweeps)]
    )
    benchmark.pedantic(compiled_batch, rounds=3, iterations=1)
    compiled_s = benchmark.stats.stats.mean
    benchmark.extra_info["legacy_s"] = round(legacy_s, 5)
    benchmark.extra_info["sweeps"] = sweeps
    assert compiled_s < legacy_s, (
        f"compile+{sweeps} sweeps ({compiled_s:.4f}s) should beat "
        f"{sweeps} legacy sweeps ({legacy_s:.4f}s)"
    )
