"""Benchmark S1: compiled-IR evaluation versus the legacy dict walk.

Measures patterns/sec for the two simulation paths on ISCAS-scale
circuits.  ``simulate_reference`` re-sorts the netlist and walks
string-keyed dicts per call; the compiled path evaluates the interned
slot program of :meth:`Netlist.compile`.  The asserted floor is 3x —
measured headroom is typically 4-10x — so a regression in the compiled
core fails tier-1 rather than silently eroding every attack loop.

Each run also appends a trajectory entry to ``BENCH_sim.json`` at the
repository root; CI uploads the file as an artifact so the perf
history is tracked per PR.
"""

from __future__ import annotations

import time

from repro.bench_circuits.iscas85 import iscas85_like
from repro.circuit.simulator import random_patterns, simulate, simulate_reference

from benchmarks.conftest import append_trajectory

#: (circuit, scale, parallel width) — the multiplier is the classic
#: simulation stress case; c5315 adds a wide-interface shape.
_CASES = (
    ("c6288", 0.5, 64),
    ("c5315", 0.3, 64),
)


def _median_seconds(fn, rounds: int = 5) -> float:
    times = []
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    times.sort()
    return times[len(times) // 2]


def test_compiled_vs_legacy_simulation(benchmark):
    """Compiled evaluation must be >=3x the legacy patterns/sec."""
    prepared = []
    for name, scale, width in _CASES:
        netlist = iscas85_like(name, scale, match_interface=False)
        stimuli = dict(
            zip(
                netlist.inputs,
                random_patterns(len(netlist.inputs), width, seed=17),
            )
        )
        netlist.compile()  # build cost paid once, outside the timers
        prepared.append((name, netlist, stimuli, width))

    entries = []
    speedups = []
    for name, netlist, stimuli, width in prepared:
        compiled_result = simulate(netlist, stimuli, width)
        legacy_result = simulate_reference(netlist, stimuli, width)
        assert compiled_result == legacy_result  # parity before speed

        legacy_s = _median_seconds(lambda: simulate_reference(netlist, stimuli, width))
        compiled_s = _median_seconds(lambda: simulate(netlist, stimuli, width))
        speedup = legacy_s / compiled_s
        speedups.append((name, speedup))
        entries.append(
            {
                "ts": time.time(),
                "circuit": name,
                "gates": netlist.num_gates,
                "width": width,
                "legacy_pps": round(width / legacy_s),
                "compiled_pps": round(width / compiled_s),
                "speedup": round(speedup, 2),
            }
        )

    # The pytest-benchmark tracked metric: one compiled sweep over the
    # multiplier (the heaviest case), with the comparison in extra_info.
    name, netlist, stimuli, width = prepared[0]
    benchmark.pedantic(
        lambda: simulate(netlist, stimuli, width), rounds=5, iterations=2
    )
    for entry in entries:
        benchmark.extra_info[f"{entry['circuit']}_speedup"] = entry["speedup"]
        benchmark.extra_info[f"{entry['circuit']}_compiled_pps"] = entry[
            "compiled_pps"
        ]

    append_trajectory("sim", entries)

    for name, speedup in speedups:
        assert speedup >= 3.0, (
            f"compiled evaluation only {speedup:.2f}x legacy on {name} "
            "(floor is 3x)"
        )


def test_compile_cost_amortizes(benchmark):
    """One compile + N sweeps beats N legacy sweeps well before N=10."""
    netlist = iscas85_like("c6288", 0.5, match_interface=False)
    stimuli = dict(
        zip(netlist.inputs, random_patterns(len(netlist.inputs), 64, seed=3))
    )
    sweeps = 10

    def compiled_batch():
        netlist.invalidate_compiled()  # pay compilation inside the timer
        for _ in range(sweeps):
            simulate(netlist, stimuli, 64)

    legacy_s = _median_seconds(
        lambda: [simulate_reference(netlist, stimuli, 64) for _ in range(sweeps)]
    )
    benchmark.pedantic(compiled_batch, rounds=3, iterations=1)
    compiled_s = benchmark.stats.stats.mean
    benchmark.extra_info["legacy_s"] = round(legacy_s, 5)
    benchmark.extra_info["sweeps"] = sweeps
    assert compiled_s < legacy_s, (
        f"compile+{sweeps} sweeps ({compiled_s:.4f}s) should beat "
        f"{sweeps} legacy sweeps ({legacy_s:.4f}s)"
    )
