"""Benchmark D1: the multi-key countermeasure (paper's future work).

Quantifies, per scheme, the two levers the multi-key attack pulls —
sub-space key inflation and conditional-netlist shrinkage — plus the
measured attack cost.  Expected: the entangled variant pins the
sub-space key count at exactly 1 and removes the attack's DIP savings.
"""

from repro.experiments.defense import run_defense_experiment


def test_defense_comparison(benchmark):
    result = benchmark.pedantic(
        lambda: run_defense_experiment(
            circuit="c1908",
            scale=0.3,
            key_size=5,  # within the defense's code-existence regime
            effort=3,
            time_limit_per_task=240.0,
        ),
        rounds=1,
        iterations=1,
    )
    by_name = {row.scheme: row for row in result.rows}
    assert by_name["entangled"].subspace_keys == 1
    assert by_name["sarlock"].subspace_keys > 1
    assert (
        by_name["entangled"].multikey_max_dips
        >= by_name["sarlock"].multikey_max_dips
    )
    benchmark.extra_info["subspace_keys"] = {
        name: row.subspace_keys for name, row in by_name.items()
    }
    benchmark.extra_info["max_dips"] = {
        name: row.multikey_max_dips for name, row in by_name.items()
    }
