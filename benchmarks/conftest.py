"""Benchmark configuration and shared helpers.

Default parameters are sized for a pure-Python SAT substrate: each
table regenerates in minutes, not the paper's testbed-hours.  Set
``REPRO_FULL=1`` to run closer to paper scale (expect long runtimes).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

FULL = os.environ.get("REPRO_FULL", "") == "1"

#: Repository root — the ``BENCH_*.json`` trajectory files live here.
REPO_ROOT = Path(__file__).resolve().parent.parent

#: Every trajectory file keeps only the most recent entries.
MAX_TRAJECTORY_ENTRIES = 200


def append_trajectory(name: str, entries: list[dict]) -> None:
    """Append ``entries`` to ``BENCH_<name>.json`` at the repo root.

    The shared tail of every benchmark: load the existing history
    (restarting the log when the file is corrupt), extend it, and
    rewrite capped at :data:`MAX_TRAJECTORY_ENTRIES`.
    """
    path = REPO_ROOT / f"BENCH_{name}.json"
    history: list[dict] = []
    if path.exists():
        try:
            history = json.loads(path.read_text())["trajectory"]
        except (ValueError, KeyError):  # corrupt file: restart the log
            history = []
    history.extend(entries)
    path.write_text(
        json.dumps(
            {
                "benchmark": name,
                "trajectory": history[-MAX_TRAJECTORY_ENTRIES:],
            },
            indent=2,
        )
        + "\n"
    )

#: Carrier-circuit scale for Table 1 / Table 2 style benchmarks.
TABLE1_SCALE = 0.25 if FULL else 0.15
TABLE1_KEY_SIZES = (4, 8, 12) if FULL else (4, 8)
TABLE2_SCALE = 0.5 if FULL else 0.4
TABLE2_TIME_LIMIT = 1800.0 if FULL else 240.0


@pytest.fixture(scope="session")
def full_mode() -> bool:
    return FULL
