"""Benchmark configuration.

Default parameters are sized for a pure-Python SAT substrate: each
table regenerates in minutes, not the paper's testbed-hours.  Set
``REPRO_FULL=1`` to run closer to paper scale (expect long runtimes).
"""

from __future__ import annotations

import os

import pytest

FULL = os.environ.get("REPRO_FULL", "") == "1"

#: Carrier-circuit scale for Table 1 / Table 2 style benchmarks.
TABLE1_SCALE = 0.25 if FULL else 0.15
TABLE1_KEY_SIZES = (4, 8, 12) if FULL else (4, 8)
TABLE2_SCALE = 0.5 if FULL else 0.4
TABLE2_TIME_LIMIT = 1800.0 if FULL else 240.0


@pytest.fixture(scope="session")
def full_mode() -> bool:
    return FULL
