"""Benchmarks A1/A2: the design-choice ablations from DESIGN.md.

A1 — splitting-input selection: the paper's fan-out-cone heuristic vs
random/first selection (conditional-netlist size and sub-task cost).

A2 — conditional-netlist synthesis: Algorithm 1's synthesis step on vs
off (identical results, different cost).
"""

from repro.experiments.ablation_splitting import run_splitting_ablation
from repro.experiments.ablation_synthesis import run_synthesis_ablation
from repro.locking.lut_lock import LutModuleSpec


def test_ablation_splitting(benchmark):
    result = benchmark.pedantic(
        lambda: run_splitting_ablation(
            circuit="c6288",
            scale=0.3,
            effort=3,
            spec=LutModuleSpec.paper_scale(),
            strategies=("fanout", "random", "first"),
            time_limit_per_task=120.0,
        ),
        rounds=1,
        iterations=1,
    )
    by_name = {row.strategy: row for row in result.rows}
    assert all(row.status == "ok" for row in result.rows)
    # The paper's heuristic must not lose to naive selection on
    # conditional-netlist size (its whole point).
    assert (
        by_name["fanout"].mean_gates_after
        <= by_name["first"].mean_gates_after * 1.05
    )
    benchmark.extra_info["mean_gates"] = {
        row.strategy: round(row.mean_gates_after, 1) for row in result.rows
    }
    benchmark.extra_info["max_task_s"] = {
        row.strategy: round(row.max_seconds, 3) for row in result.rows
    }


def test_ablation_synthesis(benchmark):
    result = benchmark.pedantic(
        lambda: run_synthesis_ablation(
            circuit="c1355",
            scale=0.3,
            effort=3,
            spec=LutModuleSpec.paper_scale(),
            time_limit_per_task=120.0,
        ),
        rounds=1,
        iterations=1,
    )
    on, off = result.rows
    assert on.mean_gates < off.mean_gates  # synthesis shrinks instances
    benchmark.extra_info["gates_on"] = round(on.mean_gates, 1)
    benchmark.extra_info["gates_off"] = round(off.mean_gates, 1)
    benchmark.extra_info["max_task_on_s"] = round(on.max_seconds, 3)
    benchmark.extra_info["max_task_off_s"] = round(off.max_seconds, 3)
