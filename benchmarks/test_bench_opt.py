"""Benchmark O1: structural optimization feeding the miter encoding.

Measures what :mod:`repro.circuit.opt` buys the attack loop on the
shape it was built for: a SARLock-locked :func:`keyed_match_plane`,
whose replicated comparator fabric is full of constant-foldable taps,
BUF/NOT chains and structurally identical product terms.  Two floors
are asserted, parity first in both cases:

* ``build_miter_encoding`` under ``opt="full"`` must shrink the
  solver's combined variable+clause count by >=20% versus ``opt="off"``
  (measured headroom is ~34%).
* An end-to-end :func:`sat_attack` must be >=1.2x faster opt-on than
  opt-off (measured ~1.4x), recovering a key the oracle verifies, with
  the same DIP count — optimization changes encoding size, never the
  attack's trajectory through the key space.

A corpus tier records the reduction on the genuine-format ``real_*``
circuits without enforcing a floor — file-born netlists arrive at
whatever redundancy their source had.  Each run appends trajectory
entries to ``BENCH_opt.json`` at the repository root; CI uploads the
file as an artifact so the perf history is tracked per PR.
"""

from __future__ import annotations

import time

import pytest

from repro.attacks.sat_attack import (
    build_miter_encoding,
    sat_attack,
    verify_key_against_oracle,
)
from repro.bench_circuits.corpus import corpus_names, load_corpus
from repro.bench_circuits.generators import keyed_match_plane
from repro.locking.sarlock import sarlock_lock
from repro.oracle.oracle import Oracle

from benchmarks.conftest import FULL, append_trajectory

#: Carrier plane size: the FULL tier doubles the product-term count.
_PLANE = dict(terms=384, taps=8, bus=32) if FULL else dict(
    terms=192, taps=8, bus=24
)
_KEY_SIZE = 8


def _median_seconds(fn, rounds: int = 3) -> float:
    times = []
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    times.sort()
    return times[len(times) // 2]


def _locked_plane():
    carrier = keyed_match_plane(name="opt_plane", **_PLANE)
    return carrier, sarlock_lock(carrier, key_size=_KEY_SIZE, seed=3)


def _size(encoding) -> tuple[int, int]:
    return encoding.solver.num_vars, encoding.solver.num_clauses


def test_miter_encoding_reduction(benchmark):
    """opt="full" must shed >=20% of the miter's vars+clauses."""
    carrier, locked = _locked_plane()
    off = build_miter_encoding(locked, opt="off")
    full = build_miter_encoding(locked, opt="full")

    off_vars, off_clauses = _size(off)
    full_vars, full_clauses = _size(full)
    reduction = 1 - (full_vars + full_clauses) / (off_vars + off_clauses)

    stats = full.encode_stats()
    assert stats["opt"] == "full"
    assert stats["gates_after"] < stats["gates_before"]

    benchmark.pedantic(
        lambda: build_miter_encoding(locked, opt="full"),
        rounds=3,
        iterations=1,
    )
    benchmark.extra_info["reduction"] = round(reduction, 3)
    benchmark.extra_info["off_vars"] = off_vars
    benchmark.extra_info["full_vars"] = full_vars

    append_trajectory(
        "opt",
        [
            {
                "ts": time.time(),
                "tier": "miter",
                "circuit": carrier.name,
                "gates_before": stats["gates_before"],
                "gates_after": stats["gates_after"],
                "off_vars": off_vars,
                "off_clauses": off_clauses,
                "full_vars": full_vars,
                "full_clauses": full_clauses,
                "reduction": round(reduction, 3),
            }
        ],
    )

    assert reduction >= 0.20, (
        f"opt only sheds {reduction:.1%} of vars+clauses on "
        f"{carrier.name} (floor is 20%)"
    )


def test_sat_attack_speedup(benchmark):
    """End-to-end: the attack must be >=1.2x faster with opt on.

    Parity comes first: both runs must finish ``ok``, agree on the DIP
    count, and recover keys the oracle verifies — only then is the
    wall-clock ratio allowed to count.
    """
    carrier, locked = _locked_plane()

    result_off = sat_attack(locked, Oracle(carrier, opt="off"), opt="off")
    result_on = sat_attack(locked, Oracle(carrier, opt="full"), opt="full")
    assert result_off.status == "ok"
    assert result_on.status == "ok"
    assert result_on.num_dips == result_off.num_dips
    for result in (result_off, result_on):
        assert verify_key_against_oracle(
            locked, result.key, Oracle(carrier)
        )

    off_s = _median_seconds(
        lambda: sat_attack(locked, Oracle(carrier, opt="off"), opt="off")
    )
    on_s = _median_seconds(
        lambda: sat_attack(locked, Oracle(carrier, opt="full"), opt="full")
    )
    speedup = off_s / on_s

    benchmark.pedantic(
        lambda: sat_attack(locked, Oracle(carrier, opt="full"), opt="full"),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["speedup"] = round(speedup, 2)
    benchmark.extra_info["dips"] = result_on.num_dips

    append_trajectory(
        "opt",
        [
            {
                "ts": time.time(),
                "tier": "attack",
                "circuit": carrier.name,
                "key_size": _KEY_SIZE,
                "dips": result_on.num_dips,
                "off_s": round(off_s, 3),
                "on_s": round(on_s, 3),
                "speedup": round(speedup, 2),
                "encode": result_on.encode_stats,
            }
        ],
    )

    assert speedup >= 1.2, (
        f"sat_attack only {speedup:.2f}x faster with opt on "
        f"({off_s:.2f}s -> {on_s:.2f}s; floor is 1.2x)"
    )


def test_real_corpus_reduction_tier(benchmark):
    """Corpus tier: reduction recorded, no floor — parity still holds.

    Genuine-format circuits carry whatever redundancy their source
    files had, so the tier only tracks the numbers; every encoding
    pair is still checked for identical key interfaces.
    """
    entries = []
    for name in corpus_names():
        carrier = load_corpus(name)
        key_size = min(_KEY_SIZE, len(carrier.inputs))
        locked = sarlock_lock(carrier, key_size=key_size, seed=3)
        off = build_miter_encoding(locked, opt="off")
        full = build_miter_encoding(locked, opt="full")
        assert full.key_inputs == off.key_inputs  # same key interface
        off_vars, off_clauses = _size(off)
        full_vars, full_clauses = _size(full)
        stats = full.encode_stats()
        entries.append(
            {
                "ts": time.time(),
                "tier": "corpus",
                "circuit": name,
                "gates_before": stats["gates_before"],
                "gates_after": stats["gates_after"],
                "off_vars": off_vars,
                "off_clauses": off_clauses,
                "full_vars": full_vars,
                "full_clauses": full_clauses,
                "reduction": round(
                    1
                    - (full_vars + full_clauses)
                    / (off_vars + off_clauses),
                    3,
                ),
            }
        )
    assert entries, "corpus registry is empty"
    append_trajectory("opt", entries)

    carrier = load_corpus("real_c880")
    locked = sarlock_lock(carrier, key_size=_KEY_SIZE, seed=3)
    benchmark.pedantic(
        lambda: build_miter_encoding(locked, opt="full"),
        rounds=3,
        iterations=1,
    )
