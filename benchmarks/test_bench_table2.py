"""Benchmark T2: regenerate Table 2 (runtime of attacking LUT insertion).

Per circuit: baseline single-key SAT attack vs the multi-key attack at
``N = 4`` (16 sub-tasks).  The paper's metric — max sub-task runtime
over baseline runtime — lands below 1.0 for most circuits (the paper
reports 6 of 8 below 1/16 on full-size netlists with a native solver;
with the pure-Python substrate the ratios are milder but the ordering
and the existence of an outlier reproduce).
"""

import pytest

from benchmarks.conftest import TABLE2_SCALE, TABLE2_TIME_LIMIT
from repro.experiments.table2 import TABLE2_CIRCUITS, run_table2
from repro.locking.lut_lock import LutModuleSpec


@pytest.mark.parametrize("circuit", TABLE2_CIRCUITS)
def test_table2_row(benchmark, circuit):
    """One Table 2 row: baseline vs 16 sub-tasks on one benchmark."""

    def run():
        return run_table2(
            circuits=(circuit,),
            scale=TABLE2_SCALE,
            spec=LutModuleSpec.paper_scale(),
            effort=4,
            parallel=True,
            time_limit_per_task=TABLE2_TIME_LIMIT,
            verify=True,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    row = result.rows[0]

    assert row.baseline_status == "ok"
    assert row.multikey_status == "ok"
    assert row.composition_equivalent is True
    assert row.min_seconds <= row.mean_seconds <= row.max_seconds

    benchmark.extra_info["baseline_s"] = round(row.baseline_seconds, 3)
    benchmark.extra_info["min_s"] = round(row.min_seconds, 3)
    benchmark.extra_info["mean_s"] = round(row.mean_seconds, 3)
    benchmark.extra_info["max_s"] = round(row.max_seconds, 3)
    benchmark.extra_info["max_over_baseline"] = round(row.ratio, 4)
    benchmark.extra_info["baseline_dips"] = row.baseline_dips
