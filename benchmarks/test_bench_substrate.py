"""Micro-benchmarks for the substrates the attacks are built on.

Not a paper artifact — these keep the SAT solver, synthesis pipeline
and CEC honest over time (regressions here silently distort Tables 1
and 2).
"""

from repro.bench_circuits.iscas85 import iscas85_like
from repro.circuit.equivalence import check_equivalence
from repro.circuit.simulator import truth_table
from repro.locking.sarlock import sarlock_lock
from repro.oracle.oracle import Oracle
from repro.sat.random_cnf import random_ksat
from repro.synth.optimize import synthesize


def test_solver_random_3sat(benchmark):
    """Random 3-SAT below the phase transition (satisfiable region)."""
    cnf = random_ksat(150, 600, k=3, seed=11)

    def run():
        solver = cnf.to_solver()
        return solver.solve()

    assert benchmark.pedantic(run, rounds=3, iterations=1) is True


def test_solver_pigeonhole(benchmark):
    """PHP(7,6): a small but genuinely hard UNSAT proof."""

    def build_and_solve():
        from repro.sat.solver import Solver

        s = Solver()

        def v(p, h):
            return p * 6 + h + 1

        for p in range(7):
            s.add_clause([v(p, h) for h in range(6)])
        for h in range(6):
            for p1 in range(7):
                for p2 in range(p1 + 1, 7):
                    s.add_clause([-v(p1, h), -v(p2, h)])
        return s.solve()

    assert benchmark(build_and_solve) is False


def test_synthesis_pipeline(benchmark):
    """Constant-prop + rewrite + strash + DCE on a multiplier."""
    netlist = iscas85_like("c6288", 0.4)
    pin = {net: (i % 2 == 0) for i, net in enumerate(netlist.inputs[:6])}

    result = benchmark(lambda: synthesize(netlist, pin))
    assert result.gates_after < result.gates_before


def test_equivalence_check(benchmark):
    """CEC of a circuit against its synthesized self."""
    netlist = iscas85_like("c880", 0.4)
    optimized = synthesize(netlist).netlist

    result = benchmark(lambda: check_equivalence(netlist, optimized))
    assert result.equivalent


def test_bit_parallel_simulation(benchmark):
    """Exhaustive 2^16-pattern sweep of a scaled multiplier."""
    netlist = iscas85_like("c6288", 0.5, match_interface=False)
    assert len(netlist.inputs) == 16

    tables = benchmark(lambda: truth_table(netlist))
    assert len(tables) == len(netlist.outputs)


def test_evaluate_pattern_scratch_reuse(benchmark):
    """Per-pattern queries must not re-allocate their word lists.

    ``evaluate_pattern`` is the oracle's ``query_int`` hot path; it now
    refills a per-circuit scratch list instead of rebuilding python
    lists per call.  The guard compares 4096 single-pattern queries
    against one bit-parallel batch over the same patterns: parity
    exactly, and wall-clock within a bound loose enough for machine
    noise but tight enough to catch per-call setup creeping back in.
    """
    import time as _time

    netlist = iscas85_like("c880", 0.5, match_interface=False)
    compiled = netlist.compile()
    patterns = list(range(4096))

    def per_pattern():
        return [compiled.evaluate_pattern(p) for p in patterns]

    single_results = benchmark.pedantic(per_pattern, rounds=3, iterations=1)
    start = _time.perf_counter()
    batch_results = compiled.eval_batch(patterns, lanes="python")
    batch_s = _time.perf_counter() - start
    assert single_results == batch_results  # parity with the batch path
    single_s = benchmark.stats.stats.min
    benchmark.extra_info["per_pattern_vs_batch"] = round(single_s / batch_s, 1)
    # Generous bound: per-pattern costs ~an order of magnitude more
    # than one 4096-lane sweep; 30x headroom catches only genuine
    # per-call allocation regressions, not machine noise.
    assert single_s <= batch_s * 30, (
        f"evaluate_pattern loop {single_s:.4f}s vs batch {batch_s:.4f}s "
        "— per-call overhead regressed"
    )


def test_single_sat_attack_iteration_cost(benchmark):
    """Full (small) SAT attack — the inner engine of every experiment."""
    original = iscas85_like("c1908", 0.3)
    locked = sarlock_lock(original, 6, seed=1)

    def run():
        return __import__(
            "repro.attacks.sat_attack", fromlist=["sat_attack"]
        ).sat_attack(locked, Oracle(original))

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.status == "ok"
    assert result.num_dips == 2**6 - 1
