"""Benchmark X1: scenario-matrix runs, cold versus warm cache.

Runs one small ``scheme x attack x engine`` grid through
:func:`repro.scenarios.run_matrix` twice against the same cache
directory.  The cold pass pays the full lock + multi-key attack cost
per cell; the warm pass replays the JSON artifacts.  The asserted
floor is 5x in the warm replay's favour — the same contract
``benchmarks/test_bench_runner.py`` enforces for the classic drivers,
now protecting the declarative path every driver rides on.

Each run appends a trajectory entry to ``BENCH_matrix.json`` at the
repository root; CI uploads the file (with the other ``BENCH_*.json``
trajectories) as an artifact so the perf history is tracked per PR.
"""

from __future__ import annotations

import time

from repro.runner import ResultCache, Runner
from repro.scenarios import ScenarioSpec, run_matrix

from benchmarks.conftest import FULL, append_trajectory

_SCALE = 0.25 if FULL else 0.2


def _bench_spec() -> ScenarioSpec:
    return ScenarioSpec(
        schemes=[("sarlock", {"key_size": 4}), ("xor", {"key_size": 4})],
        attacks=(
            "sat",
            (
                "appsat",
                {"dips_per_round": 32, "error_threshold": 0.0,
                 "settle_rounds": 99},
            ),
        ),
        engines=("sharded", "reference"),
        circuits=("c880",),
        scale=_SCALE,
        efforts=(2,),
        time_limit_per_task=120.0,
        verify_composition=True,
    )


def test_matrix_cold_vs_warm(benchmark, tmp_path):
    """Warm-cache matrix replay must be at least 5x faster than cold."""
    spec = _bench_spec()
    cache_dir = tmp_path / "cache"

    start = time.perf_counter()
    cold = run_matrix(spec, runner=Runner(cache=ResultCache(cache_dir)))
    cold_seconds = time.perf_counter() - start

    warm = benchmark.pedantic(
        lambda: run_matrix(spec, runner=Runner(cache=ResultCache(cache_dir))),
        rounds=3,
        iterations=1,
    )

    # The replay is lossless: identical cells, identical formatted table.
    assert warm.cells == cold.cells
    assert warm.format() == cold.format()
    assert all(cell.status == "ok" for cell in cold.cells)
    assert all(cell.composition_equivalent for cell in cold.cells)

    warm_seconds = benchmark.stats.stats.mean
    speedup = cold_seconds / warm_seconds
    benchmark.extra_info["cold_s"] = round(cold_seconds, 3)
    benchmark.extra_info["warm_s"] = round(warm_seconds, 4)
    benchmark.extra_info["speedup"] = round(speedup, 1)
    benchmark.extra_info["cells"] = len(cold.cells)

    append_trajectory(
        "matrix",
        [
            {
                "ts": time.time(),
                "cells": len(cold.cells),
                "scale": _SCALE,
                "cold_s": round(cold_seconds, 4),
                "warm_s": round(warm_seconds, 4),
                "speedup": round(speedup, 2),
            }
        ],
    )

    assert warm_seconds * 5 <= cold_seconds, (
        f"warm matrix replay not >=5x faster: cold={cold_seconds:.3f}s "
        f"warm={warm_seconds:.3f}s"
    )
