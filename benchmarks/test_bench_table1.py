"""Benchmark T1: regenerate Table 1 (#DIP for SARLock-locked c7552).

Paper shape being reproduced:

* ``N = 0`` baseline needs ``~2^|K|`` DIPs,
* #DIP halves with every unit of splitting effort,
* all 2^N parallelized tasks see (near-)identical #DIP.
"""

import pytest

from benchmarks.conftest import TABLE1_KEY_SIZES, TABLE1_SCALE
from repro.experiments.table1 import run_table1


@pytest.mark.parametrize("key_size", TABLE1_KEY_SIZES)
def test_table1_row(benchmark, key_size):
    """One Table 1 row: #DIP across N = 0..4 for one key size."""

    def run():
        return run_table1(
            key_sizes=(key_size,),
            efforts=(0, 1, 2, 3, 4),
            scale=TABLE1_SCALE,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)

    baseline = result.cell(key_size, 0)
    assert baseline.max_dips == 2**key_size - 1
    previous = baseline.max_dips
    for effort in (1, 2, 3, 4):
        cell = result.cell(key_size, effort)
        assert cell.status == "ok"
        assert cell.max_dips <= previous  # monotone decrease
        # Halving law with slack for the k*-containing sub-space.
        assert cell.max_dips <= (previous + 1) // 2 + 1
        assert max(cell.dips_per_task) - min(cell.dips_per_task) <= 1
        previous = cell.max_dips

    benchmark.extra_info["dips"] = {
        f"N={n}": result.cell(key_size, n).max_dips for n in range(5)
    }


def test_table1_render(benchmark):
    """Formatting the whole (small) grid, end to end."""
    result = benchmark.pedantic(
        lambda: run_table1(key_sizes=(4,), efforts=(0, 1, 2), scale=0.12),
        rounds=1,
        iterations=1,
    )
    assert "Table 1" in result.format()
