"""Benchmark F1: regenerate Fig. 1(a) and Fig. 1(b).

Fig. 1(a): the SARLock error-distribution matrix must match the paper
cell for cell.  Fig. 1(b): two (incorrect) keys MUX-composed on the
MSB must be CEC-equivalent to the original.
"""

from repro.experiments.figure1 import run_figure1


def test_figure1_full(benchmark):
    result = benchmark.pedantic(run_figure1, rounds=1, iterations=1)

    # Fig. 1(a), cell for cell: error iff input == key != k*.
    for i in range(8):
        for k in range(8):
            assert result.matrix[i][k] == ((i == k) and (k != 0b101))

    # The paper's key sets for the two halves.
    assert set(result.keys_msb0) == {0b100, 0b101, 0b110, 0b111}
    assert set(result.keys_msb1) == {0b000, 0b001, 0b010, 0b011, 0b101}

    # Fig. 1(b): composition is equivalent, even with incorrect keys.
    assert result.composition_equivalent is True
    assert result.incorrect_pair_equivalent is True

    benchmark.extra_info["keys_msb0"] = [format(k, "03b") for k in result.keys_msb0]
    benchmark.extra_info["incorrect_pair"] = [
        format(k, "03b") for k in result.incorrect_pair
    ]


def test_figure1b_composition_only(benchmark):
    """Just the Fig. 1(b) machinery: attack both halves + compose + CEC."""
    from repro.core.multikey import multikey_attack
    from repro.core.compose import verify_composition
    from repro.experiments.figure1 import paper_example_circuit
    from repro.locking.sarlock import sarlock_lock

    original = paper_example_circuit()
    locked = sarlock_lock(
        original, 3, correct_key=0b101, protected_inputs=["i0", "i1", "i2"]
    )

    def run():
        attack = multikey_attack(
            locked, original, effort=1, splitting_inputs=["i2"]
        )
        return verify_composition(
            locked, attack.splitting_inputs, attack.keys, original
        )

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.equivalent
