"""Benchmark M1: sharded multi-key engine versus the reference arm.

Same attack, two engines: the reference arm synthesizes a conditional
netlist and cold-starts a SAT attack per sub-space (``2^N`` encodings,
``2^N`` solvers), the sharded engine encodes the miter once and runs
the sub-spaces as assumption-pinned shards against warm solver state.
The asserted floor is 2x wall-clock in the sharded engine's favour —
measured headroom is typically 2.5-4x on these cases — with parity
checked before speed (identical #DIP on SARLock, CEC-equivalent key
compositions on both).

Each run appends a trajectory entry to ``BENCH_multikey.json`` at the
repository root; CI uploads the file (with the other ``BENCH_*.json``
trajectories) as an artifact so the perf history is tracked per PR.
"""

from __future__ import annotations

import time

from repro.bench_circuits.iscas85 import iscas85_like
from repro.core.compose import verify_composition
from repro.core.multikey import multikey_attack
from repro.core.sharded import sharded_multikey_attack
from repro.locking.lut_lock import LutModuleSpec, lut_lock
from repro.locking.sarlock import sarlock_lock

from benchmarks.conftest import FULL, append_trajectory

#: (label, circuit, scale, locker, effort).  Shard-heavy configurations
#: (N=5 -> 32 sub-spaces) are where the reference arm's per-sub-space
#: setup multiplies and the shared encoding pays off hardest.
_SCALE = 0.4 if FULL else 0.3
_CASES = (
    (
        "c7552+sarlock6",
        "c7552",
        _SCALE,
        lambda original: sarlock_lock(original, 6, seed=1),
        5,
    ),
    (
        "c5315+lut",
        "c5315",
        0.5 if FULL else 0.4,
        lambda original: lut_lock(original, LutModuleSpec.tiny(), seed=1),
        5,
    ),
)


def test_sharded_vs_reference_multikey(benchmark):
    """The sharded engine must be >=2x the reference arm's wall-clock."""
    entries = []
    speedups = []
    prepared = None
    for label, circuit, scale, locker, effort in _CASES:
        original = iscas85_like(circuit, scale)
        locked = locker(original)

        start = time.perf_counter()
        ref = multikey_attack(locked, original, effort=effort)
        ref_seconds = time.perf_counter() - start

        start = time.perf_counter()
        sharded = sharded_multikey_attack(locked, original, effort=effort)
        sharded_seconds = time.perf_counter() - start

        # Parity before speed: same sub-space indexing, same statuses,
        # SARLock's deterministic #DIP identical, and both key sets
        # compose to a CEC-equivalent netlist.
        assert ref.status == sharded.status == "ok"
        assert sharded.splitting_inputs == ref.splitting_inputs
        assert len(sharded.subtasks) == len(ref.subtasks) == 1 << effort
        if label.endswith("sarlock6"):
            assert sharded.dips_per_task == ref.dips_per_task
        for engine_result in (ref, sharded):
            assert verify_composition(
                locked,
                engine_result.splitting_inputs,
                engine_result.keys,
                original,
            ).equivalent

        speedup = ref_seconds / sharded_seconds
        speedups.append((label, speedup))
        entries.append(
            {
                "ts": time.time(),
                "case": label,
                "effort": effort,
                "gates": locked.netlist.num_gates,
                "reference_s": round(ref_seconds, 4),
                "sharded_s": round(sharded_seconds, 4),
                "encode_s": round(sharded.encode_seconds, 4),
                "total_dips": sum(sharded.dips_per_task),
                "speedup": round(speedup, 2),
            }
        )
        if prepared is None:
            prepared = (locked, original, effort)

    # The pytest-benchmark tracked metric: one sharded attack on the
    # first case, with the engine comparison in extra_info.
    locked, original, effort = prepared
    benchmark.pedantic(
        lambda: sharded_multikey_attack(locked, original, effort=effort),
        rounds=2,
        iterations=1,
    )
    for entry in entries:
        benchmark.extra_info[f"{entry['case']}_speedup"] = entry["speedup"]
        benchmark.extra_info[f"{entry['case']}_sharded_s"] = entry["sharded_s"]

    append_trajectory("multikey", entries)

    for label, speedup in speedups:
        assert speedup >= 2.0, (
            f"sharded engine only {speedup:.2f}x the reference arm on "
            f"{label} (floor is 2x)"
        )


def test_real_corpus_multikey_tier(benchmark):
    """Corpus tier: the genuine-format c432 under the multi-key premise.

    Both engines attack the real netlist at full size (no ``scale``
    knob on corpus circuits) and must agree — same statuses, identical
    SARLock #DIP, CEC-equivalent compositions.  No engine floor is
    enforced at 160 gates; the tier exists so ``BENCH_multikey.json``
    tracks a real-circuit line per run.
    """
    from repro.bench_circuits.corpus import load_corpus

    effort = 3
    original = load_corpus("real_c432")
    locked = sarlock_lock(original, 6, seed=1)

    start = time.perf_counter()
    ref = multikey_attack(locked, original, effort=effort)
    ref_seconds = time.perf_counter() - start

    start = time.perf_counter()
    sharded = sharded_multikey_attack(locked, original, effort=effort)
    sharded_seconds = time.perf_counter() - start

    assert ref.status == sharded.status == "ok"
    assert sharded.dips_per_task == ref.dips_per_task
    for engine_result in (ref, sharded):
        assert verify_composition(
            locked,
            engine_result.splitting_inputs,
            engine_result.keys,
            original,
        ).equivalent

    append_trajectory(
        "multikey",
        [
            {
                "ts": time.time(),
                "tier": "corpus",
                "case": "real_c432+sarlock6",
                "effort": effort,
                "gates": locked.netlist.num_gates,
                "reference_s": round(ref_seconds, 4),
                "sharded_s": round(sharded_seconds, 4),
                "total_dips": sum(sharded.dips_per_task),
                "speedup": round(ref_seconds / sharded_seconds, 2),
            }
        ],
    )
    benchmark.pedantic(
        lambda: sharded_multikey_attack(locked, original, effort=effort),
        rounds=2,
        iterations=1,
    )
