"""Benchmark S2: the HTTP gateway under a concurrent client storm.

The horizontal-scale proof: an in-process ``repro serve --http``
gateway over one sharded shared cache takes a synchronized burst from
64 concurrent clients (more under ``REPRO_FULL=1``).  Correctness is
asserted before any number is recorded — every accepted job must
produce exactly one terminal response (zero lost, zero duplicated,
zero failed), and because a single warm pass precomputed every unique
cell, the storm must be served entirely from the shared cache.

Admission control is deliberately set *below* the client count, so the
storm also exercises the 503/``Retry-After`` backpressure path at
scale: refused clients back off and retry, and the accounting proves
no request was dropped on the floor in the process.

Each run appends one entry — p50/p95 latency, throughput, cache-hit
rate, rejected-attempt count — to ``BENCH_service.json`` at the repo
root; the CI ``service-load`` job uploads it next to the subprocess
harness's summary.
"""

from __future__ import annotations

import time

from repro.runner import ResultCache
from repro.service import Service
from repro.service.http import create_http_server
from repro.service.loadgen import assert_no_losses, matrix_mix, run_load

from benchmarks.conftest import FULL, append_trajectory

_CLIENTS = 96 if FULL else 64
_SCHEMES = ["sarlock", "xor"]
_ATTACKS = ["sat", "appsat"]
_KEY_SIZE = 4 if FULL else 3
_SCALE = 0.15 if FULL else 0.12
#: Deliberately below the client count: the storm must survive real
#: backpressure, not just an open door.
_MAX_PENDING = _CLIENTS // 4


def test_gateway_sustains_concurrent_storm(benchmark, tmp_path):
    """64+ clients, one gateway, zero lost results, all cache hits."""
    service = Service(
        jobs=4,
        cache=ResultCache(tmp_path / "cache", backend="sharded"),
        max_pending=_MAX_PENDING,
    )
    server = create_http_server(service, port=0)
    import threading

    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    assert server.ready.wait(10), "gateway never reached its serve loop"
    host, port = server.server_address[:2]

    mix = matrix_mix(
        _SCHEMES, _ATTACKS, key_size=_KEY_SIZE, scale=_SCALE
    )
    repeat = max(1, _CLIENTS // len(mix))  # one job per client

    try:
        # Warm pass: a single client computes each unique cell once.
        warm = run_load(host, port, mix, clients=1, job_id_prefix="warm")
        assert_no_losses(warm)
        assert len(warm.accepted) == len(mix)

        # The storm: every client replays warm cells simultaneously.
        storm_holder: dict = {}

        def storm_once() -> None:
            storm_holder["report"] = run_load(
                host,
                port,
                mix,
                clients=_CLIENTS,
                repeat=repeat,
                job_id_prefix="storm",
            )

        benchmark.pedantic(storm_once, rounds=1, iterations=1)
        storm = storm_holder["report"]

        # Correctness first: exact accounting for every request.
        assert_no_losses(storm)
        assert len(storm.records) == len(mix) * repeat
        assert storm.cache_hit_rate == 1.0, (
            f"storm replayed warm cells but hit rate was "
            f"{storm.cache_hit_rate:.3f}"
        )
        # The gateway's own books agree: nothing in flight, nothing leaked.
        assert service.active_count() == 0
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)

    summary = storm.summary()
    benchmark.extra_info.update(summary)
    append_trajectory(
        "service",
        [
            {
                "ts": time.time(),
                "full": FULL,
                "schemes": _SCHEMES,
                "attacks": _ATTACKS,
                "key_size": _KEY_SIZE,
                "scale": _SCALE,
                "max_pending": _MAX_PENDING,
                "warm_wall_s": round(warm.wall_seconds, 4),
                **summary,
            }
        ],
    )
