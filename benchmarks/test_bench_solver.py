"""Benchmark S1: the SAT attack across every registered solver backend.

One workload, every backend: a SARLock-locked ISCAS-class carrier run
through the single-key SAT attack and (for backends with checkpoint
frames) the sharded multi-key engine.  Parity is asserted before any
timing is recorded — every backend must recover the same key and, on
SARLock, the same scheme-determined DIP count — so the trajectory only
ever compares *equivalent* runs.

Each run appends one entry per backend to ``BENCH_solver.json`` at the
repository root; the optional-deps CI job installs ``python-sat`` and
re-runs this file, so the trajectory records the PySAT backend's
numbers whenever the wheel is available.
"""

from __future__ import annotations

import time

from repro.attacks.sat_attack import sat_attack
from repro.bench_circuits.iscas85 import iscas85_like
from repro.core.multikey import multikey_attack
from repro.locking.sarlock import sarlock_lock
from repro.oracle.oracle import Oracle
from repro.sat import registered_solvers, solver_info

from benchmarks.conftest import FULL, append_trajectory

_CIRCUIT = "c1908"
_SCALE = 0.4 if FULL else 0.25
_KEY_SIZE = 6 if FULL else 5
_EFFORT = 3 if FULL else 2


def test_solver_backends(benchmark):
    """Every registered backend: identical verdicts, tracked runtimes."""
    original = iscas85_like(_CIRCUIT, _SCALE)
    locked = sarlock_lock(original, _KEY_SIZE, seed=1)
    expected_dips = 2**_KEY_SIZE - 1  # SARLock: one DIP per wrong key

    entries = []
    for name in registered_solvers():
        info = solver_info(name)

        start = time.perf_counter()
        single = sat_attack(locked, Oracle(original), solver=name)
        single_seconds = time.perf_counter() - start
        assert single.succeeded, f"{name}: single-key attack failed"
        assert single.key_int == locked.correct_key_int, (
            f"{name}: recovered key diverges from the python backend's"
        )
        assert single.num_dips == expected_dips

        multi_seconds = None
        if info.supports_sharding:
            start = time.perf_counter()
            multi = multikey_attack(
                locked, original, effort=_EFFORT, engine="sharded",
                solver=name,
            )
            multi_seconds = time.perf_counter() - start
            assert multi.status == "ok", f"{name}: sharded attack failed"
            assert multi.engine == "sharded"
            assert multi.solver == name

        entries.append(
            {
                "ts": time.time(),
                "backend": name,
                "circuit": _CIRCUIT,
                "scale": _SCALE,
                "key_size": _KEY_SIZE,
                "gates": locked.netlist.num_gates,
                "dips": single.num_dips,
                "single_key_s": round(single_seconds, 4),
                "sharded_s": (
                    round(multi_seconds, 4)
                    if multi_seconds is not None
                    else None
                ),
                "capabilities": info.capabilities.as_dict(),
            }
        )

    # The pytest-benchmark tracked metric: the default backend's
    # single-key attack, with every backend's numbers in extra_info.
    benchmark.pedantic(
        lambda: sat_attack(locked, Oracle(original)),
        rounds=2,
        iterations=1,
    )
    for entry in entries:
        benchmark.extra_info[f"{entry['backend']}_single_key_s"] = entry[
            "single_key_s"
        ]

    append_trajectory("solver", entries)
