"""Benchmark X2: corruption metrics — sampled-sweep throughput and
warm matrix-with-metrics replay.

Two measurements, parity asserted before any timing:

1. A sampled corruption sweep (wide circuit, stratified stimuli) on
   the preferred lanes backend, recorded as lane-evaluations per
   second — the raw engine throughput ``--metrics`` rides on.
2. A scheme x engine matrix with ``metrics=("corruption", "subspace")``
   run cold then warm against one cache: the warm replay (attack cells
   *and* the deduplicated ``corruption_cell`` tasks) must be at least
   5x faster, the same floor the plain matrix benchmark enforces.

Each run appends a trajectory entry to ``BENCH_corruption.json`` at
the repository root; CI uploads it with the other ``BENCH_*.json``
trajectories.
"""

from __future__ import annotations

import time

from repro.bench_circuits.corpus import resolve_circuit
from repro.circuit.lanes import numpy_available
from repro.locking.registry import lock_circuit
from repro.metrics import evaluate_corruption
from repro.runner import ResultCache, Runner
from repro.scenarios import ScenarioSpec, run_matrix

from benchmarks.conftest import FULL, append_trajectory

_SCALE = 0.25 if FULL else 0.2
_KEY_SAMPLES = 64 if FULL else 24
_INPUT_SAMPLES = 1024 if FULL else 512
_METRICS = ("corruption", "bit_flip", "avalanche", "subspace")


def _bench_spec() -> ScenarioSpec:
    return ScenarioSpec(
        schemes=[("sarlock", {"key_size": 4}), ("xor", {"key_size": 4})],
        attacks=("sat",),
        engines=("sharded", "reference"),
        circuits=("c880",),
        scale=_SCALE,
        efforts=(2,),
        time_limit_per_task=120.0,
        metrics=_METRICS,
        key_samples=_KEY_SAMPLES,
    )


def test_sampled_sweep_throughput(benchmark):
    """Raw engine rate on the sampled path, parity-checked first."""
    original = resolve_circuit("c880", _SCALE)
    locked = lock_circuit("sarlock", original, key_size=6, seed=0)
    kwargs = dict(
        metrics=_METRICS,
        key_samples=_KEY_SAMPLES,
        effort=2,
        input_samples=_INPUT_SAMPLES,
    )

    # Parity before timing: the preferred backend must produce the
    # python backend's exact bits, else the numbers mean nothing.
    reference = evaluate_corruption(locked, original, lanes="python", **kwargs)
    preferred = "numpy" if numpy_available() else "python"
    check = evaluate_corruption(locked, original, lanes=preferred, **kwargs)
    assert check.metrics == reference.metrics

    report = benchmark.pedantic(
        lambda: evaluate_corruption(
            locked, original, lanes=preferred, **kwargs
        ),
        rounds=3,
        iterations=1,
    )
    assert report.metrics == reference.metrics

    seconds = benchmark.stats.stats.mean
    lane_evals = report.keys_sampled * report.input_samples
    rate = lane_evals / seconds
    benchmark.extra_info["lanes"] = preferred
    benchmark.extra_info["lane_evals_per_s"] = round(rate)

    append_trajectory(
        "corruption",
        [
            {
                "ts": time.time(),
                "kind": "sweep",
                "lanes": preferred,
                "key_samples": report.keys_sampled,
                "input_samples": report.input_samples,
                "seconds": round(seconds, 4),
                "lane_evals_per_s": round(rate),
            }
        ],
    )


def test_matrix_with_metrics_cold_vs_warm(benchmark, tmp_path):
    """Warm matrix-with-metrics replay must be at least 5x faster."""
    spec = _bench_spec()
    cache_dir = tmp_path / "cache"

    start = time.perf_counter()
    cold = run_matrix(spec, runner=Runner(cache=ResultCache(cache_dir)))
    cold_seconds = time.perf_counter() - start

    warm = benchmark.pedantic(
        lambda: run_matrix(spec, runner=Runner(cache=ResultCache(cache_dir))),
        rounds=3,
        iterations=1,
    )

    # Lossless replay: identical cells including their metric columns.
    assert warm.cells == cold.cells
    assert warm.to_csv() == cold.to_csv()
    assert all(cell.status == "ok" for cell in cold.cells)
    assert all(cell.metrics is not None for cell in cold.cells)
    # The engine axis shares one corruption_cell per grid point.
    sharded = [c for c in cold.cells if c.engine == "sharded"]
    reference = [c for c in cold.cells if c.engine == "reference"]
    for a, b in zip(sharded, reference):
        assert a.metrics == b.metrics

    warm_seconds = benchmark.stats.stats.mean
    speedup = cold_seconds / warm_seconds
    benchmark.extra_info["cold_s"] = round(cold_seconds, 3)
    benchmark.extra_info["warm_s"] = round(warm_seconds, 4)
    benchmark.extra_info["speedup"] = round(speedup, 1)

    append_trajectory(
        "corruption",
        [
            {
                "ts": time.time(),
                "kind": "matrix",
                "cells": len(cold.cells),
                "metric_tasks": spec.metrics_size,
                "scale": _SCALE,
                "cold_s": round(cold_seconds, 4),
                "warm_s": round(warm_seconds, 4),
                "speedup": round(speedup, 2),
            }
        ],
    )

    assert warm_seconds * 5 <= cold_seconds, (
        f"warm metrics replay not >=5x faster: cold={cold_seconds:.3f}s "
        f"warm={warm_seconds:.3f}s"
    )
