"""Defender's view: evaluate locking schemes against both attack models.

A designer choosing a locking scheme traditionally asks "how many DIPs
does the SAT attack need?".  The paper argues that is the wrong
question once multi-key attacks exist.  This example scores XOR
locking, SARLock, Anti-SAT and LUT insertion on:

* area overhead (Nangate-class cell-area estimate),
* wrong-key output corruption (how broken is a wrong key),
* baseline SAT-attack cost,
* multi-key attack cost at N=3 — the paper's threat model.

Run:  python examples/defense_evaluation.py [scale] [samples] [lut_spec]
      (lut_spec: tiny | small | paper, default paper)
"""

import sys

from repro.bench_circuits import iscas85_like
from repro.core import multikey_attack
from repro.locking import (
    LutModuleSpec,
    antisat_lock,
    error_rate,
    lut_lock,
    sarlock_lock,
    xor_lock,
)
from repro.synth import estimate_area


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.3
    samples = int(sys.argv[2]) if len(sys.argv) > 2 else 4096
    lut_spec_name = sys.argv[3] if len(sys.argv) > 3 else "paper"
    lut_spec = LutModuleSpec.by_name(lut_spec_name)

    original = iscas85_like("c880", scale=scale)
    base_area = estimate_area(original)
    print(f"victim: c880-class, {original.num_gates} gates, "
          f"{base_area:.1f} um^2\n")

    schemes = {
        "xor (|K|=16)": xor_lock(original, 16, seed=3),
        "sarlock (|K|=8)": sarlock_lock(original, 8, seed=3),
        "antisat (n=6)": antisat_lock(original, 6, seed=3),
        f"lut ({lut_spec.key_bits}b)": lut_lock(original, lut_spec, seed=3),
    }

    header = (
        f"{'scheme':>16} {'area +%':>8} {'corrupt':>8} "
        f"{'base #DIP':>9} {'base t':>8} {'N=3 max t':>9} {'ratio':>7}"
    )
    print(header)
    for name, locked in schemes.items():
        overhead = 100 * (estimate_area(locked.netlist) / base_area - 1)
        # Corruption of one representative wrong key (flip first bit).
        wrong = locked.correct_key_int ^ 1
        corruption = error_rate(
            locked, original, wrong, num_samples=samples, seed=1
        )
        baseline = multikey_attack(
            locked, original, effort=0, time_limit_per_task=120
        )
        multikey = multikey_attack(
            locked, original, effort=3, parallel=True, time_limit_per_task=120
        )
        ratio = multikey.max_subtask_seconds / max(
            baseline.max_subtask_seconds, 1e-9
        )
        print(
            f"{name:>16} {overhead:>7.1f}% {corruption:>7.2%} "
            f"{baseline.total_dips:>9} {baseline.max_subtask_seconds:>7.2f}s "
            f"{multikey.max_subtask_seconds:>8.2f}s {ratio:>7.3f}"
        )

    print(
        "\nReading: a low 'corrupt' value means most wrong keys barely\n"
        "corrupt the function (point-function schemes); a ratio << 1\n"
        "means the multi-key attack defeats the scheme's SAT resistance."
    )


if __name__ == "__main__":
    main()
