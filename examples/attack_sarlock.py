"""SARLock case study: #DIP halves with every splitting level (Table 1).

SARLock was designed to force the SAT attack into exponentially many
DIP iterations.  The multi-key attack sidesteps that: every pinned
input halves the reachable point-function space, so #DIP — and with it
the attack time — drops by 2x per unit of splitting effort, and the
2^N sub-tasks run in parallel.

Run:  python examples/attack_sarlock.py [key_size] [scale] [max_effort]
"""

import sys

from repro.bench_circuits import iscas85_like
from repro.core import multikey_attack, verify_composition
from repro.locking import sarlock_lock


def main() -> None:
    key_size = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.2
    max_effort = int(sys.argv[3]) if len(sys.argv) > 3 else 4

    original = iscas85_like("c7552", scale=scale)
    locked = sarlock_lock(original, key_size=key_size, seed=0)
    print(f"c7552-class ({original.num_gates} gates) + SARLock |K|={key_size}")
    print(f"{'N':>3} {'#DIP/task':>24} {'max task':>9} {'composed CEC':>12}")

    for effort in range(max_effort + 1):
        attack = multikey_attack(locked, original, effort=effort)
        equivalent = (
            bool(
                verify_composition(
                    locked, attack.splitting_inputs, attack.keys, original
                )
            )
            if attack.status == "ok"
            else False
        )
        dips = attack.dips_per_task
        dips_text = (
            f"{dips[0]} x{len(dips)}"
            if len(set(dips)) == 1
            else ",".join(map(str, dips[:8])) + ("..." if len(dips) > 8 else "")
        )
        print(
            f"{effort:>3} {dips_text:>24} "
            f"{attack.max_subtask_seconds:>8.2f}s {str(equivalent):>12}"
        )


if __name__ == "__main__":
    main()
