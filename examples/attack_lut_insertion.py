"""LUT-based insertion case study: the Table 2 scenario on one circuit.

LUT insertion does not inflate #DIP; it makes every miter iteration
expensive.  Splitting the input space shrinks the conditional netlists
(the decoders collapse once their select inputs are pinned), so each
sub-task is far cheaper than the monolithic baseline.

Run:  python examples/attack_lut_insertion.py [circuit] [scale] [spec]
      (spec: tiny | small | paper, default paper)
"""

import sys

from repro.bench_circuits import iscas85_like
from repro.core import multikey_attack, verify_composition
from repro.locking import LutModuleSpec, lut_lock


def main() -> None:
    circuit = sys.argv[1] if len(sys.argv) > 1 else "c6288"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.4
    spec_name = sys.argv[3] if len(sys.argv) > 3 else "paper"

    original = iscas85_like(circuit, scale=scale)
    spec = LutModuleSpec.by_name(spec_name)
    locked = lut_lock(original, spec, seed=1)
    print(
        f"{circuit}-class ({original.num_gates} gates) + 2-stage LUT module "
        f"({spec.key_bits} key bits, sources: "
        f"{len(locked.meta['module_source_nets'])} nets)"
    )

    baseline = multikey_attack(locked, original, effort=0)
    print(
        f"\nbaseline SAT attack: {baseline.max_subtask_seconds:.2f}s, "
        f"{baseline.total_dips} DIPs ({baseline.status})"
    )

    attack = multikey_attack(
        locked, original, effort=4, parallel=True
    )
    print(f"multi-key attack (N=4, 16 tasks, {attack.status}):")
    print(f"  min  task: {attack.min_subtask_seconds:.2f}s")
    print(f"  mean task: {attack.mean_subtask_seconds:.2f}s")
    print(f"  max  task: {attack.max_subtask_seconds:.2f}s")
    ratio = attack.max_subtask_seconds / max(
        baseline.max_subtask_seconds, 1e-9
    )
    print(f"  maximum/baseline: {ratio:.3f} "
          f"({(1 - ratio) * 100:.1f}% runtime reduction)" if ratio < 1 else
          f"  maximum/baseline: {ratio:.3f} (no improvement on this instance)")

    if attack.status == "ok":
        equivalent = verify_composition(
            locked, attack.splitting_inputs, attack.keys, original
        )
        print(f"  composed-keys CEC: {bool(equivalent)}")
        synth = [f"{t.gates_before}->{t.gates_after}" for t in attack.subtasks[:4]]
        print(f"  conditional synthesis (first 4 tasks): {', '.join(synth)}")


if __name__ == "__main__":
    main()
