"""Countermeasure study: closing the multi-key loophole (future work).

The paper's conclusion asks for defenses against the multi-key attack.
This example evaluates the prototype defense in
``repro.locking.defense``: SARLock with parity-entangled comparator
inputs.  The two levers the attack pulls are measured directly:

1. how many keys unlock the attacker's best input sub-space
   (counted exactly with the BDD engine), and
2. how much the conditional netlist shrinks after pinning.

It also shows what the *approximate* attacker (AppSAT) sees, since a
defense that only stops exact attacks is not much of a defense.

Run:  python examples/countermeasure_study.py [scale] [key_size]
"""

import sys

from repro.attacks import appsat_attack
from repro.bench_circuits import iscas85_like
from repro.core import multikey_attack
from repro.locking import entangled_sarlock, sarlock_lock, splitting_resistance
from repro.oracle import Oracle


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.3
    key_size = int(sys.argv[2]) if len(sys.argv) > 2 else 8
    original = iscas85_like("c1908", scale=scale)
    schemes = {
        "plain SARLock": sarlock_lock(original, key_size, seed=1),
        "entangled SARLock": entangled_sarlock(original, key_size, seed=1),
    }

    print(f"victim: c1908-class, {original.num_gates} gates, |K|={key_size}\n")
    header = (
        f"{'scheme':>20} {'keys/subspace':>13} {'cond. shrink':>12} "
        f"{'base #DIP':>9} {'N=3 max #DIP':>12} {'N=3 max t':>10}"
    )
    print(header)

    for name, locked in schemes.items():
        resistance = splitting_resistance(locked, original, effort=3)
        baseline = multikey_attack(locked, original, effort=0)
        attack = multikey_attack(locked, original, effort=3)
        print(
            f"{name:>20} {resistance.keys_unlocking_subspace:>13} "
            f"{resistance.gate_reduction:>11.0%} "
            f"{baseline.total_dips:>9} {max(attack.dips_per_task):>12} "
            f"{attack.max_subtask_seconds:>9.2f}s"
        )

    print(
        "\nEntangling the comparator shrinks the sub-space key inflation "
        "and pushes\nper-sub-task #DIP back up toward the baseline — the "
        "multi-key advantage\nshrinks accordingly (it disappears entirely "
        "while |K| <= |I| - N)."
    )

    # The approximate attacker is unimpressed by either scheme: both
    # are point functions, so a low-error key settles quickly.
    print("\nAppSAT view (error threshold 5%):")
    for name, locked in schemes.items():
        result = appsat_attack(
            locked,
            Oracle(original),
            dips_per_round=4,
            queries_per_checkpoint=64,
            error_threshold=0.05,
            seed=7,
        )
        print(
            f"  {name:>20}: status={result.status} after "
            f"{result.num_dips} DIPs, est. error "
            f"{result.estimated_error_rate:.1%}"
        )
    print(
        "\nBoth schemes remain vulnerable to approximate attacks — "
        "the defense\ncloses the multi-key loophole specifically, as the "
        "paper's future work asks."
    )


if __name__ == "__main__":
    main()
