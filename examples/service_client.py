"""Drive a ``repro serve`` daemon over JSON lines, end to end.

Launches the daemon as a subprocess (stdio transport), submits a
scenario-matrix job and a Figure-1 experiment job *concurrently*, then
— once the cold matrix finished — replays the same grid under a new
job id to show the daemon's shared result cache serving it warm.
Every streamed event is printed as it arrives and (optionally)
appended to a JSONL event log — the artifact CI uploads next to the
``BENCH_*.json`` trajectories.

Usage::

    python examples/service_client.py [key_size] [scale] [event_log]

    key_size   SARLock/XOR key bits for the matrix cells (default 3)
    scale      carrier-circuit scale factor (default 0.12)
    event_log  path for the JSONL event log (default: no log)
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def matrix_request(job_id: str, key_size: int, scale: float) -> dict:
    """A 2-schemes x 2-engines grid (the CI smoke's 2x2 matrix)."""
    return {
        "schema_version": 1,
        "kind": "matrix",
        "id": job_id,
        "schemes": [
            ["sarlock", {"key_size": key_size}],
            ["xor", {"key_size": key_size}],
        ],
        "attacks": ["sat"],
        "engines": ["sharded", "reference"],
        "circuits": ["c432"],
        "scale": scale,
        "efforts": [1],
    }


class DaemonClient:
    """A minimal JSON-lines client around a ``repro serve`` subprocess."""

    def __init__(self, cache_dir: str, log_path: Path | None) -> None:
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--cache-dir", cache_dir],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            text=True,
            env=env,
            cwd=REPO_ROOT,
        )
        self.log = log_path.open("w") if log_path else None
        self.events: dict[str, list[dict]] = {}
        self.responses: dict[str, dict] = {}

    def send(self, envelope: dict) -> None:
        self.proc.stdin.write(json.dumps(envelope) + "\n")
        self.proc.stdin.flush()

    def wait_for(self, job_ids: set[str]) -> None:
        """Consume the stream until every named job has responded."""
        while not job_ids <= set(self.responses):
            line = self.proc.stdout.readline()
            if not line:
                raise RuntimeError("daemon closed the stream early")
            if self.log:
                self.log.write(line)
            envelope = json.loads(line)
            job_id = envelope.get("job_id", "")
            if envelope["kind"] == "event":
                self.events.setdefault(job_id, []).append(envelope)
                print(f"[{job_id}] {envelope['type']}: {envelope['data']}")
            elif envelope["kind"] == "response":
                self.responses[job_id] = envelope
                print(f"[{job_id}] response: status={envelope['status']}")

    def shutdown(self) -> int:
        self.send({"kind": "shutdown"})
        self.proc.stdin.close()
        code = self.proc.wait(timeout=120)
        if self.log:
            self.log.close()
        return code


def main(argv: list[str]) -> int:
    key_size = int(argv[1]) if len(argv) > 1 else 3
    scale = float(argv[2]) if len(argv) > 2 else 0.12
    event_log = Path(argv[3]) if len(argv) > 3 else None

    client = DaemonClient(
        tempfile.mkdtemp(prefix="repro-serve-"), event_log
    )
    # Two jobs at once: the daemon multiplexes them over one service.
    client.send(matrix_request("matrix-cold", key_size, scale))
    client.send(
        {
            "schema_version": 1,
            "kind": "experiment",
            "id": "fig1",
            "experiment": "figure1",
            "params": {},
        }
    )
    client.wait_for({"matrix-cold", "fig1"})
    # Replay the identical grid: served warm from the shared cache.
    client.send(matrix_request("matrix-warm", key_size, scale))
    client.wait_for({"matrix-warm"})
    code = client.shutdown()
    if code != 0:
        print(f"daemon exited with {code}", file=sys.stderr)
        return 1

    expected_cells = 2 * 2  # schemes x engines
    for job_id in ("matrix-cold", "matrix-warm"):
        cells = [
            e for e in client.events[job_id] if e["type"] == "cell_done"
        ]
        assert len(cells) == expected_cells, (job_id, len(cells))
        assert client.responses[job_id]["status"] == "ok"
    assert all(
        e["data"]["cached"]
        for e in client.events["matrix-warm"]
        if e["type"] == "cell_done"
    ), "warm replay was not served from the shared cache"
    assert client.responses["fig1"]["status"] == "ok"
    assert (
        client.responses["matrix-warm"]["result"]
        == client.responses["matrix-cold"]["result"]
    ), "warm replay diverged from the cold run"

    print(
        f"\n{len(client.responses)} jobs ok: {expected_cells} cells cold, "
        f"{expected_cells} cells warm from the shared cache, "
        f"figure1 alongside"
    )
    if event_log:
        total = sum(len(events) for events in client.events.values())
        print(
            f"wrote {total} events + {len(client.responses)} responses "
            f"to {event_log}"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
