"""Quickstart: lock a circuit, break it with multiple incorrect keys.

Walks the paper's whole story on a small circuit in under a minute:

1. build a benchmark circuit,
2. lock it with SARLock,
3. run the classic single-key SAT attack (the baseline),
4. run the multi-key attack with splitting effort N=2,
5. compose the four recovered keys through a MUX network (Fig. 1b)
   and prove the result equivalent to the original design.

Run:  python examples/quickstart.py [scale] [key_size]
"""

import sys

from repro.bench_circuits import iscas85_like
from repro.core import compose_multikey_netlist, multikey_attack, verify_composition
from repro.locking import sarlock_lock
from repro.oracle import Oracle
from repro.attacks import sat_attack


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.2
    key_size = int(sys.argv[2]) if len(sys.argv) > 2 else 8

    # 1. The victim design: a scaled-down c7552-class adder/comparator.
    original = iscas85_like("c7552", scale=scale)
    print(f"original circuit : {original}")

    # 2. Lock it with SARLock (default: 8 key bits).
    locked = sarlock_lock(original, key_size=key_size, seed=7)
    print(f"locked circuit   : {locked}")
    print(f"correct key      : {locked.correct_key_int:#010b}")

    # 3. Baseline: the classic SAT attack needs ~2^8 DIPs on SARLock.
    oracle = Oracle(original)
    baseline = sat_attack(locked, oracle)
    print(
        f"\nbaseline SAT attack: status={baseline.status} "
        f"#DIP={baseline.num_dips} time={baseline.elapsed_seconds:.2f}s "
        f"key={baseline.key_int:#010b}"
    )
    assert locked.verify_key(original, baseline.key).equivalent

    # 4. The paper's multi-key attack with N=2 (4 parallel sub-tasks).
    attack = multikey_attack(locked, original, effort=2)
    print(
        f"\nmulti-key attack (N=2): status={attack.status} "
        f"splitting inputs={attack.splitting_inputs}"
    )
    print(f"  #DIP per sub-task : {attack.dips_per_task}")
    print(f"  keys per sub-space: {[hex(k) for k in attack.key_ints]}")
    print(
        f"  max sub-task time : {attack.max_subtask_seconds:.2f}s "
        f"(baseline {baseline.elapsed_seconds:.2f}s)"
    )

    # 5. Compose the keys (Fig. 1b) and prove functional equivalence.
    equivalence = verify_composition(
        locked, attack.splitting_inputs, attack.keys, original
    )
    composed = compose_multikey_netlist(
        locked, attack.splitting_inputs, attack.keys
    )
    print(
        f"\ncomposed netlist  : {composed.num_gates} gates, "
        f"CEC equivalent = {bool(equivalence)}"
    )
    incorrect = [
        k for k in attack.key_ints if k != locked.correct_key_int
    ]
    print(
        f"of the {len(attack.key_ints)} keys, {len(incorrect)} are globally "
        "incorrect — yet together they unlock the design."
    )


if __name__ == "__main__":
    main()
