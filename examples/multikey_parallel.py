"""Engine comparison: the reference arm versus the sharded engine.

Algorithm 1's ``2^N`` sub-spaces can be attacked two ways:

* the **reference** arm synthesizes a conditional netlist and
  cold-starts a SAT attack per sub-space (the paper, literally), and
* the **sharded** engine encodes the miter once and runs the
  sub-spaces as assumption-pinned shards against warm solver state.

This example runs both side by side at several splitting efforts,
prints per-shard timings, and finishes with the sharded engine's
process-pool fan-out (the paper's "resource-rich adversary" scenario:
wall-clock approaches the slowest shard as cores are added).

Run:  python examples/multikey_parallel.py [circuit] [scale] [max_effort]
"""

import multiprocessing
import sys

from repro.bench_circuits import iscas85_like
from repro.core import multikey_attack, sharded_multikey_attack
from repro.locking import LutModuleSpec, lut_lock


def main() -> None:
    circuit = sys.argv[1] if len(sys.argv) > 1 else "c880"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.3
    max_effort = int(sys.argv[3]) if len(sys.argv) > 3 else 4
    if max_effort < 1:
        raise SystemExit("max_effort must be at least 1")

    original = iscas85_like(circuit, scale=scale)
    locked = lut_lock(original, LutModuleSpec.paper_scale(), seed=1)
    cores = multiprocessing.cpu_count()
    print(
        f"{circuit}-class, {locked.key_size}-bit LUT key, "
        f"{cores} cores available\n"
    )

    print("engine comparison (serial):")
    print(
        f"{'N':>2} {'shards':>6} {'reference':>10} {'sharded':>8} "
        f"{'speedup':>8} {'#DIP':>6}"
    )
    last = None
    for effort in range(1, max_effort + 1):
        reference = multikey_attack(locked, original, effort=effort)
        sharded = sharded_multikey_attack(locked, original, effort=effort)
        last = sharded
        print(
            f"{effort:>2} {1 << effort:>6} {reference.wall_seconds:>9.2f}s "
            f"{sharded.wall_seconds:>7.2f}s "
            f"{reference.wall_seconds / max(sharded.wall_seconds, 1e-9):>7.2f}x "
            f"{sum(sharded.dips_per_task):>6}"
        )

    print(
        f"\nper-shard timings at N={last.effort} "
        f"(sharded; one-time encode {last.encode_seconds * 1e3:.1f} ms):"
    )
    for task in last.subtasks:
        stats = task.solver_stats
        print(
            f"  shard {task.index:>2} {task.assignment} "
            f"#DIP={task.num_dips:>3} conflicts={stats.get('conflicts', 0):>4} "
            f"t={task.elapsed_seconds * 1e3:>7.1f} ms"
        )

    parallel = sharded_multikey_attack(
        locked, original, effort=last.effort, parallel=True
    )
    print(
        f"\nsharded fan-out over {cores} worker(s): "
        f"wall {parallel.wall_seconds:.2f}s vs serial "
        f"{last.wall_seconds:.2f}s "
        f"(slowest shard {parallel.max_subtask_seconds:.2f}s)"
    )


if __name__ == "__main__":
    main()
