"""Parallel scaling: the multi-core story of the paper.

The 2^N sub-tasks are independent, so wall-clock time approaches the
slowest sub-task as cores are added ("a capability readily exploitable
by resource-rich adversaries in the supply chain").  This example
measures sequential vs process-pool execution at several efforts.

Run:  python examples/multikey_parallel.py [circuit] [scale]
"""

import multiprocessing
import sys

from repro.bench_circuits import iscas85_like
from repro.core import multikey_attack
from repro.locking import LutModuleSpec, lut_lock


def main() -> None:
    circuit = sys.argv[1] if len(sys.argv) > 1 else "c880"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.3

    original = iscas85_like(circuit, scale=scale)
    locked = lut_lock(original, LutModuleSpec.paper_scale(), seed=1)
    cores = multiprocessing.cpu_count()
    print(
        f"{circuit}-class, {locked.key_size}-bit LUT key, "
        f"{cores} cores available"
    )
    print(
        f"{'N':>2} {'tasks':>5} {'sum(tasks)':>10} {'max task':>9} "
        f"{'wall seq':>9} {'wall par':>9} {'speedup':>8}"
    )

    for effort in (1, 2, 3, 4):
        sequential = multikey_attack(
            locked, original, effort=effort, parallel=False
        )
        parallel = multikey_attack(
            locked, original, effort=effort, parallel=True
        )
        total = sum(t.total_seconds for t in sequential.subtasks)
        speedup = sequential.wall_seconds / max(parallel.wall_seconds, 1e-9)
        print(
            f"{effort:>2} {1 << effort:>5} {total:>9.2f}s "
            f"{parallel.max_subtask_seconds:>8.2f}s "
            f"{sequential.wall_seconds:>8.2f}s "
            f"{parallel.wall_seconds:>8.2f}s {speedup:>7.2f}x"
        )


if __name__ == "__main__":
    main()
