"""Dead-logic elimination."""

from __future__ import annotations

from collections import deque

from repro.circuit.netlist import Netlist


def remove_dead_gates(netlist: Netlist) -> Netlist:
    """Drop every gate outside the transitive fanin of the outputs.

    Primary inputs always stay in the interface, even if nothing reads
    them — the locked circuit's port list must not change shape.
    """
    live: set[str] = set()
    queue = deque(netlist.outputs)
    while queue:
        net = queue.popleft()
        if net in live:
            continue
        live.add(net)
        gate = netlist.gates.get(net)
        if gate is not None:
            queue.extend(gate.inputs)

    result = Netlist(name=netlist.name)
    result.inputs = list(netlist.inputs)
    result.gates = {
        net: gate for net, gate in netlist.gates.items() if net in live
    }
    result.set_outputs(list(netlist.outputs))
    return result
