"""Structural hashing (common-subexpression elimination).

Two gates computing the same function of the same fanins collapse into
one.  Commutative gate fanins are sorted inside the hash key, so
``AND(a, b)`` and ``AND(b, a)`` merge; MUX keys keep their input order.
A single topological sweep reaches the fixpoint because merged fanins
are remapped before downstream gates are keyed.
"""

from __future__ import annotations

from repro.circuit.gates import GateType
from repro.circuit.netlist import Gate, Netlist

_COMMUTATIVE = {
    GateType.AND,
    GateType.OR,
    GateType.NAND,
    GateType.NOR,
    GateType.XOR,
    GateType.XNOR,
}


def structural_hash(netlist: Netlist) -> Netlist:
    """Merge structurally identical gates; preserves the interface."""
    result = Netlist(name=netlist.name)
    result.inputs = list(netlist.inputs)
    canonical: dict[str, str] = {net: net for net in netlist.inputs}
    table: dict[tuple, str] = {}

    for gate in netlist.topological_order():
        fanins = tuple(canonical[src] for src in gate.inputs)
        if gate.gtype in _COMMUTATIVE:
            key = (gate.gtype, tuple(sorted(fanins)))
        else:
            key = (gate.gtype, fanins)
        existing = table.get(key)
        if existing is not None:
            canonical[gate.output] = existing
            continue
        table[key] = gate.output
        canonical[gate.output] = gate.output
        result.gates[gate.output] = Gate(gate.output, gate.gtype, fanins)

    # Primary outputs whose driver merged away need a BUF to keep their name.
    for out in netlist.outputs:
        rep = canonical.get(out, out)
        if rep != out and out not in result.gates and out not in result.inputs:
            result.gates[out] = Gate(out, GateType.BUF, (rep,))
    result.set_outputs(list(netlist.outputs))
    return result
