"""The synthesis pipeline used on conditional netlists.

``synthesize`` strings together the individual passes the way the
paper uses Design Compiler in Algorithm 1 line 4: pin inputs, fold
constants, rewrite, share structure, sweep dead logic.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from collections.abc import Mapping

from repro.circuit.netlist import Netlist
from repro.synth.cleanup import remove_dead_gates
from repro.synth.simplify import propagate_constants, rewrite
from repro.synth.strash import structural_hash


@dataclass
class SynthesisResult:
    """Output of :func:`synthesize` plus before/after statistics."""

    netlist: Netlist
    gates_before: int
    gates_after: int
    elapsed_seconds: float

    @property
    def reduction(self) -> float:
        """Fraction of gates removed (0.0 if the netlist was empty)."""
        if self.gates_before == 0:
            return 0.0
        return 1.0 - self.gates_after / self.gates_before


def synthesize(
    netlist: Netlist,
    pin: Mapping[str, bool] | None = None,
    effort: int = 2,
) -> SynthesisResult:
    """Optimize ``netlist``, optionally under input pins.

    ``effort`` counts rewrite+strash rounds after the initial constant
    propagation (2 reaches a fixpoint on every circuit in this repo).
    The interface is preserved: pinned inputs stay in the port list.
    """
    start = time.perf_counter()
    before = netlist.num_gates
    current = propagate_constants(netlist, pin or {})
    current = remove_dead_gates(current)
    for _ in range(max(0, effort)):
        previous = current.num_gates
        current = rewrite(current)
        current = structural_hash(current)
        current = remove_dead_gates(current)
        if current.num_gates == previous:
            break
    return SynthesisResult(
        netlist=current,
        gates_before=before,
        gates_after=current.num_gates,
        elapsed_seconds=time.perf_counter() - start,
    )
