"""Standard-cell library model and area/delay estimation.

The paper maps its netlists onto the Nangate 45 nm Open Cell Library.
That library is not redistributable here, so :data:`NANGATE45ish`
carries cell areas (um^2) and unit delays (ns) in the same ballpark as
the public datasheet.  Estimation first decomposes wide gates to each
cell's maximum arity, then sums areas and propagates arrival times.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.circuit.analysis import levelize
from repro.circuit.gates import GateType
from repro.circuit.netlist import Netlist
from repro.synth.mapping import decompose_to_max_arity


@dataclass(frozen=True)
class Cell:
    """One library cell: the gate function it implements, at what cost."""

    name: str
    gtype: GateType
    arity: int
    area: float  # um^2
    delay: float  # ns, input-to-output


@dataclass
class CellLibrary:
    """A set of cells indexed by (gate type, arity)."""

    name: str
    cells: list[Cell] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._by_key: dict[tuple[GateType, int], Cell] = {}
        for cell in self.cells:
            self._by_key[(cell.gtype, cell.arity)] = cell

    def lookup(self, gtype: GateType, arity: int) -> Cell | None:
        return self._by_key.get((gtype, arity))

    def max_arity(self, gtype: GateType) -> int:
        arities = [c.arity for c in self.cells if c.gtype == gtype]
        return max(arities) if arities else 0


def _nangate_cells() -> list[Cell]:
    cells = [
        Cell("INV_X1", GateType.NOT, 1, 0.532, 0.010),
        Cell("BUF_X1", GateType.BUF, 1, 0.798, 0.015),
        Cell("MUX2_X1", GateType.MUX, 3, 1.862, 0.040),
        Cell("XOR2_X1", GateType.XOR, 2, 1.596, 0.045),
        Cell("XNOR2_X1", GateType.XNOR, 2, 1.596, 0.045),
        Cell("CONST0", GateType.CONST0, 0, 0.0, 0.0),
        Cell("CONST1", GateType.CONST1, 0, 0.0, 0.0),
    ]
    for arity, suffix_area in ((2, 0.0), (3, 0.266), (4, 0.532)):
        cells.append(
            Cell(f"NAND{arity}_X1", GateType.NAND, arity, 0.798 + suffix_area, 0.020)
        )
        cells.append(
            Cell(f"NOR{arity}_X1", GateType.NOR, arity, 0.798 + suffix_area, 0.022)
        )
        cells.append(
            Cell(f"AND{arity}_X1", GateType.AND, arity, 1.064 + suffix_area, 0.030)
        )
        cells.append(
            Cell(f"OR{arity}_X1", GateType.OR, arity, 1.064 + suffix_area, 0.032)
        )
    return cells


NANGATE45ish = CellLibrary(name="nangate45ish", cells=_nangate_cells())


def _mapped(netlist: Netlist, library: CellLibrary) -> Netlist:
    """Decompose to the smallest max arity the library supports everywhere."""
    bound = min(
        (
            library.max_arity(t)
            for t in (GateType.AND, GateType.OR, GateType.XOR)
            if library.max_arity(t) >= 2
        ),
        default=2,
    )
    return decompose_to_max_arity(netlist, max_arity=bound)


def estimate_area(netlist: Netlist, library: CellLibrary = NANGATE45ish) -> float:
    """Total cell area (um^2) after arity-bounded decomposition."""
    mapped = _mapped(netlist, library)
    total = 0.0
    for gate in mapped.gates.values():
        cell = library.lookup(gate.gtype, len(gate.inputs))
        if cell is None:
            cell = library.lookup(gate.gtype, library.max_arity(gate.gtype))
        if cell is None:
            raise ValueError(
                f"library {library.name} has no cell for {gate.gtype}"
            )
        total += cell.area
    return total


def estimate_delay(netlist: Netlist, library: CellLibrary = NANGATE45ish) -> float:
    """Critical-path delay (ns): longest arrival time at any output."""
    mapped = _mapped(netlist, library)
    arrival: dict[str, float] = {net: 0.0 for net in mapped.inputs}
    for gate in mapped.topological_order():
        cell = library.lookup(gate.gtype, len(gate.inputs))
        if cell is None:
            cell = library.lookup(gate.gtype, library.max_arity(gate.gtype))
        delay = cell.delay if cell is not None else 0.03
        arrival[gate.output] = delay + max(
            (arrival[src] for src in gate.inputs), default=0.0
        )
    return max((arrival[out] for out in mapped.outputs), default=0.0)
