"""Logic-synthesis passes.

The paper synthesizes each conditional netlist with Synopsys Design
Compiler to "remove any redundant logic" (Algorithm 1, line 4).  This
package provides the equivalent reduction pipeline:

* constant propagation with alias/inversion tracking,
* local Boolean rewriting (identities, duplicate/complement fanins),
* structural hashing (common-subexpression elimination),
* dead-gate elimination,
* decomposition to bounded-arity gates and a Nangate-45nm-flavoured
  cell library for area/delay estimation.
"""

from repro.synth.cleanup import remove_dead_gates
from repro.synth.library import CellLibrary, NANGATE45ish, estimate_area, estimate_delay
from repro.synth.mapping import decompose_to_max_arity
from repro.synth.optimize import SynthesisResult, synthesize
from repro.synth.simplify import propagate_constants, rewrite
from repro.synth.strash import structural_hash

__all__ = [
    "propagate_constants",
    "rewrite",
    "structural_hash",
    "remove_dead_gates",
    "decompose_to_max_arity",
    "synthesize",
    "SynthesisResult",
    "CellLibrary",
    "NANGATE45ish",
    "estimate_area",
    "estimate_delay",
]
