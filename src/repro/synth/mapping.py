"""Arity-bounded decomposition (pre-mapping).

Real cell libraries top out at 3- or 4-input cells; this pass rewrites
wide AND/OR/XOR trees into balanced trees of bounded-arity gates so
area/delay estimation and LUT insertion have realistic structure to
work with.
"""

from __future__ import annotations

from repro.circuit.gates import GateType
from repro.circuit.netlist import Gate, Netlist, fresh_net_namer

_REDUCIBLE = {
    GateType.AND: (GateType.AND, False),
    GateType.OR: (GateType.OR, False),
    GateType.XOR: (GateType.XOR, False),
    GateType.NAND: (GateType.AND, True),
    GateType.NOR: (GateType.OR, True),
    GateType.XNOR: (GateType.XOR, True),
}


def decompose_to_max_arity(netlist: Netlist, max_arity: int = 2) -> Netlist:
    """Rewrite wide gates into trees of gates with at most ``max_arity`` inputs.

    The inverting types keep their inversion at the tree root (e.g. a
    4-input NAND becomes AND(AND(a,b), AND(c,d)) under a NAND root).
    MUX/NOT/BUF/CONST gates pass through unchanged.
    """
    if max_arity < 2:
        raise ValueError("max_arity must be at least 2")
    result = Netlist(name=netlist.name)
    result.inputs = list(netlist.inputs)
    namer = fresh_net_namer(netlist, "map_")

    for gate in netlist.topological_order():
        if gate.gtype not in _REDUCIBLE or len(gate.inputs) <= max_arity:
            result.gates[gate.output] = gate
            continue
        base, inverted = _REDUCIBLE[gate.gtype]
        layer = list(gate.inputs)
        while len(layer) > max_arity:
            next_layer: list[str] = []
            for start in range(0, len(layer), max_arity):
                chunk = layer[start : start + max_arity]
                if len(chunk) == 1:
                    next_layer.append(chunk[0])
                    continue
                aux = namer()
                result.gates[aux] = Gate(aux, base, tuple(chunk))
                next_layer.append(aux)
            layer = next_layer
        root_type = gate.gtype if inverted else base
        if inverted:
            root_type = {
                GateType.AND: GateType.NAND,
                GateType.OR: GateType.NOR,
                GateType.XOR: GateType.XNOR,
            }[base]
        result.gates[gate.output] = Gate(gate.output, root_type, tuple(layer))
    result.set_outputs(list(netlist.outputs))
    return result
