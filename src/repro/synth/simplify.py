"""Constant propagation and local Boolean rewriting.

One pass serves both jobs.  Every net is canonicalized to a *literal*
``(root_net, inverted)`` or to a constant; gates are rebuilt in
topological order with:

* constant folding (pinned inputs, CONST gates, const fanins),
* inversion absorption (``NOT`` gates never survive except where a
  primary output or a gate fanin genuinely needs the complement),
* duplicate-fanin deduplication and complementary-fanin detection
  (``AND(a, !a) = 0``, ``XOR(a, a) = 0``, ...),
* MUX strength reduction (constant select / constant data inputs).

The primary interface is preserved: pinned inputs stay in
``netlist.inputs`` so locked-circuit/oracle correspondences survive;
only the *logic* is folded.  Primary-output names are preserved by
materializing a BUF/NOT/CONST driver when an output collapses to a
literal or constant.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.circuit.gates import GateType
from repro.circuit.netlist import Gate, Netlist, fresh_net_namer

# A canonical value is either ('const', bool) or ('lit', root, inverted).
_CONST = "const"
_LIT = "lit"


def _const(value: bool) -> tuple:
    return (_CONST, bool(value))


def _lit(root: str, inverted: bool) -> tuple:
    return (_LIT, root, inverted)


class _Builder:
    """Accumulates the simplified netlist and materializes literals."""

    def __init__(self, original: Netlist):
        self.out = Netlist(name=original.name)
        self.out.inputs = list(original.inputs)
        self.namer = fresh_net_namer(original, "syn_")
        self._not_cache: dict[str, str] = {}
        self._const_cache: dict[bool, str] = {}

    def materialize(self, canon: tuple) -> str:
        """Return a net name carrying the canonical value."""
        if canon[0] == _CONST:
            value = canon[1]
            cached = self._const_cache.get(value)
            if cached is None:
                cached = self.namer()
                gtype = GateType.CONST1 if value else GateType.CONST0
                self.out.add_gate(cached, gtype, [])
                self._const_cache[value] = cached
            return cached
        _, root, inverted = canon
        if not inverted:
            return root
        cached = self._not_cache.get(root)
        if cached is None:
            cached = self.namer()
            self.out.add_gate(cached, GateType.NOT, [root])
            self._not_cache[root] = cached
        return cached

    def emit(self, output: str, gtype: GateType, fanin_canons: list[tuple]) -> tuple:
        """Emit a real gate under its original output name."""
        fanins = [self.materialize(c) for c in fanin_canons]
        self.out.add_gate(output, gtype, fanins)
        return _lit(output, False)

    def emit_output_driver(self, name: str, canon: tuple) -> None:
        """Give primary output ``name`` a driver matching ``canon``."""
        if name in self.out.gates or name in self.out.inputs:
            return  # already driven under its own name
        if canon[0] == _CONST:
            gtype = GateType.CONST1 if canon[1] else GateType.CONST0
            self.out.add_gate(name, gtype, [])
            return
        _, root, inverted = canon
        if inverted:
            self.out.add_gate(name, GateType.NOT, [root])
        else:
            self.out.add_gate(name, GateType.BUF, [root])


def _simplify_andor(
    gtype: GateType, canons: list[tuple]
) -> tuple | tuple[GateType, list[tuple]]:
    """Simplify AND/OR/NAND/NOR given canonical fanins.

    Returns either a canonical value (fully simplified) or a
    ``(gate_type, fanin_canons)`` pair to emit.
    """
    is_and = gtype in (GateType.AND, GateType.NAND)
    invert_out = gtype in (GateType.NAND, GateType.NOR)
    absorbing = not is_and  # OR absorbs on 1, AND on 0
    kept: list[tuple] = []
    seen: dict[str, bool] = {}
    for canon in canons:
        if canon[0] == _CONST:
            if canon[1] == absorbing:
                return _const(absorbing ^ invert_out)
            continue  # identity element: drop
        _, root, inverted = canon
        if root in seen:
            if seen[root] != inverted:
                return _const(absorbing ^ invert_out)  # a & !a / a | !a
            continue  # duplicate
        seen[root] = inverted
        kept.append(canon)
    if not kept:
        return _const((not absorbing) ^ invert_out)
    if len(kept) == 1:
        _, root, inverted = kept[0]
        return _lit(root, inverted ^ invert_out)
    base = GateType.AND if is_and else GateType.OR
    out_type = (
        (GateType.NAND if is_and else GateType.NOR) if invert_out else base
    )
    return (out_type, kept)


def _simplify_xor(
    gtype: GateType, canons: list[tuple]
) -> tuple | tuple[GateType, list[tuple]]:
    """Simplify XOR/XNOR: fold constants and inversions into parity."""
    parity = gtype is GateType.XNOR
    counts: dict[str, int] = {}
    for canon in canons:
        if canon[0] == _CONST:
            parity ^= canon[1]
            continue
        _, root, inverted = canon
        parity ^= inverted
        counts[root] = counts.get(root, 0) + 1
    roots = [root for root, count in counts.items() if count % 2 == 1]
    if not roots:
        return _const(parity)
    if len(roots) == 1:
        return _lit(roots[0], parity)
    out_type = GateType.XNOR if parity else GateType.XOR
    return (out_type, [_lit(root, False) for root in roots])


def _simplify_mux(
    sel: tuple, d1: tuple, d0: tuple
) -> tuple | tuple[GateType, list[tuple]]:
    """Simplify MUX(sel, d1, d0)."""
    if sel[0] == _CONST:
        return d1 if sel[1] else d0
    if d1 == d0:
        return d1
    _, sel_root, sel_inv = sel
    if sel_inv:  # normalize to non-inverted select by swapping branches
        d1, d0 = d0, d1
        sel = _lit(sel_root, False)
    d1_const = d1[0] == _CONST
    d0_const = d0[0] == _CONST
    if d1_const and d0_const:
        # values differ (d1 == d0 handled above)
        return _lit(sel_root, not d1[1])  # (1,0) -> sel ; (0,1) -> !sel
    if d1_const:
        if d1[1]:  # MUX(s, 1, d0) = s | d0
            return (GateType.OR, [sel, d0])
        # MUX(s, 0, d0) = !s & d0
        return (GateType.AND, [_lit(sel_root, True), d0])
    if d0_const:
        if d0[1]:  # MUX(s, d1, 1) = !s | d1
            return (GateType.OR, [_lit(sel_root, True), d1])
        # MUX(s, d1, 0) = s & d1
        return (GateType.AND, [sel, d1])
    # Select on complements of the same root: MUX(s, !x, x) = s ^ x.
    if d1[0] == _LIT and d0[0] == _LIT and d1[1] == d0[1]:
        if d1[2] != d0[2]:
            inverted = d0[2]
            return (
                GateType.XNOR if inverted else GateType.XOR,
                [sel, _lit(d1[1], False)],
            )
    return (GateType.MUX, [sel, d1, d0])


def simplify(netlist: Netlist, pin: Mapping[str, bool] | None = None) -> Netlist:
    """Rebuild ``netlist`` with constants/pins folded and identities applied.

    ``pin`` assigns constants to primary inputs; those inputs remain in
    the interface but their fanout logic collapses.  The result is
    functionally equivalent for all input patterns consistent with the
    pins.
    """
    pin = dict(pin or {})
    for net in pin:
        if net not in netlist.inputs:
            raise ValueError(f"pinned net {net!r} is not a primary input")
    builder = _Builder(netlist)
    canon: dict[str, tuple] = {}
    for net in netlist.inputs:
        canon[net] = _const(pin[net]) if net in pin else _lit(net, False)

    for gate in netlist.topological_order():
        fanins = [canon[src] for src in gate.inputs]
        gtype = gate.gtype
        if gtype is GateType.CONST0:
            result: tuple | tuple[GateType, list[tuple]] = _const(False)
        elif gtype is GateType.CONST1:
            result = _const(True)
        elif gtype is GateType.BUF:
            result = fanins[0]
        elif gtype is GateType.NOT:
            src = fanins[0]
            if src[0] == _CONST:
                result = _const(not src[1])
            else:
                result = _lit(src[1], not src[2])
        elif gtype in (GateType.AND, GateType.OR, GateType.NAND, GateType.NOR):
            result = _simplify_andor(gtype, fanins)
        elif gtype in (GateType.XOR, GateType.XNOR):
            result = _simplify_xor(gtype, fanins)
        elif gtype is GateType.MUX:
            result = _simplify_mux(fanins[0], fanins[1], fanins[2])
        else:  # pragma: no cover - enum is exhaustive
            raise ValueError(f"unsupported gate type {gtype!r}")

        if isinstance(result[0], GateType):
            out_type, fanin_canons = result
            canon[gate.output] = builder.emit(gate.output, out_type, fanin_canons)
        else:
            canon[gate.output] = result

    simplified = builder.out
    for out in netlist.outputs:
        builder.emit_output_driver(out, canon[out])
    simplified.set_outputs(list(netlist.outputs))
    return simplified


def propagate_constants(netlist: Netlist, pin: Mapping[str, bool]) -> Netlist:
    """Pin primary inputs to constants and fold the resulting logic.

    This implements the reduction step of Algorithm 1 line 4: the
    conditional netlist keeps its full interface, but every gate whose
    value is forced by the pins disappears.
    """
    return simplify(netlist, pin)


def rewrite(netlist: Netlist) -> Netlist:
    """Apply local Boolean identities without pinning any input."""
    return simplify(netlist, None)
