"""Load generation against a live ``repro serve --http`` gateway.

The proof layer for the horizontal service story: replay a
configurable matrix/attack mix from N concurrent clients, honour the
gateway's explicit backpressure (503 + ``Retry-After`` -> back off and
retry), and account for every job — accepted jobs must produce exactly
one terminal response (lost and duplicated results are first-class
counters, asserted to be zero by the benchmark and CI harnesses).

Three layers:

* :class:`HttpJobClient` — a minimal stdlib HTTP client for one
  streamed job submission (chunked JSON lines decoded by
  ``http.client``).
* :func:`run_load` — N client threads round-robin over a request
  list, all released at once by a barrier; returns a
  :class:`LoadReport` with per-request records and the derived
  p50/p95 latency, throughput and cache-hit numbers that feed
  ``BENCH_service.json``.
* ``python -m repro.service.loadgen`` — the CI harness: spawns a
  ``repro serve --http`` daemon (readiness-signalled by its
  "listening on" line, never a sleep), runs the mix, asserts the
  zero-loss invariants, and writes the summary JSON + JSONL event log
  artifacts.

Usage::

    python -m repro.service.loadgen --clients 16 --schemes sarlock,xor \\
        --attacks sat,appsat --key-size 3 --scale 0.12 \\
        --summary service_load_summary.json \\
        --event-log service_load_events.jsonl
"""

from __future__ import annotations

import argparse
import http.client
import json
import threading
import time
from dataclasses import dataclass, field

from repro.rng import shuffled

#: Safety valve: give up on a request after this many 503 retries.
DEFAULT_MAX_RETRIES = 200

#: Cap a single backoff sleep so a harness never stalls on a huge hint.
MAX_BACKOFF_SECONDS = 0.5


def percentile(values: list[float], q: float) -> float:
    """The ``q``-th percentile (0..100) by linear interpolation."""
    if not values:
        return 0.0
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (len(ordered) - 1) * (q / 100.0)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    fraction = rank - low
    return ordered[low] * (1 - fraction) + ordered[high] * fraction


def matrix_mix(
    schemes: list[str],
    attacks: list[str],
    key_size: int = 3,
    scale: float = 0.12,
    circuit: str = "c432",
    effort: int = 1,
    seeds: tuple[int, ...] = (0,),
) -> list[dict]:
    """One single-cell matrix request per scheme x attack x seed.

    Small independent jobs — the bursty shape a gateway has to absorb —
    that all deduplicate through the shared cache on replay.
    """
    from repro.service.envelopes import SCHEMA_VERSION

    return [
        {
            "schema_version": SCHEMA_VERSION,
            "kind": "matrix",
            "schemes": [[scheme, {"key_size": key_size}]],
            "attacks": [[attack, {}]],
            "engines": ["sharded"],
            "circuits": [circuit],
            "scale": scale,
            "efforts": [effort],
            "seeds": [seed],
        }
        for scheme in schemes
        for attack in attacks
        for seed in seeds
    ]


@dataclass
class RequestRecord:
    """Accounting for one submitted request, as the client saw it."""

    job_id: str
    status: str = ""  # terminal response status ("" = never answered)
    accepted: bool = False
    attempts: int = 0  # submissions incl. 503-rejected ones
    latency_seconds: float = 0.0  # accepted POST -> terminal response
    queued_seconds: float = 0.0  # service-side admission wait
    responses: int = 0  # terminal responses seen (must be 1)
    cells_done: int = 0
    cells_cached: int = 0
    error: str = ""

    @property
    def rejected_attempts(self) -> int:
        return max(0, self.attempts - 1)


@dataclass
class LoadReport:
    """Everything a load phase produced, plus the derived metrics."""

    records: list[RequestRecord]
    clients: int
    wall_seconds: float
    transport: str = "http"

    # ------------------------------------------------------------------
    # Correctness accounting
    # ------------------------------------------------------------------

    @property
    def accepted(self) -> list[RequestRecord]:
        return [r for r in self.records if r.accepted]

    @property
    def lost(self) -> list[RequestRecord]:
        """Accepted jobs that never produced a terminal response."""
        return [r for r in self.accepted if r.responses == 0]

    @property
    def duplicated(self) -> list[RequestRecord]:
        """Jobs that produced more than one terminal response."""
        return [r for r in self.records if r.responses > 1]

    @property
    def failed(self) -> list[RequestRecord]:
        return [
            r
            for r in self.accepted
            if r.status not in ("ok", "partial", "cancelled")
        ]

    # ------------------------------------------------------------------
    # Derived metrics
    # ------------------------------------------------------------------

    @property
    def latencies(self) -> list[float]:
        return [r.latency_seconds for r in self.accepted if r.responses]

    @property
    def cache_hit_rate(self) -> float:
        done = sum(r.cells_done for r in self.accepted)
        cached = sum(r.cells_cached for r in self.accepted)
        return cached / done if done else 0.0

    @property
    def throughput_jobs_per_second(self) -> float:
        completed = sum(1 for r in self.accepted if r.responses)
        return completed / self.wall_seconds if self.wall_seconds else 0.0

    def summary(self) -> dict:
        """The JSON shape appended to ``BENCH_service.json``."""
        latencies = self.latencies
        return {
            "transport": self.transport,
            "clients": self.clients,
            "requests": len(self.records),
            "accepted": len(self.accepted),
            "completed": sum(1 for r in self.accepted if r.responses),
            "lost": len(self.lost),
            "duplicated": len(self.duplicated),
            "failed": len(self.failed),
            "rejected_attempts": sum(
                r.rejected_attempts for r in self.records
            ),
            "cells_done": sum(r.cells_done for r in self.accepted),
            "cache_hit_rate": round(self.cache_hit_rate, 4),
            "wall_seconds": round(self.wall_seconds, 4),
            "throughput_jobs_per_s": round(
                self.throughput_jobs_per_second, 3
            ),
            "latency_p50_s": round(percentile(latencies, 50), 4),
            "latency_p95_s": round(percentile(latencies, 95), 4),
            "latency_max_s": round(max(latencies), 4) if latencies else 0.0,
            "queued_p95_s": round(
                percentile(
                    [r.queued_seconds for r in self.accepted if r.responses],
                    95,
                ),
                4,
            ),
        }


@dataclass
class HttpJobClient:
    """One streamed job submission over stdlib ``http.client``.

    ``http.client`` decodes the gateway's chunked transfer encoding
    transparently, so iterating the response yields exactly the JSON
    lines the daemon wrote.
    """

    host: str
    port: int
    timeout: float = 300.0
    max_retries: int = DEFAULT_MAX_RETRIES
    #: Optional sink for every streamed line (the JSONL event log).
    log_line: object = None

    def submit(self, envelope: dict, job_id: str) -> RequestRecord:
        """POST one envelope, honouring 503 backpressure, and stream it."""
        record = RequestRecord(job_id=job_id)
        payload = dict(envelope)
        payload["id"] = job_id
        body = json.dumps(payload)
        while record.attempts <= self.max_retries:
            record.attempts += 1
            conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
            try:
                conn.request(
                    "POST",
                    "/v1/jobs",
                    body=body,
                    headers={"Content-Type": "application/json"},
                )
                response = conn.getresponse()
                if response.status == 503:
                    retry_after = self._retry_after(response)
                    response.read()
                    conn.close()
                    time.sleep(retry_after)
                    continue
                if response.status != 200:
                    record.error = (
                        f"HTTP {response.status}: "
                        f"{response.read(500).decode('utf-8', 'replace')}"
                    )
                    return record
                record.accepted = True
                start = time.perf_counter()
                self._consume_stream(response, record)
                record.latency_seconds = time.perf_counter() - start
                return record
            except OSError as error:
                record.error = f"{type(error).__name__}: {error}"
                return record
            finally:
                conn.close()
        record.error = f"gave up after {record.attempts} rejected attempts"
        return record

    def _retry_after(self, response) -> float:
        try:
            hint = float(response.getheader("Retry-After", "1"))
        except ValueError:
            hint = 1.0
        return min(max(hint, 0.05), MAX_BACKOFF_SECONDS)

    def _consume_stream(self, response, record: RequestRecord) -> None:
        for raw in response:
            line = raw.decode("utf-8").strip()
            if not line:
                continue
            if self.log_line is not None:
                self.log_line(line)
            obj = json.loads(line)
            kind = obj.get("kind")
            if kind == "event":
                data = obj.get("data", {})
                if obj.get("type") == "job_started":
                    record.queued_seconds = float(
                        data.get("queued_seconds", 0.0)
                    )
                elif obj.get("type") == "cell_done":
                    record.cells_done += 1
                    if data.get("cached"):
                        record.cells_cached += 1
            elif kind == "response":
                record.responses += 1
                record.status = str(obj.get("status", ""))
                if obj.get("error"):
                    record.error = str(obj["error"])


@dataclass
class _EventLog:
    """Thread-safe JSONL sink shared by every client."""

    path: object = None
    lines: list[str] = field(default_factory=list)
    _lock: threading.Lock = field(default_factory=threading.Lock)

    def __call__(self, line: str) -> None:
        with self._lock:
            self.lines.append(line)

    def flush(self) -> int:
        if self.path is None:
            return len(self.lines)
        with open(self.path, "w", encoding="utf-8") as handle:
            for line in self.lines:
                handle.write(line + "\n")
        return len(self.lines)


def run_load(
    host: str,
    port: int,
    requests: list[dict],
    clients: int,
    repeat: int = 1,
    timeout: float = 300.0,
    max_retries: int = DEFAULT_MAX_RETRIES,
    job_id_prefix: str = "load",
    log_line=None,
    shuffle_seed: int | None = None,
) -> LoadReport:
    """Replay ``requests`` (x ``repeat``) from ``clients`` threads.

    The full work list — ``repeat`` copies of the request mix — is
    dealt round-robin to the client threads; a barrier releases them
    together so the gateway sees one synchronized burst per run.  Job
    ids are unique per submission (``<prefix>-c<client>-<n>``), which
    is what makes lost/duplicated accounting exact.

    ``shuffle_seed`` interleaves the work list deterministically
    (:func:`repro.rng.shuffled`), so a storm does not hand each client
    a scheme-major run of near-identical cells — same list, same seed,
    same burst shape on every run.
    """
    work = [
        dict(request)
        for _ in range(max(1, repeat))
        for request in requests
    ]
    if shuffle_seed is not None:
        work = shuffled(work, "loadgen", job_id_prefix, shuffle_seed)
    per_client: list[list[tuple[int, dict]]] = [[] for _ in range(clients)]
    for index, request in enumerate(work):
        per_client[index % clients].append((index, request))

    barrier = threading.Barrier(clients + 1)
    results: list[list[RequestRecord]] = [[] for _ in range(clients)]

    def client_main(slot: int) -> None:
        client = HttpJobClient(
            host,
            port,
            timeout=timeout,
            max_retries=max_retries,
            log_line=log_line,
        )
        barrier.wait()
        for index, request in per_client[slot]:
            job_id = f"{job_id_prefix}-c{slot}-{index}"
            results[slot].append(client.submit(request, job_id))

    threads = [
        threading.Thread(
            target=client_main, args=(slot,), name=f"loadgen-client-{slot}"
        )
        for slot in range(clients)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    start = time.perf_counter()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - start

    return LoadReport(
        records=[record for bucket in results for record in bucket],
        clients=clients,
        wall_seconds=wall,
    )


def assert_no_losses(report: LoadReport) -> None:
    """The harness's correctness gate: every accepted job accounted for."""
    assert not report.lost, (
        f"{len(report.lost)} accepted job(s) never answered: "
        f"{[r.job_id for r in report.lost][:5]}"
    )
    assert not report.duplicated, (
        f"{len(report.duplicated)} job(s) answered more than once: "
        f"{[r.job_id for r in report.duplicated][:5]}"
    )
    assert not report.failed, (
        f"{len(report.failed)} job(s) failed: "
        f"{[(r.job_id, r.status, r.error) for r in report.failed][:5]}"
    )
    bad = [r for r in report.records if not r.accepted]
    assert not bad, (
        f"{len(bad)} request(s) never accepted: "
        f"{[(r.job_id, r.error) for r in bad][:5]}"
    )


# ----------------------------------------------------------------------
# CI harness: spawn a daemon, storm it, write the artifacts.
# ----------------------------------------------------------------------


def spawn_http_daemon(
    jobs: int = 4,
    cache_dir: str | None = None,
    cache_backend: str = "sharded",
    max_pending: int | None = None,
):
    """Start ``repro serve --http 0`` as a subprocess; returns
    ``(process, host, port)`` once the daemon prints its
    readiness-signalled "listening on" line (no sleeps involved)."""
    import os
    import re
    import subprocess
    import sys
    from pathlib import Path

    src_dir = Path(__file__).resolve().parents[2]
    env = dict(os.environ)
    env["PYTHONPATH"] = str(src_dir) + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    argv = [
        sys.executable, "-m", "repro", "serve", "--http", "0",
        "--jobs", str(jobs), "--cache-backend", cache_backend,
    ]
    if cache_dir:
        argv += ["--cache-dir", cache_dir]
    if max_pending is not None:
        argv += ["--max-pending", str(max_pending)]
    process = subprocess.Popen(
        argv, stderr=subprocess.PIPE, text=True, env=env
    )
    pattern = re.compile(r"listening on ([\d.]+):(\d+) \(http\)")
    while True:
        line = process.stderr.readline()
        if not line:
            raise RuntimeError(
                f"daemon exited before readiness (rc={process.poll()})"
            )
        match = pattern.search(line)
        if match:
            return process, match.group(1), int(match.group(2))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.service.loadgen",
        description="storm a repro serve --http daemon with a job mix",
    )
    parser.add_argument("--clients", type=int, default=16)
    parser.add_argument("--repeat", type=int, default=2,
                        help="replays of the mix per run (default: 2)")
    parser.add_argument("--schemes", default="sarlock,xor")
    parser.add_argument("--attacks", default="sat,appsat")
    parser.add_argument("--key-size", type=int, default=3)
    parser.add_argument("--scale", type=float, default=0.12)
    parser.add_argument("--circuit", default="c432")
    parser.add_argument("--jobs", type=int, default=4,
                        help="daemon worker budget (default: 4)")
    parser.add_argument("--max-pending", type=int, default=None,
                        help="daemon admission bound (default: 4x clients)")
    parser.add_argument("--host", default=None,
                        help="storm an already-running gateway host")
    parser.add_argument("--port", type=int, default=None,
                        help="storm an already-running gateway port")
    parser.add_argument("--summary", default="",
                        help="write the summary JSON here")
    parser.add_argument("--event-log", default="",
                        help="write every streamed line here (JSONL)")
    parser.add_argument("--shuffle-seed", type=int, default=0,
                        help="deterministic storm interleave (default: 0)")
    args = parser.parse_args(argv)

    mix = matrix_mix(
        [s for s in args.schemes.split(",") if s],
        [a for a in args.attacks.split(",") if a],
        key_size=args.key_size,
        scale=args.scale,
        circuit=args.circuit,
    )
    log = _EventLog(path=args.event_log or None)

    process = None
    if args.host is not None and args.port is not None:
        host, port = args.host, args.port
    else:
        import tempfile

        max_pending = args.max_pending or 4 * args.clients
        process, host, port = spawn_http_daemon(
            jobs=args.jobs,
            cache_dir=tempfile.mkdtemp(prefix="repro-loadgen-"),
            max_pending=max_pending,
        )
    try:
        # Warm pass: one client computes the unique cells once, so the
        # storm below measures gateway/cache behaviour, not SAT time.
        warm = run_load(
            host, port, mix, clients=1, job_id_prefix="warm", log_line=log
        )
        assert_no_losses(warm)
        storm = run_load(
            host,
            port,
            mix,
            clients=args.clients,
            repeat=args.repeat,
            job_id_prefix="storm",
            log_line=log,
            shuffle_seed=args.shuffle_seed,
        )
        assert_no_losses(storm)
        assert storm.cache_hit_rate == 1.0, (
            f"storm replayed warm cells but hit rate was "
            f"{storm.cache_hit_rate:.3f}"
        )
    finally:
        if process is not None:
            process.terminate()
            process.wait(timeout=30)

    summary = {
        "warm": warm.summary(),
        "storm": storm.summary(),
    }
    print(json.dumps(summary, indent=2))
    if args.summary:
        with open(args.summary, "w", encoding="utf-8") as handle:
            json.dump(summary, handle, indent=2)
            handle.write("\n")
    written = log.flush()
    if args.event_log:
        print(f"wrote {written} streamed lines to {args.event_log}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
