"""``repro.service`` — the canonical typed job API.

Every way of running this system's work — CLI subcommands, the
``repro serve`` daemon, library callers — goes through one surface:

1. Describe the work as a **request envelope**
   (:mod:`repro.service.envelopes`): versioned, JSON-round-trippable
   dataclasses validated against the scheme/attack registries at
   construction time.
2. :meth:`Service.submit` it and get a :class:`Job`: a stream of typed
   events (``job_started`` ... ``cell_done`` ... ``job_done``) plus a
   terminal :class:`Response` envelope, with ``cancel()`` and
   partial-result ``snapshot()`` along the way.
3. Render machine payloads to the classic human text with
   :mod:`repro.service.render` — or skip rendering and ship the
   envelopes (that is all ``repro serve`` does).

Typical use::

    from repro.runner import ResultCache
    from repro.service import MatrixRequest, Service

    service = Service(jobs=4, cache=ResultCache("/tmp/repro-cache"))
    job = service.submit(MatrixRequest(
        schemes=[["sarlock", {"key_size": 4}]],
        circuits=["c432"], scale=0.2, efforts=[1],
    ))
    for event in job.events():
        print(event.type, event.data)
    response = job.result()           # a Response envelope

The daemon (:mod:`repro.service.daemon`) speaks exactly these
envelopes as JSON lines over stdio or TCP; the HTTP gateway
(:mod:`repro.service.http`, ``repro serve --http``) streams the same
lines as chunked responses, with explicit ``queue_full`` backpressure
when admission control (``Service(max_pending=...)``) refuses a burst.
:mod:`repro.service.loadgen` replays request mixes from many
concurrent clients against a live gateway and reports the
latency/throughput trajectory (``BENCH_service.json``).
"""

from repro.service.envelopes import (
    EXPERIMENTS,
    REQUEST_KINDS,
    RESPONSE_STATUSES,
    SCHEMA_VERSION,
    AttackRequest,
    BenchRequest,
    EnvelopeError,
    ExperimentRequest,
    MatrixRequest,
    MetricsRequest,
    Request,
    Response,
    from_dict,
    from_json,
    to_dict,
    to_json,
)
from repro.service.events import EVENT_TYPES, Event, EventError
from repro.service.jobs import Job, QueueFullError, Service
from repro.service.render import render_event, render_response

__all__ = [
    "EVENT_TYPES",
    "EXPERIMENTS",
    "REQUEST_KINDS",
    "RESPONSE_STATUSES",
    "SCHEMA_VERSION",
    "AttackRequest",
    "BenchRequest",
    "EnvelopeError",
    "Event",
    "EventError",
    "ExperimentRequest",
    "Job",
    "MatrixRequest",
    "MetricsRequest",
    "QueueFullError",
    "Request",
    "Response",
    "Service",
    "from_dict",
    "from_json",
    "render_event",
    "render_response",
    "to_dict",
    "to_json",
]
