"""Renderers: typed events/responses -> the classic CLI text.

The service layer is machine-first (envelopes and events); everything
human-readable is produced here, and only here.  Two entry points:

* :func:`render_event` — the one-line progress rendering of a streamed
  event (``None`` for events that print nothing).  Built on
  :func:`repro.runner.progress_line`, the same formatter behind the
  classic :func:`repro.runner.print_progress` callback, so local runs
  and daemon-streamed runs produce identical progress lines.
* :func:`render_response` — the full result text of a finished job,
  byte-identical to what the pre-service CLI printed (the golden tests
  in ``tests/service/test_golden_cli.py`` pin this).
"""

from __future__ import annotations

from repro.runner import progress_line
from repro.service.envelopes import Response
from repro.service.events import Event


def render_event(event: Event) -> str | None:
    """One line of progress text for ``event`` (``None``: print nothing).

    ``cell_done`` renders as the classic per-task progress line;
    ``warning`` as a prefixed message; everything else is silent (the
    aggregate ``progress`` event exists for machine consumers).
    """
    if event.type == "cell_done":
        data = event.data
        return progress_line(
            str(data.get("label", "")),
            bool(data.get("cached", False)),
            float(data.get("elapsed_seconds", 0.0)),
            int(data.get("done", 0)),
            int(data.get("total", 0)),
        )
    if event.type == "warning":
        return f"warning: {event.data.get('message', '')}"
    return None


def render_response(response: Response, verbose: bool = True) -> str:
    """The human text of a successful (or partial) response.

    Reconstructs the classic result object from the payload and calls
    its ``format()``, so service-mediated output cannot drift from the
    library's own rendering.  Raises ``ValueError`` for error
    responses — the caller decides how to surface those.
    """
    if response.status == "error":
        raise ValueError(
            f"cannot render an error response: {response.error}"
        )
    payload = response.result or {}
    if response.status == "cancelled" and set(payload) <= {"completed"}:
        # A job cancelled before its executor could assemble the full
        # kind-specific payload (e.g. a fixed-shape experiment driver
        # stopped mid-run): only the completed-unit list survives.
        completed = payload.get("completed", [])
        return f"job cancelled ({len(completed)} unit(s) completed)"
    if response.request_kind == "matrix":
        from repro.scenarios.matrix import MatrixResult

        return MatrixResult.from_payload(payload).format()
    if response.request_kind == "metrics":
        from repro.metrics import CorruptionReport

        return CorruptionReport.from_payload(payload["report"]).format()
    if response.request_kind == "experiment":
        return _experiment_result(payload).format()
    if response.request_kind == "attack":
        return _render_attack(payload, verbose=verbose)
    if response.request_kind == "bench":
        return str(payload.get("text", ""))
    raise ValueError(
        f"no renderer for request kind {response.request_kind!r}"
    )


def _experiment_result(payload: dict):
    """Rebuild the right experiment result dataclass from a payload."""
    from repro.experiments.ablation_splitting import SplittingAblationResult
    from repro.experiments.ablation_synthesis import SynthesisAblationResult
    from repro.experiments.defense import DefenseResult
    from repro.experiments.figure1 import Figure1Result
    from repro.experiments.figure2 import Figure2Result
    from repro.experiments.table1 import Table1Result
    from repro.experiments.table2 import Table2Result

    result_types = {
        "figure1": Figure1Result,
        "figure2": Figure2Result,
        "table1": Table1Result,
        "table2": Table2Result,
        "ablation_splitting": SplittingAblationResult,
        "ablation_synthesis": SynthesisAblationResult,
        "defense": DefenseResult,
    }
    cls = result_types[payload["experiment"]]
    return cls.from_payload(payload["result"])


def _render_attack(payload: dict, verbose: bool = True) -> str:
    from repro.core.multikey import MultiKeyResult

    result = MultiKeyResult.from_payload(payload["result"])
    lines = [f"locked: {payload['locked']}"]
    lines.append(
        f"engine={result.engine} attack={result.attack} status={result.status} "
        f"splitting={result.splitting_inputs} dips/task={result.dips_per_task}"
    )
    lines.append(
        f"max task {result.max_subtask_seconds:.2f}s, "
        f"mean {result.mean_subtask_seconds:.2f}s, "
        f"wall {result.wall_seconds:.2f}s"
        + (
            f" (one-time encode {result.encode_seconds:.2f}s)"
            if result.engine == "sharded"
            else ""
        )
    )
    if verbose:
        stats = result.solver_stats
        if stats:
            lines.append(
                "solver totals: "
                f"{stats.get('conflicts', 0)} conflicts, "
                f"{stats.get('decisions', 0)} decisions, "
                f"{stats.get('learned', 0)} learned clauses"
            )
            for task in result.subtasks:
                s = task.solver_stats
                lines.append(
                    f"  shard {task.index}: #DIP={task.num_dips} "
                    f"conflicts={s.get('conflicts', 0)} "
                    f"decisions={s.get('decisions', 0)} "
                    f"learned={s.get('learned', 0)} "
                    f"t={task.total_seconds:.2f}s"
                )
    if payload.get("exact"):
        lines.append(
            "multi-key composition equivalent: "
            f"{bool(payload.get('composition_equivalent'))}"
        )
    elif result.status == "ok":
        # Settled (approximate) keys cannot pass CEC by design.
        lines.append(
            "multi-key composition: skipped (approximate sub-space keys)"
        )
    return "\n".join(lines)
