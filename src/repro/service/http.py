"""``repro serve --http`` — the HTTP/JSON gateway over the job service.

The third transport for the PR-5 envelopes: the same versioned
request/response dataclasses and typed event stream as the stdio/TCP
JSON-lines daemon, reachable by anything that can speak HTTP.  Stdlib
only (``http.server``) — no new hard dependencies.

Endpoints::

    POST /v1/jobs               submit one request envelope (JSON body,
                                optional "id"); the response streams
                                chunked JSON lines — every job event,
                                then the terminal response envelope —
                                byte-identical, line for line, to what
                                the stdio/TCP daemon writes for the
                                same job.
    GET  /v1/jobs/<id>          point-in-time snapshot of a submitted
                                job (status + completed units).
    POST /v1/jobs/<id>/cancel   cooperative cancellation.
    GET  /v1/health             daemon liveness + load counters.
    POST /v1/shutdown           stop accepting (running jobs finish).

Backpressure is explicit: when the service's admission control
(``Service(max_pending=...)``) refuses a submission, the gateway
answers **503** with a ``Retry-After`` header and a ``queue_full``
error envelope carrying the same ``retry_after_seconds`` hint —
clients back off and retry instead of piling onto an unbounded queue.
Malformed bodies get 400, oversized ones 413, unknown paths 404; every
error body is a regular error ``Response`` envelope, so HTTP clients
parse exactly one wire schema.

A disconnected or slow client never hurts the service: event streaming
happens on the per-connection handler thread, and a broken pipe simply
stops the stream — the job runs to completion and its artifacts land
in the shared cache (same contract as the line daemon).

``ready`` on the server object is set once ``serve_forever`` is
polling; harnesses that run the gateway on a thread wait on it instead
of sleeping.
"""

from __future__ import annotations

import json
import math
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.service.daemon import (
    encode_line,
    queue_full_response,
)
from repro.service.envelopes import (
    REQUEST_KINDS,
    EnvelopeError,
    Response,
    from_dict,
    to_dict,
)
from repro.service.jobs import QueueFullError, Service

#: Largest accepted request body, in bytes (413 past this).
MAX_BODY_BYTES = 8_000_000


def _error_payload(
    job_id: str, message: str, request_kind: str = ""
) -> dict:
    return to_dict(
        Response(
            request_kind=request_kind,
            status="error",
            job_id=job_id,
            error=message,
        )
    )


class _GatewayHandler(BaseHTTPRequestHandler):
    """One HTTP connection; the shared Service hangs off the server."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-serve-http/1"

    # The gateway is machine-facing; request logging on stderr would
    # interleave with the CLI's own output.  Opt back in via subclass.
    def log_message(self, format: str, *args) -> None:
        pass

    @property
    def service(self) -> Service:
        return self.server.service

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def do_GET(self) -> None:
        if self.path == "/v1/health":
            service = self.service
            self._send_json(
                200,
                {
                    "status": "ok",
                    "active_jobs": service.active_count(),
                    "jobs": service.jobs,
                    "max_pending": service.max_pending,
                },
            )
            return
        job_id = self._job_path_id()
        if job_id is not None:
            try:
                job = self.service.job(job_id)
            except KeyError:
                self._send_json(
                    404, _error_payload(job_id, f"no such job {job_id!r}")
                )
                return
            self._send_json(200, job.snapshot())
            return
        self._send_json(404, _error_payload("", f"no such path {self.path!r}"))

    def do_POST(self) -> None:
        if self.path == "/v1/jobs":
            self._submit()
            return
        if self.path == "/v1/shutdown":
            self._send_json(200, {"status": "shutting_down"})
            threading.Thread(target=self.server.shutdown, daemon=True).start()
            return
        job_id = self._job_path_id(suffix="/cancel")
        if job_id is not None:
            try:
                self.service.job(job_id).cancel()
            except KeyError:
                self._send_json(
                    404, _error_payload(job_id, f"no such job {job_id!r}")
                )
                return
            self._send_json(200, {"job_id": job_id, "cancelled": True})
            return
        self._send_json(404, _error_payload("", f"no such path {self.path!r}"))

    def _job_path_id(self, suffix: str = "") -> str | None:
        prefix = "/v1/jobs/"
        if not (self.path.startswith(prefix) and self.path.endswith(suffix)):
            return None
        job_id = self.path[len(prefix) : len(self.path) - len(suffix)]
        return job_id if job_id and "/" not in job_id else None

    # ------------------------------------------------------------------
    # Submission + streaming
    # ------------------------------------------------------------------

    def _submit(self) -> None:
        try:
            length = int(self.headers.get("Content-Length", ""))
        except ValueError:
            self._send_json(
                411, _error_payload("", "Content-Length required")
            )
            return
        if length > MAX_BODY_BYTES:
            self._send_json(
                413,
                _error_payload(
                    "",
                    f"request body too large ({length} bytes > "
                    f"{MAX_BODY_BYTES})",
                ),
            )
            return
        body = self.rfile.read(length)
        try:
            obj = json.loads(body)
        except (ValueError, UnicodeDecodeError) as error:
            self._send_json(
                400, _error_payload("", f"not valid JSON: {error}")
            )
            return
        if not isinstance(obj, dict):
            self._send_json(
                400, _error_payload("", "envelope must be a JSON object")
            )
            return
        kind = obj.get("kind")
        request_kind = kind if kind in REQUEST_KINDS else ""
        job_id = obj.pop("id", None)
        job_id = str(job_id) if job_id is not None else None
        try:
            request = from_dict(obj)
            if type(request) not in REQUEST_KINDS.values():
                raise EnvelopeError(
                    f"envelope kind {kind!r} is not submittable"
                )
            job = self.service.submit(request, job_id=job_id)
        except QueueFullError as full:
            self._send_json(
                503,
                queue_full_response(
                    job_id or "", full, request_kind=request_kind
                ),
                headers={
                    "Retry-After": str(
                        max(1, math.ceil(full.retry_after_seconds))
                    )
                },
            )
            return
        except ValueError as error:  # EnvelopeError + registry misses
            self._send_json(
                400,
                _error_payload(
                    job_id or "", str(error), request_kind=request_kind
                ),
            )
            return
        self._stream_job(job)

    def _stream_job(self, job) -> None:
        """Chunk the job's event lines, then its terminal response.

        The payload of each chunk is exactly one ``encode_line`` line —
        the same bytes the stdio/TCP daemon writes — so an HTTP client
        that joins the decoded chunks reads an identical JSON-lines
        stream.
        """
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Transfer-Encoding", "chunked")
        self.end_headers()
        try:
            for event in job.events():
                self._write_chunk(encode_line(event.to_dict()))
            self._write_chunk(encode_line(to_dict(job.result())))
            self.wfile.write(b"0\r\n\r\n")
        except (BrokenPipeError, ConnectionResetError, OSError):
            # Client went away mid-stream; the job keeps running and
            # its artifacts still land in the shared cache.
            self.close_connection = True

    def _write_chunk(self, text: str) -> None:
        data = text.encode("utf-8")
        self.wfile.write(f"{len(data):X}\r\n".encode("ascii"))
        self.wfile.write(data)
        self.wfile.write(b"\r\n")
        self.wfile.flush()

    def _send_json(
        self, status: int, payload: dict, headers: dict | None = None
    ) -> None:
        body = encode_line(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        try:
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError, OSError):
            self.close_connection = True


class HTTPGateway(ThreadingHTTPServer):
    """The HTTP flavour: one thread per connection, one shared service."""

    allow_reuse_address = True
    daemon_threads = True
    #: Listen backlog.  socketserver's default of 5 makes the kernel
    #: reset connections when a synchronized client burst arrives —
    #: the load harness sees ECONNRESET at ~64 concurrent clients.
    #: Admission control belongs to ``Service(max_pending=...)``, which
    #: answers with an explicit 503; the accept queue should never be
    #: the limiting (and silent) one.
    request_queue_size = 256

    def __init__(self, address: tuple[str, int], service: Service) -> None:
        super().__init__(address, _GatewayHandler)
        self.service = service
        self.ready = threading.Event()

    def service_actions(self) -> None:  # first poll => serving
        self.ready.set()
        super().service_actions()


def create_http_server(
    service: Service, host: str = "127.0.0.1", port: int = 0
) -> HTTPGateway:
    """Bind the HTTP gateway (``port=0`` picks a free port; see
    ``server.server_address``).  Call ``serve_forever()`` to run —
    tests and the load harness run it on a thread, the CLI runs it in
    the foreground."""
    return HTTPGateway((host, port), service)
