"""Versioned request/response envelopes: the typed half of the API.

Every way of asking this system for work — a scenario-matrix grid, a
single multi-key attack, one of the paper's experiments, a benchmark
emission — is a small dataclass here with ``to_json``/``from_json``
and **fail-fast validation**: scheme, attack and engine names resolve
against the live registries at construction time, so a typo raises
with the roster before any job starts (and before a daemon accepts the
request), never inside a worker process.

The wire shape is one JSON object per envelope::

    {"schema_version": 1, "kind": "matrix", "schemes": [["sarlock", {"key_size": 4}]], ...}
    {"schema_version": 1, "kind": "response", "request_kind": "matrix", "status": "ok", ...}
    {"schema_version": 1, "kind": "event", "type": "cell_done", ...}

``schema_version`` is checked on decode: a payload from a different
schema generation is rejected loudly (:class:`EnvelopeError`) instead
of being half-understood.  Unknown *fields* are tolerated and ignored,
so adding fields is forward-compatible without a version bump; bump
:data:`SCHEMA_VERSION` only when existing fields change meaning.
"""

from __future__ import annotations

import inspect
import json
from collections.abc import Mapping
from dataclasses import asdict, dataclass, field, fields
from typing import ClassVar

from repro.scenarios.spec import ENGINES, ScenarioSpec, normalize_axis

#: The envelope schema generation.  Decoders reject other versions.
SCHEMA_VERSION = 1

#: Terminal job statuses a Response may carry.
RESPONSE_STATUSES = ("ok", "partial", "error", "cancelled")

#: The experiments an ExperimentRequest may name (see
#: repro.service.jobs for how each maps onto its driver).
EXPERIMENTS = (
    "figure1",
    "figure2",
    "table1",
    "table2",
    "ablation_splitting",
    "ablation_synthesis",
    "defense",
)


class EnvelopeError(ValueError):
    """A payload that cannot be decoded into a valid envelope."""


def _experiment_driver(name: str):
    """Resolve an experiment name to its driver (lazy heavy imports)."""
    from repro.experiments.ablation_splitting import run_splitting_ablation
    from repro.experiments.ablation_synthesis import run_synthesis_ablation
    from repro.experiments.defense import run_defense_experiment
    from repro.experiments.figure1 import run_figure1
    from repro.experiments.figure2 import run_figure2
    from repro.experiments.table1 import run_table1
    from repro.experiments.table2 import run_table2

    drivers = {
        "figure1": run_figure1,
        "figure2": run_figure2,
        "table1": run_table1,
        "table2": run_table2,
        "ablation_splitting": run_splitting_ablation,
        "ablation_synthesis": run_synthesis_ablation,
        "defense": run_defense_experiment,
    }
    return drivers[name]


@dataclass
class MatrixRequest:
    """Evaluate a ``scheme x attack x engine x circuit`` scenario grid.

    Mirrors :class:`repro.scenarios.ScenarioSpec` field-for-field, but
    in a JSON-normal form: scheme/attack axes are ``[name, params]``
    pairs (any :func:`~repro.scenarios.spec.normalize_axis` shape is
    accepted on input).  ``to_spec()`` produces the validated spec.
    ``circuits`` accepts corpus names (e.g. ``real_c432``) next to
    stand-ins; ``scale`` applies to stand-ins only.
    """

    kind: ClassVar[str] = "matrix"

    schemes: list = field(default_factory=lambda: [["sarlock", {}]])
    attacks: list = field(default_factory=lambda: [["sat", {}]])
    engines: list = field(default_factory=lambda: ["sharded"])
    circuits: list = field(default_factory=lambda: ["c432"])
    scale: float = 0.25
    efforts: list = field(default_factory=lambda: [1])
    seeds: list = field(default_factory=lambda: [0])
    solver: str | None = None
    opt: str | None = None
    time_limit_per_task: float | None = None
    max_dips_per_task: int | None = None
    include_baseline: bool = False
    verify_composition: bool = False
    measure_resistance: bool = False
    metrics: list = field(default_factory=list)
    key_samples: int = 64
    metrics_seed: int | None = None

    def __post_init__(self) -> None:
        self.schemes = [
            [name, dict(params)]
            for name, params in (normalize_axis(e) for e in self.schemes)
        ]
        self.attacks = [
            [name, dict(params)]
            for name, params in (normalize_axis(e) for e in self.attacks)
        ]
        self.engines = [str(e) for e in self.engines]
        self.circuits = [str(c) for c in self.circuits]
        self.scale = float(self.scale)
        self.efforts = [int(n) for n in self.efforts]
        self.seeds = [int(s) for s in self.seeds]
        self.metrics = [str(m) for m in self.metrics]
        self.key_samples = int(self.key_samples)
        if self.metrics_seed is not None:
            self.metrics_seed = int(self.metrics_seed)
        self.to_spec()  # fail-fast: registry + axis validation

    def to_spec(self) -> ScenarioSpec:
        """The validated :class:`ScenarioSpec` this request describes."""
        return ScenarioSpec(
            schemes=[tuple(entry) for entry in self.schemes],
            attacks=[tuple(entry) for entry in self.attacks],
            engines=self.engines,
            circuits=self.circuits,
            scale=self.scale,
            efforts=self.efforts,
            seeds=self.seeds,
            solver=self.solver,
            opt=self.opt,
            time_limit_per_task=self.time_limit_per_task,
            max_dips_per_task=self.max_dips_per_task,
            include_baseline=self.include_baseline,
            verify_composition=self.verify_composition,
            measure_resistance=self.measure_resistance,
            metrics=self.metrics,
            key_samples=self.key_samples,
            metrics_seed=self.metrics_seed,
        )


@dataclass
class AttackRequest:
    """Lock one carrier circuit and run the multi-key attack on it.

    The service-level twin of the CLI ``attack`` subcommand: scheme and
    attack names resolve against the registries at construction.
    ``circuit`` resolves corpus-first (``real_c432`` names the genuine
    ``.bench`` file; ``c432`` the stand-in) and ``scale`` only applies
    to stand-ins.
    """

    kind: ClassVar[str] = "attack"

    circuit: str = "c6288"
    scheme: str = "sarlock"
    scheme_params: dict = field(default_factory=dict)
    attack: str = "sat"
    attack_params: dict = field(default_factory=dict)
    engine: str = "sharded"
    effort: int = 2
    scale: float = 0.25
    seed: int = 0
    solver: str | None = None
    opt: str | None = None
    time_limit_per_task: float | None = None
    parallel: bool = False

    def __post_init__(self) -> None:
        from repro.attacks.registry import attack_info
        from repro.circuit.opt import resolve_opt
        from repro.locking.registry import scheme_info
        from repro.sat.registry import solver_info

        scheme_info(self.scheme)
        attack_info(self.attack)
        if self.solver is not None:
            solver_info(self.solver)  # raises with the roster on a miss
        if self.opt is not None:
            resolve_opt(self.opt)  # raises with the roster on a miss
        if self.engine not in ENGINES:
            known = ", ".join(ENGINES)
            raise EnvelopeError(
                f"unknown engine {self.engine!r} (known: {known})"
            )
        self.scheme_params = dict(self.scheme_params)
        self.attack_params = dict(self.attack_params)
        self.effort = int(self.effort)
        self.seed = int(self.seed)
        self.scale = float(self.scale)
        if self.effort < 0:
            raise EnvelopeError("effort must be non-negative")
        if self.scale <= 0:
            raise EnvelopeError("scale must be positive")


@dataclass
class MetricsRequest:
    """Evaluate corruption metrics for one locked circuit.

    The service-level twin of the CLI ``metrics`` subcommand: lock
    ``circuit`` with ``scheme`` and run the named registered metrics
    (:mod:`repro.metrics`) over ``key_samples`` wrong keys.  ``seed``
    feeds the scheme (unless ``scheme_params`` pins one);
    ``metrics_seed`` feeds the sample streams and defaults to ``seed``.
    ``effort`` is the splitting effort ``N`` the ``subspace`` metric
    partitions on.  Metric and scheme names resolve against the live
    registries at construction.
    """

    kind: ClassVar[str] = "metrics"

    circuit: str = "c432"
    scheme: str = "sarlock"
    scheme_params: dict = field(default_factory=dict)
    metrics: list = field(default_factory=lambda: ["corruption"])
    key_samples: int = 64
    seed: int = 0
    metrics_seed: int | None = None
    effort: int = 0
    scale: float = 0.25
    opt: str | None = None

    def __post_init__(self) -> None:
        from repro.bench_circuits.corpus import circuit_names, known_circuit
        from repro.circuit.opt import resolve_opt
        from repro.locking.registry import scheme_info
        from repro.metrics import metric_info

        scheme_info(self.scheme)
        self.metrics = [str(m) for m in self.metrics]
        if not self.metrics:
            raise EnvelopeError("metrics request needs at least one metric")
        for name in self.metrics:
            metric_info(name)  # raises with the roster on a miss
        if not known_circuit(self.circuit):
            raise EnvelopeError(
                f"unknown circuit {self.circuit!r} (known: "
                f"{', '.join(circuit_names())})"
            )
        if self.opt is not None:
            resolve_opt(self.opt)  # raises with the roster on a miss
        self.scheme_params = dict(self.scheme_params)
        self.key_samples = int(self.key_samples)
        self.seed = int(self.seed)
        if self.metrics_seed is not None:
            self.metrics_seed = int(self.metrics_seed)
        self.effort = int(self.effort)
        self.scale = float(self.scale)
        if self.key_samples < 0:
            raise EnvelopeError("key_samples must be non-negative")
        if self.effort < 0:
            raise EnvelopeError("effort must be non-negative")
        if self.scale <= 0:
            raise EnvelopeError("scale must be positive")


@dataclass
class ExperimentRequest:
    """Run one of the paper's experiment drivers.

    ``experiment`` names a driver from :data:`EXPERIMENTS`; ``params``
    are its keyword arguments (JSON values only — e.g. table2's
    ``spec`` is a preset name or a plain dict, coerced by the job
    executor).  Parameter *names* are validated against the driver's
    signature here, so a misspelled knob fails before submission.
    """

    kind: ClassVar[str] = "experiment"

    experiment: str = "figure1"
    params: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.experiment not in EXPERIMENTS:
            known = ", ".join(EXPERIMENTS)
            raise EnvelopeError(
                f"unknown experiment {self.experiment!r} (known: {known})"
            )
        self.params = dict(self.params)
        driver = _experiment_driver(self.experiment)
        accepted = set(inspect.signature(driver).parameters) - {"runner"}
        unknown = sorted(set(self.params) - accepted)
        if unknown:
            raise EnvelopeError(
                f"experiment {self.experiment!r} does not accept "
                f"{', '.join(unknown)} (accepted: {', '.join(sorted(accepted))})"
            )


@dataclass
class BenchRequest:
    """Emit a named circuit (stand-in or corpus entry) as ``.bench`` text."""

    kind: ClassVar[str] = "bench"

    circuit: str = "c7552"
    scale: float = 1.0

    def __post_init__(self) -> None:
        self.scale = float(self.scale)
        if not self.circuit:
            raise EnvelopeError("bench request needs a circuit name")
        if self.scale <= 0:
            raise EnvelopeError("scale must be positive")


@dataclass
class Response:
    """The terminal envelope of every job.

    Attributes:
        request_kind: The ``kind`` of the request that produced this
            response (empty for protocol-level errors, e.g. a daemon
            rejecting a malformed line).
        status: One of :data:`RESPONSE_STATUSES`.
        job_id: The job that produced it (empty outside job context).
        result: Kind-specific JSON payload (see
            :mod:`repro.service.render` for how each renders back to
            the classic CLI text).
        error: Human-readable failure description when ``status`` is
            ``"error"``.
    """

    kind: ClassVar[str] = "response"

    request_kind: str = ""
    status: str = "ok"
    job_id: str = ""
    result: dict | None = None
    error: str | None = None

    def __post_init__(self) -> None:
        if self.status not in RESPONSE_STATUSES:
            known = ", ".join(RESPONSE_STATUSES)
            raise EnvelopeError(
                f"unknown response status {self.status!r} (known: {known})"
            )

    @property
    def succeeded(self) -> bool:
        return self.status == "ok"


#: Every request kind a daemon/service accepts, by wire name.
REQUEST_KINDS = {
    MatrixRequest.kind: MatrixRequest,
    AttackRequest.kind: AttackRequest,
    MetricsRequest.kind: MetricsRequest,
    ExperimentRequest.kind: ExperimentRequest,
    BenchRequest.kind: BenchRequest,
}

_ENVELOPE_KINDS = {**REQUEST_KINDS, Response.kind: Response}

#: Union type for documentation purposes.
Request = (
    MatrixRequest
    | AttackRequest
    | MetricsRequest
    | ExperimentRequest
    | BenchRequest
)


def to_dict(envelope) -> dict:
    """The wire shape of any envelope (version + kind + fields)."""
    payload = {"schema_version": SCHEMA_VERSION, "kind": envelope.kind}
    payload.update(asdict(envelope))
    return payload


def to_json(envelope) -> str:
    """One JSON line (sorted keys, so output is deterministic)."""
    return json.dumps(to_dict(envelope), sort_keys=True)


def from_dict(payload: Mapping):
    """Decode a wire dict into its envelope (or :class:`Event`).

    Raises :class:`EnvelopeError` for non-mappings, missing/mismatched
    ``schema_version``, unknown ``kind`` or missing required fields;
    registry validation errors (unknown scheme/attack names) propagate
    as the registries' own ``ValueError`` with the roster attached.
    Unknown fields are ignored.
    """
    if not isinstance(payload, Mapping):
        raise EnvelopeError(
            f"envelope must be a JSON object, got {type(payload).__name__}"
        )
    version = payload.get("schema_version")
    if version != SCHEMA_VERSION:
        raise EnvelopeError(
            f"unsupported schema_version {version!r} "
            f"(this build speaks {SCHEMA_VERSION})"
        )
    kind = payload.get("kind")
    if kind == "event":
        from repro.service.events import Event

        return Event.from_dict(dict(payload))
    try:
        cls = _ENVELOPE_KINDS[kind]
    except KeyError:
        known = ", ".join(sorted(_ENVELOPE_KINDS) + ["event"])
        raise EnvelopeError(
            f"unknown envelope kind {kind!r} (known: {known})"
        ) from None
    names = {f.name for f in fields(cls)}
    kwargs = {k: v for k, v in payload.items() if k in names}
    try:
        return cls(**kwargs)
    except TypeError as error:
        raise EnvelopeError(f"bad {kind} envelope: {error}") from None


def from_json(text: str):
    """Decode one JSON line into its envelope (or :class:`Event`)."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as error:
        raise EnvelopeError(f"envelope is not valid JSON: {error}") from None
    return from_dict(payload)
