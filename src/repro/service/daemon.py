"""``repro serve`` — the JSON-lines job daemon (stdio and TCP).

A long-lived process that accepts request envelopes, multiplexes
concurrent jobs over one shared :class:`~repro.service.jobs.Service`
(one worker-pool budget, one on-disk result cache), and streams each
job's typed events back as they happen.

Wire protocol — one JSON object per line, in both directions:

Client -> server::

    {"schema_version": 1, "kind": "matrix", "id": "my-job", ...}   submit
    {"kind": "cancel", "id": "my-job"}                             cancel
    {"kind": "shutdown"}                                           stop serving

``id`` is the client's job handle; omitted, the service assigns
``job-N``.  Submissions are any request envelope from
:mod:`repro.service.envelopes` (``matrix`` | ``attack`` |
``experiment`` | ``bench``).

Server -> client::

    {"schema_version": 1, "kind": "event", "job_id": "my-job", "type": "cell_done", ...}
    {"schema_version": 1, "kind": "response", "job_id": "my-job", "status": "ok", ...}

Events from concurrent jobs interleave; ``job_id`` + per-job ``seq``
reorder them client-side.  Every job ends with exactly one ``response``
envelope (after its ``job_done`` event).  Malformed or invalid lines
produce an error ``response`` and the daemon keeps serving.

On stdio, EOF drains running jobs and exits.  Over TCP
(:func:`create_tcp_server`), each connection gets this same line
protocol; jobs from all connections share the one service.
"""

from __future__ import annotations

import json
import socketserver
import sys
import threading

from repro.service.envelopes import (
    REQUEST_KINDS,
    EnvelopeError,
    Response,
    from_dict,
    to_dict,
)
from repro.service.jobs import Job, QueueFullError, Service

#: Longest accepted request line (characters).  A client streaming an
#: absurd line gets an error response instead of exhausting daemon
#: memory one envelope at a time.
MAX_LINE_CHARS = 4_000_000


def encode_line(payload: dict) -> str:
    """The one wire encoding of an envelope/event: sorted-key JSON + LF.

    Shared by every transport (stdio, TCP, the HTTP gateway), which is
    what makes their streamed lines byte-identical for the same job.
    """
    return json.dumps(payload, sort_keys=True) + "\n"


class _LineWriter:
    """Serialize whole JSON lines onto one stream from many threads."""

    def __init__(self, stream) -> None:
        self._stream = stream
        self._lock = threading.Lock()

    def write(self, payload: dict) -> None:
        line = encode_line(payload)
        with self._lock:
            try:
                self._stream.write(line)
                self._stream.flush()
            except (BrokenPipeError, ValueError, OSError):
                # Client went away mid-stream; the job keeps running
                # (its artifacts still land in the shared cache).
                pass


def _pump(job: Job, writer: _LineWriter) -> None:
    """Stream one job's events, then its terminal response envelope."""
    for event in job.events():
        writer.write(event.to_dict())
    writer.write(to_dict(job.result()))


def _error_response(
    job_id: str,
    message: str,
    request_kind: str = "",
    result: dict | None = None,
) -> dict:
    return to_dict(
        Response(
            request_kind=request_kind,
            status="error",
            job_id=job_id,
            error=message,
            result=result,
        )
    )


def queue_full_response(
    job_id: str, full: QueueFullError, request_kind: str = ""
) -> dict:
    """The explicit backpressure envelope for a refused submission.

    ``error`` starts with ``queue_full`` (machine-matchable) and
    ``result.retry_after_seconds`` carries the service's backoff hint —
    the JSON-lines twin of the HTTP gateway's 503 + ``Retry-After``.
    """
    return _error_response(
        job_id,
        f"queue_full: {full}",
        request_kind=request_kind,
        result={"retry_after_seconds": full.retry_after_seconds},
    )


def handle_stream(service: Service, rfile, wfile) -> bool:
    """Serve one client stream until EOF or ``shutdown``.

    Returns ``True`` when the client asked the whole daemon to shut
    down (only honoured by the stdio loop and the TCP server's owner).
    Always drains this stream's running jobs before returning so the
    client sees every terminal response.
    """
    writer = _LineWriter(wfile)
    pumps: list[threading.Thread] = []
    shutdown = False
    for line in rfile:
        line = line.strip()
        if not line:
            continue
        if len(line) > MAX_LINE_CHARS:
            writer.write(
                _error_response(
                    "",
                    f"oversized request line ({len(line)} chars > "
                    f"{MAX_LINE_CHARS})",
                )
            )
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as error:
            writer.write(_error_response("", f"not valid JSON: {error}"))
            continue
        if not isinstance(obj, dict):
            writer.write(_error_response("", "envelope must be a JSON object"))
            continue
        kind = obj.get("kind")
        if kind == "shutdown":
            shutdown = True
            break
        if kind == "cancel":
            job_id = str(obj.get("id", ""))
            try:
                service.job(job_id).cancel()
            except KeyError:
                writer.write(_error_response(job_id, f"no such job {job_id!r}"))
            continue
        job_id = obj.pop("id", None)
        job_id = str(job_id) if job_id is not None else None
        try:
            request = from_dict(obj)
            if type(request) not in REQUEST_KINDS.values():
                raise EnvelopeError(
                    f"envelope kind {kind!r} is not submittable"
                )
            job = service.submit(request, job_id=job_id)
        except QueueFullError as full:
            writer.write(
                queue_full_response(
                    job_id or "",
                    full,
                    request_kind=kind if kind in REQUEST_KINDS else "",
                )
            )
            continue
        except ValueError as error:  # EnvelopeError + registry misses
            writer.write(
                _error_response(
                    job_id or "",
                    str(error),
                    request_kind=kind if kind in REQUEST_KINDS else "",
                )
            )
            continue
        pump = threading.Thread(
            target=_pump, args=(job, writer), daemon=True,
            name=f"repro-serve-pump-{job.id}",
        )
        pump.start()
        pumps.append(pump)
    for pump in pumps:
        pump.join()
    return shutdown


def serve_stdio(service: Service, rfile=None, wfile=None) -> None:
    """Serve the JSON-lines protocol on stdin/stdout until EOF."""
    handle_stream(
        service,
        rfile if rfile is not None else sys.stdin,
        wfile if wfile is not None else sys.stdout,
    )


class _TCPHandler(socketserver.StreamRequestHandler):
    def handle(self) -> None:  # pragma: no cover — exercised via sockets
        rfile = (line.decode("utf-8", "replace") for line in self.rfile)
        wfile = _Utf8Writer(self.wfile)
        if handle_stream(self.server.service, rfile, wfile):
            # A client-requested daemon shutdown: stop accepting.
            threading.Thread(
                target=self.server.shutdown, daemon=True
            ).start()


class _Utf8Writer:
    def __init__(self, raw) -> None:
        self._raw = raw

    def write(self, text: str) -> None:
        self._raw.write(text.encode("utf-8"))

    def flush(self) -> None:
        self._raw.flush()


class TCPDaemon(socketserver.ThreadingTCPServer):
    """The TCP flavour: one thread per connection, one shared service.

    ``ready`` is set on the first ``serve_forever`` poll — tests and
    harnesses that run the server on a thread wait on it instead of
    sleeping (the socket is bound and listening from construction, so
    connects queue in the backlog either way; the event removes the
    timing guesswork entirely).
    """

    allow_reuse_address = True
    daemon_threads = True
    #: Listen backlog (socketserver defaults to 5, which resets
    #: connections under a synchronized client burst — see the HTTP
    #: gateway's note; same reasoning here).
    request_queue_size = 256

    def __init__(self, address: tuple[str, int], service: Service) -> None:
        super().__init__(address, _TCPHandler)
        self.service = service
        self.ready = threading.Event()

    def service_actions(self) -> None:  # first poll => serving
        self.ready.set()
        super().service_actions()


def create_tcp_server(
    service: Service, host: str = "127.0.0.1", port: int = 0
) -> TCPDaemon:
    """Bind a TCP daemon (``port=0`` picks a free port; see
    ``server.server_address``).  Call ``serve_forever()`` to run —
    tests run it on a thread, the CLI runs it in the foreground."""
    return TCPDaemon((host, port), service)
