"""Typed job events: the streaming half of the service API.

Every job executed through :class:`repro.service.Service` narrates its
life as a sequence of :class:`Event` values — machine-readable, JSON
line-serializable, and ordered by a per-job ``seq`` counter so clients
can detect gaps.  The taxonomy is deliberately small and stable:

====================  ==================================================
``job_started``       First event of every job.  ``data`` carries the
                      request ``kind``, ``queued_seconds`` (submit ->
                      execution start: time spent in the admission
                      queue) and, when known up front, the ``total``
                      number of work units (matrix cells, experiment
                      rows).
``cell_started``      A unit of work began executing (cache hits never
                      start — they complete directly).  ``data``:
                      ``label``, submission ``index``.
``cell_done``         A unit of work completed.  ``data``: ``label``,
                      ``index``, ``cached``, ``elapsed_seconds``,
                      ``done``/``total`` counters and — when the
                      artifact reports one — its ``status``.
``progress``          Aggregate counters after each completion:
                      ``done``, ``total``, ``fraction``.
``warning``           A non-fatal condition (``data["message"]``).
``job_done``          Last event of every job.  ``data``: final
                      ``status`` (``ok`` | ``partial`` | ``error`` |
                      ``cancelled``) plus the latency breakdown —
                      ``queued_seconds`` and ``run_seconds``.
====================  ==================================================

Renderers live in :mod:`repro.service.render`; nothing here prints.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

#: The complete event taxonomy, in lifecycle order.
EVENT_TYPES = (
    "job_started",
    "cell_started",
    "cell_done",
    "progress",
    "warning",
    "job_done",
)


class EventError(ValueError):
    """A malformed event payload (unknown type, missing fields)."""


@dataclass
class Event:
    """One streamed job event.

    Attributes:
        type: One of :data:`EVENT_TYPES`.
        job_id: The job this event belongs to.
        seq: Per-job sequence number, starting at 0 and gapless.
        data: Type-specific JSON-serializable payload (see the module
            docstring for the per-type keys).
    """

    type: str
    job_id: str
    seq: int
    data: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.type not in EVENT_TYPES:
            known = ", ".join(EVENT_TYPES)
            raise EventError(f"unknown event type {self.type!r} (known: {known})")

    def to_dict(self) -> dict:
        """The JSON-lines wire shape (see ``envelopes.SCHEMA_VERSION``)."""
        from repro.service.envelopes import SCHEMA_VERSION

        return {
            "schema_version": SCHEMA_VERSION,
            "kind": "event",
            "type": self.type,
            "job_id": self.job_id,
            "seq": self.seq,
            "data": dict(self.data),
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, payload: dict) -> "Event":
        """Decode the wire shape (unknown extra keys are tolerated)."""
        try:
            return cls(
                type=str(payload["type"]),
                job_id=str(payload.get("job_id", "")),
                seq=int(payload.get("seq", 0)),
                data=dict(payload.get("data") or {}),
            )
        except KeyError as missing:
            raise EventError(f"event payload missing {missing}") from None

    @classmethod
    def from_json(cls, text: str) -> "Event":
        return cls.from_dict(json.loads(text))
