"""Job execution: ``submit(request) -> Job`` with streaming events.

:class:`Service` is the long-lived execution front-end.  It owns the
shared execution configuration — worker-pool width and the on-disk
:class:`~repro.runner.cache.ResultCache` — and turns request envelopes
(:mod:`repro.service.envelopes`) into running :class:`Job` objects.
Each job executes on its own thread through a per-job
:class:`~repro.runner.Runner` that shares the service's cache, so
concurrent jobs (a daemon's clients, parallel CLI invocations inside
one process) deduplicate work through one artifact store.

A :class:`Job` exposes the streaming surface the CLI and the daemon
are both built on:

* :meth:`Job.events` — iterate typed :class:`~repro.service.events.Event`
  values (``job_started`` ... ``job_done``) as they happen,
* :meth:`Job.result` — block for the terminal
  :class:`~repro.service.envelopes.Response`,
* :meth:`Job.cancel` — cooperative cancellation (between task
  completions; the run keeps what already finished),
* :meth:`Job.snapshot` — a partial-result view of completed units.
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
import traceback
from dataclasses import asdict

from repro.runner import ResultCache, Runner, TaskResult, TaskSpec
from repro.service.envelopes import (
    AttackRequest,
    BenchRequest,
    EnvelopeError,
    ExperimentRequest,
    MatrixRequest,
    MetricsRequest,
    Response,
    _experiment_driver,
)
from repro.service.events import Event

#: Queue sentinel marking the end of a job's event stream.
_STREAM_END = object()


class QueueFullError(RuntimeError):
    """Admission control refused a submission: the job table is full.

    Raised by :meth:`Service.submit` when ``max_pending`` unfinished
    jobs are already admitted.  Transports turn this into an explicit
    backpressure response (a ``queue_full`` error envelope over
    JSON lines, HTTP 503 + ``Retry-After`` over the gateway) instead
    of letting an unbounded queue absorb — and then time out — every
    burst.  :attr:`retry_after_seconds` is the service's load-based
    hint for when to try again.
    """

    def __init__(self, active: int, limit: int, retry_after_seconds: float):
        super().__init__(
            f"job queue is full ({active} active >= max_pending {limit}); "
            f"retry in {retry_after_seconds:g}s"
        )
        self.active = active
        self.limit = limit
        self.retry_after_seconds = retry_after_seconds


class Job:
    """One submitted request: an event stream plus a pending response.

    Jobs are created by :meth:`Service.submit`; construct them directly
    only in tests.  The event stream is single-consumer: ``events()``
    drains a queue.  ``result()`` and ``snapshot()`` are independent of
    event consumption and safe from any thread.
    """

    def __init__(self, job_id: str, request) -> None:
        self.id = job_id
        self.request = request
        self.status = "pending"
        self.submitted_unix = time.time()
        self.started_unix: float | None = None
        self.finished_unix: float | None = None
        self._events: queue.SimpleQueue = queue.SimpleQueue()
        self._log: list[Event] = []
        self._seq = 0
        self._lock = threading.Lock()
        self._cancelled = threading.Event()
        self._stop_honoured = False
        self._finished = threading.Event()
        self._response: Response | None = None
        self._partial: list[dict] = []

    # ------------------------------------------------------------------
    # Consumer surface
    # ------------------------------------------------------------------

    def events(self):
        """Yield this job's events in order, ending after ``job_done``."""
        while True:
            item = self._events.get()
            if item is _STREAM_END:
                return
            yield item

    def result(self, timeout: float | None = None) -> Response:
        """Block until the job finishes; return its response envelope."""
        if not self._finished.wait(timeout):
            raise TimeoutError(f"job {self.id} still running")
        assert self._response is not None
        return self._response

    def done(self) -> bool:
        return self._finished.is_set()

    def cancel(self) -> None:
        """Request cooperative cancellation.

        The runner stops dispatching new tasks and drops queued work;
        anything already running completes and is kept.  A job that was
        already finished is unaffected.
        """
        self._cancelled.set()

    @property
    def cancelled(self) -> bool:
        return self._cancelled.is_set()

    def snapshot(self) -> dict:
        """A point-in-time partial view: status + completed unit payloads."""
        with self._lock:
            return {
                "job_id": self.id,
                "status": self.status,
                "events": len(self._log),
                "completed": list(self._partial),
            }

    # ------------------------------------------------------------------
    # Producer surface (the executing thread)
    # ------------------------------------------------------------------

    def emit(self, type: str, data: dict | None = None) -> Event:
        """Append one event to the stream (and the retained log).

        The job's admission/latency timestamps ride along on the
        lifecycle events: ``job_started`` gains ``queued_seconds``
        (submit -> execution start, i.e. time spent waiting in the
        admission queue) and ``job_done`` gains ``queued_seconds`` +
        ``run_seconds``, so every transport streams the same latency
        breakdown without computing it.
        """
        data = dict(data or {})
        if type == "job_started":
            if self.started_unix is None:
                self.started_unix = time.time()
            data.setdefault(
                "queued_seconds",
                round(self.started_unix - self.submitted_unix, 6),
            )
        elif type == "job_done":
            now = time.time()
            started = (
                self.started_unix
                if self.started_unix is not None
                else self.submitted_unix
            )
            data.setdefault(
                "queued_seconds", round(started - self.submitted_unix, 6)
            )
            data.setdefault("run_seconds", round(now - started, 6))
        with self._lock:
            event = Event(
                type=type, job_id=self.id, seq=self._seq, data=data
            )
            self._seq += 1
            self._log.append(event)
        self._events.put(event)
        return event

    def _record_completed(self, payload: dict) -> None:
        with self._lock:
            self._partial.append(payload)

    def _finish(self, response: Response) -> None:
        with self._lock:
            self.status = response.status
        self.finished_unix = time.time()
        self._response = response
        self._finished.set()
        self._events.put(_STREAM_END)

    # ------------------------------------------------------------------
    # Runner bridge: task callbacks -> typed events
    # ------------------------------------------------------------------

    def _observe_cancel(self) -> bool:
        """The runner's ``should_stop``: polling it *is* the evidence.

        A job whose work all finished before ``cancel()`` landed never
        observes the flag mid-run (the runner only polls between
        tasks), so its complete result is still reported ``ok`` —
        only runs that actually stopped early report ``cancelled``.
        """
        if self._cancelled.is_set():
            self._stop_honoured = True
            return True
        return False

    def _on_dispatch(self, spec: TaskSpec, index: int) -> None:
        self.emit(
            "cell_started", {"label": spec.describe(), "index": index}
        )

    def _on_progress(self, result: TaskResult, done: int, total: int) -> None:
        data = {
            "label": result.spec.describe(),
            "index": result.index,
            "cached": result.cached,
            "elapsed_seconds": result.elapsed_seconds,
            "done": done,
            "total": total,
        }
        status = result.artifact.get("status")
        if isinstance(status, str):
            data["status"] = status
        self._record_completed(
            {"label": result.spec.describe(), "status": status}
        )
        self.emit("cell_done", data)
        self.emit(
            "progress",
            {"done": done, "total": total, "fraction": done / max(total, 1)},
        )


class Service:
    """The execution front-end: envelopes in, jobs out.

    Attributes:
        jobs: The service-wide worker budget.  Each job's runner may
            queue up to this many tasks, but a shared slot semaphore
            bounds how many tasks execute at once *across all
            concurrent jobs* — five daemon clients against
            ``Service(jobs=8)`` share eight slots, they do not spawn
            forty workers.
        cache: The shared result cache (``None`` disables caching).
        inner_parallel: Let a job's ``2^N`` sub-attacks use their own
            pool when the outer runner will not fan out (mirrors the
            drivers' ``parallel=`` flag).
        retain_finished: How many finished jobs to keep around for
            late ``job(id)`` lookups; older finished jobs are pruned
            on submit so a long-lived daemon's memory stays bounded
            (running jobs are never pruned).
        max_pending: Admission control — the most unfinished jobs the
            service will hold at once.  A submission past the bound
            raises :class:`QueueFullError` (with a load-based
            ``retry_after_seconds`` hint) instead of queueing without
            bound; ``None`` disables the check (the library-embedded
            default — daemons should set it).
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: ResultCache | None = None,
        inner_parallel: bool = False,
        retain_finished: int = 64,
        max_pending: int | None = None,
    ) -> None:
        self.jobs = max(1, jobs)
        self.cache = cache
        self.inner_parallel = inner_parallel
        self.retain_finished = max(0, retain_finished)
        self.max_pending = max(1, max_pending) if max_pending else None
        self._slots = threading.BoundedSemaphore(self.jobs)
        self._jobs: dict[str, Job] = {}
        self._counter = itertools.count(1)
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    def submit(self, request, job_id: str | None = None) -> Job:
        """Validate ``request``, start it on a worker thread, return its Job.

        ``job_id`` defaults to a service-unique ``job-N``; daemon
        clients may pick their own ids to correlate streams.  Raises
        :class:`QueueFullError` when admission control
        (``max_pending``) refuses the submission.
        """
        executor = _EXECUTORS.get(type(request))
        if executor is None:
            raise EnvelopeError(
                f"not a request envelope: {type(request).__name__}"
            )
        with self._lock:
            if self.max_pending is not None:
                active = sum(
                    1 for job in self._jobs.values() if not job.done()
                )
                if active >= self.max_pending:
                    raise QueueFullError(
                        active,
                        self.max_pending,
                        self._retry_after_hint(active),
                    )
            if job_id is None:
                # Skip auto ids a client already claimed for itself.
                job_id = f"job-{next(self._counter)}"
                while job_id in self._jobs:
                    job_id = f"job-{next(self._counter)}"
            if job_id in self._jobs and not self._jobs[job_id].done():
                raise EnvelopeError(f"job id {job_id!r} is already running")
            job = Job(job_id, request)
            self._jobs[job_id] = job
            self._prune_finished()
        thread = threading.Thread(
            target=self._run_job,
            args=(job, executor),
            name=f"repro-service-{job_id}",
            daemon=True,
        )
        thread.start()
        return job

    def run(self, request, job_id: str | None = None) -> Response:
        """Submit and block for the response (events are still logged)."""
        return self.submit(request, job_id=job_id).result()

    def job(self, job_id: str) -> Job:
        """Look up a submitted job by id (KeyError on a miss)."""
        return self._jobs[job_id]

    def active_count(self) -> int:
        """How many admitted jobs have not finished yet."""
        with self._lock:
            return sum(1 for job in self._jobs.values() if not job.done())

    def job_count(self) -> int:
        """Total jobs in the table (active + retained finished)."""
        with self._lock:
            return len(self._jobs)

    def _retry_after_hint(self, active: int) -> float:
        """A load-based backoff hint: roughly one worker-slot drain.

        With ``active`` jobs contending for ``jobs`` execution slots,
        one queue position drains every ``active / jobs`` task-times;
        clamped to [1, 30] seconds so clients neither hammer nor stall.
        """
        return round(min(30.0, max(1.0, active / self.jobs)), 1)

    def _prune_finished(self) -> None:
        """Drop the oldest finished jobs beyond ``retain_finished``.

        Called under ``self._lock``.  Jobs insert in submission order
        (dicts preserve it), so the oldest finished entries go first;
        clients holding a :class:`Job` reference keep it alive —
        pruning only forgets the service-side lookup.
        """
        finished = [
            job_id for job_id, job in self._jobs.items() if job.done()
        ]
        for job_id in finished[: max(0, len(finished) - self.retain_finished)]:
            del self._jobs[job_id]

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def _runner_for(self, job: Job) -> Runner:
        """A per-job runner wired into the job's event stream.

        The service-wide slot semaphore rides along, so this runner's
        tasks count against the one worker budget all concurrent jobs
        share.
        """
        return Runner(
            jobs=self.jobs,
            cache=self.cache,
            progress=job._on_progress,
            on_dispatch=job._on_dispatch,
            should_stop=job._observe_cancel,
            slots=self._slots,
        )

    def _run_job(self, job: Job, executor) -> None:
        job.status = "running"
        job.started_unix = time.time()
        try:
            payload, status = executor(self, job)
        except Exception as error:  # noqa: BLE001 — jobs must not kill the daemon
            if job._stop_honoured:
                # The runner stopped early on cancel() and a
                # fixed-shape consumer (e.g. figure1's single task)
                # choked on the partial result list: that is a
                # cancellation, not a failure.  Completed units ride
                # along in the payload.
                response = Response(
                    request_kind=type(job.request).kind,
                    status="cancelled",
                    job_id=job.id,
                    result={"completed": job.snapshot()["completed"]},
                )
            else:
                job.emit(
                    "warning", {"message": f"{type(error).__name__}: {error}"}
                )
                response = Response(
                    request_kind=type(job.request).kind,
                    status="error",
                    job_id=job.id,
                    error=str(error) or type(error).__name__,
                    result={"traceback": traceback.format_exc()},
                )
        else:
            # "Cancelled" only when the run actually stopped early:
            # a cancel() landing after the last task completed leaves
            # a full result, which stays "ok".
            if job._stop_honoured and status != "error":
                status = "cancelled"
            response = Response(
                request_kind=type(job.request).kind,
                status=status,
                job_id=job.id,
                result=payload,
            )
        job.emit("job_done", {"status": response.status})
        job._finish(response)


# ----------------------------------------------------------------------
# Per-request executors.  Each returns (result payload, status).
# ----------------------------------------------------------------------


def _execute_matrix(service: Service, job: Job) -> tuple[dict, str]:
    from repro.scenarios.matrix import run_matrix

    request: MatrixRequest = job.request
    spec = request.to_spec()
    job.emit(
        "job_started", {"kind": request.kind, "total": spec.total_tasks}
    )
    result = run_matrix(
        spec,
        runner=service._runner_for(job),
        inner_parallel=service.inner_parallel,
    )
    complete = len(result.cells) == spec.size
    ok = complete and all(
        cell.status == "ok" and cell.composition_equivalent is not False
        for cell in result.cells
    )
    return result.to_payload(), "ok" if ok else "partial"


def _execute_experiment(service: Service, job: Job) -> tuple[dict, str]:
    request: ExperimentRequest = job.request
    driver = _experiment_driver(request.experiment)
    params = dict(request.params)
    if request.experiment == "table2":
        params = _coerce_table2_params(params)
    job.emit("job_started", {"kind": request.kind, "experiment": request.experiment})
    result = driver(runner=service._runner_for(job), **params)
    status = "ok" if _experiment_rows_ok(result) else "partial"
    return (
        {"experiment": request.experiment, "result": asdict(result)},
        status,
    )


#: Per-row status attributes an experiment result may carry (table2
#: splits its verdict into a multikey arm and a baseline arm).
_ROW_STATUS_ATTRS = ("status", "multikey_status", "baseline_status")


def _experiment_rows_ok(result) -> bool:
    """Did every row/cell of an experiment result fully succeed?"""
    rows = getattr(result, "rows", None) or getattr(result, "cells", None)
    if rows is None:
        return True
    for row in rows:
        for attr in _ROW_STATUS_ATTRS:
            value = getattr(row, attr, None)
            if value is not None and value not in ("ok", "settled"):
                return False
    return True


def _coerce_table2_params(params: dict) -> dict:
    """Rebuild table2's ``spec`` knob from its JSON form."""
    from repro.locking.lut_lock import LutModuleSpec

    spec = params.get("spec")
    if isinstance(spec, str):
        params["spec"] = LutModuleSpec.by_name(spec)
    elif isinstance(spec, dict):
        params["spec"] = LutModuleSpec(**spec)
    if params.get("circuits") is not None:
        params["circuits"] = tuple(params["circuits"])
    return params


def _execute_attack(service: Service, job: Job) -> tuple[dict, str]:
    from repro.bench_circuits.corpus import resolve_circuit
    from repro.core.compose import verify_composition
    from repro.core.multikey import multikey_attack
    from repro.locking.registry import lock_circuit

    request: AttackRequest = job.request
    job.emit(
        "job_started",
        {
            "kind": request.kind,
            "scheme": request.scheme,
            "attack": request.attack,
            "total": 1 << request.effort,
        },
    )
    original = resolve_circuit(request.circuit, request.scale)
    scheme_params = dict(request.scheme_params)
    scheme_params.setdefault("seed", request.seed)
    locked = lock_circuit(request.scheme, original, **scheme_params)

    # The sharded engine streams shard-chunk completions through the
    # runner; pass one only when fanning out (a runner forces
    # fan-out).  Passing the service runner — never letting the
    # engine build its own cpu_count pool — keeps a parallel attack
    # inside the shared worker budget: on a `--jobs 1` daemon its
    # shards run serially rather than escaping the budget (the CLI
    # widens its one-shot service to cpu_count for the classic
    # `attack --parallel` shape).
    runner = None
    if request.parallel and request.engine == "sharded":
        runner = service._runner_for(job)
    result = multikey_attack(
        locked,
        original,
        effort=request.effort,
        parallel=request.parallel,
        time_limit_per_task=request.time_limit_per_task,
        seed=request.seed,
        engine=request.engine,
        attack=request.attack,
        attack_params=request.attack_params,
        solver=request.solver,
        opt=request.opt,
        runner=runner,
    )

    exact = result.status == "ok" and all(
        task.status == "ok" for task in result.subtasks
    )
    equivalent = None
    if exact:
        equivalent = bool(
            verify_composition(
                locked, result.splitting_inputs, result.keys, original
            )
        )
    payload = {
        "locked": str(locked),
        "result": result.to_payload(),
        "exact": exact,
        "composition_equivalent": equivalent,
    }
    return payload, result.status


def _execute_metrics(service: Service, job: Job) -> tuple[dict, str]:
    from repro.metrics import corruption_cell_task

    request: MetricsRequest = job.request
    job.emit(
        "job_started",
        {
            "kind": request.kind,
            "scheme": request.scheme,
            "metrics": list(request.metrics),
            "total": 1,
        },
    )
    task = corruption_cell_task(
        scheme=request.scheme,
        scheme_params=request.scheme_params,
        circuit=request.circuit,
        scale=request.scale,
        effort=request.effort,
        seed=request.seed,
        metrics=request.metrics,
        key_samples=request.key_samples,
        metrics_seed=request.metrics_seed,
        opt=request.opt,
    )
    results = service._runner_for(job).run([task])
    if not results:
        return {"completed": job.snapshot()["completed"]}, "cancelled"
    return {"report": results[0].artifact}, "ok"


def _execute_bench(service: Service, job: Job) -> tuple[dict, str]:
    from repro.bench_circuits.corpus import resolve_circuit
    from repro.circuit.bench import format_bench

    request: BenchRequest = job.request
    job.emit("job_started", {"kind": request.kind, "total": 1})
    netlist = resolve_circuit(request.circuit, request.scale)
    return {"name": str(netlist), "text": format_bench(netlist)}, "ok"


_EXECUTORS = {
    MatrixRequest: _execute_matrix,
    ExperimentRequest: _execute_experiment,
    AttackRequest: _execute_attack,
    MetricsRequest: _execute_metrics,
    BenchRequest: _execute_bench,
}
