"""DIMACS CNF reader and writer.

The standard interchange format, so instances produced here can be
cross-checked against external solvers (and vice versa) when one is
available.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.sat.cnf import CNF


def parse_dimacs(text: str) -> CNF:
    """Parse DIMACS CNF text into a :class:`CNF`.

    Accepts comments (``c ...``), the problem line (``p cnf V C``) and
    clauses possibly spanning multiple lines, each terminated by ``0``.
    """
    cnf = CNF()
    declared_vars = 0
    pending: list[int] = []
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line or line.startswith("c"):
            continue
        if line.startswith("p"):
            fields = line.split()
            if len(fields) != 4 or fields[1] != "cnf":
                raise ValueError(f"malformed problem line: {line!r}")
            declared_vars = int(fields[2])
            continue
        for token in line.split():
            lit = int(token)
            if lit == 0:
                cnf.add_clause(pending)
                pending = []
            else:
                pending.append(lit)
    if pending:
        raise ValueError("last clause is not terminated by 0")
    cnf.num_vars = max(cnf.num_vars, declared_vars)
    return cnf


def write_dimacs(cnf: CNF, comments: Iterable[str] = ()) -> str:
    """Serialize a :class:`CNF` to DIMACS text."""
    lines = [f"c {comment}" for comment in comments]
    lines.append(f"p cnf {cnf.num_vars} {len(cnf.clauses)}")
    for clause in cnf.clauses:
        lines.append(" ".join(str(lit) for lit in clause) + " 0")
    return "\n".join(lines) + "\n"


def read_dimacs_file(path: str) -> CNF:
    """Read a DIMACS file from disk."""
    with open(path) as handle:
        return parse_dimacs(handle.read())


def write_dimacs_file(cnf: CNF, path: str, comments: Iterable[str] = ()) -> None:
    """Write a DIMACS file to disk."""
    with open(path, "w") as handle:
        handle.write(write_dimacs(cnf, comments))
