"""The solver backend registry: pluggable SAT engines behind one seam.

Mirrors the scheme/attack registries (:mod:`repro.locking.registry`,
:mod:`repro.attacks.registry`): backends self-register at import time
with :func:`register_solver`, callers resolve by name through
:func:`solver_info` / :func:`create_solver`, and a typo fails fast
with the full roster in the error message.

A backend is a zero-argument factory returning an object with the
:class:`repro.sat.solver.Solver` surface — ``new_var``,
``add_clause(s)``, ``solve(assumptions=..., conflict_budget=...)``,
``model_value``, ``stats.as_dict()`` — plus whatever subset of the
warm-start contract its :class:`SolverCapabilities` declare:

* ``assumptions`` — ``solve(assumptions=...)`` pins literals for one
  call without poisoning later calls.
* ``checkpoint`` — ``checkpoint()``/``rollback(mark)`` frames; the
  sharded multi-key engine cannot run without them.
* ``learnt_export`` — ``export_learnts``/``import_learnts`` move
  learned clauses (including root-level units) between instances that
  share an encoding prefix.
* ``conflict_budget`` — ``solve(conflict_budget=n)`` raises
  :class:`~repro.sat.solver.BudgetExhausted` past ``n`` conflicts and
  counts the abort in ``stats.as_dict()["budget_aborts"]``.

The conformance suite (``tests/sat/test_backends.py``) runs every
registered backend against the contract, skipping exactly the parts a
backend declares off — so a new backend either passes or says why not.

The default backend is ``"python"`` (always available); set the
``REPRO_SOLVER`` environment variable to change the default without
threading ``solver=`` through every call site.
"""

from __future__ import annotations

import os
from collections.abc import Callable
from dataclasses import dataclass

from repro.sat.solver import Solver

#: The always-available fallback backend.
DEFAULT_SOLVER = "python"

#: Environment variable naming the default backend for this process.
SOLVER_ENV = "REPRO_SOLVER"


@dataclass(frozen=True)
class SolverCapabilities:
    """What a backend supports beyond plain ``add_clause``/``solve``."""

    assumptions: bool = False
    checkpoint: bool = False
    learnt_export: bool = False
    conflict_budget: bool = False

    def as_dict(self) -> dict[str, bool]:
        return {
            "assumptions": self.assumptions,
            "checkpoint": self.checkpoint,
            "learnt_export": self.learnt_export,
            "conflict_budget": self.conflict_budget,
        }


@dataclass(frozen=True)
class SolverBackendInfo:
    """Registry record for one solver backend."""

    name: str
    factory: Callable[[], object]
    capabilities: SolverCapabilities
    description: str = ""

    @property
    def supports_sharding(self) -> bool:
        """Whether the sharded engine's fast path can run on this backend.

        Sharding needs checkpoint/rollback frames (each sub-space is a
        frame) and per-shard assumption pinning.  ``learnt_export`` is
        *not* required — without it the pilot shard simply cannot prime
        the workers warm.
        """
        return self.capabilities.checkpoint and self.capabilities.assumptions


_REGISTRY: dict[str, SolverBackendInfo] = {}


def register_solver(
    name: str,
    *,
    capabilities: SolverCapabilities,
    description: str = "",
):
    """Class/function decorator registering a solver backend factory."""

    def decorate(factory):
        existing = _REGISTRY.get(name)
        if existing is not None and existing.factory is not factory:
            raise ValueError(f"solver backend {name!r} is already registered")
        _REGISTRY[name] = SolverBackendInfo(
            name=name,
            factory=factory,
            capabilities=capabilities,
            description=description,
        )
        return factory

    return decorate


def solver_info(name: str) -> SolverBackendInfo:
    """Resolve a backend name; unknown names raise with the roster."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ValueError(
            f"unknown solver backend {name!r} (registered: {known})"
        ) from None


def registered_solvers() -> list[str]:
    """Sorted names of every registered backend."""
    return sorted(_REGISTRY)


def default_solver_name() -> str:
    """The process-wide default backend (``REPRO_SOLVER`` or python)."""
    return os.environ.get(SOLVER_ENV) or DEFAULT_SOLVER


def resolve_solver_name(name: str | None) -> str:
    """``name`` if given, else the process default — always validated."""
    resolved = name or default_solver_name()
    solver_info(resolved)
    return resolved


def create_solver(name: str | None = None):
    """Instantiate a backend by name (``None`` -> process default)."""
    return solver_info(resolve_solver_name(name)).factory()


@register_solver(
    "python",
    capabilities=SolverCapabilities(
        assumptions=True,
        checkpoint=True,
        learnt_export=True,
        conflict_budget=True,
    ),
    description=(
        "pure-python CDCL (always available; full warm-start contract)"
    ),
)
def _python_backend() -> Solver:
    return Solver()


# The PySAT adapter registers itself when the optional python-sat
# package is importable; without it the import is a clean no-op and
# the roster simply lacks the "pysat" entry.
from repro.sat import pysat_backend as _pysat_backend  # noqa: E402,F401
