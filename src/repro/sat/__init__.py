"""Boolean satisfiability substrate.

A self-contained CDCL SAT solver plus the CNF plumbing the rest of the
library needs.  The paper uses MiniSAT; this package provides the same
algorithm family (two-watched-literal propagation, VSIDS decision
heuristic, phase saving, Luby restarts, first-UIP clause learning with
minimization, and LBD-driven learned-clause deletion) in pure Python so
the reproduction has no native dependencies.

Literals follow the DIMACS convention: variables are positive integers
and a negative integer denotes the negated variable.
"""

from repro.sat.cnf import CNF
from repro.sat.dimacs import parse_dimacs, write_dimacs
from repro.sat.encode import (
    enc_and,
    enc_buf,
    enc_const,
    enc_eq,
    enc_mux,
    enc_nand,
    enc_nor,
    enc_not,
    enc_or,
    enc_xnor,
    enc_xor,
)
from repro.sat.registry import (
    SolverBackendInfo,
    SolverCapabilities,
    create_solver,
    default_solver_name,
    register_solver,
    registered_solvers,
    resolve_solver_name,
    solver_info,
)
from repro.sat.solver import BudgetExhausted, Solver, SolverStats

__all__ = [
    "CNF",
    "Solver",
    "SolverStats",
    "BudgetExhausted",
    "SolverBackendInfo",
    "SolverCapabilities",
    "create_solver",
    "default_solver_name",
    "register_solver",
    "registered_solvers",
    "resolve_solver_name",
    "solver_info",
    "parse_dimacs",
    "write_dimacs",
    "enc_and",
    "enc_or",
    "enc_nand",
    "enc_nor",
    "enc_not",
    "enc_buf",
    "enc_xor",
    "enc_xnor",
    "enc_mux",
    "enc_eq",
    "enc_const",
]
