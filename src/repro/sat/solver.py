"""A conflict-driven clause-learning (CDCL) SAT solver.

This is the MiniSAT recipe in pure Python:

* two-watched-literal unit propagation,
* VSIDS variable activities with exponential decay,
* phase saving,
* Luby-sequence restarts,
* first-UIP conflict analysis with basic clause minimization,
* learned-clause database reduction driven by LBD ("glue") and
  activity,
* incremental use: clauses may be added between ``solve()`` calls and
  each call may carry assumptions,
* warm starts: :meth:`Solver.export_learnts` /
  :meth:`Solver.import_learnts` move learned clauses between solver
  instances that share an encoding prefix (the sharded multi-key
  engine primes worker solvers this way).

Internally a literal is encoded as ``2 * var`` (positive) or
``2 * var + 1`` (negative) so that negation is ``lit ^ 1`` and the
variable is ``lit >> 1``.  The public API speaks DIMACS integers.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass


_LUBY_UNIT = 128  # conflicts per Luby step
_DECAY_RAMP_INTERVAL = 256  # conflicts between VSIDS decay-ramp steps


def luby(i: int) -> int:
    """Return the *i*-th element (0-based) of the Luby sequence.

    The sequence is 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ... and is the
    classic universal restart schedule (MiniSAT's formulation).
    """
    if i < 0:
        raise ValueError("Luby index is 0-based")
    size, seq = 1, 0
    while size < i + 1:
        seq += 1
        size = 2 * size + 1
    while size - 1 != i:
        size = (size - 1) >> 1
        seq -= 1
        i %= size
    return 1 << seq


@dataclass
class SolverStats:
    """Counters accumulated over the lifetime of a :class:`Solver`."""

    conflicts: int = 0
    decisions: int = 0
    propagations: int = 0
    restarts: int = 0
    learned: int = 0
    removed: int = 0
    max_decision_level: int = 0
    solve_calls: int = 0
    budget_aborts: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "conflicts": self.conflicts,
            "decisions": self.decisions,
            "propagations": self.propagations,
            "restarts": self.restarts,
            "learned": self.learned,
            "removed": self.removed,
            "max_decision_level": self.max_decision_level,
            "solve_calls": self.solve_calls,
            "budget_aborts": self.budget_aborts,
        }


class _Clause:
    __slots__ = ("lits", "learnt", "lbd", "act", "deleted")

    def __init__(self, lits: list[int], learnt: bool = False):
        self.lits = lits
        self.learnt = learnt
        self.lbd = 0
        self.act = 0.0
        self.deleted = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        def ext(lit: int) -> int:
            var = lit >> 1
            return -var if lit & 1 else var

        kind = "L" if self.learnt else "P"
        return f"_Clause({kind}, {[ext(x) for x in self.lits]})"


class Solver:
    """Incremental CDCL SAT solver.

    Usage::

        s = Solver()
        s.add_clause([1, 2])
        s.add_clause([-1, 2])
        assert s.solve()
        assert s.model_value(2) is True

    Clauses may be added after a ``solve()`` call; learned clauses are
    kept, which makes the DIP loop of the SAT attack cheap.
    """

    #: Registry name of this backend (see :mod:`repro.sat.registry`).
    backend_name = "python"

    def __init__(self) -> None:
        self.stats = SolverStats()
        self._nvars = 0
        # Indexed by internal literal.
        self._litval: list[int] = [0, 0]  # 1 true, -1 false, 0 unset
        # Watch lists hold ``(blocker, clause)`` pairs (MiniSAT 2.2's
        # "watcher with blocker"): the blocker is some other literal of
        # the clause, checked before touching the clause object at all.
        self._watches: list[list[tuple[int, _Clause]]] = [[], []]
        # Indexed by variable.
        self._level: list[int] = [0]
        self._reason: list[_Clause | None] = [None]
        self._act: list[float] = [0.0]
        self._phase: list[bool] = [False]
        self._seen = bytearray(1)

        self._clauses: list[_Clause] = []
        self._learnts: list[_Clause] = []
        self._trail: list[int] = []
        self._trail_lim: list[int] = []
        self._qhead = 0
        # Outstanding checkpoint marks, oldest first.  While any frame
        # is open, simplify() must not compact the clause list (marks
        # snapshot its length), so it switches to in-place deletion.
        self._frames: list[tuple[int, int]] = []

        self._var_inc = 1.0
        # Glucose-style decay ramp: start aggressive (0.80) so early
        # conflicts focus the search, relax towards 0.95 as the run
        # matures (every _DECAY_RAMP_INTERVAL conflicts, +0.01).
        self._var_decay_factor = 0.80
        self._var_decay = 1.0 / self._var_decay_factor
        self._cla_inc = 1.0
        self._cla_decay = 1.0 / 0.999
        self._order: list[tuple[float, int]] = []  # lazy max-heap entries

        self._ok = True

    # ------------------------------------------------------------------
    # Variable and clause management
    # ------------------------------------------------------------------
    @property
    def num_vars(self) -> int:
        return self._nvars

    @property
    def num_clauses(self) -> int:
        return len(self._clauses)

    @property
    def num_learnts(self) -> int:
        return len(self._learnts)

    def new_var(self) -> int:
        """Allocate and return a fresh variable."""
        self._nvars += 1
        v = self._nvars
        self._litval.extend((0, 0))
        self._watches.append([])
        self._watches.append([])
        self._level.append(0)
        self._reason.append(None)
        self._act.append(0.0)
        self._phase.append(False)
        self._seen.append(0)
        heapq.heappush(self._order, (0.0, v))
        return v

    def _ensure_var(self, v: int) -> None:
        while self._nvars < v:
            self.new_var()

    def _normalize_clause(self, lits) -> list[int] | None:
        """DIMACS literals -> minimal internal clause, or None.

        Allocates missing variables, drops duplicate and root-falsified
        literals, and returns ``None`` when the clause is vacuous (a
        tautology or already satisfied at root level).  The solver must
        be at decision level 0.  Shared by :meth:`add_clause` and
        :meth:`import_learnts` so the two entry points cannot diverge.
        """
        internal: list[int] = []
        seen: set[int] = set()
        for ext in lits:
            if ext == 0:
                raise ValueError("0 is not a valid DIMACS literal")
            var = abs(ext)
            self._ensure_var(var)
            lit = var * 2 + (1 if ext < 0 else 0)
            if lit ^ 1 in seen:
                return None  # tautology: x OR !x
            if lit in seen:
                continue
            val = self._litval[lit]
            if val == 1 and self._level[var] == 0:
                return None  # already satisfied at root
            if val == -1 and self._level[var] == 0:
                continue  # falsified at root: drop the literal
            seen.add(lit)
            internal.append(lit)
        return internal

    def add_clause(self, lits) -> bool:
        """Add a clause of DIMACS literals.

        Returns ``False`` if the formula is now trivially unsatisfiable
        (adding the empty clause, or a unit contradicting level-0
        assignments).  The solver must be at decision level 0, which is
        always true between ``solve()`` calls.
        """
        if not self._ok:
            return False
        self._cancel_until(0)  # leave any previous solution state
        internal = self._normalize_clause(lits)
        if internal is None:
            return True

        if not internal:
            self._ok = False
            return False
        if len(internal) == 1:
            lit = internal[0]
            if self._litval[lit] == -1:
                self._ok = False
                return False
            if self._litval[lit] == 0:
                self._enqueue(lit, None)
                self._ok = self._propagate() is None
            return self._ok

        clause = _Clause(internal)
        self._clauses.append(clause)
        self._watches[internal[0]].append((internal[1], clause))
        self._watches[internal[1]].append((internal[0], clause))
        return True

    def add_clauses(self, clause_iter) -> bool:
        """Add many DIMACS clauses; returns the conjunction of results."""
        ok = True
        for clause in clause_iter:
            ok = self.add_clause(clause) and ok
        return ok

    def simplify(self) -> bool:
        """Root-level preprocessing: shed what level-0 facts decide.

        After propagating to fixpoint, drops clauses satisfied at the
        root and strips root-falsified literals from the rest — the
        classic MiniSAT ``simplify()``.  With pinned miter inputs this
        constant-propagates the pins through the shared logic before
        the DIP loop starts paying for them on every conflict.

        Safe inside :meth:`checkpoint` frames: marks snapshot the
        clause-list *length*, so while any frame is outstanding the
        shed clauses are flagged ``deleted`` in place (propagation and
        export skip them lazily) instead of compacting the list; the
        next frame-free call compacts for real.  Level-0 facts are
        implied by the formula itself — unit learnts are derived by
        resolution, never from assumptions, which live on decision
        levels — so shedding against them stays sound across
        :meth:`rollback`.  Returns ``False`` if the formula is
        unsatisfiable at the root.
        """
        if not self._ok:
            return False
        self._cancel_until(0)
        if self._propagate() is not None:
            self._ok = False
            return False
        litval = self._litval
        # Marks snapshot len(self._clauses) only; the learnt store is
        # filtered by variable on rollback, so it may always compact.
        stores = (
            (self._clauses, bool(self._frames)),
            (self._learnts, False),
        )
        for store, in_frame in stores:
            kept: list[_Clause] = []
            for clause in store:
                if clause.deleted:
                    if in_frame:
                        kept.append(clause)  # hold the list length
                    continue
                lits = clause.lits
                if any(litval[lit] == 1 for lit in lits):
                    # Satisfied at root: watch lists skip it lazily.
                    clause.deleted = True
                    if clause.learnt:
                        self.stats.removed += 1
                    if in_frame:
                        kept.append(clause)
                    continue
                if any(litval[lit] == -1 for lit in lits):
                    # At a root fixpoint both watched literals of an
                    # unsatisfied clause are unassigned, so stripping
                    # falsified tail literals keeps lits[0]/lits[1] —
                    # and with them the watch invariants — intact.
                    stripped = [lit for lit in lits if litval[lit] != -1]
                    if len(stripped) >= 2:
                        clause.lits = stripped
                kept.append(clause)
            store[:] = kept
        return True

    # ------------------------------------------------------------------
    # Checkpoint / rollback frames
    # ------------------------------------------------------------------
    def checkpoint(self) -> tuple[int, int]:
        """Snapshot the variable and clause counts for :meth:`rollback`.

        The solver is brought back to decision level 0 first (always
        true between ``solve()`` calls anyway).  Pair with
        :meth:`rollback` to use the solver in *frames*: everything
        allocated after the checkpoint — variables, problem clauses,
        learned clauses touching the new variables — can be discarded
        wholesale while learned clauses over checkpoint-time variables
        survive.  The sharded multi-key engine runs every sub-space
        shard in such a frame: shard-local DIP constraints vanish,
        circuit-structure learning carries over warm.
        """
        self._cancel_until(0)
        mark = (self._nvars, len(self._clauses))
        self._frames.append(mark)
        return mark

    def rollback(self, mark: tuple[int, int]) -> None:
        """Discard all variables and clauses added after ``mark``.

        Learned clauses confined to checkpoint-time variables are kept:
        they were derived from clauses over those variables only (a
        clause mentioning a post-checkpoint variable can only be
        resolved away via other post-checkpoint clauses, and Tseitin
        definitions of fresh variables are conservative extensions), so
        they remain implied by the surviving formula.  Root-level
        assignments of surviving variables are also kept.
        """
        nvars, nclauses = mark
        if nvars > self._nvars or nclauses > len(self._clauses):
            raise ValueError("rollback mark is from the future")
        self._cancel_until(0)
        # Close this frame and any nested inside it (marks are
        # monotone, so later frames compare >= component-wise).
        while self._frames and self._frames[-1] >= mark:
            self._frames.pop()
        for clause in self._clauses[nclauses:]:
            clause.deleted = True
        del self._clauses[nclauses:]
        kept: list[_Clause] = []
        for clause in self._learnts:
            if any(lit >> 1 > nvars for lit in clause.lits):
                clause.deleted = True
                self.stats.removed += 1
            else:
                kept.append(clause)
        self._learnts = kept
        # Root assignments of dropped variables disappear with them.
        self._trail = [lit for lit in self._trail if lit >> 1 <= nvars]
        self._qhead = len(self._trail)
        del self._litval[2 * (nvars + 1):]
        del self._watches[2 * (nvars + 1):]
        del self._level[nvars + 1:]
        del self._reason[nvars + 1:]
        del self._act[nvars + 1:]
        del self._phase[nvars + 1:]
        del self._seen[nvars + 1:]
        self._order = [entry for entry in self._order if entry[1] <= nvars]
        heapq.heapify(self._order)
        self._nvars = nvars

    # ------------------------------------------------------------------
    # Warm-start clause exchange
    # ------------------------------------------------------------------
    def export_learnts(
        self, max_var: int | None = None, max_lbd: int | None = None
    ) -> list[list[int]]:
        """Learned clauses as DIMACS lists, filtered for sound reuse.

        Args:
            max_var: Keep only clauses whose variables are all
                ``<= max_var``.  Callers that share an encoding *prefix*
                (e.g. the base miter of the sharded engine) pass the
                prefix's variable count: clauses confined to the prefix
                cannot have been derived from guarded or
                solver-local extension clauses, so they are implied by
                the prefix alone and safe to import elsewhere.
            max_lbd: Keep only clauses with LBD ("glue") at most this —
                the classic quality filter for clause sharing.

        Returns clauses suitable for :meth:`import_learnts` on another
        solver holding the same encoding prefix (identical variable
        numbering).

        Root-level assignments are exported as **unit clauses**: the
        search enqueues a length-1 learnt directly on the trail instead
        of recording a clause object, so without this the strongest
        derived facts would silently vanish from a warm start.  Only
        the level-0 prefix of the trail is read (a model left by a SAT
        answer lives above the first decision mark), and ``max_var``
        filters units exactly like longer clauses.
        """
        exported: list[list[int]] = []
        root_end = self._trail_lim[0] if self._trail_lim else len(self._trail)
        for lit in self._trail[:root_end]:
            var = lit >> 1
            if max_var is not None and var > max_var:
                continue
            exported.append([-var if lit & 1 else var])
        for clause in self._learnts:
            if clause.deleted:
                continue
            if max_lbd is not None and clause.lbd > max_lbd:
                continue
            lits = clause.lits
            if max_var is not None and any(lit >> 1 > max_var for lit in lits):
                continue
            exported.append(
                [-(lit >> 1) if lit & 1 else lit >> 1 for lit in lits]
            )
        return exported

    def import_learnts(self, clauses) -> int:
        """Install externally derived clauses as *learned* clauses.

        Unlike :meth:`add_clauses`, imported clauses stay eligible for
        learned-database reduction, so a bad import cannot permanently
        bloat the solver.  Clauses must be logically implied by the
        solver's problem clauses (see :meth:`export_learnts` for how
        the sharded engine guarantees that).  Returns the number of
        clauses actually installed (tautologies and root-satisfied
        clauses are dropped).
        """
        imported = 0
        self._cancel_until(0)  # once: the loop below stays at root level
        for ext_lits in clauses:
            if not self._ok:
                break
            internal = self._normalize_clause(ext_lits)
            if internal is None:
                continue
            if not internal:
                self._ok = False
                break
            if len(internal) == 1:
                lit = internal[0]
                if self._litval[lit] == -1:
                    self._ok = False
                    break
                if self._litval[lit] == 0:
                    self._enqueue(lit, None)
                    self._ok = self._propagate() is None
                imported += 1
                continue
            clause = _Clause(internal, learnt=True)
            clause.lbd = len(internal)  # pessimistic glue for imports
            clause.act = self._cla_inc
            self._learnts.append(clause)
            self._watches[internal[0]].append((internal[1], clause))
            self._watches[internal[1]].append((internal[0], clause))
            imported += 1
        return imported

    # ------------------------------------------------------------------
    # Assignment trail
    # ------------------------------------------------------------------
    def _enqueue(self, lit: int, reason: _Clause | None) -> None:
        var = lit >> 1
        self._litval[lit] = 1
        self._litval[lit ^ 1] = -1
        self._level[var] = len(self._trail_lim)
        self._reason[var] = reason
        self._phase[var] = not (lit & 1)
        self._trail.append(lit)

    def _cancel_until(self, level: int) -> None:
        if len(self._trail_lim) <= level:
            return
        bound = self._trail_lim[level]
        order = self._order
        act = self._act
        for i in range(len(self._trail) - 1, bound - 1, -1):
            lit = self._trail[i]
            var = lit >> 1
            self._litval[lit] = 0
            self._litval[lit ^ 1] = 0
            self._reason[var] = None
            heapq.heappush(order, (-act[var], var))
        del self._trail[bound:]
        del self._trail_lim[level:]
        self._qhead = bound

    # ------------------------------------------------------------------
    # Propagation
    # ------------------------------------------------------------------
    def _propagate(self) -> _Clause | None:
        """Unit-propagate until fixpoint; return a conflict clause or None."""
        litval = self._litval
        watches = self._watches
        trail = self._trail
        confl: _Clause | None = None
        while self._qhead < len(trail):
            p = trail[self._qhead]
            self._qhead += 1
            self.stats.propagations += 1
            false_lit = p ^ 1
            ws = watches[false_lit]
            if not ws:
                continue
            new_ws: list[tuple[int, _Clause]] = []
            keep = new_ws.append
            i = 0
            n = len(ws)
            while i < n:
                blocker, c = ws[i]
                i += 1
                if c.deleted:
                    continue
                # Blocker short-circuit: if some other literal of the
                # clause is already true, the clause is satisfied and
                # its literal array need not be touched at all.
                if litval[blocker] == 1:
                    keep((blocker, c))
                    continue
                lits = c.lits
                # Make sure the false literal is at position 1.
                if lits[0] == false_lit:
                    lits[0] = lits[1]
                    lits[1] = false_lit
                first = lits[0]
                if litval[first] == 1:
                    keep((first, c))
                    continue
                # Search for a replacement watch.
                found = False
                for k in range(2, len(lits)):
                    lk = lits[k]
                    if litval[lk] != -1:
                        lits[1] = lk
                        lits[k] = false_lit
                        watches[lk].append((first, c))
                        found = True
                        break
                if found:
                    continue
                keep((first, c))
                if litval[first] == -1:
                    # Conflict: keep remaining watches and bail out.
                    while i < n:
                        entry = ws[i]
                        if not entry[1].deleted:
                            keep(entry)
                        i += 1
                    confl = c
                    break
                # Unit clause.
                var = first >> 1
                litval[first] = 1
                litval[first ^ 1] = -1
                self._level[var] = len(self._trail_lim)
                self._reason[var] = c
                self._phase[var] = not (first & 1)
                trail.append(first)
            watches[false_lit] = new_ws
            if confl is not None:
                self._qhead = len(trail)
                return confl
        return None

    # ------------------------------------------------------------------
    # Conflict analysis
    # ------------------------------------------------------------------
    def _bump_var(self, var: int) -> None:
        act = self._act
        act[var] += self._var_inc
        if act[var] > 1e100:
            inv = 1e-100
            for v in range(1, self._nvars + 1):
                act[v] *= inv
            self._var_inc *= inv
            # All heap entries are now stale; rebuild lazily.
            self._order = [(-act[v], v) for v in range(1, self._nvars + 1)]
            heapq.heapify(self._order)
        else:
            heapq.heappush(self._order, (-act[var], var))

    def _bump_clause(self, clause: _Clause) -> None:
        clause.act += self._cla_inc
        if clause.act > 1e20:
            inv = 1e-20
            for c in self._learnts:
                c.act *= inv
            self._cla_inc *= inv

    def _analyze(self, confl: _Clause) -> tuple[list[int], int, int]:
        """First-UIP analysis.

        Returns ``(learnt_lits, backtrack_level, lbd)`` where
        ``learnt_lits[0]`` is the asserting literal.
        """
        seen = self._seen
        level = self._level
        trail = self._trail
        cur_level = len(self._trail_lim)
        learnt: list[int] = [0]
        counter = 0
        p = -1
        index = len(trail) - 1
        cleanup: list[int] = []

        c: _Clause | None = confl
        while True:
            assert c is not None
            if c.learnt:
                self._bump_clause(c)
            for q in c.lits:
                if q == p:
                    continue
                v = q >> 1
                if not seen[v] and level[v] > 0:
                    seen[v] = 1
                    cleanup.append(v)
                    self._bump_var(v)
                    if level[v] >= cur_level:
                        counter += 1
                    else:
                        learnt.append(q)
            # Select next literal to resolve on.
            while not seen[trail[index] >> 1]:
                index -= 1
            p = trail[index]
            index -= 1
            v = p >> 1
            c = self._reason[v]
            seen[v] = 0
            counter -= 1
            if counter == 0:
                break
        learnt[0] = p ^ 1

        # Basic clause minimization: drop literals implied by the rest.
        for v in cleanup:
            seen[v] = 1
        seen[learnt[0] >> 1] = 0
        minimized = [learnt[0]]
        for q in learnt[1:]:
            reason = self._reason[q >> 1]
            if reason is None:
                minimized.append(q)
                continue
            for r in reason.lits:
                rv = r >> 1
                if rv != (q >> 1) and not seen[rv] and level[rv] > 0:
                    minimized.append(q)
                    break
        learnt = minimized
        for v in cleanup:
            seen[v] = 0

        # Backtrack level: second-highest decision level in the clause.
        if len(learnt) == 1:
            bt_level = 0
        else:
            max_i = 1
            for i in range(2, len(learnt)):
                if level[learnt[i] >> 1] > level[learnt[max_i] >> 1]:
                    max_i = i
            learnt[1], learnt[max_i] = learnt[max_i], learnt[1]
            bt_level = level[learnt[1] >> 1]

        lbd = len({level[q >> 1] for q in learnt})
        return learnt, bt_level, lbd

    # ------------------------------------------------------------------
    # Decisions
    # ------------------------------------------------------------------
    def _pick_branch_var(self) -> int:
        """Return an unassigned decision literal, or -1 if none remain."""
        order = self._order
        litval = self._litval
        act = self._act
        while order:
            neg_act, var = heapq.heappop(order)
            # Entries are lazy: skip ones that are assigned or stale.
            if litval[var * 2] == 0 and -neg_act == act[var]:
                return var * 2 + (0 if self._phase[var] else 1)
        return -1

    # ------------------------------------------------------------------
    # Learned-clause database reduction
    # ------------------------------------------------------------------
    def _locked(self, clause: _Clause) -> bool:
        first_var = clause.lits[0] >> 1
        return self._reason[first_var] is clause

    def _reduce_db(self) -> None:
        learnts = self._learnts
        learnts.sort(key=lambda c: (c.lbd, -c.act))
        keep_count = len(learnts) // 2
        kept: list[_Clause] = []
        for i, c in enumerate(learnts):
            if c.lbd <= 2 or self._locked(c) or i < keep_count:
                kept.append(c)
            else:
                c.deleted = True
                self.stats.removed += 1
        self._learnts = kept

    # ------------------------------------------------------------------
    # Main search
    # ------------------------------------------------------------------
    def solve(self, assumptions=(), conflict_budget: int | None = None) -> bool:
        """Search for a satisfying assignment.

        ``assumptions`` is an iterable of DIMACS literals that are
        forced for this call only.  ``conflict_budget`` optionally
        bounds the number of conflicts; exceeding it raises
        :class:`BudgetExhausted`.
        """
        self.stats.solve_calls += 1
        if not self._ok:
            return False
        self._cancel_until(0)  # leave any previous solution state

        assume_internal: list[int] = []
        for ext in assumptions:
            var = abs(ext)
            self._ensure_var(var)
            assume_internal.append(var * 2 + (1 if ext < 0 else 0))

        max_learnts = max(1000.0, len(self._clauses) * 0.35)
        conflicts_this_call = 0
        restart_idx = 0
        restart_limit = luby(restart_idx) * _LUBY_UNIT
        conflicts_since_restart = 0

        if self._propagate() is not None:
            self._ok = False
            return False

        while True:
            confl = self._propagate()
            if confl is not None:
                self.stats.conflicts += 1
                conflicts_this_call += 1
                conflicts_since_restart += 1
                if conflict_budget is not None and conflicts_this_call > conflict_budget:
                    self._cancel_until(0)
                    self.stats.budget_aborts += 1
                    raise BudgetExhausted(conflicts_this_call)
                level = len(self._trail_lim)
                if level == 0:
                    self._ok = False
                    return False
                if level <= len(assume_internal):
                    # Conflict is forced by the assumptions themselves.
                    self._cancel_until(0)
                    return False
                learnt, bt_level, lbd = self._analyze(confl)
                bt_level = max(bt_level, self._assumption_floor(assume_internal))
                self._cancel_until(bt_level)
                if len(learnt) == 1:
                    # A unit learnt lands on the root trail (no clause
                    # object); export_learnts reads it back from there.
                    self._cancel_until(0)
                    if self._litval[learnt[0]] == -1:
                        self._ok = False
                        return False
                    if self._litval[learnt[0]] == 0:
                        self._enqueue(learnt[0], None)
                        self.stats.learned += 1
                else:
                    clause = _Clause(learnt, learnt=True)
                    clause.lbd = lbd
                    clause.act = self._cla_inc
                    self._learnts.append(clause)
                    self._watches[learnt[0]].append((learnt[1], clause))
                    self._watches[learnt[1]].append((learnt[0], clause))
                    self.stats.learned += 1
                    self._enqueue(learnt[0], clause)
                self._var_inc *= self._var_decay
                self._cla_inc *= self._cla_decay
                if (
                    self._var_decay_factor < 0.95
                    and self.stats.conflicts % _DECAY_RAMP_INTERVAL == 0
                ):
                    self._var_decay_factor = min(
                        0.95, self._var_decay_factor + 0.01
                    )
                    self._var_decay = 1.0 / self._var_decay_factor
            else:
                if conflicts_since_restart >= restart_limit:
                    self.stats.restarts += 1
                    restart_idx += 1
                    restart_limit = luby(restart_idx) * _LUBY_UNIT
                    conflicts_since_restart = 0
                    self._cancel_until(0)
                    continue
                if len(self._learnts) >= max_learnts + len(self._trail):
                    self._reduce_db()
                    max_learnts *= 1.1

                # Apply pending assumptions, then decide.
                lit = -1
                level = len(self._trail_lim)
                if level < len(assume_internal):
                    p = assume_internal[level]
                    if self._litval[p] == 1:
                        # Already satisfied: open an empty level for it.
                        self._trail_lim.append(len(self._trail))
                        continue
                    if self._litval[p] == -1:
                        self._cancel_until(0)
                        return False
                    lit = p
                else:
                    lit = self._pick_branch_var()
                    if lit == -1:
                        # Satisfying assignment found.  The trail is kept
                        # so model_value() can read it; the next solve()
                        # or add_clause() backtracks to the root.
                        return True
                    self.stats.decisions += 1
                self._trail_lim.append(len(self._trail))
                if len(self._trail_lim) > self.stats.max_decision_level:
                    self.stats.max_decision_level = len(self._trail_lim)
                self._enqueue(lit, None)

    def _assumption_floor(self, assume_internal: list[int]) -> int:
        """Never backtrack past levels still holding assumptions."""
        return min(len(assume_internal), len(self._trail_lim) - 1)

    # ------------------------------------------------------------------
    # Model access
    # ------------------------------------------------------------------
    def model_value(self, var: int) -> bool | None:
        """Value of ``var`` in the current satisfying assignment.

        Only meaningful directly after ``solve()`` returned True (the
        assignment survives until the next ``solve``/``add_clause``).
        """
        if var < 1 or var > self._nvars:
            return None
        value = self._litval[var * 2]
        if value == 0:
            return None
        return value == 1

    def model(self) -> list[int]:
        """Current model as a list of DIMACS literals."""
        return [
            v if self._litval[v * 2] == 1 else -v
            for v in range(1, self._nvars + 1)
        ]


class BudgetExhausted(Exception):
    """Raised when ``solve`` exceeds its conflict budget."""

    def __init__(self, conflicts: int):
        super().__init__(f"conflict budget exhausted after {conflicts} conflicts")
        self.conflicts = conflicts
