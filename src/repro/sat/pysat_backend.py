"""Optional PySAT adapter: CaDiCaL/Glucose/MiniSat behind the Solver seam.

When the ``python-sat`` package is importable this module registers a
``"pysat"`` backend with :mod:`repro.sat.registry`; otherwise importing
it is a clean no-op and the roster simply lacks the entry.  The engine
inside the adapter is auto-probed from :data:`PYSAT_CANDIDATES` in
preference order (CaDiCaL first), so the backend works with whatever
engines the installed python-sat build actually ships.

Declared capabilities are ``assumptions`` and ``conflict_budget`` only:
PySAT engines have no checkpoint/rollback frames and no learned-clause
export, so the sharded multi-key engine falls back to the reference
per-sub-space path when this backend is selected — same answers, no
shared-encoding reuse.
"""

from __future__ import annotations

from repro.sat.solver import BudgetExhausted, SolverStats

try:  # pragma: no cover - exercised only with python-sat installed
    from pysat.solvers import Solver as _PySatEngine

    HAVE_PYSAT = True
except ImportError:  # pragma: no cover
    _PySatEngine = None
    HAVE_PYSAT = False

#: Engine names probed in preference order (newer CaDiCaL names first).
PYSAT_CANDIDATES = (
    "cadical195",
    "cadical153",
    "cadical",
    "glucose42",
    "glucose4",
    "glucose3",
    "minisat22",
    "minicard",
)

_probed_name: str | None = None
_probed = False


def pick_engine_name() -> str | None:
    """First usable engine from :data:`PYSAT_CANDIDATES` (cached).

    Returns ``None`` when python-sat is missing or ships none of the
    candidate engines.
    """
    global _probed_name, _probed
    if _probed:
        return _probed_name
    _probed = True
    if not HAVE_PYSAT:
        return None
    for name in PYSAT_CANDIDATES:
        try:
            probe = _PySatEngine(name=name)
        except Exception:
            continue
        probe.delete()
        _probed_name = name
        break
    return _probed_name


class PySatSolver:  # pragma: no cover - exercised only with python-sat
    """The :class:`repro.sat.solver.Solver` surface over a PySAT engine.

    Speaks DIMACS integers exactly like the python backend; keeps a
    :class:`SolverStats` whose counters are refreshed from the engine's
    accumulated statistics after every ``solve`` call, with
    ``budget_aborts`` maintained by the adapter itself.
    """

    backend_name = "pysat"

    def __init__(self, engine: str | None = None) -> None:
        name = engine or pick_engine_name()
        if name is None:
            raise RuntimeError(
                "python-sat is not installed (or ships no known engine); "
                f"candidates: {', '.join(PYSAT_CANDIDATES)}"
            )
        self.engine_name = name
        self._engine = _PySatEngine(name=name, use_timer=False)
        self.stats = SolverStats()
        self._nvars = 0
        self._nclauses = 0
        self._values: dict[int, bool] = {}
        self._ok = True

    # -- variable / clause management ----------------------------------
    @property
    def num_vars(self) -> int:
        return self._nvars

    @property
    def num_clauses(self) -> int:
        return self._nclauses

    def new_var(self) -> int:
        self._nvars += 1
        return self._nvars

    def _note_vars(self, lits) -> None:
        for lit in lits:
            if lit == 0:
                raise ValueError("0 is not a valid DIMACS literal")
            var = abs(lit)
            if var > self._nvars:
                self._nvars = var

    def add_clause(self, lits) -> bool:
        lits = list(lits)
        self._note_vars(lits)
        if not lits:
            self._ok = False
            return False
        self._engine.add_clause(lits)
        self._nclauses += 1
        return self._ok

    def add_clauses(self, clause_iter) -> bool:
        ok = True
        for clause in clause_iter:
            ok = self.add_clause(clause) and ok
        return ok

    # -- search --------------------------------------------------------
    def solve(self, assumptions=(), conflict_budget: int | None = None) -> bool:
        self.stats.solve_calls += 1
        if not self._ok:
            return False
        assumptions = list(assumptions)
        self._note_vars(assumptions)
        self._values = {}
        if conflict_budget is not None:
            self._engine.conf_budget(conflict_budget)
            result = self._engine.solve_limited(
                assumptions=assumptions, expect_interrupt=False
            )
        else:
            result = self._engine.solve(assumptions=assumptions)
        self._refresh_stats()
        if result is None:
            self.stats.budget_aborts += 1
            raise BudgetExhausted(conflict_budget or 0)
        if result:
            model = self._engine.get_model() or []
            self._values = {abs(lit): lit > 0 for lit in model}
        elif not assumptions:
            # Unconditionally UNSAT: match the python backend's sticky
            # behaviour so later calls stay cheap and consistent.
            self._ok = False
        return bool(result)

    def _refresh_stats(self) -> None:
        try:
            accumulated = self._engine.accum_stats() or {}
        except Exception:
            return
        self.stats.conflicts = int(accumulated.get("conflicts", 0))
        self.stats.decisions = int(accumulated.get("decisions", 0))
        self.stats.propagations = int(accumulated.get("propagations", 0))
        self.stats.restarts = int(accumulated.get("restarts", 0))

    # -- model access --------------------------------------------------
    def model_value(self, var: int) -> bool | None:
        if var < 1 or var > self._nvars:
            return None
        return self._values.get(var)

    def model(self) -> list[int]:
        return [
            var if self._values.get(var) else -var
            for var in range(1, self._nvars + 1)
        ]


def _register() -> None:
    """Register the ``pysat`` backend when an engine is available."""
    if pick_engine_name() is None:
        return
    from repro.sat.registry import SolverCapabilities, register_solver

    register_solver(
        "pysat",
        capabilities=SolverCapabilities(
            assumptions=True,
            checkpoint=False,
            learnt_export=False,
            conflict_budget=True,
        ),
        description=(
            f"python-sat adapter (engine: {pick_engine_name()}; "
            "no frames/learnt export -> reference engine only)"
        ),
    )(PySatSolver)


_register()
