"""A CNF formula container with a variable allocator.

:class:`CNF` is the hand-off format between the circuit world and the
solver: Tseitin encoders append clauses here, attacks feed the clauses
into a :class:`repro.sat.solver.Solver`.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.sat.solver import Solver


class CNF:
    """Clause list over DIMACS-style integer literals.

    The allocator hands out fresh variables via :meth:`new_var`;
    clauses added through :meth:`add_clause` may also grow the variable
    count implicitly when they mention larger variable indices.
    """

    def __init__(self, num_vars: int = 0):
        if num_vars < 0:
            raise ValueError("num_vars must be non-negative")
        self.num_vars = num_vars
        self.clauses: list[list[int]] = []

    def new_var(self) -> int:
        """Allocate and return a fresh variable index."""
        self.num_vars += 1
        return self.num_vars

    def new_vars(self, count: int) -> list[int]:
        """Allocate ``count`` fresh variables."""
        if count < 0:
            raise ValueError("count must be non-negative")
        return [self.new_var() for _ in range(count)]

    def add_clause(self, lits: Iterable[int]) -> None:
        """Append one clause; grows ``num_vars`` if needed."""
        clause = list(lits)
        for lit in clause:
            if lit == 0:
                raise ValueError("0 is not a valid DIMACS literal")
            if abs(lit) > self.num_vars:
                self.num_vars = abs(lit)
        self.clauses.append(clause)

    def add_clauses(self, clause_iter: Iterable[Iterable[int]]) -> None:
        for clause in clause_iter:
            self.add_clause(clause)

    def extend(self, other: "CNF") -> None:
        """Append all clauses of ``other`` (no variable renumbering)."""
        self.num_vars = max(self.num_vars, other.num_vars)
        self.clauses.extend(list(c) for c in other.clauses)

    def copy(self) -> "CNF":
        dup = CNF(self.num_vars)
        dup.clauses = [list(c) for c in self.clauses]
        return dup

    def __len__(self) -> int:
        return len(self.clauses)

    def __repr__(self) -> str:
        return f"CNF(vars={self.num_vars}, clauses={len(self.clauses)})"

    # ------------------------------------------------------------------
    # Solving helpers
    # ------------------------------------------------------------------
    def to_solver(self) -> Solver:
        """Build a fresh solver loaded with this formula."""
        solver = Solver()
        solver._ensure_var(self.num_vars)
        for clause in self.clauses:
            solver.add_clause(clause)
        return solver

    def solve(self, assumptions: Iterable[int] = ()) -> list[int] | None:
        """One-shot solve; returns a model (DIMACS lits) or ``None``."""
        solver = self.to_solver()
        if not solver.solve(assumptions=list(assumptions)):
            return None
        return solver.model()

    def is_satisfied_by(self, assignment: dict[int, bool]) -> bool:
        """Check a full assignment (var -> bool) against every clause."""
        for clause in self.clauses:
            if not any(
                assignment.get(abs(lit), False) == (lit > 0) for lit in clause
            ):
                return False
        return True
