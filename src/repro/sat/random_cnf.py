"""Seeded random CNF generation for testing and fuzzing the solver."""

from __future__ import annotations

import itertools
import random

from repro.sat.cnf import CNF


def random_ksat(
    num_vars: int, num_clauses: int, k: int = 3, seed: int = 0
) -> CNF:
    """Generate a uniform random k-SAT instance.

    Each clause draws ``k`` distinct variables and flips each polarity
    with probability 1/2.  Deterministic for a given seed.
    """
    if num_vars < k:
        raise ValueError("need at least k variables")
    rng = random.Random(seed)
    cnf = CNF(num_vars)
    for _ in range(num_clauses):
        variables = rng.sample(range(1, num_vars + 1), k)
        clause = [v if rng.random() < 0.5 else -v for v in variables]
        cnf.add_clause(clause)
    return cnf


def brute_force_satisfiable(cnf: CNF) -> bool:
    """Decide satisfiability by enumeration (only for tiny instances)."""
    if cnf.num_vars > 22:
        raise ValueError("brute force limited to 22 variables")
    for bits in itertools.product([False, True], repeat=cnf.num_vars):
        assignment = {v: bits[v - 1] for v in range(1, cnf.num_vars + 1)}
        if cnf.is_satisfied_by(assignment):
            return True
    return False


def brute_force_models(cnf: CNF) -> list[dict[int, bool]]:
    """Enumerate all models of a tiny CNF (for exhaustive checks)."""
    if cnf.num_vars > 16:
        raise ValueError("model enumeration limited to 16 variables")
    models = []
    for bits in itertools.product([False, True], repeat=cnf.num_vars):
        assignment = {v: bits[v - 1] for v in range(1, cnf.num_vars + 1)}
        if cnf.is_satisfied_by(assignment):
            models.append(assignment)
    return models
