"""Tseitin encodings for logic gates.

Each ``enc_*`` function returns the list of clauses asserting that the
output literal equals the gate function of the input literals.  All
literals are DIMACS integers; negations may be passed directly (e.g.
``enc_and(o, [-a, b])`` encodes ``o = !a & b``).

n-ary XOR/XNOR chains need auxiliary variables; those encoders take a
``new_var`` callback (typically :meth:`repro.sat.cnf.CNF.new_var`).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

Clause = list[int]


def enc_and(out: int, ins: Sequence[int]) -> list[Clause]:
    """``out = AND(ins)``; with no inputs, AND is the constant 1."""
    if not ins:
        return [[out]]
    clauses: list[Clause] = [[-out, lit] for lit in ins]
    clauses.append([out] + [-lit for lit in ins])
    return clauses


def enc_or(out: int, ins: Sequence[int]) -> list[Clause]:
    """``out = OR(ins)``; with no inputs, OR is the constant 0."""
    if not ins:
        return [[-out]]
    clauses: list[Clause] = [[out, -lit] for lit in ins]
    clauses.append([-out] + list(ins))
    return clauses


def enc_nand(out: int, ins: Sequence[int]) -> list[Clause]:
    """``out = NAND(ins)``."""
    return enc_and(-out, ins)


def enc_nor(out: int, ins: Sequence[int]) -> list[Clause]:
    """``out = NOR(ins)``."""
    return enc_or(-out, ins)


def enc_not(out: int, a: int) -> list[Clause]:
    """``out = !a``."""
    return [[out, a], [-out, -a]]


def enc_buf(out: int, a: int) -> list[Clause]:
    """``out = a``."""
    return [[-out, a], [out, -a]]


def enc_eq(a: int, b: int) -> list[Clause]:
    """Constrain two literals to be equal (alias of :func:`enc_buf`)."""
    return enc_buf(a, b)


def enc_const(out: int, value: bool) -> list[Clause]:
    """Pin a literal to a constant."""
    return [[out]] if value else [[-out]]


def _enc_xor2(out: int, a: int, b: int) -> list[Clause]:
    return [
        [-out, a, b],
        [-out, -a, -b],
        [out, -a, b],
        [out, a, -b],
    ]


def enc_xor(
    out: int, ins: Sequence[int], new_var: Callable[[], int] | None = None
) -> list[Clause]:
    """``out = XOR(ins)``.

    More than two inputs are chained pairwise through fresh variables
    obtained from ``new_var``.
    """
    if not ins:
        return [[-out]]
    if len(ins) == 1:
        return enc_buf(out, ins[0])
    if len(ins) == 2:
        return _enc_xor2(out, ins[0], ins[1])
    if new_var is None:
        raise ValueError("n-ary XOR with n > 2 requires a new_var allocator")
    clauses: list[Clause] = []
    acc = ins[0]
    for lit in ins[1:-1]:
        aux = new_var()
        clauses.extend(_enc_xor2(aux, acc, lit))
        acc = aux
    clauses.extend(_enc_xor2(out, acc, ins[-1]))
    return clauses


def enc_xnor(
    out: int, ins: Sequence[int], new_var: Callable[[], int] | None = None
) -> list[Clause]:
    """``out = XNOR(ins)`` (complement of the XOR chain)."""
    return enc_xor(-out, ins, new_var)


def enc_mux(out: int, sel: int, a: int, b: int) -> list[Clause]:
    """``out = a if sel else b`` (sel=1 picks ``a``).

    Includes the two redundant clauses that strengthen propagation when
    ``a == b``.
    """
    return [
        [-sel, -a, out],
        [-sel, a, -out],
        [sel, -b, out],
        [sel, b, -out],
        [-a, -b, out],
        [a, b, -out],
    ]
