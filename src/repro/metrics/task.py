"""``corruption_cell``: the registered task kind behind every metric.

One cell = one (scheme, circuit, effort, seed) point evaluated by
:func:`repro.metrics.engine.evaluate_corruption`.  The cache-identity
contract follows ``scenario_cell``:

* **Hashed** (``params``): scheme + params, circuit, scale, the sorted
  metric roster, ``key_samples``, the cell seed (feeds the scheme like
  a matrix cell), the resolved ``metrics_seed`` (feeds the sample
  streams), ``effort``, ``input_samples`` and the resolved ``opt``
  level — everything that determines the report's bits.
* **Context** (unhashed): ``lanes`` — the backend changes wall-clock
  only, never values, so python and numpy sweeps share cache entries.

The metric list is sorted before hashing: requesting ``corruption,
subspace`` and ``subspace,corruption`` is the same computation and
must hit the same cache entry.
"""

from __future__ import annotations

from repro.runner import TaskSpec, register_task

__all__ = ["corruption_cell_task"]


@register_task("corruption_cell")
def _corruption_cell_worker(params: dict) -> dict:
    """Worker: lock the carrier circuit, run the metric sweep."""
    from repro.bench_circuits.corpus import resolve_circuit
    from repro.locking.registry import lock_circuit
    from repro.metrics.engine import evaluate_corruption

    original = resolve_circuit(params["circuit"], params["scale"])
    scheme_params = dict(params.get("scheme_params") or {})
    scheme_params.setdefault("seed", params["seed"])
    locked = lock_circuit(params["scheme"], original, **scheme_params)
    report = evaluate_corruption(
        locked,
        original,
        metrics=params["metrics"],
        key_samples=params["key_samples"],
        seed=params["metrics_seed"],
        effort=params["effort"],
        opt=params["opt"],
        lanes=params.get("lanes"),
        input_samples=params.get("input_samples", 256),
    )
    return report.to_payload()


def corruption_cell_task(
    scheme: str,
    scheme_params: dict,
    circuit: str,
    scale: float,
    effort: int,
    seed: int,
    metrics: tuple[str, ...] | list[str] = ("corruption",),
    key_samples: int = 64,
    metrics_seed: int | None = None,
    opt: str | None = None,
    lanes: str | None = None,
    input_samples: int = 256,
) -> TaskSpec:
    """The :class:`TaskSpec` for one corruption cell.

    ``metrics_seed=None`` resolves to the cell ``seed`` so a plain
    matrix sweep varies the sample streams with the seed axis; pinning
    it decouples metric sampling from scheme seeding.
    """
    from repro.circuit.opt import resolve_opt
    from repro.metrics.registry import metric_info

    roster = sorted(set(metrics))
    for name in roster:
        metric_info(name)
    return TaskSpec(
        kind="corruption_cell",
        params={
            "scheme": scheme,
            "scheme_params": dict(scheme_params or {}),
            "circuit": circuit,
            "scale": scale,
            "effort": effort,
            "seed": seed,
            "metrics": roster,
            "key_samples": int(key_samples),
            "metrics_seed": seed if metrics_seed is None else int(metrics_seed),
            "opt": resolve_opt(opt),
            "input_samples": int(input_samples),
        },
        context={"lanes": lanes},
        label=f"metrics {scheme} {circuit} N={effort}",
    )
