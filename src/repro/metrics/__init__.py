"""Corruption/confidentiality metrics as a first-class results axis.

The subsystem in three seams, mirroring schemes/attacks/solvers:

* :mod:`repro.metrics.registry` — ``@register_metric`` + lookup; a
  metric is popcount arithmetic over a shared
  :class:`~repro.metrics.engine.SampleSweep`.
* :mod:`repro.metrics.engine` — :func:`evaluate_corruption` builds the
  sweep bit-parallel (oracle golden outputs vs. the locked circuit
  under sampled wrong keys, behind the lanes/opt levers) and runs the
  requested metrics.
* :mod:`repro.metrics.task` — the content-hashed ``corruption_cell``
  runner task, so metric cells cache and replay like matrix cells.

Typical use::

    from repro.metrics import evaluate_corruption
    report = evaluate_corruption(locked, original,
                                 metrics=("corruption", "subspace"),
                                 key_samples=64, effort=2)
    print(report.format())

Matrix integration: ``ScenarioSpec(metrics=("corruption",))`` attaches
metric columns to every cell — see :mod:`repro.scenarios`.
"""

from repro.metrics.engine import (
    DEFAULT_INPUT_SAMPLES,
    DEFAULT_KEY_SAMPLES,
    CorruptionReport,
    SampleSweep,
    evaluate_corruption,
)
from repro.metrics.registry import (
    Metric,
    MetricInfo,
    MetricValue,
    metric_info,
    register_metric,
    registered_metrics,
)
from repro.metrics.task import corruption_cell_task

__all__ = [
    "CorruptionReport",
    "DEFAULT_INPUT_SAMPLES",
    "DEFAULT_KEY_SAMPLES",
    "Metric",
    "MetricInfo",
    "MetricValue",
    "SampleSweep",
    "corruption_cell_task",
    "evaluate_corruption",
    "metric_info",
    "register_metric",
    "registered_metrics",
]
