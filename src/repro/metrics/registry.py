"""The corruption-metric registry.

Mirrors the scheme/attack/solver/cache-backend registries: metrics
register under a string name with ``@register_metric``, callers look
them up by name, and ``registered_metrics()`` drives
``--list-metrics`` and envelope validation.

A metric is a function from a :class:`repro.metrics.engine.SampleSweep`
(the shared wrong-key x input-pattern diff material, computed once per
cell) to a :class:`MetricValue`: one headline float in ``[0, 1]`` (or
bits, for entropy) plus a JSON-safe detail mapping.  Metrics never
touch the circuit directly — everything they need is popcount
arithmetic over the sweep's diff words, which is what makes every
metric bit-identical across lanes backends, opt levels and multi-key
engines for free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Protocol

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.metrics.engine import SampleSweep

__all__ = [
    "Metric",
    "MetricInfo",
    "MetricValue",
    "metric_info",
    "register_metric",
    "registered_metrics",
]


@dataclass(frozen=True)
class MetricValue:
    """One computed metric: headline value + JSON-safe detail."""

    value: float
    detail: dict = field(default_factory=dict)


class Metric(Protocol):
    """Common protocol: sweep in, :class:`MetricValue` out."""

    def __call__(self, sweep: "SampleSweep") -> MetricValue: ...


@dataclass(frozen=True)
class MetricInfo:
    """Registry entry for one corruption metric."""

    name: str
    fn: Metric
    description: str


_METRICS: dict[str, MetricInfo] = {}


def register_metric(name: str, description: str = ""):
    """Class/function decorator registering a corruption metric.

    ::

        @register_metric("always_half", description="toy example")
        def _always_half(sweep):
            return MetricValue(0.5)
    """

    def decorator(fn: Callable) -> Callable:
        if name in _METRICS:
            raise ValueError(f"metric {name!r} already registered")
        _METRICS[name] = MetricInfo(name=name, fn=fn, description=description)
        return fn

    return decorator


def metric_info(name: str) -> MetricInfo:
    """Look up a metric; unknown names list the roster."""
    try:
        return _METRICS[name]
    except KeyError:
        known = ", ".join(sorted(_METRICS)) or "<none>"
        raise ValueError(f"unknown metric {name!r}; registered: {known}") from None


def registered_metrics() -> list[str]:
    """Sorted names of every registered metric."""
    return sorted(_METRICS)
