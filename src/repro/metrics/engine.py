"""Bit-parallel corruption evaluation under sampled wrong keys.

The paper's one-key premise asks *where* a key unlocks correct
function; the confidentiality question is the complement — *how wrong*
is the locked circuit under a wrong key, and how is that wrongness
distributed over input sub-spaces?  This module computes both from a
single shared sweep:

1. Golden outputs come from :class:`repro.oracle.Oracle.query_vector`
   (the original circuit behind the lanes/opt levers).
2. The locked circuit is compiled once (and structurally optimized
   when the ``opt`` lever says so), then evaluated bit-parallel via
   :meth:`~repro.circuit.compiled.CompiledCircuit.eval_outputs_wide`
   with each sampled wrong key pinned as constant lanes.
3. Every registered metric (:mod:`repro.metrics.registry`) is pure
   popcount arithmetic over the resulting XOR diff words — which is
   why metric values are *bit-identical* across lanes backends, opt
   levels and multi-key engines: the levers change how fast the sweep
   runs, never which bits it produces.

Sampling is deterministic end-to-end (:mod:`repro.rng` streams keyed
by the metrics seed).  Circuits with at most :data:`EXHAUSTIVE_INPUT_LIMIT`
inputs are swept exhaustively; larger ones get ``input_samples``
stratified patterns — stratified over the ``2^N`` sub-spaces induced
by the fanout-ranked splitting inputs
(:func:`repro.core.splitting.select_splitting_inputs`), so the
``subspace`` metric sees every sub-space even at modest widths.  Key
spaces with at most ``key_samples`` wrong keys are enumerated
exhaustively instead of sampled.

::

    >>> from repro.bench_circuits.iscas85 import c17
    >>> from repro.locking.registry import lock_circuit
    >>> locked = lock_circuit("xor", c17(), key_size=2, seed=1)
    >>> report = evaluate_corruption(locked, c17(), key_samples=0)
    >>> report.keys_sampled, report.exhaustive_keys, report.exhaustive_inputs
    (3, True, True)
    >>> 0.0 < report.value("corruption") <= 1.0
    True
    >>> report.metrics == evaluate_corruption(locked, c17(), key_samples=0).metrics
    True
"""

from __future__ import annotations

import math
import time
from dataclasses import asdict, dataclass, field
from collections.abc import Sequence

from repro.circuit.netlist import Netlist
from repro.circuit.opt import resolve_opt
from repro.locking.base import LockedCircuit
from repro.metrics.registry import MetricValue, metric_info, register_metric
from repro.oracle import Oracle
from repro.rng import make_rng, sample_wrong_keys

__all__ = [
    "CorruptionReport",
    "DEFAULT_INPUT_SAMPLES",
    "DEFAULT_KEY_SAMPLES",
    "EXHAUSTIVE_INPUT_LIMIT",
    "SampleSweep",
    "evaluate_corruption",
]

#: Wrong keys sampled per cell unless the caller says otherwise.
DEFAULT_KEY_SAMPLES = 64

#: Stratified input patterns per sweep when the input space is large.
DEFAULT_INPUT_SAMPLES = 256

#: Input counts up to this are swept exhaustively (2^12 = 4096 lanes).
EXHAUSTIVE_INPUT_LIMIT = 12


@dataclass
class SampleSweep:
    """The shared diff material every metric consumes.

    ``diff_words[k][o]`` is the XOR of golden and locked output ``o``
    over all lanes under wrong key ``wrong_keys[k]``;
    ``diff_any[k]`` ORs the per-output diffs (lane set where *any*
    output mismatches).  ``subspace_masks[s]`` selects the lanes whose
    splitting-input bits decode to sub-space ``s``.
    """

    width: int
    mask: int
    input_names: list[str]
    output_names: list[str]
    wrong_keys: list[int]
    correct_key: int
    key_size: int
    splitting_inputs: list[str]
    subspace_masks: list[int]
    diff_words: list[list[int]]
    diff_any: list[int]
    exhaustive_inputs: bool
    exhaustive_keys: bool
    seed: int


def _mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def _binary_entropy(p: float) -> float:
    if p <= 0.0 or p >= 1.0:
        return 0.0
    return -(p * math.log2(p) + (1.0 - p) * math.log2(1.0 - p))


@register_metric(
    "corruption",
    description="output error rate: fraction of sampled inputs with any "
    "output wrong, averaged over sampled wrong keys",
)
def _corruption_metric(sweep: SampleSweep) -> MetricValue:
    per_key = [d.bit_count() / sweep.width for d in sweep.diff_any]
    return MetricValue(
        value=_mean(per_key),
        detail={
            "per_key": per_key,
            "min": min(per_key),
            "max": max(per_key),
        },
    )


@register_metric(
    "bit_flip",
    description="per-output bit-flip rate under sampled wrong keys, "
    "averaged over outputs",
)
def _bit_flip_metric(sweep: SampleSweep) -> MetricValue:
    total = sweep.width * len(sweep.wrong_keys)
    per_output = {
        name: sum(diffs[o].bit_count() for diffs in sweep.diff_words) / total
        for o, name in enumerate(sweep.output_names)
    }
    return MetricValue(
        value=_mean(list(per_output.values())),
        detail={"per_output": per_output},
    )


@register_metric(
    "avalanche",
    description="binary entropy of each output's flip rate (bits; 1.0 = "
    "coin-flip corruption), averaged over outputs",
)
def _avalanche_metric(sweep: SampleSweep) -> MetricValue:
    total = sweep.width * len(sweep.wrong_keys)
    per_output = {
        name: _binary_entropy(
            sum(diffs[o].bit_count() for diffs in sweep.diff_words) / total
        )
        for o, name in enumerate(sweep.output_names)
    }
    return MetricValue(
        value=_mean(list(per_output.values())),
        detail={"per_output": per_output},
    )


@register_metric(
    "subspace",
    description="corruption rate per splitting-input sub-space, plus the "
    "fraction of (wrong key, sub-space) pairs the key unlocks exactly",
)
def _subspace_metric(sweep: SampleSweep) -> MetricValue:
    rates = []
    unlocked = 0
    for mask in sweep.subspace_masks:
        lanes = mask.bit_count()
        per_key = [(d & mask).bit_count() / lanes for d in sweep.diff_any]
        rates.append(_mean(per_key))
        unlocked += sum(1 for d in sweep.diff_any if d & mask == 0)
    pairs = len(sweep.subspace_masks) * len(sweep.wrong_keys)
    return MetricValue(
        value=_mean(rates),
        detail={
            "num_subspaces": len(sweep.subspace_masks),
            "splitting_inputs": list(sweep.splitting_inputs),
            "rates": rates,
            "min": min(rates),
            "max": max(rates),
            "unlock_fraction": unlocked / pairs,
        },
    )


@dataclass
class CorruptionReport:
    """Every requested metric for one (scheme, circuit, seed) cell."""

    scheme: str
    circuit: str
    key_size: int
    num_inputs: int
    num_outputs: int
    input_samples: int
    exhaustive_inputs: bool
    key_samples: int
    keys_sampled: int
    exhaustive_keys: bool
    seed: int
    effort: int
    splitting_inputs: list[str]
    opt: str
    oracle_queries: int
    elapsed_seconds: float
    metrics: dict[str, dict] = field(default_factory=dict)

    def value(self, name: str) -> float:
        """The headline value of one computed metric."""
        try:
            return self.metrics[name]["value"]
        except KeyError:
            computed = ", ".join(sorted(self.metrics)) or "<none>"
            raise KeyError(
                f"metric {name!r} not in this report (computed: {computed})"
            ) from None

    def detail(self, name: str) -> dict:
        """The detail mapping of one computed metric."""
        self.value(name)  # raises with the computed roster on a miss
        return self.metrics[name]["detail"]

    def to_payload(self) -> dict:
        """JSON-shaped form (the ``corruption_cell`` task artifact)."""
        return asdict(self)

    @classmethod
    def from_payload(cls, payload: dict) -> "CorruptionReport":
        return cls(**payload)

    def format(self) -> str:
        """Human-readable metric table for one cell."""
        from repro.experiments.report import format_table, seconds

        rows = [
            [name, f"{self.metrics[name]['value']:.6g}"]
            for name in self.metrics
        ]
        title = (
            f"Corruption: {self.scheme} on {self.circuit} "
            f"(|K|={self.key_size}, {self.keys_sampled} wrong keys"
            f"{' exhaustive' if self.exhaustive_keys else ''}, "
            f"{self.input_samples} patterns"
            f"{' exhaustive' if self.exhaustive_inputs else ''}, "
            f"N={self.effort}, {seconds(self.elapsed_seconds)})"
        )
        return format_table(["Metric", "Value"], rows, title=title)


def _stimulus_words(
    input_names: Sequence[str],
    splitting: Sequence[str],
    input_samples: int,
    seed: int,
) -> tuple[dict[str, int], int, bool]:
    """Per-input stimulus words: exhaustive when small, else stratified.

    Stratified mode assigns lane ``i`` to sub-space ``i % 2^N`` on the
    splitting inputs and draws every other input bit from the seeded
    stream, so each sub-space receives an equal share of the lanes.
    """
    from repro.circuit.compiled import exhaustive_words

    n = len(input_names)
    if n <= EXHAUSTIVE_INPUT_LIMIT:
        width = 1 << n
        return dict(zip(input_names, exhaustive_words(n))), width, True
    width = input_samples
    rng = make_rng("metrics", "stimuli", seed)
    words = {name: rng.getrandbits(width) for name in input_names}
    num_subspaces = 1 << len(splitting)
    for j, name in enumerate(splitting):
        word = 0
        for lane in range(width):
            if ((lane % num_subspaces) >> j) & 1:
                word |= 1 << lane
        words[name] = word
    return words, width, False


def _subspace_masks(
    words: dict[str, int], splitting: Sequence[str], width: int
) -> list[int]:
    """Lane mask per sub-space, decoded from the splitting-input words."""
    full = (1 << width) - 1
    masks = []
    for s in range(1 << len(splitting)):
        mask = full
        for j, name in enumerate(splitting):
            word = words[name]
            mask &= word if (s >> j) & 1 else ~word & full
        masks.append(mask)
    return masks


def build_sweep(
    locked: LockedCircuit,
    original: Netlist,
    key_samples: int = DEFAULT_KEY_SAMPLES,
    seed: int = 0,
    effort: int = 0,
    opt: str | None = None,
    lanes: str | None = None,
    input_samples: int = DEFAULT_INPUT_SAMPLES,
) -> tuple[SampleSweep, int]:
    """The shared :class:`SampleSweep` plus the oracle query count."""
    from repro.core.splitting import select_splitting_inputs

    if input_samples < 1:
        raise ValueError("input_samples must be positive")
    if key_samples < 0:
        raise ValueError("key_samples must be non-negative")
    splitting = select_splitting_inputs(locked, effort)
    input_names = list(locked.original_inputs)
    words, width, exhaustive_inputs = _stimulus_words(
        input_names, splitting, input_samples, seed
    )
    if (1 << len(splitting)) > width:
        raise ValueError(
            f"effort {effort} needs {1 << len(splitting)} sub-spaces but the "
            f"sweep has only {width} lanes; raise input_samples"
        )
    mask = (1 << width) - 1

    oracle = Oracle(original, lanes=lanes, opt=opt)
    golden = oracle.query_vector(words, width)
    output_names = oracle.output_names

    wrong_keys = sample_wrong_keys(
        locked.key_size,
        key_samples,
        locked.correct_key_int,
        "metrics",
        "keys",
        locked.key_size,
        seed,
    )
    exhaustive_keys = len(wrong_keys) == (1 << locked.key_size) - 1

    compiled = locked.netlist.compile()
    level = resolve_opt(opt)
    if level != "off":
        compiled = compiled.optimized(level).compiled
    key_ports = set(locked.key_inputs)
    diff_words: list[list[int]] = []
    diff_any: list[int] = []
    for key in wrong_keys:
        assignment = locked.key_assignment(key)
        stimuli = [
            (mask if assignment[name] else 0)
            if name in key_ports
            else words[name]
            for name in compiled.inputs
        ]
        outs = dict(
            zip(compiled.outputs, compiled.eval_outputs_wide(stimuli, width, lanes=lanes))
        )
        diffs = [(golden[name] ^ outs[name]) & mask for name in output_names]
        any_word = 0
        for word in diffs:
            any_word |= word
        diff_words.append(diffs)
        diff_any.append(any_word)

    sweep = SampleSweep(
        width=width,
        mask=mask,
        input_names=input_names,
        output_names=output_names,
        wrong_keys=wrong_keys,
        correct_key=locked.correct_key_int,
        key_size=locked.key_size,
        splitting_inputs=splitting,
        subspace_masks=_subspace_masks(words, splitting, width),
        diff_words=diff_words,
        diff_any=diff_any,
        exhaustive_inputs=exhaustive_inputs,
        exhaustive_keys=exhaustive_keys,
        seed=seed,
    )
    return sweep, oracle.query_count


def evaluate_corruption(
    locked: LockedCircuit,
    original: Netlist,
    metrics: Sequence[str] = ("corruption",),
    key_samples: int = DEFAULT_KEY_SAMPLES,
    seed: int = 0,
    effort: int = 0,
    opt: str | None = None,
    lanes: str | None = None,
    input_samples: int = DEFAULT_INPUT_SAMPLES,
) -> CorruptionReport:
    """Compute the requested registered metrics for one locked circuit.

    ``metrics`` names entries of :mod:`repro.metrics.registry`;
    ``key_samples=0`` forces exhaustive wrong-key enumeration (any
    value at least the wrong-key count does too).  ``effort`` is the
    splitting effort ``N`` — the ``subspace`` metric reports one rate
    per ``2^N`` sub-space, other metrics ignore it.  ``opt`` changes
    the evaluated structure (hashed into cell identity upstream);
    ``lanes`` is execution-only.  Values are deterministic in
    ``(locked, original, metrics, key_samples, seed, effort, opt,
    input_samples)`` and independent of ``lanes`` by the lane-parity
    contract.
    """
    names: list[str] = []
    for name in metrics:
        metric_info(name)
        if name not in names:
            names.append(name)
    if not names:
        raise ValueError("at least one metric name is required")
    start = time.perf_counter()
    sweep, oracle_queries = build_sweep(
        locked,
        original,
        key_samples=key_samples,
        seed=seed,
        effort=effort,
        opt=opt,
        lanes=lanes,
        input_samples=input_samples,
    )
    computed = {}
    for name in names:
        result = metric_info(name).fn(sweep)
        computed[name] = {"value": result.value, "detail": result.detail}
    return CorruptionReport(
        scheme=locked.scheme,
        circuit=original.name,
        key_size=locked.key_size,
        num_inputs=len(sweep.input_names),
        num_outputs=len(sweep.output_names),
        input_samples=sweep.width,
        exhaustive_inputs=sweep.exhaustive_inputs,
        key_samples=key_samples,
        keys_sampled=len(sweep.wrong_keys),
        exhaustive_keys=sweep.exhaustive_keys,
        seed=seed,
        effort=effort,
        splitting_inputs=list(sweep.splitting_inputs),
        opt=resolve_opt(opt),
        oracle_queries=oracle_queries,
        elapsed_seconds=time.perf_counter() - start,
        metrics=computed,
    )
