"""The shared task executor: process pool + cache front-end.

:class:`Runner` is the single seam every experiment driver submits
work through.  It checks the :class:`~repro.runner.cache.ResultCache`
first, fans cache misses out over a ``ProcessPoolExecutor`` (``jobs``
workers), stores fresh artifacts back, and reports per-task progress
and timing.  Results always come back in submission order regardless
of completion order, so driver output is independent of scheduling.

:func:`map_parallel` is the lower-level pool primitive, also used by
:func:`repro.core.multikey.multikey_attack` for its ``2^N`` sub-tasks
— one pool implementation for the whole codebase.
"""

from __future__ import annotations

import sys
import time
from collections.abc import Callable, Sequence
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import TypeVar

from repro.runner.cache import ResultCache
from repro.runner.task import TaskResult, TaskSpec, task_worker

_T = TypeVar("_T")
_R = TypeVar("_R")

#: Progress callback: (result, completed_count, total_count).
ProgressFn = Callable[[TaskResult, int, int], None]


def map_parallel(
    fn: Callable[[_T], _R],
    items: Sequence[_T],
    processes: int | None = None,
) -> list[_R]:
    """``[fn(x) for x in items]`` on a process pool, order preserved.

    ``fn`` must be a module-level callable (pickled by reference).
    Degenerates to a plain loop for 0/1 items or ``processes=1``.
    """
    if len(items) <= 1 or processes == 1:
        return [fn(item) for item in items]
    import multiprocessing

    workers = min(len(items), processes or multiprocessing.cpu_count())
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(fn, items))


def chunk_evenly(items: Sequence[_T], chunks: int) -> list[list[_T]]:
    """Split ``items`` into at most ``chunks`` contiguous near-equal runs.

    Sizes differ by at most one and order is preserved; empty chunks
    are never returned.  This is the shard-to-worker assignment used by
    the sharded multi-key engine: contiguous runs keep each worker's
    solver warm across neighbouring sub-spaces.
    """
    if chunks < 1:
        raise ValueError("chunks must be positive")
    total = len(items)
    chunks = min(chunks, total)
    if chunks == 0:
        return []
    base, extra = divmod(total, chunks)
    out: list[list[_T]] = []
    index = 0
    for i in range(chunks):
        size = base + (1 if i < extra else 0)
        out.append(list(items[index : index + size]))
        index += size
    return out


def _invoke(fn: Callable[[dict], dict], params: dict) -> tuple[dict, float]:
    """Worker-side shim: run ``fn`` and time it where it executes."""
    start = time.perf_counter()
    artifact = fn(params)
    return artifact, time.perf_counter() - start


def print_progress(result: TaskResult, done: int, total: int) -> None:
    """Default progress reporter (stderr, one line per finished task)."""
    status = (
        "cached"
        if result.cached
        else f"{result.elapsed_seconds:.2f}s"
    )
    print(
        f"[{done}/{total}] {result.spec.describe()}: {status}",
        file=sys.stderr,
        flush=True,
    )


@dataclass
class Runner:
    """Process-pool task executor with an optional on-disk cache.

    Attributes:
        jobs: Worker processes for cache misses (1 = in-process serial).
        cache: Artifact store; ``None`` disables caching entirely.
        progress: Per-task completion callback (e.g.
            :func:`print_progress`); ``None`` is silent.
    """

    jobs: int = 1
    cache: ResultCache | None = None
    progress: ProgressFn | None = None

    def pending_count(self, specs: Sequence[TaskSpec]) -> int:
        """How many of ``specs`` would actually execute (cache misses).

        A cheap pre-flight probe (no hit/miss accounting): drivers use
        it to decide whether parallelism belongs to this runner's pool
        or inside the single task that is about to run.
        """
        if self.cache is None:
            return len(specs)
        return sum(1 for spec in specs if not self.cache.contains(spec))

    def run(self, specs: Sequence[TaskSpec]) -> list[TaskResult]:
        """Execute ``specs``; results in submission order."""
        total = len(specs)
        results: list[TaskResult | None] = [None] * total
        done = 0
        pending: list[tuple[int, TaskSpec]] = []

        for index, spec in enumerate(specs):
            entry = self.cache.load(spec) if self.cache else None
            if entry is not None:
                result = TaskResult(
                    spec=spec,
                    artifact=entry["artifact"],
                    elapsed_seconds=float(entry.get("elapsed_seconds", 0.0)),
                    cached=True,
                )
                results[index] = result
                done += 1
                if self.progress:
                    self.progress(result, done, total)
            else:
                pending.append((index, spec))

        if self.jobs > 1 and len(pending) > 1:
            done = self._run_pool(pending, results, done, total)
        else:
            for index, spec in pending:
                artifact, elapsed = _invoke(
                    task_worker(spec.kind), spec.worker_params
                )
                done = self._finish(
                    results, index, spec, artifact, elapsed, done, total
                )
        return [result for result in results if result is not None]

    def _run_pool(
        self,
        pending: list[tuple[int, TaskSpec]],
        results: list[TaskResult | None],
        done: int,
        total: int,
    ) -> int:
        workers = min(self.jobs, len(pending))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {
                pool.submit(
                    _invoke, task_worker(spec.kind), spec.worker_params
                ): (index, spec)
                for index, spec in pending
            }
            outstanding = set(futures)
            while outstanding:
                finished, outstanding = wait(
                    outstanding, return_when=FIRST_COMPLETED
                )
                for future in finished:
                    index, spec = futures[future]
                    artifact, elapsed = future.result()
                    done = self._finish(
                        results, index, spec, artifact, elapsed, done, total
                    )
        return done

    def _finish(
        self,
        results: list[TaskResult | None],
        index: int,
        spec: TaskSpec,
        artifact: dict,
        elapsed: float,
        done: int,
        total: int,
    ) -> int:
        if self.cache is not None:
            self.cache.store(spec, artifact, elapsed)
        result = TaskResult(
            spec=spec, artifact=artifact, elapsed_seconds=elapsed, cached=False
        )
        results[index] = result
        done += 1
        if self.progress:
            self.progress(result, done, total)
        return done
