"""The shared task executor: process pool + cache front-end.

:class:`Runner` is the single seam every experiment driver submits
work through.  It checks the :class:`~repro.runner.cache.ResultCache`
first, fans cache misses out over a ``ProcessPoolExecutor`` (``jobs``
workers), stores fresh artifacts back, and reports per-task progress
and timing.  :meth:`Runner.run_iter` streams ``(index, result)`` pairs
as tasks complete; :meth:`Runner.run` collects them back into
submission order, so driver output is independent of scheduling.

Two optional hooks feed the service layer's event stream
(:mod:`repro.service`): ``on_dispatch`` fires when a cache miss starts
executing, ``progress`` when any task (cached or fresh) completes.
``should_stop`` is polled between completions for cooperative
cancellation — a stopped run returns the results it already has.

:func:`map_parallel` is the lower-level pool primitive, also used by
:func:`repro.core.multikey.multikey_attack` for its ``2^N`` sub-tasks
— one pool implementation for the whole codebase.
"""

from __future__ import annotations

import sys
import threading
import time
from collections.abc import Callable, Iterator, Sequence
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import TypeVar

from repro.runner.cache import ResultCache
from repro.runner.task import TaskResult, TaskSpec, task_worker

_T = TypeVar("_T")
_R = TypeVar("_R")

#: Progress callback: (result, completed_count, total_count).
ProgressFn = Callable[[TaskResult, int, int], None]

#: Dispatch callback: (spec, submission_index), when execution starts.
DispatchFn = Callable[[TaskSpec, int], None]

#: How often (seconds) a pooled run polls ``should_stop`` while waiting.
_STOP_POLL_SECONDS = 0.1


def map_parallel(
    fn: Callable[[_T], _R],
    items: Sequence[_T],
    processes: int | None = None,
) -> list[_R]:
    """``[fn(x) for x in items]`` on a process pool, order preserved.

    ``fn`` must be a module-level callable (pickled by reference).
    Degenerates to a plain loop for 0/1 items or ``processes=1``.
    """
    if len(items) <= 1 or processes == 1:
        return [fn(item) for item in items]
    import multiprocessing

    workers = min(len(items), processes or multiprocessing.cpu_count())
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(fn, items))


def chunk_evenly(items: Sequence[_T], chunks: int) -> list[list[_T]]:
    """Split ``items`` into at most ``chunks`` contiguous near-equal runs.

    Sizes differ by at most one and order is preserved; empty chunks
    are never returned.  This is the shard-to-worker assignment used by
    the sharded multi-key engine: contiguous runs keep each worker's
    solver warm across neighbouring sub-spaces.
    """
    if chunks < 1:
        raise ValueError("chunks must be positive")
    total = len(items)
    chunks = min(chunks, total)
    if chunks == 0:
        return []
    base, extra = divmod(total, chunks)
    out: list[list[_T]] = []
    index = 0
    for i in range(chunks):
        size = base + (1 if i < extra else 0)
        out.append(list(items[index : index + size]))
        index += size
    return out


def _invoke(fn: Callable[[dict], dict], params: dict) -> tuple[dict, float]:
    """Worker-side shim: run ``fn`` and time it where it executes."""
    start = time.perf_counter()
    artifact = fn(params)
    return artifact, time.perf_counter() - start


def progress_line(
    describe: str, cached: bool, elapsed_seconds: float, done: int, total: int
) -> str:
    """The canonical one-line rendering of a finished task.

    Shared by :func:`print_progress` (the classic stderr callback) and
    the service layer's event renderer
    (:func:`repro.service.render.render_event`), so CLI progress lines
    and daemon-streamed ``cell_done`` events are formatted by exactly
    one piece of code.
    """
    status = "cached" if cached else f"{elapsed_seconds:.2f}s"
    return f"[{done}/{total}] {describe}: {status}"


def print_progress(result: TaskResult, done: int, total: int) -> None:
    """Default progress reporter (stderr, one line per finished task)."""
    print(
        progress_line(
            result.spec.describe(),
            result.cached,
            result.elapsed_seconds,
            done,
            total,
        ),
        file=sys.stderr,
        flush=True,
    )


@dataclass
class Runner:
    """Process-pool task executor with an optional on-disk cache.

    Attributes:
        jobs: Worker processes for cache misses (1 = in-process serial).
        cache: Artifact store; ``None`` disables caching entirely.
        progress: Per-task completion callback (e.g.
            :func:`print_progress`); ``None`` is silent.
        on_dispatch: Called with ``(spec, index)`` when a cache miss
            starts executing (cached tasks never dispatch).  The
            service layer turns this into ``cell_started`` events.
        should_stop: Polled between task completions; returning
            ``True`` cancels anything not yet running and ends the run
            early with whatever already finished (cooperative
            cancellation — a task in flight is never interrupted).
        slots: Optional semaphore bounding how many tasks execute at
            once *across runners*.  Each task acquires a slot before it
            runs (in-process or on the pool) and releases it on
            completion, which is how concurrent service jobs share one
            worker budget instead of multiplying pools.
    """

    jobs: int = 1
    cache: ResultCache | None = None
    progress: ProgressFn | None = None
    on_dispatch: DispatchFn | None = None
    should_stop: Callable[[], bool] | None = None
    slots: threading.Semaphore | None = None

    def pending_count(self, specs: Sequence[TaskSpec]) -> int:
        """How many of ``specs`` would actually execute (cache misses).

        A cheap pre-flight probe (no hit/miss accounting): drivers use
        it to decide whether parallelism belongs to this runner's pool
        or inside the single task that is about to run.
        """
        if self.cache is None:
            return len(specs)
        return sum(1 for spec in specs if not self.cache.contains(spec))

    def run(self, specs: Sequence[TaskSpec]) -> list[TaskResult]:
        """Execute ``specs``; results in submission order.

        A cancelled run (``should_stop``) returns only the results that
        completed, still in submission order.
        """
        results: list[TaskResult | None] = [None] * len(specs)
        for index, result in self.run_iter(specs):
            results[index] = result
        return [result for result in results if result is not None]

    def run_iter(
        self, specs: Sequence[TaskSpec]
    ) -> Iterator[tuple[int, TaskResult]]:
        """Execute ``specs``, yielding ``(index, result)`` as they finish.

        Cache hits come first (in submission order, without
        dispatching); misses follow in completion order.  ``progress``
        fires exactly once per yielded result, before the yield, so
        callback-driven consumers and iterator-driven consumers observe
        the same sequence.
        """
        total = len(specs)
        done = 0
        pending: list[tuple[int, TaskSpec]] = []

        for index, spec in enumerate(specs):
            if self._stopped():
                return
            entry = self.cache.load(spec) if self.cache else None
            if entry is not None:
                result = TaskResult(
                    spec=spec,
                    artifact=entry["artifact"],
                    elapsed_seconds=float(entry.get("elapsed_seconds", 0.0)),
                    cached=True,
                    index=index,
                )
                done += 1
                if self.progress:
                    self.progress(result, done, total)
                yield index, result
            else:
                pending.append((index, spec))

        if self.jobs > 1 and len(pending) > 1:
            yield from self._iter_pool(pending, done, total)
        else:
            for index, spec in pending:
                if self._stopped() or not self._acquire_slot():
                    return
                try:
                    if self.on_dispatch:
                        self.on_dispatch(spec, index)
                    artifact, elapsed = _invoke(
                        task_worker(spec.kind), spec.worker_params
                    )
                finally:
                    self._release_slot()
                done += 1
                yield index, self._finish(
                    index, spec, artifact, elapsed, done, total
                )

    def _stopped(self) -> bool:
        return self.should_stop is not None and self.should_stop()

    def _acquire_slot(self) -> bool:
        """Take one shared execution slot (False: stopped while waiting)."""
        if self.slots is None:
            return True
        while not self.slots.acquire(timeout=_STOP_POLL_SECONDS):
            if self._stopped():
                return False
        return True

    def _release_slot(self) -> None:
        if self.slots is not None:
            self.slots.release()

    def _iter_pool(
        self,
        pending: list[tuple[int, TaskSpec]],
        done: int,
        total: int,
    ) -> Iterator[tuple[int, TaskResult]]:
        workers = min(self.jobs, len(pending))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {}
            outstanding = set()
            queue = iter(pending)
            waiting = next(queue, None)
            stopping = False
            try:
                while waiting is not None or outstanding:
                    if not stopping and self._stopped():
                        # Cooperative stop: drop queued futures but
                        # keep draining the ones already on a worker —
                        # the pool shutdown waits for them anyway, so
                        # their results must be cached and yielded,
                        # not discarded ("anything already running
                        # completes and is kept").
                        stopping = True
                        waiting = None
                        outstanding = {
                            future
                            for future in outstanding
                            if not future.cancel()
                        }
                        if not outstanding:
                            break
                    # Top up: submit while shared slots are available.
                    # Each in-flight task holds one slot, released by
                    # its done callback (so this never deadlocks on
                    # our own completed-but-unprocessed work).
                    while waiting is not None:
                        if self.slots is not None and not self.slots.acquire(
                            blocking=False
                        ):
                            break
                        index, spec = waiting
                        future = pool.submit(
                            _invoke, task_worker(spec.kind), spec.worker_params
                        )
                        if self.slots is not None:
                            future.add_done_callback(
                                lambda _f: self._release_slot()
                            )
                        futures[future] = (index, spec)
                        outstanding.add(future)
                        if self.on_dispatch:
                            self.on_dispatch(spec, index)
                        waiting = next(queue, None)
                    if not outstanding:
                        # Every slot is held by other runners; idle a
                        # tick and retry (polling should_stop).
                        time.sleep(_STOP_POLL_SECONDS)
                        continue
                    # A finite timeout keeps the loop responsive to
                    # cancellation and to slots freed by other runners.
                    timeout = (
                        _STOP_POLL_SECONDS
                        if (self.should_stop or waiting is not None
                            or self.slots is not None)
                        else None
                    )
                    finished, outstanding = wait(
                        outstanding,
                        timeout=timeout,
                        return_when=FIRST_COMPLETED,
                    )
                    for future in finished:
                        index, spec = futures[future]
                        artifact, elapsed = future.result()
                        done += 1
                        yield index, self._finish(
                            index, spec, artifact, elapsed, done, total
                        )
            finally:
                # Early exit (cancel or a closed consumer): drop queued
                # work so the with-block shutdown only waits for tasks
                # already on a worker.  Cancelled futures still run
                # their done callbacks, so held slots are returned.
                for future in outstanding:
                    future.cancel()

    def _finish(
        self,
        index: int,
        spec: TaskSpec,
        artifact: dict,
        elapsed: float,
        done: int,
        total: int,
    ) -> TaskResult:
        if self.cache is not None:
            self.cache.store(spec, artifact, elapsed)
        result = TaskResult(
            spec=spec,
            artifact=artifact,
            elapsed_seconds=elapsed,
            cached=False,
            index=index,
        )
        if self.progress:
            self.progress(result, done, total)
        return result
