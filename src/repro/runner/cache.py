"""On-disk result cache keyed by task content hashes.

Layout (one JSON artifact per task)::

    <cache_root>/
        scenario_cell/<sha256>.json
        multikey_shard_chunk/<sha256>.json
        ...

Each artifact records the spec that produced it (kind + params), the
worker's compute time, a creation timestamp and the result payload.
Entries are written atomically (temp file + rename) so a crashed or
parallel run never leaves a half-written artifact; unreadable entries
are treated as misses and overwritten.

Invalidation is by deletion: remove a ``<kind>`` directory (or the
whole root) to force recomputation, or bump
:data:`repro.runner.task.CACHE_FORMAT_VERSION` in code when the
artifact schema itself changes.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path

from repro.runner.task import CACHE_FORMAT_VERSION, TaskSpec

#: Environment override for the default cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR``, else ``~/.cache/repro-lock``."""
    override = os.environ.get(CACHE_DIR_ENV, "")
    if override:
        return Path(override).expanduser()
    return Path("~/.cache/repro-lock").expanduser()


class ResultCache:
    """A directory of content-addressed experiment artifacts."""

    def __init__(self, root: str | Path | None = None) -> None:
        root = Path(root).expanduser() if root is not None else default_cache_dir()
        self.root = root
        self.hits = 0
        self.misses = 0

    def path_for(self, spec: TaskSpec) -> Path:
        """Artifact file for ``spec``: ``<root>/<kind>/<sha256>.json``."""
        return self.root / spec.kind / f"{spec.cache_key}.json"

    def contains(self, spec: TaskSpec) -> bool:
        """Whether an artifact file exists for ``spec`` (no validation,
        no hit/miss accounting) — a cheap pre-flight probe."""
        return self.path_for(spec).is_file()

    def load(self, spec: TaskSpec) -> dict | None:
        """The stored entry for ``spec``, or ``None`` on a miss.

        The returned dict has at least ``artifact`` and
        ``elapsed_seconds``.  Corrupt or schema-mismatched files count
        as misses.
        """
        path = self.path_for(spec)
        try:
            with open(path, encoding="utf-8") as handle:
                entry = json.load(handle)
        except (OSError, json.JSONDecodeError):
            self.misses += 1
            return None
        if (
            not isinstance(entry, dict)
            or entry.get("version") != CACHE_FORMAT_VERSION
            or "artifact" not in entry
        ):
            self.misses += 1
            return None
        self.hits += 1
        return entry

    def store(
        self, spec: TaskSpec, artifact: dict, elapsed_seconds: float
    ) -> Path:
        """Atomically persist ``artifact`` for ``spec``; returns the path."""
        path = self.path_for(spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "version": CACHE_FORMAT_VERSION,
            "kind": spec.kind,
            "key": spec.cache_key,
            "params": dict(spec.params),
            "elapsed_seconds": elapsed_seconds,
            "created_unix": time.time(),
            "artifact": artifact,
        }
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(entry, handle, indent=1, sort_keys=True)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path

    def clear(self, kind: str | None = None) -> int:
        """Delete artifacts (all, or one ``kind``); returns the count.

        Also reaps orphaned ``.tmp-*`` files left by a killed writer;
        those do not contribute to the returned count.
        """
        roots = [self.root / kind] if kind else [self.root]
        removed = 0
        for root in roots:
            if not root.is_dir():
                continue
            for path in sorted(root.rglob("*.json")):
                try:
                    path.unlink()
                except OSError:
                    continue
                if not path.name.startswith("."):
                    removed += 1
        return removed

    def entry_count(self, kind: str | None = None) -> int:
        """Number of stored artifacts (optionally for one task kind)."""
        root = self.root / kind if kind else self.root
        if not root.is_dir():
            return 0
        return sum(
            1
            for path in root.rglob("*.json")
            if not path.name.startswith(".")
        )

    def __repr__(self) -> str:
        return (
            f"ResultCache({str(self.root)!r}, hits={self.hits}, "
            f"misses={self.misses})"
        )
