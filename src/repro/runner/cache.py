"""Content-hash-keyed result cache over a pluggable storage backend.

:class:`ResultCache` owns the cache *policy* — mapping a
:class:`~repro.runner.task.TaskSpec` to its ``(kind, sha256)``
identity, the entry schema (spec provenance + compute time + payload),
schema-version validation and hit/miss accounting.  The *storage*
lives behind a :class:`~repro.runner.backends.CacheBackend` chosen at
construction (``directory`` | ``sharded`` | ``memory``; see
:mod:`repro.runner.backends` for the registry and the "adding a cache
backend" guide in ``docs/ARCHITECTURE.md``).

Default layout (the ``directory`` backend, one JSON artifact per
task)::

    <cache_root>/
        scenario_cell/<sha256>.json
        multikey_shard_chunk/<sha256>.json
        ...

Each artifact records the spec that produced it (kind + params), the
worker's compute time, a creation timestamp and the result payload.
Entries are written atomically (temp file + rename) so a crashed or
parallel run never leaves a half-written artifact; unreadable entries
are treated as misses and overwritten.

Invalidation is by deletion: ``clear()`` (or removing a ``<kind>``
directory / the whole root for on-disk backends), or bump
:data:`repro.runner.task.CACHE_FORMAT_VERSION` in code when the
artifact schema itself changes.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

from repro.runner.backends import CacheBackend, create_cache_backend
from repro.runner.task import CACHE_FORMAT_VERSION, TaskSpec

#: Environment override for the default cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR``, else ``~/.cache/repro-lock``."""
    override = os.environ.get(CACHE_DIR_ENV, "")
    if override:
        return Path(override).expanduser()
    return Path("~/.cache/repro-lock").expanduser()


class ResultCache:
    """A store of content-addressed experiment artifacts.

    Args:
        root: Store directory for on-disk backends (``None``: the
            process default, see :func:`default_cache_dir`).  Ignored
            by backends without a filesystem root.
        backend: A registered backend name (``"directory"`` |
            ``"sharded"`` | ``"memory"``), an already-built
            :class:`~repro.runner.backends.CacheBackend` instance, or
            ``None`` for the process default
            (``$REPRO_CACHE_BACKEND``, else ``directory``).
    """

    def __init__(
        self,
        root: str | Path | None = None,
        backend: str | CacheBackend | None = None,
    ) -> None:
        if backend is None or isinstance(backend, str):
            backend = create_cache_backend(backend, root=root)
        self.backend = backend
        self.hits = 0
        self.misses = 0

    @property
    def root(self) -> Path | None:
        """The backend's filesystem root (``None`` for in-memory)."""
        return getattr(self.backend, "root", None)

    def path_for(self, spec: TaskSpec) -> Path:
        """Artifact file for ``spec`` (on-disk backends only)."""
        path_for = getattr(self.backend, "path_for", None)
        if path_for is None:
            raise TypeError(
                f"{self.backend.describe()} backend has no artifact paths"
            )
        return path_for(spec.kind, spec.cache_key)

    def contains(self, spec: TaskSpec) -> bool:
        """Whether an artifact exists for ``spec`` (no validation,
        no hit/miss accounting) — a cheap pre-flight probe."""
        return self.backend.contains(spec.kind, spec.cache_key)

    def load(self, spec: TaskSpec) -> dict | None:
        """The stored entry for ``spec``, or ``None`` on a miss.

        The returned dict has at least ``artifact`` and
        ``elapsed_seconds``.  Corrupt or schema-mismatched entries
        count as misses.
        """
        entry = self.backend.load(spec.kind, spec.cache_key)
        if (
            not isinstance(entry, dict)
            or entry.get("version") != CACHE_FORMAT_VERSION
            or "artifact" not in entry
        ):
            self.misses += 1
            return None
        self.hits += 1
        return entry

    def store(
        self, spec: TaskSpec, artifact: dict, elapsed_seconds: float
    ) -> Path | None:
        """Atomically persist ``artifact`` for ``spec``.

        Returns the artifact path for on-disk backends, ``None``
        otherwise.
        """
        entry = {
            "version": CACHE_FORMAT_VERSION,
            "kind": spec.kind,
            "key": spec.cache_key,
            "params": dict(spec.params),
            "elapsed_seconds": elapsed_seconds,
            "created_unix": time.time(),
            "artifact": artifact,
        }
        self.backend.store(spec.kind, spec.cache_key, entry)
        if hasattr(self.backend, "path_for"):
            return self.path_for(spec)
        return None

    def clear(self, kind: str | None = None) -> int:
        """Delete artifacts (all, or one ``kind``); returns the count.

        On-disk backends also reap orphaned ``.tmp-*`` files left by a
        killed writer; those do not contribute to the returned count.
        """
        return self.backend.clear(kind)

    def entry_count(self, kind: str | None = None) -> int:
        """Number of stored artifacts (optionally for one task kind)."""
        return self.backend.entry_count(kind)

    def kinds(self) -> list[str]:
        """Sorted task kinds with at least one stored artifact."""
        return self.backend.kinds()

    def describe(self) -> str:
        """One-line backend description (the ``cache info`` header)."""
        return self.backend.describe()

    def __repr__(self) -> str:
        return (
            f"ResultCache({self.describe()}, hits={self.hits}, "
            f"misses={self.misses})"
        )
