"""Parallel experiment runner with an on-disk result cache.

The orchestration seam for every experiment driver: drivers describe
their rows/cells as declarative :class:`~repro.runner.task.TaskSpec`
objects, and a :class:`~repro.runner.executor.Runner` executes them —
checking the content-hash-keyed :class:`~repro.runner.cache.ResultCache`
first, fanning misses out over a process pool, and persisting fresh
artifacts as JSON for the next run.

Typical use::

    from repro.runner import ResultCache, Runner
    from repro.experiments.table2 import run_table2

    runner = Runner(jobs=4, cache=ResultCache("~/.cache/repro-lock"))
    result = run_table2(circuits=("c880", "c1355"), runner=runner)
"""

from repro.runner.backends import (
    CACHE_BACKEND_ENV,
    DEFAULT_CACHE_BACKEND,
    CacheBackend,
    CacheBackendInfo,
    cache_backend_info,
    create_cache_backend,
    default_cache_backend_name,
    register_cache_backend,
    registered_cache_backends,
    resolve_cache_backend_name,
)
from repro.runner.cache import CACHE_DIR_ENV, ResultCache, default_cache_dir
from repro.runner.executor import (
    Runner,
    chunk_evenly,
    map_parallel,
    print_progress,
    progress_line,
)
from repro.runner.task import (
    CACHE_FORMAT_VERSION,
    TaskResult,
    TaskSpec,
    canonical_json,
    register_task,
    registered_kinds,
    task_worker,
)

__all__ = [
    "CACHE_BACKEND_ENV",
    "CACHE_DIR_ENV",
    "CACHE_FORMAT_VERSION",
    "DEFAULT_CACHE_BACKEND",
    "CacheBackend",
    "CacheBackendInfo",
    "ResultCache",
    "Runner",
    "TaskResult",
    "TaskSpec",
    "cache_backend_info",
    "canonical_json",
    "chunk_evenly",
    "create_cache_backend",
    "default_cache_backend_name",
    "default_cache_dir",
    "map_parallel",
    "print_progress",
    "progress_line",
    "register_cache_backend",
    "register_task",
    "registered_cache_backends",
    "registered_kinds",
    "resolve_cache_backend_name",
    "task_worker",
]
