"""Pluggable cache storage backends behind one protocol.

:class:`~repro.runner.cache.ResultCache` is the *policy* half of the
result cache — spec hashing, entry schema, hit/miss accounting.  The
*storage* half lives here, behind the :class:`CacheBackend` protocol,
registry-style like solvers/schemes/attacks: backends self-register
with :func:`register_cache_backend`, callers resolve by name through
:func:`create_cache_backend`, and a typo fails fast with the roster.

Shipped backends:

``directory``
    The classic flat layout, one JSON artifact per task::

        <root>/<kind>/<sha256>.json

``sharded``
    The same artifacts fanned out by content-hash prefix, so thousands
    of entries never share one directory (directory listings and
    creates stay O(entries / 256) when many daemons pound one store)::

        <root>/<kind>/<sha256[:2]>/<sha256>.json

``memory``
    A thread-safe in-process dict — for tests and ephemeral services
    that want cache *semantics* (dedup within one process) without a
    disk footprint.

Both directory flavours write atomically (temp file in the destination
directory + ``os.replace``), so a crashed writer or two processes
racing on the same content hash never leave a torn artifact visible:
readers see the old bytes, the new bytes, or a miss — never half a
file.  Unreadable or truncated artifacts are treated as misses and
overwritten, never raised.

The default backend is ``directory`` (compatible with every existing
on-disk cache); set the ``REPRO_CACHE_BACKEND`` environment variable
to change the process default without threading a flag through every
call site.
"""

from __future__ import annotations

import copy
import json
import os
import tempfile
import threading
from collections.abc import Callable
from dataclasses import dataclass
from pathlib import Path
from typing import Protocol, runtime_checkable

#: The always-available default backend (the classic flat layout).
DEFAULT_CACHE_BACKEND = "directory"

#: Environment variable naming the default backend for this process.
CACHE_BACKEND_ENV = "REPRO_CACHE_BACKEND"


@runtime_checkable
class CacheBackend(Protocol):
    """What :class:`~repro.runner.cache.ResultCache` needs from storage.

    Entries are opaque JSON-serializable dicts addressed by
    ``(kind, key)`` — the task kind and its content hash.  Backends
    must be safe for concurrent use from multiple threads *and* (for
    shared on-disk stores) multiple processes: a load racing a store
    returns the old entry, the new entry, or ``None`` — never a torn
    read — and corrupt stored bytes are a miss, not an exception.
    """

    def load(self, kind: str, key: str) -> dict | None:
        """The stored entry, or ``None`` on a miss (or corrupt bytes)."""
        ...

    def store(self, kind: str, key: str, entry: dict) -> None:
        """Persist ``entry`` (atomically, for shared stores)."""
        ...

    def contains(self, kind: str, key: str) -> bool:
        """Cheap existence probe (no validation, no accounting)."""
        ...

    def clear(self, kind: str | None = None) -> int:
        """Delete entries (all, or one kind); returns the count."""
        ...

    def entry_count(self, kind: str | None = None) -> int:
        """Number of stored entries (optionally for one kind)."""
        ...

    def kinds(self) -> list[str]:
        """Sorted task kinds with at least one stored entry."""
        ...

    def describe(self) -> str:
        """One-line human description (``cache info`` header)."""
        ...


# ----------------------------------------------------------------------
# Registry (mirrors repro.sat.registry / repro.locking.registry)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class CacheBackendInfo:
    """Registry record for one cache storage backend."""

    name: str
    factory: Callable[..., CacheBackend]
    description: str = ""
    #: Whether the backend persists to a filesystem root (directory
    #: flavours).  Backends without one report ``root`` as ``None``.
    persistent: bool = True


_REGISTRY: dict[str, CacheBackendInfo] = {}


def register_cache_backend(
    name: str, *, description: str = "", persistent: bool = True
):
    """Class/function decorator registering a backend factory.

    The factory is called as ``factory(root)`` where ``root`` is a
    :class:`~pathlib.Path` for persistent backends and ``None``
    otherwise.
    """

    def decorate(factory):
        existing = _REGISTRY.get(name)
        if existing is not None and existing.factory is not factory:
            raise ValueError(f"cache backend {name!r} is already registered")
        _REGISTRY[name] = CacheBackendInfo(
            name=name,
            factory=factory,
            description=description,
            persistent=persistent,
        )
        return factory

    return decorate


def cache_backend_info(name: str) -> CacheBackendInfo:
    """Resolve a backend name; unknown names raise with the roster."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ValueError(
            f"unknown cache backend {name!r} (registered: {known})"
        ) from None


def registered_cache_backends() -> list[str]:
    """Sorted names of every registered backend."""
    return sorted(_REGISTRY)


def default_cache_backend_name() -> str:
    """The process-wide default (``REPRO_CACHE_BACKEND`` or directory)."""
    return os.environ.get(CACHE_BACKEND_ENV) or DEFAULT_CACHE_BACKEND


def resolve_cache_backend_name(name: str | None) -> str:
    """``name`` if given, else the process default — always validated."""
    resolved = name or default_cache_backend_name()
    cache_backend_info(resolved)
    return resolved


def create_cache_backend(
    name: str | None = None, root: str | Path | None = None
) -> CacheBackend:
    """Instantiate a backend by name (``None`` -> process default).

    ``root`` is the store directory for persistent backends (``None``
    defers to the caller's default dir) and ignored otherwise.
    """
    info = cache_backend_info(resolve_cache_backend_name(name))
    if info.persistent:
        return info.factory(Path(root).expanduser() if root else None)
    return info.factory(None)


# ----------------------------------------------------------------------
# Shared on-disk helpers
# ----------------------------------------------------------------------


def read_json_entry(path: Path) -> dict | None:
    """Load one artifact file; any unreadable/torn file is a miss."""
    try:
        with open(path, encoding="utf-8") as handle:
            entry = json.load(handle)
    except (OSError, ValueError):
        return None
    return entry if isinstance(entry, dict) else None


def write_json_atomic(path: Path, entry: dict) -> None:
    """Write ``entry`` via temp-file-then-rename in ``path``'s directory.

    ``os.replace`` is atomic within a filesystem, so concurrent writers
    racing on the same path each publish a complete file — last writer
    wins, readers never observe a partial one.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=".tmp-", suffix=".json"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(entry, handle, indent=1, sort_keys=True)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


# ----------------------------------------------------------------------
# Backends
# ----------------------------------------------------------------------


@register_cache_backend(
    "directory",
    description="flat on-disk store: <root>/<kind>/<sha256>.json",
)
class DirectoryBackend:
    """The classic flat directory layout."""

    def __init__(self, root: str | Path | None = None) -> None:
        from repro.runner.cache import default_cache_dir

        self.root = (
            Path(root).expanduser() if root is not None else default_cache_dir()
        )

    def path_for(self, kind: str, key: str) -> Path:
        return self.root / kind / f"{key}.json"

    def load(self, kind: str, key: str) -> dict | None:
        return read_json_entry(self.path_for(kind, key))

    def store(self, kind: str, key: str, entry: dict) -> None:
        write_json_atomic(self.path_for(kind, key), entry)

    def contains(self, kind: str, key: str) -> bool:
        return self.path_for(kind, key).is_file()

    def clear(self, kind: str | None = None) -> int:
        roots = [self.root / kind] if kind else [self.root]
        removed = 0
        for root in roots:
            if not root.is_dir():
                continue
            for path in sorted(root.rglob("*.json")):
                try:
                    path.unlink()
                except OSError:
                    continue
                if not path.name.startswith("."):
                    removed += 1
        return removed

    def entry_count(self, kind: str | None = None) -> int:
        root = self.root / kind if kind else self.root
        if not root.is_dir():
            return 0
        return sum(
            1 for path in root.rglob("*.json") if not path.name.startswith(".")
        )

    def kinds(self) -> list[str]:
        if not self.root.is_dir():
            return []
        return sorted(
            p.name
            for p in self.root.iterdir()
            if p.is_dir() and self.entry_count(p.name)
        )

    def describe(self) -> str:
        return f"directory ({self.root})"


@register_cache_backend(
    "sharded",
    description=(
        "hash-prefix-sharded on-disk store: "
        "<root>/<kind>/<sha256[:2]>/<sha256>.json"
    ),
)
class ShardedDirectoryBackend(DirectoryBackend):
    """Fan artifacts out by content-hash prefix.

    A flat ``<kind>/`` directory with tens of thousands of entries
    makes every create and listing crawl; two hex characters of the
    SHA-256 split it into 256 balanced buckets.  Everything else —
    atomic writes, torn-file-as-miss reads, recursive counting and
    clearing — is inherited, and because counting/clearing recurse
    they also see any flat-layout entries left by the ``directory``
    backend in the same root (loads do not: the two layouts address
    different paths, so point the daemons sharing a store at one
    backend).
    """

    #: Hex characters of the content hash used as the bucket name.
    prefix_len = 2

    def path_for(self, kind: str, key: str) -> Path:
        return self.root / kind / key[: self.prefix_len] / f"{key}.json"

    def describe(self) -> str:
        return f"sharded ({self.root}, prefix={self.prefix_len})"


@register_cache_backend(
    "memory",
    description="thread-safe in-process dict (tests, ephemeral services)",
    persistent=False,
)
class MemoryBackend:
    """An in-process store with the same semantics as the disk ones."""

    def __init__(self, root: object = None) -> None:
        self.root = None
        self._entries: dict[tuple[str, str], dict] = {}
        self._lock = threading.Lock()

    def load(self, kind: str, key: str) -> dict | None:
        with self._lock:
            entry = self._entries.get((kind, key))
        # Deep-copied both ways so callers can't mutate stored state.
        return copy.deepcopy(entry) if entry is not None else None

    def store(self, kind: str, key: str, entry: dict) -> None:
        entry = copy.deepcopy(entry)
        with self._lock:
            self._entries[(kind, key)] = entry

    def contains(self, kind: str, key: str) -> bool:
        with self._lock:
            return (kind, key) in self._entries

    def clear(self, kind: str | None = None) -> int:
        with self._lock:
            doomed = [
                pair
                for pair in self._entries
                if kind is None or pair[0] == kind
            ]
            for pair in doomed:
                del self._entries[pair]
        return len(doomed)

    def entry_count(self, kind: str | None = None) -> int:
        with self._lock:
            return sum(
                1
                for pair in self._entries
                if kind is None or pair[0] == kind
            )

    def kinds(self) -> list[str]:
        with self._lock:
            return sorted({pair[0] for pair in self._entries})

    def describe(self) -> str:
        return "memory (in-process)"
