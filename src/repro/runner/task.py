"""Structured experiment tasks and their content-hash identities.

A :class:`TaskSpec` is a fully declarative description of one unit of
experiment work — a Table 2 row, a Table 1 cell, an ablation arm —
as a ``kind`` (the registered worker) plus JSON-serializable
``params``.  Its :attr:`~TaskSpec.cache_key` is a SHA-256 over the
canonical JSON of ``(kind, params, format version)``, so the same
logical task hashes identically across processes, machines and
``PYTHONHASHSEED`` values, which is what makes the on-disk result
cache (:mod:`repro.runner.cache`) safe to share.

Execution-only knobs that cannot change the *result* — inner
parallelism, pool sizes — go in ``context`` instead of ``params``:
they are merged into the worker's arguments but excluded from the
hash, so a row computed with ``--jobs 4`` is a cache hit for a later
serial run.
"""

from __future__ import annotations

import hashlib
import json
from collections.abc import Callable, Mapping
from dataclasses import dataclass, field

#: Bump to invalidate every existing cache entry (artifact schema change).
CACHE_FORMAT_VERSION = 1


def canonical_json(value: object) -> str:
    """Deterministic JSON: sorted keys, no whitespace, no NaN.

    Raises ``TypeError``/``ValueError`` for anything that is not plain
    JSON data — task params must be declarative, not live objects.
    """
    return json.dumps(
        value, sort_keys=True, separators=(",", ":"), allow_nan=False
    )


@dataclass(frozen=True)
class TaskSpec:
    """One cacheable unit of experiment work.

    Attributes:
        kind: Registered worker name (see :func:`register_task`).
        params: JSON-serializable inputs that determine the result.
        context: Execution-only knobs merged into the worker call but
            excluded from :attr:`cache_key`.
        label: Human-readable tag for progress lines (not hashed).
    """

    kind: str
    params: Mapping[str, object]
    context: Mapping[str, object] | None = None
    label: str = ""

    @property
    def cache_key(self) -> str:
        payload = canonical_json(
            {
                "kind": self.kind,
                "params": self.params,
                "version": CACHE_FORMAT_VERSION,
            }
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    @property
    def worker_params(self) -> dict[str, object]:
        merged = dict(self.params)
        if self.context:
            merged.update(self.context)
        return merged

    def describe(self) -> str:
        """Human-readable tag: the label, else ``kind:hash-prefix``."""
        return self.label or f"{self.kind}:{self.cache_key[:10]}"


@dataclass
class TaskResult:
    """A task's artifact plus provenance.

    ``elapsed_seconds`` is the worker's compute time — for a cache hit
    it is the *original* compute time read back from the artifact, so
    reports stay meaningful on warm runs.  ``index`` is the task's
    submission position within its run (set by the runner), which is
    what lets streaming consumers pair completions with dispatches.
    """

    spec: TaskSpec
    artifact: dict
    elapsed_seconds: float
    cached: bool = False
    index: int | None = None


#: kind -> worker.  Workers are module-level callables taking the merged
#: param dict and returning a JSON-serializable artifact dict; they must
#: live at module scope so the process pool can pickle them by reference.
_REGISTRY: dict[str, Callable[[dict], dict]] = {}


def register_task(kind: str) -> Callable[[Callable[[dict], dict]], Callable]:
    """Decorator registering ``fn`` as the worker for ``kind``."""

    def decorate(fn: Callable[[dict], dict]) -> Callable[[dict], dict]:
        existing = _REGISTRY.get(kind)
        if existing is not None and existing is not fn:
            raise ValueError(f"task kind {kind!r} already registered")
        _REGISTRY[kind] = fn
        return fn

    return decorate


def task_worker(kind: str) -> Callable[[dict], dict]:
    """Resolve a registered worker; raises ``KeyError`` with the roster."""
    try:
        return _REGISTRY[kind]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "<none>"
        raise KeyError(
            f"no task worker registered for {kind!r} (known: {known})"
        ) from None


def registered_kinds() -> list[str]:
    """Sorted names of every registered task kind."""
    return sorted(_REGISTRY)
