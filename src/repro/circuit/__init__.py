"""Gate-level combinational circuit substrate.

Provides the netlist intermediate representation used throughout the
library, ISCAS ``.bench`` file I/O, bit-parallel simulation, structural
analysis (cones, levels, key-controlled gate counting — the paper's
splitting-input heuristic needs these), CNF encoding, and SAT-based
combinational equivalence checking.
"""

from repro.circuit.analysis import (
    fanin_cone,
    fanin_support,
    fanout_cone,
    key_controlled_gates,
    levelize,
    rank_inputs_by_key_influence,
)
from repro.circuit.bench import format_bench, parse_bench
from repro.circuit.cnf import NetlistEncoding, encode_netlist
from repro.circuit.equivalence import EquivalenceResult, check_equivalence, build_miter
from repro.circuit.gates import GateType
from repro.circuit.netlist import Gate, Netlist, NetlistError
from repro.circuit.simulator import (
    evaluate,
    exhaustive_patterns,
    simulate,
    truth_table,
)
from repro.circuit.verilog import format_verilog, write_verilog_file

__all__ = [
    "GateType",
    "Gate",
    "Netlist",
    "NetlistError",
    "parse_bench",
    "format_bench",
    "simulate",
    "evaluate",
    "truth_table",
    "exhaustive_patterns",
    "levelize",
    "fanin_cone",
    "fanout_cone",
    "fanin_support",
    "key_controlled_gates",
    "rank_inputs_by_key_influence",
    "encode_netlist",
    "NetlistEncoding",
    "check_equivalence",
    "build_miter",
    "EquivalenceResult",
    "format_verilog",
    "write_verilog_file",
]
