"""Gate-level combinational circuit substrate.

Provides the netlist intermediate representation used throughout the
library, ISCAS ``.bench`` file I/O, bit-parallel simulation, structural
analysis (cones, levels, key-controlled gate counting — the paper's
splitting-input heuristic needs these), CNF encoding, and SAT-based
combinational equivalence checking.
"""

from repro.circuit.analysis import (
    fanin_cone,
    fanin_support,
    fanout_cone,
    key_controlled_gates,
    levelize,
    rank_inputs_by_key_influence,
)
from repro.circuit.bench import format_bench, parse_bench
from repro.circuit.cnf import (
    CompiledEncoding,
    NetlistEncoding,
    encode_compiled,
    encode_netlist,
)
from repro.circuit.compiled import CompiledCircuit, CompileError
from repro.circuit.equivalence import EquivalenceResult, check_equivalence, build_miter
from repro.circuit.gates import GateType
from repro.circuit.netlist import Gate, Netlist, NetlistError
from repro.circuit.opt import (
    OPT_LEVELS,
    OptimizedCircuit,
    default_opt,
    optimize_compiled,
    resolve_opt,
    run_pass,
    set_default_opt,
)
from repro.circuit.simulator import (
    evaluate,
    exhaustive_patterns,
    simulate,
    simulate_reference,
    truth_table,
)
from repro.circuit.verilog import format_verilog, write_verilog_file

__all__ = [
    "GateType",
    "Gate",
    "Netlist",
    "NetlistError",
    "CompiledCircuit",
    "CompileError",
    "parse_bench",
    "format_bench",
    "simulate",
    "simulate_reference",
    "evaluate",
    "truth_table",
    "exhaustive_patterns",
    "levelize",
    "fanin_cone",
    "fanout_cone",
    "fanin_support",
    "key_controlled_gates",
    "rank_inputs_by_key_influence",
    "encode_netlist",
    "encode_compiled",
    "NetlistEncoding",
    "CompiledEncoding",
    "check_equivalence",
    "build_miter",
    "EquivalenceResult",
    "OPT_LEVELS",
    "OptimizedCircuit",
    "optimize_compiled",
    "run_pass",
    "default_opt",
    "set_default_opt",
    "resolve_opt",
    "format_verilog",
    "write_verilog_file",
]
