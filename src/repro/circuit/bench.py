"""ISCAS ``.bench`` format reader and writer.

The `.bench` dialect understood here is the combinational subset used
by the ISCAS'85 suite::

    # comment
    INPUT(G1)
    OUTPUT(G17)
    G10 = NAND(G1, G3)
    G11 = NOT(G10)

plus our extensions ``MUX(sel, d1, d0)``, ``CONST0()``/``CONST1()`` and
``BUF``/``BUFF`` as synonyms.  Sequential elements (DFF) are rejected:
the locking literature and this paper operate on combinational cores.
"""

from __future__ import annotations

import re

from repro.circuit.gates import GateType
from repro.circuit.netlist import Netlist, NetlistError

_DECL_RE = re.compile(r"^(INPUT|OUTPUT)\s*\(\s*([^)]+?)\s*\)$", re.IGNORECASE)
_GATE_RE = re.compile(r"^([^=\s]+)\s*=\s*([A-Za-z01]+)\s*\(\s*(.*?)\s*\)$")

_TYPE_ALIASES = {
    "BUFF": GateType.BUF,
    "BUF": GateType.BUF,
    "NOT": GateType.NOT,
    "AND": GateType.AND,
    "OR": GateType.OR,
    "NAND": GateType.NAND,
    "NOR": GateType.NOR,
    "XOR": GateType.XOR,
    "XNOR": GateType.XNOR,
    "MUX": GateType.MUX,
    "CONST0": GateType.CONST0,
    "CONST1": GateType.CONST1,
}


def parse_bench(text: str, name: str = "bench") -> Netlist:
    """Parse `.bench` text into a :class:`Netlist`."""
    netlist = Netlist(name=name)
    outputs: list[str] = []
    for line_no, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        decl = _DECL_RE.match(line)
        if decl:
            kind, net = decl.group(1).upper(), decl.group(2)
            if kind == "INPUT":
                netlist.add_input(net)
            else:
                outputs.append(net)
            continue
        gate = _GATE_RE.match(line)
        if gate:
            out, type_name, args = gate.groups()
            type_name = type_name.upper()
            if type_name == "DFF":
                raise NetlistError(
                    f"line {line_no}: sequential element DFF is unsupported "
                    "(combinational cores only)"
                )
            gtype = _TYPE_ALIASES.get(type_name)
            if gtype is None:
                raise NetlistError(
                    f"line {line_no}: unknown gate type {type_name!r}"
                )
            fanins = [a.strip() for a in args.split(",") if a.strip()]
            netlist.add_gate(out, gtype, fanins)
            continue
        raise NetlistError(f"line {line_no}: cannot parse {raw_line!r}")
    netlist.set_outputs(outputs)
    netlist.validate()
    return netlist


def format_bench(netlist: Netlist, header_comments: tuple[str, ...] = ()) -> str:
    """Serialize a :class:`Netlist` to `.bench` text."""
    lines = [f"# {comment}" for comment in header_comments]
    lines.append(f"# {netlist.name}")
    lines.append(
        f"# {len(netlist.inputs)} inputs, {len(netlist.outputs)} outputs, "
        f"{netlist.num_gates} gates"
    )
    lines.extend(f"INPUT({net})" for net in netlist.inputs)
    lines.extend(f"OUTPUT({net})" for net in netlist.outputs)
    for gate in netlist.topological_order():
        args = ", ".join(gate.inputs)
        lines.append(f"{gate.output} = {gate.gtype.value}({args})")
    return "\n".join(lines) + "\n"


def read_bench_file(path: str, name: str | None = None) -> Netlist:
    with open(path) as handle:
        text = handle.read()
    import os

    return parse_bench(text, name=name or os.path.basename(path))


def write_bench_file(netlist: Netlist, path: str) -> None:
    with open(path, "w") as handle:
        handle.write(format_bench(netlist))
