"""Gate primitives for the netlist IR.

Word-level evaluation works on Python integers used as bit vectors, so
one :func:`eval_gate` call simulates up to thousands of input patterns
at once (the mask argument bounds the vector width).
"""

from __future__ import annotations

from enum import Enum
from collections.abc import Sequence


class GateType(str, Enum):
    """Supported combinational gate types.

    ``MUX`` takes inputs ``(sel, d1, d0)`` and selects ``d1`` when
    ``sel`` is 1.  ``CONST0``/``CONST1`` take no inputs.
    """

    AND = "AND"
    OR = "OR"
    NAND = "NAND"
    NOR = "NOR"
    XOR = "XOR"
    XNOR = "XNOR"
    NOT = "NOT"
    BUF = "BUF"
    MUX = "MUX"
    CONST0 = "CONST0"
    CONST1 = "CONST1"

    def __str__(self) -> str:  # keep bench files tidy
        return self.value


# (min_arity, max_arity); None means unbounded.
_ARITY: dict[GateType, tuple[int, int | None]] = {
    GateType.AND: (1, None),
    GateType.OR: (1, None),
    GateType.NAND: (1, None),
    GateType.NOR: (1, None),
    GateType.XOR: (1, None),
    GateType.XNOR: (1, None),
    GateType.NOT: (1, 1),
    GateType.BUF: (1, 1),
    GateType.MUX: (3, 3),
    GateType.CONST0: (0, 0),
    GateType.CONST1: (0, 0),
}

_INVERTED = {
    GateType.AND: GateType.NAND,
    GateType.NAND: GateType.AND,
    GateType.OR: GateType.NOR,
    GateType.NOR: GateType.OR,
    GateType.XOR: GateType.XNOR,
    GateType.XNOR: GateType.XOR,
    GateType.BUF: GateType.NOT,
    GateType.NOT: GateType.BUF,
    GateType.CONST0: GateType.CONST1,
    GateType.CONST1: GateType.CONST0,
}


def valid_arity(gtype: GateType, arity: int) -> bool:
    """Check that ``arity`` inputs are legal for ``gtype``."""
    lo, hi = _ARITY[gtype]
    return arity >= lo and (hi is None or arity <= hi)


def inverted_type(gtype: GateType) -> GateType | None:
    """The gate type computing the complement, or None (MUX)."""
    return _INVERTED.get(gtype)


def eval_gate(gtype: GateType, ins: Sequence[int], mask: int) -> int:
    """Evaluate a gate on bit-vector operands.

    Each operand is an integer whose bits are independent simulation
    lanes; ``mask`` has a 1 in every active lane and bounds inversions.
    """
    if gtype is GateType.AND or gtype is GateType.NAND:
        acc = mask
        for value in ins:
            acc &= value
        return acc if gtype is GateType.AND else acc ^ mask
    if gtype is GateType.OR or gtype is GateType.NOR:
        acc = 0
        for value in ins:
            acc |= value
        return acc if gtype is GateType.OR else acc ^ mask
    if gtype is GateType.XOR or gtype is GateType.XNOR:
        acc = 0
        for value in ins:
            acc ^= value
        return acc if gtype is GateType.XOR else acc ^ mask
    if gtype is GateType.NOT:
        return ins[0] ^ mask
    if gtype is GateType.BUF:
        return ins[0]
    if gtype is GateType.MUX:
        sel, d1, d0 = ins
        return (sel & d1) | ((sel ^ mask) & d0)
    if gtype is GateType.CONST0:
        return 0
    if gtype is GateType.CONST1:
        return mask
    raise ValueError(f"unknown gate type {gtype!r}")


def eval_gate_const(gtype: GateType, ins: Sequence[int]) -> int:
    """Single-bit evaluation convenience (mask = 1)."""
    return eval_gate(gtype, ins, 1)
