"""SAT-based combinational equivalence checking (CEC).

Builds the classic miter — two circuits sharing primary inputs, output
pairs XORed and ORed into one signal — and asks the SAT solver whether
that signal can be 1.  UNSAT proves functional equivalence; SAT yields
a counterexample input pattern.

Fig. 1(b) of the paper is verified this way: the MUX composition of
two "incorrect" keys must be equivalent to the original circuit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuit.cnf import encode_compiled
from repro.circuit.gates import GateType
from repro.circuit.netlist import Netlist, NetlistError, fresh_net_namer
from repro.sat import CNF
from repro.sat.solver import Solver


@dataclass
class EquivalenceResult:
    """Outcome of a CEC run."""

    equivalent: bool
    counterexample: dict[str, int] | None = None
    outputs_a: dict[str, int] | None = None
    outputs_b: dict[str, int] | None = None
    solver_stats: dict[str, int] | None = None

    def __bool__(self) -> bool:
        return self.equivalent


def _check_interfaces(a: Netlist, b: Netlist) -> None:
    if set(a.inputs) != set(b.inputs):
        raise NetlistError(
            "circuits have different primary inputs: "
            f"{sorted(set(a.inputs) ^ set(b.inputs))}"
        )
    if set(a.outputs) != set(b.outputs):
        raise NetlistError(
            "circuits have different primary outputs: "
            f"{sorted(set(a.outputs) ^ set(b.outputs))}"
        )


def build_miter(a: Netlist, b: Netlist, miter_output: str = "miter_out") -> Netlist:
    """Structural miter netlist: one output, 1 iff some output differs."""
    _check_interfaces(a, b)
    left = a.renamed("mA_", keep_inputs=a.inputs)
    right = b.renamed("mB_", keep_inputs=b.inputs)
    miter = left.merged_with(right, name=f"miter({a.name},{b.name})")
    namer = fresh_net_namer(miter, "mx_")
    diff_nets = []
    for out in a.outputs:
        diff = namer()
        miter.add_gate(diff, GateType.XOR, ["mA_" + out, "mB_" + out])
        diff_nets.append(diff)
    miter.add_gate(miter_output, GateType.OR, diff_nets)
    miter.set_outputs([miter_output])
    return miter


def check_equivalence(a: Netlist, b: Netlist) -> EquivalenceResult:
    """Prove or refute functional equivalence of two netlists.

    The circuits must have identical input and output name sets; input
    order may differ.
    """
    _check_interfaces(a, b)
    cnf = CNF()
    enc_a = encode_compiled(a.compile(), cnf)
    shared_inputs = {net: enc_a.var(net) for net in a.inputs}
    enc_b = encode_compiled(b.compile(), cnf, share=shared_inputs)

    # XOR each output pair, OR the XORs, assert the OR.
    diff_vars = []
    for out in a.outputs:
        diff = cnf.new_var()
        va, vb = enc_a.var(out), enc_b.var(out)
        cnf.add_clauses(
            [
                [-diff, va, vb],
                [-diff, -va, -vb],
                [diff, -va, vb],
                [diff, va, -vb],
            ]
        )
        diff_vars.append(diff)
    cnf.add_clause(diff_vars)

    solver = cnf.to_solver()
    if not solver.solve():
        return EquivalenceResult(
            equivalent=True, solver_stats=solver.stats.as_dict()
        )
    counterexample = {
        net: int(solver.model_value(enc_a.var(net)) or 0) for net in a.inputs
    }
    outputs_a = {
        net: int(solver.model_value(enc_a.var(net)) or 0) for net in a.outputs
    }
    outputs_b = {
        net: int(solver.model_value(enc_b.var(net)) or 0) for net in b.outputs
    }
    return EquivalenceResult(
        equivalent=False,
        counterexample=counterexample,
        outputs_a=outputs_a,
        outputs_b=outputs_b,
        solver_stats=solver.stats.as_dict(),
    )
