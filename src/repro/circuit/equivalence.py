"""SAT-based combinational equivalence checking (CEC).

Builds the classic miter — two circuits sharing primary inputs, output
pairs XORed and ORed into one signal — and asks the SAT solver whether
that signal can be 1.  UNSAT proves functional equivalence; SAT yields
a counterexample input pattern.

Fig. 1(b) of the paper is verified this way: the MUX composition of
two "incorrect" keys must be equivalent to the original circuit.

``presim_width`` bolts a bit-parallel random-simulation prefilter onto
the SAT check: both circuits are swept over that many shared random
patterns through the lane-backend lever (:mod:`repro.circuit.lanes`),
and any mismatching lane is returned as a counterexample without ever
building the miter.  On real-circuit-scale inequivalent pairs the
prefilter answers in one vectorized sweep; equivalent pairs fall
through to the SAT proof unchanged.  It is off by default so existing
callers keep their exact solver statistics.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.circuit.cnf import encode_compiled
from repro.circuit.gates import GateType
from repro.circuit.netlist import Netlist, NetlistError, fresh_net_namer
from repro.circuit.simulator import random_stimuli_words
from repro.sat import CNF
from repro.sat.solver import Solver


@dataclass
class EquivalenceResult:
    """Outcome of a CEC run."""

    equivalent: bool
    counterexample: dict[str, int] | None = None
    outputs_a: dict[str, int] | None = None
    outputs_b: dict[str, int] | None = None
    solver_stats: dict[str, int] | None = None

    def __bool__(self) -> bool:
        return self.equivalent


def _check_interfaces(a: Netlist, b: Netlist) -> None:
    if set(a.inputs) != set(b.inputs):
        raise NetlistError(
            "circuits have different primary inputs: "
            f"{sorted(set(a.inputs) ^ set(b.inputs))}"
        )
    if set(a.outputs) != set(b.outputs):
        raise NetlistError(
            "circuits have different primary outputs: "
            f"{sorted(set(a.outputs) ^ set(b.outputs))}"
        )


def build_miter(a: Netlist, b: Netlist, miter_output: str = "miter_out") -> Netlist:
    """Structural miter netlist: one output, 1 iff some output differs."""
    _check_interfaces(a, b)
    left = a.renamed("mA_", keep_inputs=a.inputs)
    right = b.renamed("mB_", keep_inputs=b.inputs)
    miter = left.merged_with(right, name=f"miter({a.name},{b.name})")
    namer = fresh_net_namer(miter, "mx_")
    diff_nets = []
    for out in a.outputs:
        diff = namer()
        miter.add_gate(diff, GateType.XOR, ["mA_" + out, "mB_" + out])
        diff_nets.append(diff)
    miter.add_gate(miter_output, GateType.OR, diff_nets)
    miter.set_outputs([miter_output])
    return miter


def _presimulate(
    a: Netlist, b: Netlist, width: int, lanes: str | None, seed: int
) -> EquivalenceResult | None:
    """Random-simulation counterexample search; ``None`` = no mismatch."""
    ca, cb = a.compile(), b.compile()
    stimuli = random_stimuli_words(ca.inputs, width, random.Random(seed))
    words_a = [stimuli[net] for net in ca.inputs]
    words_b = [stimuli[net] for net in cb.inputs]
    out_a = dict(zip(ca.outputs, ca.eval_outputs_wide(words_a, width, lanes)))
    out_b = dict(zip(cb.outputs, cb.eval_outputs_wide(words_b, width, lanes)))
    lane = None
    for net in ca.outputs:
        diff = out_a[net] ^ out_b[net]
        if diff:
            low = (diff & -diff).bit_length() - 1
            lane = low if lane is None else min(lane, low)
    if lane is None:
        return None
    return EquivalenceResult(
        equivalent=False,
        counterexample={
            net: (stimuli[net] >> lane) & 1 for net in ca.inputs
        },
        outputs_a={net: (out_a[net] >> lane) & 1 for net in ca.outputs},
        outputs_b={net: (out_b[net] >> lane) & 1 for net in ca.outputs},
    )


def check_equivalence(
    a: Netlist,
    b: Netlist,
    presim_width: int = 0,
    lanes: str | None = None,
    presim_seed: int = 0,
) -> EquivalenceResult:
    """Prove or refute functional equivalence of two netlists.

    The circuits must have identical input and output name sets; input
    order may differ.  ``presim_width > 0`` first sweeps that many
    shared random patterns through the lane lever (see the module
    docstring); a mismatch short-circuits the SAT proof and reports
    ``solver_stats=None``.
    """
    _check_interfaces(a, b)
    if presim_width > 0:
        refuted = _presimulate(a, b, presim_width, lanes, presim_seed)
        if refuted is not None:
            return refuted
    cnf = CNF()
    enc_a = encode_compiled(a.compile(), cnf)
    shared_inputs = {net: enc_a.var(net) for net in a.inputs}
    enc_b = encode_compiled(b.compile(), cnf, share=shared_inputs)

    # XOR each output pair, OR the XORs, assert the OR.
    diff_vars = []
    for out in a.outputs:
        diff = cnf.new_var()
        va, vb = enc_a.var(out), enc_b.var(out)
        cnf.add_clauses(
            [
                [-diff, va, vb],
                [-diff, -va, -vb],
                [diff, -va, vb],
                [diff, va, -vb],
            ]
        )
        diff_vars.append(diff)
    cnf.add_clause(diff_vars)

    solver = cnf.to_solver()
    if not solver.solve():
        return EquivalenceResult(
            equivalent=True, solver_stats=solver.stats.as_dict()
        )
    counterexample = {
        net: int(solver.model_value(enc_a.var(net)) or 0) for net in a.inputs
    }
    outputs_a = {
        net: int(solver.model_value(enc_a.var(net)) or 0) for net in a.outputs
    }
    outputs_b = {
        net: int(solver.model_value(enc_b.var(net)) or 0) for net in b.outputs
    }
    return EquivalenceResult(
        equivalent=False,
        counterexample=counterexample,
        outputs_a=outputs_a,
        outputs_b=outputs_b,
        solver_stats=solver.stats.as_dict(),
    )
