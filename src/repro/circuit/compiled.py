"""Compiled circuit IR: the integer-indexed evaluation core.

A :class:`CompiledCircuit` is built once from a :class:`Netlist` and is
the shared substrate for every hot path — simulation, oracle queries,
CNF encoding, equivalence checking, structural analysis.  Compilation
interns every net into a dense integer *slot* (primary inputs first, in
declaration order, then gate outputs in cached topological order) and
lowers each gate to an arity-specialized opcode over slot indices, so
evaluation is a single sweep over flat parallel arrays with list
indexing instead of per-gate dict lookups and per-call topological
sorts.

The division of labour with :class:`Netlist` is deliberate:

* ``Netlist`` stays the **mutable construction IR** — locking schemes
  and synthesis passes splice, fold and rebuild it freely.
* ``CompiledCircuit`` is the **immutable evaluation IR** — content-
  hashable (so it can key result caches) and safe to share across
  consumers.  ``netlist.compile()`` is the single seam between the
  two; it caches the compiled form and invalidates on structural
  change (see :meth:`repro.circuit.netlist.Netlist.compile`).
"""

from __future__ import annotations

import hashlib
from collections.abc import Iterable, Mapping, Sequence
from typing import TYPE_CHECKING

from repro.circuit.gates import GateType, valid_arity

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (netlist imports us)
    from repro.circuit.netlist import Gate, Netlist


class CompileError(Exception):
    """The netlist cannot be lowered (undriven fanin, undriven output)."""


# Arity-specialized opcodes.  The 2-input forms cover the vast majority
# of gates in every circuit family here; the *_N forms loop.
_AND2 = 0
_OR2 = 1
_XOR2 = 2
_NAND2 = 3
_NOR2 = 4
_XNOR2 = 5
_NOT = 6
_BUF = 7
_MUX = 8
_CONST0 = 9
_CONST1 = 10
_AND_N = 11
_OR_N = 12
_XOR_N = 13
_NAND_N = 14
_NOR_N = 15
_XNOR_N = 16

_BINARY_OP = {
    GateType.AND: _AND2,
    GateType.OR: _OR2,
    GateType.XOR: _XOR2,
    GateType.NAND: _NAND2,
    GateType.NOR: _NOR2,
    GateType.XNOR: _XNOR2,
}
_NARY_OP = {
    GateType.AND: _AND_N,
    GateType.OR: _OR_N,
    GateType.XOR: _XOR_N,
    GateType.NAND: _NAND_N,
    GateType.NOR: _NOR_N,
    GateType.XNOR: _XNOR_N,
}
# Single-fanin AND(a) == BUF(a), NAND(a) == NOT(a), etc.
#: How the lane backend binarizes n-ary opcodes: a left fold of the
#: base binary opcode with the inverted form fused into the tail.
#: :meth:`CompiledCircuit.lane_stage_hint` mirrors this to predict the
#: vector stage count without importing numpy.
_NARY_FOLD = {
    _AND_N: (_AND2, _AND2),
    _NAND_N: (_AND2, _NAND2),
    _OR_N: (_OR2, _OR2),
    _NOR_N: (_OR2, _NOR2),
    _XOR_N: (_XOR2, _XOR2),
    _XNOR_N: (_XOR2, _XNOR2),
}

_UNARY_OP = {
    GateType.AND: _BUF,
    GateType.OR: _BUF,
    GateType.XOR: _BUF,
    GateType.BUF: _BUF,
    GateType.NAND: _NOT,
    GateType.NOR: _NOT,
    GateType.XNOR: _NOT,
    GateType.NOT: _NOT,
}


def exhaustive_words(num_inputs: int) -> list[int]:
    """Bit-parallel stimuli covering all ``2**num_inputs`` patterns.

    Entry *j* is the word driving input *j*: lane ``p`` holds bit ``j``
    of the pattern index ``p`` (input 0 is the LSB of the index).
    """
    if num_inputs < 0:
        raise ValueError("num_inputs must be non-negative")
    if num_inputs > 24:
        raise ValueError("exhaustive simulation beyond 24 inputs is unreasonable")
    total = 1 << num_inputs
    words = []
    for j in range(num_inputs):
        period = 1 << (j + 1)
        half = 1 << j
        block = ((1 << half) - 1) << half  # 'half' zeros then 'half' ones
        value = 0
        for start in range(0, total, period):
            value |= block << start
        words.append(value)
    return words


class CompiledCircuit:
    """Immutable, integer-indexed form of a combinational netlist.

    Treat every attribute as read-only; the instance is shared by the
    owning netlist's compile cache and by any consumer that captured it
    (oracles, encoders, the runner cache).
    """

    __slots__ = (
        "name",
        "inputs",
        "outputs",
        "num_slots",
        "net_names",
        "slot_of",
        "output_slots",
        "gates",
        "gate_types",
        "gate_output_slots",
        "gate_fanin_slots",
        "_program",
        "_scratch",
        "_pattern_words",
        "_lane_program",
        "_stage_hint",
        "_fanout_slots",
        "_driver",
        "_content_hash",
        "_optimized",
        "_tainted_cache",
    )

    def __init__(self, netlist: "Netlist"):
        order = netlist.topological_order()
        slot_of: dict[str, int] = {}
        for net in netlist.inputs:
            slot_of[net] = len(slot_of)
        for gate in order:
            slot_of[gate.output] = len(slot_of)

        self.name = netlist.name
        self.inputs = tuple(netlist.inputs)
        self.outputs = tuple(netlist.outputs)
        self.num_slots = len(slot_of)
        self.slot_of = slot_of
        names = [""] * self.num_slots
        for net, slot in slot_of.items():
            names[slot] = net
        self.net_names = tuple(names)
        try:
            self.output_slots = tuple(slot_of[net] for net in netlist.outputs)
        except KeyError as exc:
            raise CompileError(f"primary output {exc.args[0]!r} is undriven") from None

        self.gates = tuple(order)
        self.gate_types = tuple(g.gtype for g in order)
        self.gate_output_slots = tuple(slot_of[g.output] for g in order)
        fanin_slots = []
        for gate in order:
            try:
                fanin_slots.append(tuple(slot_of[src] for src in gate.inputs))
            except KeyError as exc:
                raise CompileError(
                    f"gate {gate.output!r} reads undriven net {exc.args[0]!r}"
                ) from None
        self.gate_fanin_slots = tuple(fanin_slots)
        self._program = tuple(
            _lower(g.gtype, out, fanins)
            for g, out, fanins in zip(order, self.gate_output_slots, fanin_slots)
        )
        self._scratch = [0] * self.num_slots
        self._pattern_words = [0] * len(self.inputs)
        self._lane_program = None
        self._stage_hint: tuple[int, int] | None = None
        self._fanout_slots: tuple[tuple[int, ...], ...] | None = None
        self._driver: tuple[int, ...] | None = None
        self._content_hash: str | None = None
        self._optimized: dict | None = None
        self._tainted_cache: dict[tuple[int, ...], tuple[bool, ...]] | None = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_inputs(self) -> int:
        return len(self.inputs)

    @property
    def num_gates(self) -> int:
        return len(self.gates)

    def slot(self, net: str) -> int:
        """Dense slot index of a net (KeyError for unknown nets)."""
        return self.slot_of[net]

    def fanout_slots(self) -> tuple[tuple[int, ...], ...]:
        """Per slot, the output slots of the gates reading it (cached)."""
        cached = self._fanout_slots
        if cached is None:
            readers: list[list[int]] = [[] for _ in range(self.num_slots)]
            for out, fanins in zip(self.gate_output_slots, self.gate_fanin_slots):
                for src in fanins:
                    readers[src].append(out)
            cached = tuple(tuple(r) for r in readers)
            self._fanout_slots = cached
        return cached

    def levels(self) -> list[int]:
        """Topological level per slot (primary inputs are level 0)."""
        levels = [0] * self.num_slots
        for out, fanins in zip(self.gate_output_slots, self.gate_fanin_slots):
            levels[out] = 1 + max((levels[s] for s in fanins), default=0)
        return levels

    def tainted_slots(self, seeds: Iterable[int]) -> list[bool]:
        """Taint propagation: slots transitively depending on ``seeds``.

        One forward sweep over the gate arrays; seed slots themselves
        are marked.  This is the compiled form of key-controlled-gate
        analysis.  Results are cached per seed set (normalized to a
        sorted tuple), so repeated miter builds over the same circuit —
        every shard-chunk worker calls this with the same key slots —
        pay for the sweep once; a fresh list is returned each call, so
        callers may mutate their copy freely.
        """
        key = tuple(sorted(set(seeds)))
        cache = self._tainted_cache
        if cache is None:
            cache = {}
            self._tainted_cache = cache
        hit = cache.get(key)
        if hit is not None:
            return list(hit)
        tainted = [False] * self.num_slots
        for s in key:
            tainted[s] = True
        for out, fanins in zip(self.gate_output_slots, self.gate_fanin_slots):
            for s in fanins:
                if tainted[s]:
                    tainted[out] = True
                    break
        cache[key] = tuple(tainted)
        return tainted

    def fanin_cone_slots(self, slot: int) -> set[int]:
        """Transitive fanin of ``slot`` (inclusive), as slot indices."""
        driver = self._driver_index()
        cone: set[int] = set()
        stack = [slot]
        while stack:
            current = stack.pop()
            if current in cone:
                continue
            cone.add(current)
            gi = driver[current]
            if gi >= 0:
                stack.extend(self.gate_fanin_slots[gi])
        return cone

    def fanout_cone_slots(self, slot: int) -> set[int]:
        """Gate-output slots transitively depending on ``slot`` (exclusive)."""
        readers = self.fanout_slots()
        cone: set[int] = set()
        stack = list(readers[slot])
        while stack:
            current = stack.pop()
            if current in cone:
                continue
            cone.add(current)
            stack.extend(readers[current])
        return cone

    def _driver_index(self) -> tuple[int, ...]:
        """Per slot, the index of its driving gate (-1 for inputs); cached."""
        cached = self._driver
        if cached is None:
            driver = [-1] * self.num_slots
            for gi, out in enumerate(self.gate_output_slots):
                driver[out] = gi
            cached = tuple(driver)
            self._driver = cached
        return cached

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def eval_words(self, input_words: Sequence[int], mask: int) -> list[int]:
        """Evaluate bit-parallel words into a fresh slot-indexed list.

        ``input_words`` aligns with :attr:`inputs`; ``mask`` has a 1 in
        every active lane.  Returns the value of every slot.

        Each bit lane is an independent input pattern, so one sweep
        evaluates up to ``mask.bit_length()`` patterns::

            >>> from repro.circuit.netlist import Netlist
            >>> from repro.circuit.gates import GateType
            >>> netlist = Netlist("toy")
            >>> _ = netlist.add_input("a")
            >>> _ = netlist.add_input("b")
            >>> _ = netlist.add_gate("x", GateType.XOR, ["a", "b"])
            >>> netlist.set_outputs(["x"])
            >>> compiled = netlist.compile()
            >>> # Four lanes: a = 0,1,0,1 and b = 0,0,1,1 (LSB first).
            >>> values = compiled.eval_words([0b1010, 0b1100], 0b1111)
            >>> bin(values[compiled.slot_of["x"]])
            '0b110'
        """
        values = [0] * self.num_slots
        self._eval_into(values, input_words, mask)
        return values

    def _eval_into(
        self, values: list[int], input_words: Sequence[int], mask: int
    ) -> None:
        if len(input_words) != len(self.inputs):
            raise ValueError(
                f"expected {len(self.inputs)} input words, got {len(input_words)}"
            )
        for slot, word in enumerate(input_words):  # input slot i == i
            values[slot] = word & mask
        for op, out, operands in self._program:
            if op == _AND2:
                a, b = operands
                values[out] = values[a] & values[b]
            elif op == _NAND2:
                a, b = operands
                values[out] = (values[a] & values[b]) ^ mask
            elif op == _OR2:
                a, b = operands
                values[out] = values[a] | values[b]
            elif op == _NOR2:
                a, b = operands
                values[out] = (values[a] | values[b]) ^ mask
            elif op == _XOR2:
                a, b = operands
                values[out] = values[a] ^ values[b]
            elif op == _XNOR2:
                a, b = operands
                values[out] = values[a] ^ values[b] ^ mask
            elif op == _NOT:
                values[out] = values[operands] ^ mask
            elif op == _BUF:
                values[out] = values[operands]
            elif op == _MUX:
                s, d1, d0 = operands
                sel = values[s]
                values[out] = (sel & values[d1]) | ((sel ^ mask) & values[d0])
            elif op == _CONST0:
                values[out] = 0
            elif op == _CONST1:
                values[out] = mask
            elif op == _AND_N or op == _NAND_N:
                acc = mask
                for s in operands:
                    acc &= values[s]
                values[out] = acc if op == _AND_N else acc ^ mask
            elif op == _OR_N or op == _NOR_N:
                acc = 0
                for s in operands:
                    acc |= values[s]
                values[out] = acc if op == _OR_N else acc ^ mask
            else:  # _XOR_N / _XNOR_N
                acc = 0
                for s in operands:
                    acc ^= values[s]
                values[out] = acc if op == _XOR_N else acc ^ mask

    def eval_single(
        self, input_bits: Mapping[str, int] | Sequence[int]
    ) -> dict[str, int]:
        """One pattern, name-keyed result: output net -> bit.

        ``input_bits`` is a mapping from input name to 0/1 or a
        sequence aligned with :attr:`inputs`.  This is the shared
        normalization used by ``simulator.evaluate`` and
        ``Oracle.query``; keep validation and error wording here.
        """
        if isinstance(input_bits, Mapping):
            try:
                words = [input_bits[net] for net in self.inputs]
            except KeyError as exc:
                raise KeyError(
                    f"missing value for primary input {exc.args[0]!r}"
                ) from None
        else:
            if len(input_bits) != len(self.inputs):
                raise ValueError(
                    f"expected {len(self.inputs)} input bits, "
                    f"got {len(input_bits)}"
                )
            words = list(input_bits)
        return dict(zip(self.outputs, self.eval_outputs(words, 1)))

    def eval_outputs(self, input_words: Sequence[int], mask: int) -> list[int]:
        """Like :meth:`eval_words` but returns only primary-output words.

        Uses the preallocated scratch slot list — nothing escapes — so
        repeated calls allocate no per-call slot storage.
        """
        scratch = self._scratch
        self._eval_into(scratch, input_words, mask)
        return [scratch[s] for s in self.output_slots]

    def evaluate_pattern(self, pattern: int) -> int:
        """Single pattern, packed: bit *j* of ``pattern`` drives input *j*;
        bit *k* of the result is output *k*.

        Shares the preallocated scratch of :meth:`eval_outputs` — the
        unpacked input bits land in a reused word list, so repeated
        calls (the DIP loop queries one pattern per iteration) allocate
        no per-call storage.  ``benchmarks/test_bench_substrate.py``
        guards the per-call cost.
        """
        words = self._pattern_words
        for j in range(len(words)):
            words[j] = (pattern >> j) & 1
        scratch = self._scratch
        self._eval_into(scratch, words, 1)
        packed = 0
        for k, s in enumerate(self.output_slots):
            if scratch[s]:
                packed |= 1 << k
        return packed

    def eval_batch(
        self, patterns: Sequence[int], lanes: str | None = None
    ) -> list[int]:
        """Evaluate many packed patterns in one bit-parallel sweep.

        Pattern *p* occupies lane *p*; returns one packed output word
        per pattern (bit *k* = output *k*).  ``lanes`` picks the
        evaluation backend (``None`` -> the process default, normally
        ``"auto"``); both backends return identical results.
        """
        width = len(patterns)
        if width == 0:
            return []
        from repro.circuit.lanes import resolve_lanes

        if (
            resolve_lanes(
                lanes,
                num_gates=self.num_gates,
                width=width,
                stages=self.lane_stage_hint()[1],
            )
            == "numpy"
        ):
            return self.lane_program().eval_batch(patterns)
        mask = (1 << width) - 1
        words = []
        for j in range(len(self.inputs)):
            word = 0
            for lane, pattern in enumerate(patterns):
                if (pattern >> j) & 1:
                    word |= 1 << lane
            words.append(word)
        scratch = self._scratch
        self._eval_into(scratch, words, mask)
        out_words = [scratch[s] for s in self.output_slots]
        results = []
        for lane in range(width):
            packed = 0
            for k, word in enumerate(out_words):
                if (word >> lane) & 1:
                    packed |= 1 << k
            results.append(packed)
        return results

    def lane_stage_hint(self) -> tuple[int, int]:
        """``(vector_ops, vector_stages)`` the numpy program would run.

        Computed in pure python (building no :class:`LaneProgram`, so
        it is available without numpy) and cached.  ``auto`` lane
        resolution reads the ratio ``num_gates / stages`` as its
        level-width signal: opcode-homogeneous wide planes yield few
        stages with many ops each, deep arithmetic yields hundreds of
        near-empty stages.  BUF gates alias their fanin (no op);
        n-ary gates count as their binarized left-fold chain.
        """
        hint = self._stage_hint
        if hint is not None:
            return hint
        level = [0] * self.num_slots
        pairs: set[tuple[int, int]] = set()
        ops = 0
        for op, out, operands in self._program:
            if op == _BUF:
                level[out] = level[operands]
                continue
            if op == _NOT:
                lvl = level[operands] + 1
                pairs.add((lvl, _NOT))
                ops += 1
            elif op in (_CONST0, _CONST1):
                lvl = 1
                pairs.add((lvl, op))
                ops += 1
            elif op in _NARY_FOLD:
                base, last = _NARY_FOLD[op]
                lvl = 1 + max(level[v] for v in operands)
                for _ in range(len(operands) - 2):
                    pairs.add((lvl, base))
                    ops += 1
                    lvl += 1
                pairs.add((lvl, last))
                ops += 1
            else:  # MUX and the six binary opcodes
                lvl = 1 + max(level[v] for v in operands)
                pairs.add((lvl, op))
                ops += 1
            level[out] = lvl
        hint = (ops, len(pairs))
        self._stage_hint = hint
        return hint

    def lane_program(self):
        """The cached numpy :class:`repro.circuit.lanes.LaneProgram`.

        Built on first use; raises :class:`ModuleNotFoundError` when
        numpy is unavailable (``resolve_lanes`` never routes here in
        that case, so only explicit ``lanes="numpy"`` callers see it).
        """
        program = self._lane_program
        if program is None:
            from repro.circuit.lanes import LaneProgram

            program = LaneProgram(self)
            self._lane_program = program
        return program

    def eval_outputs_wide(
        self,
        input_words: Sequence[int],
        width: int,
        lanes: str | None = None,
    ) -> list[int]:
        """Width-aware :meth:`eval_outputs` behind the lane lever.

        ``width`` is the active lane count (the mask is derived);
        ``lanes=None`` resolves through the process default, so wide
        sweeps ride the numpy program when it is installed and the
        circuit is big enough to win.
        """
        if width < 1:
            raise ValueError("width must be positive")
        from repro.circuit.lanes import resolve_lanes

        mask = (1 << width) - 1
        if (
            resolve_lanes(
                lanes,
                num_gates=self.num_gates,
                width=width,
                stages=self.lane_stage_hint()[1],
            )
            == "numpy"
        ):
            return self.lane_program().eval_outputs(input_words, mask)
        return list(self.eval_outputs(input_words, mask))

    def eval_mapping(self, stimuli: Mapping[str, int], mask: int) -> list[int]:
        """Evaluate name-keyed stimuli; returns the full slot list."""
        try:
            words = [stimuli[name] for name in self.inputs]
        except KeyError as exc:
            raise KeyError(
                f"missing value for primary input {exc.args[0]!r}"
            ) from None
        return self.eval_words(words, mask)

    def truth_table_words(self) -> list[int]:
        """Exhaustive sweep: one ``2**n``-bit word per primary output."""
        n = len(self.inputs)
        words = exhaustive_words(n)
        values = self.eval_words(words, (1 << (1 << n)) - 1)
        return [values[s] for s in self.output_slots]

    # ------------------------------------------------------------------
    # Optimization
    # ------------------------------------------------------------------
    def optimized(self, opt: str | None = None):
        """The structurally optimized form of this circuit, cached.

        ``opt`` is an opt lever value (``None`` -> process default; see
        :mod:`repro.circuit.opt`).  Returns an
        :class:`~repro.circuit.opt.OptimizedCircuit` whose ``compiled``
        is parity-identical on the primary-output interface and whose
        provenance maps every original slot.  One result is cached per
        resolved level, so every consumer of a shared compiled circuit
        (oracle, encoder, miter) reuses the same optimization work —
        and, for opt-enabled cache identity, the same content hash.
        """
        from repro.circuit.opt import optimize_compiled, resolve_opt

        level = resolve_opt(opt)
        cache = self._optimized
        if cache is None:
            cache = {}
            self._optimized = cache
        hit = cache.get(level)
        if hit is None:
            hit = optimize_compiled(self, level)
            cache[level] = hit
        return hit

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    def _structure(self) -> tuple:
        return (
            self.inputs,
            self.outputs,
            tuple(
                (g.gtype.value, out, fanins)
                for g, out, fanins in zip(
                    self.gates, self.gate_output_slots, self.gate_fanin_slots
                )
            ),
        )

    def content_hash(self) -> str:
        """SHA-256 over the interned structure (stable across processes).

        Names of internal nets do not contribute — two netlists that
        intern to the same slot graph with the same interface hash
        identically — so the hash can key the runner's on-disk result
        cache without leaking gensym'd net names into cache identity.
        """
        cached = self._content_hash
        if cached is None:
            hasher = hashlib.sha256()
            hasher.update(repr(self._structure()).encode("utf-8"))
            cached = hasher.hexdigest()
            self._content_hash = cached
        return cached

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CompiledCircuit):
            return NotImplemented
        return self._structure() == other._structure()

    def __hash__(self) -> int:
        return hash(self._structure())

    def __repr__(self) -> str:
        return (
            f"CompiledCircuit({self.name!r}, inputs={len(self.inputs)}, "
            f"outputs={len(self.outputs)}, gates={len(self.gates)})"
        )


def _lower(gtype: GateType, out: int, fanins: tuple[int, ...]):
    """Lower one gate to an ``(opcode, out_slot, operands)`` triple."""
    if not valid_arity(gtype, len(fanins)):  # pragma: no cover - Gate validates
        raise CompileError(f"{gtype} with illegal arity {len(fanins)}")
    if gtype is GateType.MUX:
        return (_MUX, out, fanins)
    if gtype is GateType.CONST0:
        return (_CONST0, out, ())
    if gtype is GateType.CONST1:
        return (_CONST1, out, ())
    if len(fanins) == 1:
        return (_UNARY_OP[gtype], out, fanins[0])
    if len(fanins) == 2:
        return (_BINARY_OP[gtype], out, fanins)
    return (_NARY_OP[gtype], out, fanins)
