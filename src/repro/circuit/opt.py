"""Structural optimization passes over the compiled circuit IR.

Every hot path — big-int simulation, numpy lanes, Tseitin encoding,
:func:`~repro.attacks.sat_attack.build_miter_encoding`'s double cone —
pays for every structural gate it is handed, including buffers,
constants, duplicated subtrees and logic outside any output cone.  The
locking fabrics themselves are full of exactly this redundancy
(SARLock/Anti-SAT comparator trees, LUT MUX planes, the match-plane
fabric's duplicated XNOR taps and tied-input inverters), and *Modeling
Techniques for Logic Locking* (arxiv 2009.10131) shows that what you
hand the solver matters as much as the solver.  This module removes the
redundancy once, structurally, before any consumer pays for it.

The pass contract
-----------------

Each pass maps a :class:`~repro.circuit.compiled.CompiledCircuit` to a
smaller, *parity-identical* one:

* the primary-input list (names and order) is preserved exactly;
* the primary-output list (names and order) is preserved exactly, and
  every output computes bit-for-bit the same function of the inputs;
* every surviving internal value is tracked in a **slot-provenance
  map**: original slot -> ``("slot", new_slot)`` when the value lives
  on in the optimized circuit, ``("const", b)`` when the pass proved it
  constant, ``("dropped",)`` when cone pruning removed it.  The
  provenance invariant — ``orig_values[s] == new_values[new_slot]`` for
  every mapped slot under every stimulus — is property-tested in
  ``tests/circuit/test_opt.py``.

Passes (applied in this order by the pipeline):

``sweep``
    Constant propagation and algebraic sweeping: constants fold through
    every gate type, identity/absorbing operands are stripped,
    duplicate and complementary fanins cancel (``AND(x, !x) -> 0``,
    ``XOR(x, x) -> 0``), MUXes strength-reduce where no inverter must
    be invented (constant select, equal branches, ``MUX(s, 1, d)``,
    ``MUX(s, d, 0)``, ``MUX(s, !d, d) -> XOR``).
``chains``
    BUF/NOT chain collapse.  The IR has no fanin inversion flags, so
    this is an alias rewrite: ``BUF(x)`` and single-input
    AND/OR/XOR alias to their fanin, ``NOT(NOT(x))`` aliases to ``x``,
    single-input NAND/NOR/XNOR rewrite to ``NOT``.
``strash``
    Structural hashing: gates with an identical ``(type, fanins)``
    signature merge into the first occurrence; fanins of commutative
    gates are sorted first so operand order never blocks a merge.
``coi``
    Cone-of-influence pruning: gates outside the transitive fanin of
    the primary outputs are dropped.

The pipeline (:func:`optimize_compiled`) iterates the pass list to a
fixpoint, which is also what makes it idempotent:
``optimize(optimize(c))`` compiles to exactly ``optimize(c)``.

The ``opt`` lever
-----------------

Like the ``lanes`` lever (:mod:`repro.circuit.lanes`) there is one
process-wide knob resolved through :func:`resolve_opt`::

    opt="off"    # identity: byte-identical to the unoptimized path
    opt="light"  # linear passes only: sweep + chains + coi
    opt="full"   # light + structural hashing
    opt="auto"   # the default: currently resolves to "full"

``None`` means the process default (:func:`default_opt`), which reads
the ``REPRO_OPT`` environment variable and can be overridden with
:func:`set_default_opt`; the CLI's ``--opt`` flag sets both so runner
worker processes inherit the choice.  Unlike ``lanes`` — pure
wall-clock, never cache identity — ``opt`` *is* part of result-cache
identity: optimized artifacts report different structural counts, so
scenario cells and shard chunks hash the resolved level, and encoding
caches key on the **optimized** circuit's content hash.

>>> from repro.circuit.netlist import Netlist
>>> from repro.circuit.gates import GateType
>>> netlist = Netlist("redundant")
>>> _ = netlist.add_input("a")
>>> _ = netlist.add_input("b")
>>> _ = netlist.add_gate("ab1", GateType.AND, ["a", "b"])
>>> _ = netlist.add_gate("ab2", GateType.AND, ["b", "a"])   # duplicate
>>> _ = netlist.add_gate("buf", GateType.BUF, ["ab1"])      # wire
>>> _ = netlist.add_gate("po", GateType.XOR, ["buf", "ab2"])
>>> _ = netlist.add_gate("dead", GateType.OR, ["a", "b"])   # no cone
>>> netlist.set_outputs(["po"])
>>> opt = optimize_compiled(netlist.compile(), "full")
>>> (opt.gates_before, opt.gates_after)
(5, 1)
>>> opt.compiled.truth_table_words() == netlist.compile().truth_table_words()
True
>>> opt.slot_image(netlist.compile().slot_of["po"])
('const', 0)
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.circuit.gates import GateType

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.circuit.compiled import CompiledCircuit
    from repro.circuit.netlist import Netlist

#: Concrete optimization levels, weakest to strongest.  ``"auto"`` is
#: accepted everywhere the lever is and resolves through
#: :func:`resolve_opt`.
OPT_LEVELS = ("off", "light", "full")

_VALID = ("auto",) + OPT_LEVELS

#: Pass sequence per concrete level.
_PIPELINES = {
    "off": (),
    "light": ("sweep", "chains", "coi"),
    "full": ("sweep", "chains", "strash", "coi"),
}

#: Fixpoint-iteration backstop.  Each round only ever shrinks the gate
#: list, so convergence is guaranteed; the cap just bounds the cost of
#: a hypothetical pathological circuit.
_MAX_ROUNDS = 8

_default_opt: str | None = None


def default_opt() -> str:
    """The process-wide opt lever: ``REPRO_OPT`` or ``"auto"``."""
    if _default_opt is not None:
        return _default_opt
    return os.environ.get("REPRO_OPT", "auto") or "auto"


def set_default_opt(opt: str | None) -> None:
    """Set (or with ``None`` reset) the process-wide opt lever."""
    global _default_opt
    if opt is not None and opt not in _VALID:
        raise ValueError(f"unknown opt level {opt!r} (choose from {_VALID})")
    _default_opt = opt


def resolve_opt(opt: str | None = None) -> str:
    """Resolve an opt lever value to a concrete level.

    ``None`` means the process default (:func:`default_opt`);
    ``"auto"`` resolves to ``"full"`` — the pipeline is linear-time and
    parity-contractual, so there is no shape where it loses the way a
    wrong lane backend can.  The indirection exists so the policy can
    become shape-aware without touching any caller.

    >>> resolve_opt("off")
    'off'
    >>> resolve_opt("auto")
    'full'
    """
    if opt is None:
        opt = default_opt()
    if opt not in _VALID:
        raise ValueError(f"unknown opt level {opt!r} (choose from {_VALID})")
    if opt == "auto":
        return "full"
    return opt


# ----------------------------------------------------------------------
# Result type
# ----------------------------------------------------------------------


@dataclass
class OptimizedCircuit:
    """A pass (or pipeline) result: smaller circuit + provenance.

    Attributes:
        source: The compiled circuit the pass ran on.
        compiled: The optimized compiled circuit.  Interface-identical
            to ``source`` (same input and output names, same order) and
            parity-identical on every output.
        provenance: Original slot -> ``("slot", new_slot)`` /
            ``("const", b)`` / ``("dropped",)`` (see the module
            docstring for the invariant).
        level: The concrete level or pass name that produced this.
        passes: Every pass application, in order (a fixpoint pipeline
            may list a pass more than once).
        stats: Gates removed per pass name, accumulated.
    """

    source: "CompiledCircuit"
    compiled: "CompiledCircuit"
    provenance: dict[int, tuple]
    level: str
    passes: tuple[str, ...]
    stats: dict[str, int]

    @property
    def gates_before(self) -> int:
        return self.source.num_gates

    @property
    def gates_after(self) -> int:
        return self.compiled.num_gates

    @property
    def gates_removed(self) -> int:
        return self.gates_before - self.gates_after

    def slot_image(self, slot: int) -> tuple:
        """Provenance entry of one original slot."""
        return self.provenance[slot]


def _identity(compiled: "CompiledCircuit", level: str) -> OptimizedCircuit:
    provenance = {s: ("slot", s) for s in range(compiled.num_slots)}
    return OptimizedCircuit(
        source=compiled,
        compiled=compiled,
        provenance=provenance,
        level=level,
        passes=(),
        stats={},
    )


# ----------------------------------------------------------------------
# Pass machinery
#
# A pass walks the gates in compiled (topological) order maintaining a
# canonical value per original slot: ("slot", root) where root is an
# original slot whose gate survives the pass, or ("const", b).  Gates
# are either kept (possibly with a rewritten type/fanins), aliased to
# an existing value, or folded to a constant.  Materialization turns
# the kept list back into a Netlist with the original interface.
# ----------------------------------------------------------------------

_AND_FAMILY = (GateType.AND, GateType.NAND, GateType.OR, GateType.NOR)
_XOR_FAMILY = (GateType.XOR, GateType.XNOR)
_COMMUTATIVE = frozenset(
    (GateType.AND, GateType.OR, GateType.XOR,
     GateType.NAND, GateType.NOR, GateType.XNOR)
)


def _sweep_rules(compiled, canon, keep):
    """Constant propagation + algebraic sweeping (the ``sweep`` pass)."""
    inv_of: dict[int, int] = {}  # canonical root -> root of its complement

    def record_inverse(a: int, b: int) -> None:
        inv_of.setdefault(a, b)
        inv_of.setdefault(b, a)

    def keep_gate(out, gtype, vals):
        keep.append((out, gtype, tuple(vals)))
        canon[out] = ("slot", out)

    for gtype, out, fanins in zip(
        compiled.gate_types, compiled.gate_output_slots, compiled.gate_fanin_slots
    ):
        vals = [canon[s] for s in fanins]
        if gtype is GateType.CONST0:
            canon[out] = ("const", 0)
            continue
        if gtype is GateType.CONST1:
            canon[out] = ("const", 1)
            continue
        if gtype in (GateType.BUF, GateType.NOT):
            (kind, payload) = vals[0]
            if kind == "const":
                bit = payload if gtype is GateType.BUF else 1 - payload
                canon[out] = ("const", bit)
            elif gtype is GateType.BUF:
                keep_gate(out, gtype, vals)
            else:
                keep_gate(out, gtype, vals)
                record_inverse(out, payload)
            continue
        if gtype is GateType.MUX:
            sel, d1, d0 = vals
            if sel == ("const", 1):
                canon[out] = d1
            elif sel == ("const", 0):
                canon[out] = d0
            elif d1 == d0:
                canon[out] = d1
            elif d1 == ("const", 1) and d0 == ("const", 0):
                canon[out] = sel
            elif d1 == ("const", 0) and d0 == ("const", 1):
                keep_gate(out, GateType.NOT, [sel])
                record_inverse(out, sel[1])
            elif d1 == ("const", 1):
                keep_gate(out, GateType.OR, [sel, d0])
            elif d0 == ("const", 0):
                keep_gate(out, GateType.AND, [sel, d1])
            elif (
                d1[0] == "slot"
                and d0[0] == "slot"
                and inv_of.get(d1[1]) == d0[1]
            ):
                # MUX(s, !x, x) == s XOR x
                keep_gate(out, GateType.XOR, [sel, d0])
            else:
                keep_gate(out, gtype, vals)
            continue
        if gtype in _AND_FAMILY:
            conjunctive = gtype in (GateType.AND, GateType.NAND)
            inverted = gtype in (GateType.NAND, GateType.NOR)
            absorbing = 0 if conjunctive else 1
            live: list[tuple] = []
            seen: set[int] = set()
            forced = False
            for val in vals:
                kind, payload = val
                if kind == "const":
                    if payload == absorbing:
                        forced = True
                        break
                    continue  # identity constant
                if payload in seen:
                    continue  # idempotent duplicate
                if inv_of.get(payload) in seen:
                    forced = True  # x op !x forces the absorbing value
                    break
                seen.add(payload)
                live.append(val)
            if forced:
                canon[out] = ("const", absorbing ^ (1 if inverted else 0))
            elif not live:
                canon[out] = ("const", (1 - absorbing) ^ (1 if inverted else 0))
            elif len(live) == 1:
                if inverted:
                    keep_gate(out, GateType.NOT, live)
                    record_inverse(out, live[0][1])
                else:
                    canon[out] = live[0]
            else:
                keep_gate(out, gtype, live)
            continue
        # XOR family: fold constants and cancel pairs mod 2.
        parity = 1 if gtype is GateType.XNOR else 0
        counts: dict[int, int] = {}
        order: list[int] = []
        for val in vals:
            kind, payload = val
            if kind == "const":
                parity ^= payload
                continue
            if payload not in counts:
                counts[payload] = 0
                order.append(payload)
            counts[payload] ^= 1  # pairs cancel
        live_roots = [r for r in order if counts[r]]
        # Complementary pairs: x ^ !x == 1.
        alive = set(live_roots)
        for r in list(live_roots):
            mate = inv_of.get(r)
            if mate is not None and mate in alive and r in alive and mate != r:
                alive.discard(r)
                alive.discard(mate)
                parity ^= 1
        live_roots = [r for r in live_roots if r in alive]
        if not live_roots:
            canon[out] = ("const", parity)
        elif len(live_roots) == 1:
            if parity:
                keep_gate(out, GateType.NOT, [("slot", live_roots[0])])
                record_inverse(out, live_roots[0])
            else:
                canon[out] = ("slot", live_roots[0])
        else:
            keep_gate(
                out,
                GateType.XNOR if parity else GateType.XOR,
                [("slot", r) for r in live_roots],
            )


def _chain_rules(compiled, canon, keep):
    """BUF/NOT chain collapse via alias rewriting (the ``chains`` pass)."""
    not_fanin: dict[int, int] = {}  # kept NOT's out slot -> its fanin root

    for gtype, out, fanins in zip(
        compiled.gate_types, compiled.gate_output_slots, compiled.gate_fanin_slots
    ):
        vals = [canon[s] for s in fanins]
        effective = gtype
        if len(fanins) == 1 and gtype in _COMMUTATIVE:
            # Unary n-ary gates: AND/OR/XOR(x) == BUF(x),
            # NAND/NOR/XNOR(x) == NOT(x) — mirror the compiled lowering.
            effective = (
                GateType.BUF
                if gtype in (GateType.AND, GateType.OR, GateType.XOR)
                else GateType.NOT
            )
        if effective is GateType.BUF:
            (kind, payload) = vals[0]
            canon[out] = vals[0] if kind == "slot" else ("const", payload)
            continue
        if effective is GateType.NOT:
            (kind, payload) = vals[0]
            if kind == "const":
                canon[out] = ("const", 1 - payload)
                continue
            root = payload
            if root in not_fanin:  # NOT(NOT(x)) -> x
                canon[out] = ("slot", not_fanin[root])
                continue
            keep.append((out, GateType.NOT, (("slot", root),)))
            canon[out] = ("slot", out)
            not_fanin[out] = root
            continue
        keep.append((out, gtype, tuple(vals)))
        canon[out] = ("slot", out)


def _strash_rules(compiled, canon, keep):
    """Merge structurally identical gates (the ``strash`` pass)."""
    table: dict[tuple, int] = {}

    for gtype, out, fanins in zip(
        compiled.gate_types, compiled.gate_output_slots, compiled.gate_fanin_slots
    ):
        vals = tuple(canon[s] for s in fanins)
        sig = tuple(sorted(vals)) if gtype in _COMMUTATIVE else vals
        key = (gtype.value, sig)
        existing = table.get(key)
        if existing is not None:
            canon[out] = ("slot", existing)
            continue
        table[key] = out
        keep.append((out, gtype, vals))
        canon[out] = ("slot", out)


def _coi_rules(compiled, canon, keep):
    """Identity rewrite; pruning happens in materialization."""
    for gtype, out, fanins in zip(
        compiled.gate_types, compiled.gate_output_slots, compiled.gate_fanin_slots
    ):
        keep.append((out, gtype, tuple(canon[s] for s in fanins)))
        canon[out] = ("slot", out)


_PASS_RULES = {
    "sweep": _sweep_rules,
    "chains": _chain_rules,
    "strash": _strash_rules,
    "coi": _coi_rules,
}

#: Pass names accepted by :func:`run_pass`, in pipeline order.
PASS_NAMES = ("sweep", "chains", "strash", "coi")


def _materialize(
    compiled: "CompiledCircuit",
    canon: list[tuple],
    keep: list[tuple],
    prune: bool,
) -> "Netlist":
    """Rebuild a Netlist from the kept gates, preserving the interface."""
    from repro.circuit.netlist import Netlist

    names = compiled.net_names
    slot_of = compiled.slot_of

    if prune:
        kept_by_out = {out: (gtype, vals) for out, gtype, vals in keep}
        needed: set[int] = set()
        stack = []
        for po in compiled.outputs:
            val = canon[slot_of[po]]
            if val[0] == "slot":
                stack.append(val[1])
        while stack:
            root = stack.pop()
            if root in needed:
                continue
            needed.add(root)
            entry = kept_by_out.get(root)
            if entry is None:
                continue  # primary input
            for kind, payload in entry[1]:
                if kind == "slot":
                    stack.append(payload)
        keep = [item for item in keep if item[0] in needed]

    netlist = Netlist(name=compiled.name)
    for net in compiled.inputs:
        netlist.add_input(net)

    used = set(compiled.inputs)
    used.update(names[out] for out, _, _ in keep)
    used.update(compiled.outputs)

    const_nets: dict[int, str] = {}

    def const_net(bit: int) -> str:
        net = const_nets.get(bit)
        if net is None:
            net = f"_opt_const{bit}"
            while net in used:
                net += "_"
            used.add(net)
            netlist.add_gate(
                net, GateType.CONST1 if bit else GateType.CONST0, []
            )
            const_nets[bit] = net
        return net

    def val_net(val: tuple) -> str:
        kind, payload = val
        if kind == "const":
            return const_net(payload)
        return names[payload]

    for out, gtype, vals in keep:
        netlist.add_gate(names[out], gtype, [val_net(v) for v in vals])

    for po in compiled.outputs:
        if netlist.is_driven(po):
            continue
        val = canon[slot_of[po]]
        if val[0] == "const":
            netlist.add_gate(
                po, GateType.CONST1 if val[1] else GateType.CONST0, []
            )
        else:
            netlist.add_gate(po, GateType.BUF, [names[val[1]]])
    netlist.set_outputs(compiled.outputs)
    return netlist


def _run_pass(compiled: "CompiledCircuit", name: str) -> OptimizedCircuit:
    """Apply one named pass; see :data:`PASS_NAMES`."""
    rules = _PASS_RULES[name]
    canon: list[tuple] = [("slot", s) for s in range(compiled.num_slots)]
    keep: list[tuple] = []
    rules(compiled, canon, keep)
    netlist = _materialize(compiled, canon, keep, prune=(name == "coi"))
    optimized = netlist.compile()
    new_slot_of = optimized.slot_of
    names = compiled.net_names
    provenance: dict[int, tuple] = {}
    for s in range(compiled.num_slots):
        kind, payload = canon[s]
        if kind == "const":
            provenance[s] = ("const", payload)
            continue
        new = new_slot_of.get(names[payload])
        provenance[s] = ("slot", new) if new is not None else ("dropped",)
    return OptimizedCircuit(
        source=compiled,
        compiled=optimized,
        provenance=provenance,
        level=name,
        passes=(name,),
        stats={name: compiled.num_gates - optimized.num_gates},
    )


def run_pass(compiled: "CompiledCircuit", name: str) -> OptimizedCircuit:
    """Apply a single pass by name (``sweep``/``chains``/``strash``/``coi``).

    Mostly a testing and inspection entry point; production callers use
    :func:`optimize_compiled` / :meth:`CompiledCircuit.optimized`.
    """
    if name not in _PASS_RULES:
        raise ValueError(
            f"unknown pass {name!r} (choose from {PASS_NAMES})"
        )
    return _run_pass(compiled, name)


def _compose(
    first: dict[int, tuple], second: dict[int, tuple]
) -> dict[int, tuple]:
    """Provenance of pass B after pass A, as one original->final map."""
    out: dict[int, tuple] = {}
    for slot, val in first.items():
        if val[0] == "slot":
            out[slot] = second[val[1]]
        else:
            out[slot] = val
    return out


def optimize_compiled(
    compiled: "CompiledCircuit", level: str | None = None
) -> OptimizedCircuit:
    """Run the optimization pipeline for ``level`` to a fixpoint.

    ``level`` is an opt lever value (``None`` -> process default,
    ``"auto"`` -> the full pipeline).  Passes run in pipeline order,
    repeating until a whole round removes nothing (each pass can expose
    work for the next: a strash merge creates the tied fanins the sweep
    folds).  The result's :attr:`OptimizedCircuit.provenance` composes
    across every application.
    """
    resolved = resolve_opt(level)
    if resolved == "off" or compiled.num_gates == 0:
        return _identity(compiled, resolved)
    pipeline = _PIPELINES[resolved]
    current = compiled
    provenance = {s: ("slot", s) for s in range(compiled.num_slots)}
    applied: list[str] = []
    stats: dict[str, int] = {}
    for _ in range(_MAX_ROUNDS):
        before = current
        for name in pipeline:
            step = _run_pass(current, name)
            provenance = _compose(provenance, step.provenance)
            applied.append(name)
            stats[name] = stats.get(name, 0) + step.stats[name]
            current = step.compiled
        if current == before:
            break
    return OptimizedCircuit(
        source=compiled,
        compiled=current,
        provenance=provenance,
        level=resolved,
        passes=tuple(applied),
        stats=stats,
    )
