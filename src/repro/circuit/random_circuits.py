"""Seeded random combinational netlists for property-based testing."""

from __future__ import annotations

from repro.circuit.gates import GateType
from repro.circuit.netlist import Netlist
from repro.rng import make_rng

_RANDOM_TYPES = [
    GateType.AND,
    GateType.OR,
    GateType.NAND,
    GateType.NOR,
    GateType.XOR,
    GateType.XNOR,
    GateType.NOT,
    GateType.BUF,
    GateType.MUX,
]


def random_netlist(
    num_inputs: int,
    num_gates: int,
    seed: int = 0,
    num_outputs: int | None = None,
    allow_const: bool = False,
) -> Netlist:
    """Generate a random combinational DAG.

    Every gate draws fanins uniformly from earlier nets, so the result
    is acyclic by construction and deterministic for a given seed.
    """
    if num_inputs < 1:
        raise ValueError("need at least one input")
    if num_gates < 1:
        raise ValueError("need at least one gate")
    rng = make_rng(seed)
    netlist = Netlist(name=f"random_{num_inputs}x{num_gates}_s{seed}")
    nets = [netlist.add_input(f"pi{i}") for i in range(num_inputs)]

    types = list(_RANDOM_TYPES)
    if allow_const:
        types += [GateType.CONST0, GateType.CONST1]

    for g in range(num_gates):
        gtype = rng.choice(types)
        if gtype in (GateType.NOT, GateType.BUF):
            fanins = [rng.choice(nets)]
        elif gtype is GateType.MUX:
            fanins = [rng.choice(nets) for _ in range(3)]
        elif gtype in (GateType.CONST0, GateType.CONST1):
            fanins = []
        else:
            arity = rng.choice([2, 2, 2, 3])
            fanins = [rng.choice(nets) for _ in range(arity)]
        out = netlist.add_gate(f"g{g}", gtype, fanins)
        nets.append(out)

    if num_outputs is None:
        num_outputs = max(1, min(8, num_gates // 4))
    num_outputs = min(num_outputs, num_gates)
    # Prefer sinks (nets nobody reads) so the whole DAG stays observable.
    fanout = netlist.fanouts()
    sinks = [n for n in netlist.gates if not fanout[n]]
    chosen: list[str] = sinks[:num_outputs]
    remaining = [n for n in netlist.gates if n not in set(chosen)]
    while len(chosen) < num_outputs and remaining:
        pick = rng.choice(remaining)
        remaining.remove(pick)
        chosen.append(pick)
    netlist.set_outputs(chosen)
    return netlist
