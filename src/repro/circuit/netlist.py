"""The netlist intermediate representation.

A :class:`Netlist` is a purely combinational gate network over named
nets.  Primary inputs and gate outputs share one namespace; each net is
driven by exactly one source (an input declaration or one gate).

The IR is deliberately simple — a dict of :class:`Gate` keyed by output
net — and optimized for *construction*: locking schemes and synthesis
passes splice and rebuild it freely.  Every evaluation-heavy consumer
(simulation, oracle queries, CNF encoding, CEC, structural analysis)
goes through :meth:`Netlist.compile`, which lowers the netlist once
into an immutable :class:`repro.circuit.compiled.CompiledCircuit` and
caches it until the structure changes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterable, Sequence
from typing import TYPE_CHECKING

from repro.circuit.gates import GateType, valid_arity

if TYPE_CHECKING:  # pragma: no cover - circular-import guard
    from repro.circuit.compiled import CompiledCircuit


class NetlistError(Exception):
    """Structural problem in a netlist (multiple drivers, cycles, ...)."""


@dataclass(frozen=True)
class Gate:
    """One gate instance: ``output = gtype(inputs)``."""

    output: str
    gtype: GateType
    inputs: tuple[str, ...]

    def __post_init__(self) -> None:
        if not valid_arity(self.gtype, len(self.inputs)):
            raise NetlistError(
                f"{self.gtype} gate {self.output!r} has illegal arity "
                f"{len(self.inputs)}"
            )


@dataclass
class Netlist:
    """A combinational circuit.

    Attributes:
        name: Human-readable circuit name.
        inputs: Ordered primary-input net names.
        outputs: Ordered primary-output net names (must be driven).
        gates: Gate instances keyed by their output net.
    """

    name: str = "circuit"
    inputs: list[str] = field(default_factory=list)
    outputs: list[str] = field(default_factory=list)
    gates: dict[str, Gate] = field(default_factory=dict)

    # Compile cache: (structure guard, CompiledCircuit).  Not a dataclass
    # field, so copies and dataclass equality never see it.
    _compiled = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_input(self, net: str) -> str:
        """Declare ``net`` as a primary input; returns the net name."""
        if net in self.gates:
            raise NetlistError(f"net {net!r} already driven by a gate")
        if net in self.inputs:
            raise NetlistError(f"duplicate input {net!r}")
        self._compiled = None
        self.inputs.append(net)
        return net

    def add_inputs(self, nets: Iterable[str]) -> list[str]:
        """Declare several primary inputs; returns the net names."""
        return [self.add_input(net) for net in nets]

    def add_gate(self, output: str, gtype: GateType, inputs: Sequence[str]) -> str:
        """Add ``output = gtype(inputs)`` and return the output net."""
        if output in self.gates:
            raise NetlistError(f"net {output!r} already driven by a gate")
        if output in self.inputs:
            raise NetlistError(f"net {output!r} is a primary input")
        self._compiled = None
        self.gates[output] = Gate(output, gtype, tuple(inputs))
        return output

    def set_outputs(self, nets: Iterable[str]) -> None:
        """Replace the primary-output list with ``nets`` (in order)."""
        self._compiled = None
        self.outputs = list(nets)

    def add_output(self, net: str) -> str:
        """Append ``net`` to the primary outputs; returns the net name."""
        self._compiled = None
        self.outputs.append(net)
        return net

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_gates(self) -> int:
        return len(self.gates)

    def nets(self) -> list[str]:
        """All nets: inputs first, then gate outputs (insertion order)."""
        return list(self.inputs) + list(self.gates)

    def is_driven(self, net: str) -> bool:
        """True when ``net`` is a primary input or some gate's output."""
        return net in self.gates or net in self.inputs

    def driver(self, net: str) -> Gate | None:
        """The gate driving ``net``, or None for primary inputs."""
        return self.gates.get(net)

    def fanouts(self) -> dict[str, list[str]]:
        """Map each net to the list of gate outputs it feeds."""
        result: dict[str, list[str]] = {net: [] for net in self.nets()}
        for gate in self.gates.values():
            for src in gate.inputs:
                result.setdefault(src, []).append(gate.output)
        return result

    def gate_type_histogram(self) -> dict[str, int]:
        """Count gates per type name (e.g. ``{"AND": 12, "NOT": 3}``)."""
        histogram: dict[str, int] = {}
        for gate in self.gates.values():
            histogram[gate.gtype.value] = histogram.get(gate.gtype.value, 0) + 1
        return histogram

    def validate(self) -> None:
        """Raise :class:`NetlistError` on dangling nets, bad outputs or cycles."""
        for gate in self.gates.values():
            for src in gate.inputs:
                if not self.is_driven(src):
                    raise NetlistError(
                        f"gate {gate.output!r} reads undriven net {src!r}"
                    )
        for net in self.outputs:
            if not self.is_driven(net):
                raise NetlistError(f"primary output {net!r} is undriven")
        self.topological_order()  # raises on combinational loops

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------
    def _structure_guard(self) -> tuple:
        """Cheap fingerprint used to invalidate the compile cache.

        Mutations through the construction API invalidate eagerly; this
        guard additionally catches direct mutation of ``inputs``,
        ``outputs`` or ``gates`` that changes a length or the last
        inserted gate.  Code that *replaces* a gate in place (same key,
        same count) on a netlist that may already be compiled must call
        :meth:`invalidate_compiled` explicitly.
        """
        last_gate = next(reversed(self.gates)) if self.gates else None
        return (
            len(self.inputs),
            len(self.gates),
            len(self.outputs),
            last_gate,
            self.outputs[-1] if self.outputs else None,
        )

    def compile(self) -> "CompiledCircuit":
        """The integer-indexed evaluation form of this netlist, cached.

        The result is immutable and shared: simulation, oracle queries,
        CNF encoding, CEC and structural analysis all evaluate through
        it, and its content hash can key result caches.  The cache is
        invalidated by any structural change made through the
        construction API (see :meth:`_structure_guard` for the rules on
        direct mutation).
        """
        guard = self._structure_guard()
        cached = self._compiled
        if cached is not None and cached[0] == guard:
            return cached[1]
        from repro.circuit.compiled import CompiledCircuit

        compiled = CompiledCircuit(self)
        self._compiled = (guard, compiled)
        return compiled

    def invalidate_compiled(self) -> None:
        """Drop the compile cache after direct structural mutation."""
        self._compiled = None

    def __getstate__(self) -> dict:
        """Pickle without the compile cache (worker processes recompile);
        keeps runner task payloads lean."""
        state = dict(self.__dict__)
        state.pop("_compiled", None)
        return state

    # ------------------------------------------------------------------
    # Ordering
    # ------------------------------------------------------------------
    def topological_order(self) -> list[Gate]:
        """Gates sorted so every gate follows its fanins.

        Raises :class:`NetlistError` if the netlist has a cycle.  When a
        valid compiled form is cached, its stored order is reused
        instead of re-sorting.
        """
        cached = self._compiled
        if cached is not None and cached[0] == self._structure_guard():
            return list(cached[1].gates)
        order: list[Gate] = []
        state: dict[str, int] = {}  # 0 = visiting, 1 = done
        for net in self.inputs:
            state[net] = 1
        stack: list[tuple[str, int]] = []
        for root in self.gates:
            if state.get(root) == 1:
                continue
            stack.append((root, 0))
            while stack:
                net, child_idx = stack[-1]
                gate = self.gates.get(net)
                if gate is None:  # undriven net: treated as leaf here
                    state[net] = 1
                    stack.pop()
                    continue
                if child_idx == 0:
                    if state.get(net) == 0:
                        raise NetlistError(f"combinational loop through {net!r}")
                    state[net] = 0
                advanced = False
                for i in range(child_idx, len(gate.inputs)):
                    src = gate.inputs[i]
                    src_state = state.get(src)
                    if src_state == 0:
                        raise NetlistError(f"combinational loop through {src!r}")
                    if src_state is None:
                        stack[-1] = (net, i + 1)
                        stack.append((src, 0))
                        advanced = True
                        break
                if advanced:
                    continue
                state[net] = 1
                order.append(gate)
                stack.pop()
        return order

    # ------------------------------------------------------------------
    # Transformation
    # ------------------------------------------------------------------
    def copy(self, name: str | None = None) -> "Netlist":
        """Shallow structural copy (gates are immutable, so this is safe)."""
        dup = Netlist(
            name=name or self.name,
            inputs=list(self.inputs),
            outputs=list(self.outputs),
            gates=dict(self.gates),
        )
        return dup

    def renamed(self, prefix: str, keep_inputs: Iterable[str] = ()) -> "Netlist":
        """Return a copy with every net (except ``keep_inputs``) prefixed.

        Used to instantiate multiple copies of a circuit side by side
        (e.g. the two halves of a miter) without name collisions.
        """
        keep = set(keep_inputs)

        def rn(net: str) -> str:
            return net if net in keep else prefix + net

        dup = Netlist(name=prefix + self.name)
        dup.inputs = [rn(net) for net in self.inputs]
        dup.outputs = [rn(net) for net in self.outputs]
        for gate in self.gates.values():
            dup.gates[rn(gate.output)] = Gate(
                rn(gate.output), gate.gtype, tuple(rn(s) for s in gate.inputs)
            )
        return dup

    def merged_with(self, other: "Netlist", name: str = "merged") -> "Netlist":
        """Union of two netlists sharing identically named nets.

        Nets driven in both netlists must not conflict; shared inputs
        are unified.
        """
        merged = Netlist(name=name)
        merged.inputs = list(self.inputs)
        for net in other.inputs:
            if net not in merged.inputs and net not in self.gates:
                merged.inputs.append(net)
        merged.gates = dict(self.gates)
        for net, gate in other.gates.items():
            if net in merged.gates:
                if merged.gates[net] != gate:
                    raise NetlistError(f"conflicting drivers for {net!r}")
                continue
            if net in merged.inputs:
                raise NetlistError(f"net {net!r} is input in one, gate in other")
            merged.gates[net] = gate
        merged.outputs = list(self.outputs) + [
            net for net in other.outputs if net not in self.outputs
        ]
        return merged

    def __repr__(self) -> str:
        return (
            f"Netlist({self.name!r}, inputs={len(self.inputs)}, "
            f"outputs={len(self.outputs)}, gates={len(self.gates)})"
        )


def fresh_net_namer(netlist: Netlist, stem: str):
    """Return a callable yielding net names not present in ``netlist``.

    The namer only checks against nets present when it was created plus
    the names it has handed out, so create it after the netlist is
    fully built.
    """
    used = set(netlist.nets())
    counter = 0

    def next_name() -> str:
        nonlocal counter
        while True:
            candidate = f"{stem}{counter}"
            counter += 1
            if candidate not in used:
                used.add(candidate)
                return candidate

    return next_name
