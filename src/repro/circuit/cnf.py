"""Tseitin encoding of netlists into CNF.

Encoding runs over the compiled circuit IR: gates are read from the
flat parallel arrays of a :class:`~repro.circuit.compiled.CompiledCircuit`
and net-to-variable lookup is a dense slot-indexed array instead of a
name dict.  In the common case (fresh CNF, nothing shared) variable
``slot + 1`` IS the slot, so consumers that work slot-wise never touch
a string key.  :func:`encode_netlist` remains the name-keyed wrapper
for callers that want a ``net -> var`` mapping.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Mapping

from repro.circuit.compiled import CompiledCircuit
from repro.circuit.gates import GateType
from repro.circuit.netlist import Netlist
from repro.circuit.opt import resolve_opt
from repro.sat import (
    CNF,
    enc_and,
    enc_buf,
    enc_mux,
    enc_nand,
    enc_nor,
    enc_not,
    enc_or,
    enc_xnor,
    enc_xor,
)


@dataclass
class CompiledEncoding:
    """Result of encoding a compiled circuit: CNF plus slot-indexed vars."""

    cnf: CNF
    compiled: CompiledCircuit
    slot_vars: list[int]

    def var(self, net: str) -> int:
        """DIMACS variable of a net (name-keyed convenience)."""
        return self.slot_vars[self.compiled.slot_of[net]]

    def lit(self, net: str, value: bool = True) -> int:
        """DIMACS literal asserting ``net == value``."""
        var = self.var(net)
        return var if value else -var


@dataclass
class NetlistEncoding:
    """Result of encoding a netlist: the CNF and the net-to-variable map."""

    cnf: CNF
    var_of: dict[str, int]

    def lit(self, net: str, value: bool = True) -> int:
        """DIMACS literal asserting ``net == value``."""
        var = self.var_of[net]
        return var if value else -var


def encode_compiled(
    compiled: CompiledCircuit,
    cnf: CNF | None = None,
    share: Mapping[str, int] | None = None,
    opt: str | None = "off",
) -> CompiledEncoding:
    """Encode every gate of ``compiled`` into ``cnf``, slot-indexed.

    Slots map to a contiguous block of fresh variables (the identity
    ``var = slot + 1`` on a fresh CNF); ``share`` pre-assigns variables
    to named nets (typically primary inputs shared with another circuit
    copy, as in a miter).  Auxiliary variables for wide XOR chains are
    allocated after the slot block.

    ``opt`` runs the structural optimizer (:mod:`repro.circuit.opt`)
    before encoding; the returned ``compiled``/``slot_vars`` then refer
    to the *optimized* circuit.  The default here is ``"off"`` — unlike
    the high-level consumers, this encoder's slot identities are part
    of its contract, so shrinking is explicit opt-in (``None`` follows
    the process default).  ``share`` keys must survive optimization;
    primary inputs and outputs always do.
    """
    if opt != "off":
        level = resolve_opt(opt)
        if level != "off":
            compiled = compiled.optimized(level).compiled
    if cnf is None:
        cnf = CNF()
    slot_vars = [0] * compiled.num_slots
    if share:
        slot_of = compiled.slot_of
        for net, var in share.items():
            slot_vars[slot_of[net]] = var
    for slot in range(compiled.num_slots):
        if not slot_vars[slot]:
            slot_vars[slot] = cnf.new_var()

    for gtype, out_slot, fanins in zip(
        compiled.gate_types, compiled.gate_output_slots, compiled.gate_fanin_slots
    ):
        encode_gate(
            cnf, gtype, slot_vars[out_slot], [slot_vars[s] for s in fanins]
        )
    return CompiledEncoding(cnf=cnf, compiled=compiled, slot_vars=slot_vars)


def encode_netlist(
    netlist: Netlist,
    cnf: CNF | None = None,
    share: Mapping[str, int] | None = None,
    opt: str | None = "off",
) -> NetlistEncoding:
    """Encode every gate of ``netlist`` into ``cnf`` (name-keyed wrapper).

    ``share`` pre-assigns variables to named nets; all other nets
    receive fresh variables.  Compiles the netlist (cached) and builds
    the ``net -> var`` dict from the slot array once.  ``opt`` is
    forwarded to :func:`encode_compiled` (default ``"off"``; optimized
    encodings only expose variables for surviving nets).
    """
    enc = encode_compiled(netlist.compile(), cnf, share, opt=opt)
    var_of = dict(zip(enc.compiled.net_names, enc.slot_vars))
    return NetlistEncoding(cnf=enc.cnf, var_of=var_of)


def encode_gate(cnf: CNF, gtype: GateType, out: int, ins: list[int]) -> None:
    """Append the Tseitin clauses for one gate to ``cnf``.

    ``out``/``ins`` are DIMACS literals, so callers may pass negated or
    constant-substituted operands directly.
    """
    if gtype is GateType.AND:
        clauses = enc_and(out, ins)
    elif gtype is GateType.OR:
        clauses = enc_or(out, ins)
    elif gtype is GateType.NAND:
        clauses = enc_nand(out, ins)
    elif gtype is GateType.NOR:
        clauses = enc_nor(out, ins)
    elif gtype is GateType.XOR:
        clauses = enc_xor(out, ins, cnf.new_var)
    elif gtype is GateType.XNOR:
        clauses = enc_xnor(out, ins, cnf.new_var)
    elif gtype is GateType.NOT:
        clauses = enc_not(out, ins[0])
    elif gtype is GateType.BUF:
        clauses = enc_buf(out, ins[0])
    elif gtype is GateType.MUX:
        clauses = enc_mux(out, ins[0], ins[1], ins[2])
    elif gtype is GateType.CONST0:
        clauses = [[-out]]
    elif gtype is GateType.CONST1:
        clauses = [[out]]
    else:  # pragma: no cover - enum is exhaustive
        raise ValueError(f"unsupported gate type {gtype!r}")
    cnf.add_clauses(clauses)
