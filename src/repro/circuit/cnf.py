"""Tseitin encoding of netlists into CNF."""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Mapping

from repro.circuit.gates import GateType
from repro.circuit.netlist import Netlist
from repro.sat import (
    CNF,
    enc_and,
    enc_buf,
    enc_mux,
    enc_nand,
    enc_nor,
    enc_not,
    enc_or,
    enc_xnor,
    enc_xor,
)


@dataclass
class NetlistEncoding:
    """Result of encoding a netlist: the CNF and the net-to-variable map."""

    cnf: CNF
    var_of: dict[str, int]

    def lit(self, net: str, value: bool = True) -> int:
        """DIMACS literal asserting ``net == value``."""
        var = self.var_of[net]
        return var if value else -var


def encode_netlist(
    netlist: Netlist,
    cnf: CNF | None = None,
    share: Mapping[str, int] | None = None,
) -> NetlistEncoding:
    """Encode every gate of ``netlist`` into ``cnf``.

    ``share`` pre-assigns variables to named nets (typically primary
    inputs that must be shared with another circuit copy, as in a
    miter).  All other nets receive fresh variables.
    """
    if cnf is None:
        cnf = CNF()
    var_of: dict[str, int] = dict(share or {})

    def var(net: str) -> int:
        existing = var_of.get(net)
        if existing is not None:
            return existing
        fresh = cnf.new_var()
        var_of[net] = fresh
        return fresh

    for net in netlist.inputs:
        var(net)

    for gate in netlist.topological_order():
        out = var(gate.output)
        ins = [var(src) for src in gate.inputs]
        encode_gate(cnf, gate.gtype, out, ins)

    return NetlistEncoding(cnf=cnf, var_of=var_of)


def encode_gate(cnf: CNF, gtype: GateType, out: int, ins: list[int]) -> None:
    """Append the Tseitin clauses for one gate to ``cnf``.

    ``out``/``ins`` are DIMACS literals, so callers may pass negated or
    constant-substituted operands directly.
    """
    if gtype is GateType.AND:
        clauses = enc_and(out, ins)
    elif gtype is GateType.OR:
        clauses = enc_or(out, ins)
    elif gtype is GateType.NAND:
        clauses = enc_nand(out, ins)
    elif gtype is GateType.NOR:
        clauses = enc_nor(out, ins)
    elif gtype is GateType.XOR:
        clauses = enc_xor(out, ins, cnf.new_var)
    elif gtype is GateType.XNOR:
        clauses = enc_xnor(out, ins, cnf.new_var)
    elif gtype is GateType.NOT:
        clauses = enc_not(out, ins[0])
    elif gtype is GateType.BUF:
        clauses = enc_buf(out, ins[0])
    elif gtype is GateType.MUX:
        clauses = enc_mux(out, ins[0], ins[1], ins[2])
    elif gtype is GateType.CONST0:
        clauses = [[-out]]
    elif gtype is GateType.CONST1:
        clauses = [[out]]
    else:  # pragma: no cover - enum is exhaustive
        raise ValueError(f"unsupported gate type {gtype!r}")
    cnf.add_clauses(clauses)
