"""Structural Verilog emission.

The locked netlists this library produces would, in the paper's flow,
be handed to Design Compiler — i.e. they exist as Verilog.  This
writer emits synthesizable gate-level Verilog-2001 so locked designs
can leave the Python world (and be diffed against EDA-tool results).
"""

from __future__ import annotations

import re

from repro.circuit.gates import GateType
from repro.circuit.netlist import Netlist

_PRIMITIVES = {
    GateType.AND: "and",
    GateType.OR: "or",
    GateType.NAND: "nand",
    GateType.NOR: "nor",
    GateType.XOR: "xor",
    GateType.XNOR: "xnor",
    GateType.NOT: "not",
    GateType.BUF: "buf",
}

_ID_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_$]*$")


def _escape(net: str) -> str:
    """Verilog identifier; names with odd characters get escaped form."""
    if _ID_RE.match(net):
        return net
    return f"\\{net} "


def format_verilog(netlist: Netlist, module_name: str | None = None) -> str:
    """Serialize a netlist as a flat structural Verilog module.

    Simple gates map to Verilog primitives; MUX and constants become
    ``assign`` expressions.  Net names are escaped where necessary.
    """
    name = module_name or re.sub(r"[^A-Za-z0-9_]", "_", netlist.name) or "top"
    ports = [_escape(n) for n in netlist.inputs + netlist.outputs]
    lines = [f"module {name} ("]
    lines.append("    " + ",\n    ".join(ports))
    lines.append(");")
    for net in netlist.inputs:
        lines.append(f"  input {_escape(net)};")
    for net in netlist.outputs:
        lines.append(f"  output {_escape(net)};")
    interface = set(netlist.inputs) | set(netlist.outputs)
    for net in netlist.gates:
        if net not in interface:
            lines.append(f"  wire {_escape(net)};")

    instance = 0
    for gate in netlist.topological_order():
        out = _escape(gate.output)
        ins = [_escape(src) for src in gate.inputs]
        primitive = _PRIMITIVES.get(gate.gtype)
        if primitive is not None:
            args = ", ".join([out] + ins)
            lines.append(f"  {primitive} g{instance} ({args});")
            instance += 1
        elif gate.gtype is GateType.MUX:
            sel, d1, d0 = ins
            lines.append(f"  assign {out} = {sel} ? {d1} : {d0};")
        elif gate.gtype is GateType.CONST0:
            lines.append(f"  assign {out} = 1'b0;")
        elif gate.gtype is GateType.CONST1:
            lines.append(f"  assign {out} = 1'b1;")
        else:  # pragma: no cover - enum is exhaustive
            raise ValueError(f"unsupported gate type {gate.gtype!r}")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def write_verilog_file(
    netlist: Netlist, path: str, module_name: str | None = None
) -> None:
    """Write :func:`format_verilog` output for ``netlist`` to ``path``."""
    with open(path, "w") as handle:
        handle.write(format_verilog(netlist, module_name))
