"""Vectorized wide-word simulation lanes (optional numpy backend).

The pure-python evaluation core (:meth:`CompiledCircuit.eval_words`)
carries every net as one arbitrary-precision integer.  CPython big-int
bitwise ops are tight C loops, so that path is *hard to beat*: on deep,
narrow circuits (the c6288-style multiplier array) and on very wide
sweeps (where both substrates are memory-bound) it wins outright.  What
it pays for every gate is interpreter dispatch plus, on inverted gates
(NAND/NOR/XNOR), an extra mask operation — roughly 50-130ns per gate
regardless of how wide the level is.

That per-gate constant is the numpy backend's opening.  This module
lowers a compiled circuit a second time, into a :class:`LaneProgram`:
the gate program is levelized and grouped into opcode-homogeneous
*stages*, values live in one ``uint64`` array of shape
``(num_lane_slots, n_words)``, and each stage is a handful of
vectorized gather/op calls over a contiguous output block.  When the
circuit is *wide and shallow* — thousands of same-opcode gates per
level, as in PLA planes, match/decode fabrics, parity networks — a
whole level costs a few numpy calls and the per-gate constant drops
to a few nanoseconds.  Measured on the ~25k-gate
:func:`~repro.bench_circuits.generators.keyed_match_plane` the numpy
program is ~11x the big-int path at 64 lanes and ~5-6x at 256; the
large-circuit tier of ``benchmarks/test_bench_sim.py`` enforces a 5x
floor.  On the ~13k-gate multiplier (deep, ~20 gates per stage) the
same program *loses* at every width — which is exactly why ``auto``
is shape-aware rather than size-triggered.

Backend selection is one lever everywhere::

    lanes="python"   # the big-int path, always available
    lanes="numpy"    # the LaneProgram (raises if numpy is missing)
    lanes="auto"     # numpy iff available AND the sweep shape wins

``auto`` is the default and is deliberately conservative: numpy is
picked only when the circuit is big enough (``num_gates >=
AUTO_MIN_GATES``), the levels are wide enough to amortize stage
dispatch (``num_gates / stages >= AUTO_MIN_STAGE_OPS``), and the
sweep is narrow enough that gather traffic stays cache-resident
(``width <= AUTO_MAX_LANES``).  Unknown shape means python, the
backend that is never a regression.  The process default ("auto") can
be overridden with the ``REPRO_LANES`` environment variable or
:func:`set_default_lanes` — the CLI's ``--lanes`` flag sets both so
runner worker processes inherit the choice.

Parity is contractual, not aspirational: a :class:`LaneProgram`
computes bit-for-bit the same values as ``eval_words``, property-tested
in ``tests/circuit/test_lanes.py`` and asserted before every timed
benchmark comparison.  Backends therefore never affect result-cache
identity — ``lanes`` rides in task *context*, never in hashed params.
"""

from __future__ import annotations

import os
from collections.abc import Sequence
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.circuit.compiled import CompiledCircuit

#: ``lanes="auto"`` never picks numpy below this gate count — tiny
#: circuits cannot pay back the fixed fill/extract cost of a sweep.
AUTO_MIN_GATES = 2048

#: Minimum average ops per vector stage (``num_gates / stages``) for
#: ``auto`` to pick numpy.  Measured crossover: a deep multiplier
#: (~20 ops/stage) loses at every width, a mixed-opcode fabric
#: (~130-290 ops/stage) roughly breaks even, and opcode-homogeneous
#: planes (800+ ops/stage) win 3-11x.
AUTO_MIN_STAGE_OPS = 512

#: ``auto`` stays on python above this lane count.  Past a few hundred
#: lanes the per-stage gathers start missing cache while the big-int
#: path's C loops stream, and the numpy advantage collapses (measured:
#: 11.6x at 64 lanes -> 5.6x at 256 -> below 1x by 4096 on the match
#: plane).  Explicit ``lanes="numpy"`` is honored at any width.
AUTO_MAX_LANES = 256

#: Preferred lane count for one chunked bit-parallel sweep, per
#: backend.  Each value sits at the top of the backend's measured
#: throughput plateau: python big-ints keep near-peak patterns/sec up
#: to a few thousand lanes, while the numpy program peaks earlier —
#: past ~1k lanes its stage gathers fall out of cache.
PREFERRED_CHUNK_LANES = {"python": 4096, "numpy": 1024}

_VALID = ("auto", "python", "numpy")

_numpy = None
_numpy_probed = False


def _load_numpy():
    """Import numpy once; ``None`` (not an error) when unavailable."""
    global _numpy, _numpy_probed
    if not _numpy_probed:
        _numpy_probed = True
        try:
            import numpy
        except ImportError:
            numpy = None
        _numpy = numpy
    return _numpy


def numpy_available() -> bool:
    """True when the numpy lane backend can be built in this process."""
    return _load_numpy() is not None


def available_lane_backends() -> tuple[str, ...]:
    """The lane backends usable right now (``"python"`` is always in)."""
    return ("python", "numpy") if numpy_available() else ("python",)


_default_lanes: str | None = None


def default_lanes() -> str:
    """The process-wide lane lever: ``REPRO_LANES`` or ``"auto"``."""
    if _default_lanes is not None:
        return _default_lanes
    return os.environ.get("REPRO_LANES", "auto") or "auto"


def set_default_lanes(lanes: str | None) -> None:
    """Set (or with ``None`` reset) the process-wide lane lever."""
    global _default_lanes
    if lanes is not None and lanes not in _VALID:
        raise ValueError(
            f"unknown lane backend {lanes!r} (choose from {_VALID})"
        )
    _default_lanes = lanes


def resolve_lanes(
    lanes: str | None = None,
    *,
    num_gates: int | None = None,
    width: int | None = None,
    stages: int | None = None,
) -> str:
    """Resolve a lane lever to a concrete backend name.

    ``None`` means the process default (:func:`default_lanes`).
    ``"auto"`` picks numpy only when it is importable *and* the sweep
    shape wins: at least :data:`AUTO_MIN_GATES` gates, levels wide
    enough that ``num_gates / stages`` reaches
    :data:`AUTO_MIN_STAGE_OPS` (``stages`` is the vector-stage count,
    see :meth:`CompiledCircuit.lane_stage_hint`), and no more than
    :data:`AUTO_MAX_LANES` lanes.  With any of the three unknown it
    stays on python, the backend that is never a regression.
    ``"numpy"`` is an explicit demand and raises
    :class:`ModuleNotFoundError` when the import fails — silent
    degradation is reserved for ``"auto"``.
    """
    if lanes is None:
        lanes = default_lanes()
    if lanes not in _VALID:
        raise ValueError(
            f"unknown lane backend {lanes!r} (choose from {_VALID})"
        )
    if lanes == "numpy":
        if not numpy_available():
            raise ModuleNotFoundError(
                "lanes='numpy' requested but numpy is not installed "
                "(use lanes='auto' to fall back silently)"
            )
        return "numpy"
    if lanes == "python":
        return "python"
    # auto
    if not numpy_available():
        return "python"
    if num_gates is None or width is None or not stages:
        return "python"
    if num_gates < AUTO_MIN_GATES or width > AUTO_MAX_LANES:
        return "python"
    return "numpy" if num_gates / stages >= AUTO_MIN_STAGE_OPS else "python"


def preferred_chunk_lanes(backend: str) -> int:
    """Chunk width (in lanes) one bit-parallel sweep should use."""
    return PREFERRED_CHUNK_LANES[backend]


# ----------------------------------------------------------------------
# The lane program
# ----------------------------------------------------------------------

# Stage kernels.  N-ary gates are binarized at build time (left fold,
# with the inverted form fused into the last node), so only these
# survive into stages.
_K_AND = 0
_K_OR = 1
_K_XOR = 2
_K_NAND = 3
_K_NOR = 4
_K_XNOR = 5
_K_NOT = 6
_K_MUX = 7
_K_CONST0 = 8
_K_CONST1 = 9

_BASE_OF_NARY = {}  # filled below from compiled opcodes


def _int_to_row(value: int, n_words: int, np):
    """One big-int lane word as a little-endian uint64 row."""
    return np.frombuffer(
        value.to_bytes(n_words * 8, "little"), dtype=np.uint64
    )


def _row_to_int(row) -> int:
    """Inverse of :func:`_int_to_row` (no masking)."""
    return int.from_bytes(row.tobytes(), "little")


class _Stage:
    """One vectorized step: ``kernel`` over a contiguous output block."""

    __slots__ = ("kernel", "lo", "hi", "a", "b", "c")

    def __init__(self, kernel, lo, hi, a=None, b=None, c=None):
        self.kernel = kernel
        self.lo = lo
        self.hi = hi
        self.a = a
        self.b = b
        self.c = c


class LaneProgram:
    """Levelized, opcode-grouped numpy form of a compiled circuit.

    Built once per :class:`CompiledCircuit` (see
    :meth:`CompiledCircuit.lane_program`) and reused across sweeps.
    Like the compiled core's ``_scratch``, the preallocated gather
    buffers make a program instance single-threaded; build one per
    thread if you must share a circuit across threads.
    """

    def __init__(self, compiled: "CompiledCircuit"):
        np = _load_numpy()
        if np is None:  # pragma: no cover - guarded by callers
            raise ModuleNotFoundError("numpy is required for LaneProgram")
        self._np = np
        self._compiled = compiled
        self.num_inputs = len(compiled.inputs)
        self._build(compiled, np)
        self._values = None  # lazily sized (num_lane_slots, n_words)
        self._buf_a = None
        self._buf_b = None

    # -- construction --------------------------------------------------
    def _build(self, compiled: "CompiledCircuit", np) -> None:
        from repro.circuit import compiled as cc

        n_inputs = self.num_inputs
        # Pass 1: binarize into (kernel, out_vid, operand_vids) ops with
        # levels; BUF collapses to an alias (no stage work at all).
        alias: dict[int, int] = {}  # vid -> canonical vid
        level = [0] * n_inputs  # per vid
        ops: list[tuple[int, int, tuple[int, ...]]] = []
        slot_vid = list(range(n_inputs)) + [-1] * (
            compiled.num_slots - n_inputs
        )

        def canon(vid: int) -> int:
            return alias.get(vid, vid)

        def emit(kernel: int, operands: tuple[int, ...]) -> int:
            vid = len(level)
            level.append(1 + max((level[v] for v in operands), default=0))
            ops.append((kernel, vid, operands))
            return vid

        binary_kernel = {
            cc._AND2: _K_AND, cc._OR2: _K_OR, cc._XOR2: _K_XOR,
            cc._NAND2: _K_NAND, cc._NOR2: _K_NOR, cc._XNOR2: _K_XNOR,
        }
        nary_fold = {
            cc._AND_N: (_K_AND, _K_AND), cc._NAND_N: (_K_AND, _K_NAND),
            cc._OR_N: (_K_OR, _K_OR), cc._NOR_N: (_K_OR, _K_NOR),
            cc._XOR_N: (_K_XOR, _K_XOR), cc._XNOR_N: (_K_XOR, _K_XNOR),
        }

        for op, out, operands in compiled._program:
            if op == cc._BUF:
                vid = canon(slot_vid[operands])
                slot_vid[out] = vid
                continue
            if op == cc._NOT:
                vid = emit(_K_NOT, (canon(slot_vid[operands]),))
            elif op == cc._CONST0:
                vid = emit(_K_CONST0, ())
            elif op == cc._CONST1:
                vid = emit(_K_CONST1, ())
            elif op == cc._MUX:
                s, d1, d0 = (canon(slot_vid[v]) for v in operands)
                vid = emit(_K_MUX, (s, d1, d0))
            elif op in binary_kernel:
                a, b = (canon(slot_vid[v]) for v in operands)
                vid = emit(binary_kernel[op], (a, b))
            else:  # n-ary: left fold, inverted form fused into the tail
                base, last = nary_fold[op]
                vids = [canon(slot_vid[v]) for v in operands]
                acc = vids[0]
                for nxt in vids[1:-1]:
                    acc = emit(base, (acc, nxt))
                vid = emit(last, (acc, vids[-1]))
            slot_vid[out] = vid

        # Pass 2: group by (level, kernel); lane slots are inputs first,
        # then each stage's outputs as one contiguous block, so every
        # stage writes a slice of the value matrix (no scatter).
        groups: dict[tuple[int, int], list[tuple[int, tuple[int, ...]]]] = {}
        for kernel, vid, operands in ops:
            groups.setdefault((level[vid], kernel), []).append(
                (vid, operands)
            )
        lane_of = [0] * len(level)
        for vid in range(n_inputs):
            lane_of[vid] = vid
        stages: list[_Stage] = []
        nxt = n_inputs
        for (lvl, kernel) in sorted(groups):
            items = groups[(lvl, kernel)]
            lo = nxt
            for vid, _ in items:
                lane_of[vid] = nxt
                nxt += 1
            # Operands are strictly lower-level, so their lane slots are
            # already final when this stage is laid out.
            if kernel in (_K_CONST0, _K_CONST1):
                stages.append(_Stage(kernel, lo, nxt))
                continue
            columns = [
                np.array(
                    [lane_of[operands[j]] for _, operands in items],
                    dtype=np.intp,
                )
                for j in range(len(items[0][1]))
            ]
            stages.append(_Stage(kernel, lo, nxt, *columns))

        self._stages = stages
        self.num_lane_slots = nxt
        self.max_stage = max(
            (s.hi - s.lo for s in stages), default=0
        )
        #: compiled slot index -> lane slot index (for extraction).
        self.lane_of_slot = np.array(
            [lane_of[canon(vid)] if vid >= 0 else 0 for vid in slot_vid],
            dtype=np.intp,
        )
        self.output_lanes = np.array(
            [self.lane_of_slot[s] for s in compiled.output_slots],
            dtype=np.intp,
        )

    # -- evaluation ----------------------------------------------------
    def _matrix(self, n_words: int):
        """The reusable value/gather buffers, (re)sized to ``n_words``."""
        np = self._np
        if self._values is None or self._values.shape[1] != n_words:
            self._values = np.empty(
                (self.num_lane_slots, n_words), dtype=np.uint64
            )
            self._buf_a = np.empty(
                (max(self.max_stage, 1), n_words), dtype=np.uint64
            )
            self._buf_b = np.empty_like(self._buf_a)
        return self._values

    def _run(self, input_words: Sequence[int], n_words: int):
        np = self._np
        if len(input_words) != self.num_inputs:
            raise ValueError(
                f"expected {self.num_inputs} input words, "
                f"got {len(input_words)}"
            )
        values = self._matrix(n_words)
        if self.num_inputs:
            # One blob + one frombuffer: per-row numpy assignments cost
            # ~1.5us each, which dominates sweeps on input-heavy
            # circuits (a 1000-PI fabric pays ~1.5ms filled row by row).
            row_bytes = n_words * 8
            blob = b"".join(
                word.to_bytes(row_bytes, "little") for word in input_words
            )
            values[: self.num_inputs] = np.frombuffer(
                blob, dtype=np.uint64
            ).reshape(self.num_inputs, n_words)
        band = np.bitwise_and
        bor = np.bitwise_or
        bxor = np.bitwise_xor
        bnot = np.bitwise_not
        take = np.take
        for stage in self._stages:
            kernel = stage.kernel
            out = values[stage.lo : stage.hi]
            if kernel == _K_NOT:
                bnot(values[stage.a], out=out)
                continue
            if kernel == _K_CONST0:
                out.fill(0)
                continue
            if kernel == _K_CONST1:
                out.fill(0xFFFFFFFFFFFFFFFF)
                continue
            g = stage.hi - stage.lo
            ba = self._buf_a[:g]
            bb = self._buf_b[:g]
            take(values, stage.a, axis=0, out=ba)
            take(values, stage.b, axis=0, out=bb)
            if kernel == _K_AND:
                band(ba, bb, out=out)
            elif kernel == _K_OR:
                bor(ba, bb, out=out)
            elif kernel == _K_XOR:
                bxor(ba, bb, out=out)
            elif kernel == _K_NAND:
                band(ba, bb, out=out)
                bnot(out, out=out)
            elif kernel == _K_NOR:
                bor(ba, bb, out=out)
                bnot(out, out=out)
            elif kernel == _K_XNOR:
                bxor(ba, bb, out=out)
                bnot(out, out=out)
            else:  # _K_MUX: out = (s & d1) | (~s & d0)
                band(ba, bb, out=out)  # s & d1
                bnot(ba, out=ba)  # ~s
                take(values, stage.c, axis=0, out=bb)  # d0
                band(ba, bb, out=ba)
                bor(out, ba, out=out)
        return values

    def eval_words(self, input_words: Sequence[int], mask: int) -> list[int]:
        """Bit-parallel sweep, full slot list — parity twin of
        :meth:`CompiledCircuit.eval_words` (same arguments, same
        result, different substrate).  Inactive lanes are masked on
        extraction; intermediate stages run unmasked because every
        gate is lane-independent.
        """
        n_words = max(1, (mask.bit_length() + 63) // 64)
        values = self._run(
            [w & mask for w in input_words], n_words
        )
        lane_of = self.lane_of_slot
        return [
            _row_to_int(values[lane_of[s]]) & mask
            for s in range(self._compiled.num_slots)
        ]

    def eval_outputs(self, input_words: Sequence[int], mask: int) -> list[int]:
        """Like :meth:`eval_words` but converts only primary outputs."""
        n_words = max(1, (mask.bit_length() + 63) // 64)
        values = self._run([w & mask for w in input_words], n_words)
        return [
            _row_to_int(values[lane]) & mask for lane in self.output_lanes
        ]

    def eval_batch(self, patterns: Sequence[int]) -> list[int]:
        """Packed-pattern sweep — parity twin of
        :meth:`CompiledCircuit.eval_batch`."""
        width = len(patterns)
        if width == 0:
            return []
        words = []
        for j in range(self.num_inputs):
            word = 0
            for lane, pattern in enumerate(patterns):
                if (pattern >> j) & 1:
                    word |= 1 << lane
            words.append(word)
        n_words = (width + 63) // 64
        values = self._run(words, n_words)
        out_words = [
            _row_to_int(values[lane]) for lane in self.output_lanes
        ]
        results = []
        for lane in range(width):
            packed = 0
            for k, word in enumerate(out_words):
                if (word >> lane) & 1:
                    packed |= 1 << k
            results.append(packed)
        return results
