"""Structural netlist analysis.

Includes the fan-out-cone statistics behind the paper's splitting-input
selection: *"determined through a fan-out cone analysis of the
netlist's input ports, prioritizing those with the most key-controlled
gates in their fan-out cones"* (§4).
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable, Sequence

from repro.circuit.netlist import Netlist


def levelize(netlist: Netlist) -> dict[str, int]:
    """Topological level of every net (inputs are level 0)."""
    levels: dict[str, int] = {net: 0 for net in netlist.inputs}
    for gate in netlist.topological_order():
        levels[gate.output] = 1 + max(
            (levels[src] for src in gate.inputs), default=0
        )
    return levels


def depth(netlist: Netlist) -> int:
    """Logic depth: maximum level over all nets."""
    levels = levelize(netlist)
    return max(levels.values(), default=0)


def fanin_cone(netlist: Netlist, net: str) -> set[str]:
    """All nets in the transitive fanin of ``net`` (inclusive)."""
    cone: set[str] = set()
    queue = deque([net])
    while queue:
        current = queue.popleft()
        if current in cone:
            continue
        cone.add(current)
        gate = netlist.gates.get(current)
        if gate is not None:
            queue.extend(gate.inputs)
    return cone


def fanin_support(netlist: Netlist, net: str) -> set[str]:
    """Primary inputs in the transitive fanin of ``net``."""
    return fanin_cone(netlist, net) & set(netlist.inputs)


def fanout_cone(netlist: Netlist, net: str) -> set[str]:
    """All gate outputs transitively depending on ``net`` (exclusive)."""
    fanout_map = netlist.fanouts()
    cone: set[str] = set()
    queue = deque(fanout_map.get(net, ()))
    while queue:
        current = queue.popleft()
        if current in cone:
            continue
        cone.add(current)
        queue.extend(fanout_map.get(current, ()))
    return cone


def key_controlled_gates(netlist: Netlist, key_inputs: Iterable[str]) -> set[str]:
    """Gate outputs whose fanin cone contains at least one key input.

    Computed as a single taint-propagation sweep in topological order.
    """
    tainted = set(key_inputs)
    controlled: set[str] = set()
    for gate in netlist.topological_order():
        if any(src in tainted for src in gate.inputs):
            tainted.add(gate.output)
            controlled.add(gate.output)
    return controlled


def rank_inputs_by_key_influence(
    netlist: Netlist,
    key_inputs: Sequence[str],
    candidates: Sequence[str] | None = None,
) -> list[tuple[str, int]]:
    """Rank candidate primary inputs by key-controlled gates in their fan-out.

    This is the paper's splitting-input heuristic.  ``candidates``
    defaults to every primary input that is not a key input.  Returns
    ``(input, count)`` pairs sorted by descending count, ties broken by
    input order for determinism.
    """
    key_set = set(key_inputs)
    if candidates is None:
        candidates = [net for net in netlist.inputs if net not in key_set]
    controlled = key_controlled_gates(netlist, key_inputs)

    # One reverse sweep per candidate is simple and fast enough; the
    # sizes here are ISCAS-class (hundreds of PIs, thousands of gates).
    fanout_map = netlist.fanouts()

    def count_controlled(net: str) -> int:
        seen: set[str] = set()
        stack = list(fanout_map.get(net, ()))
        hits = 0
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            if current in controlled:
                hits += 1
            stack.extend(fanout_map.get(current, ()))
        return hits

    ranked = [(net, count_controlled(net)) for net in candidates]
    order = {net: i for i, net in enumerate(netlist.inputs)}
    ranked.sort(key=lambda pair: (-pair[1], order.get(pair[0], 0)))
    return ranked


def cone_statistics(netlist: Netlist) -> dict[str, dict[str, int]]:
    """Per-output support and cone-size statistics (reporting helper)."""
    stats: dict[str, dict[str, int]] = {}
    input_set = set(netlist.inputs)
    for net in netlist.outputs:
        cone = fanin_cone(netlist, net)
        stats[net] = {
            "cone_gates": len(cone - input_set),
            "support": len(cone & input_set),
        }
    return stats
