"""Structural netlist analysis.

Includes the fan-out-cone statistics behind the paper's splitting-input
selection: *"determined through a fan-out cone analysis of the
netlist's input ports, prioritizing those with the most key-controlled
gates in their fan-out cones"* (§4).

Analyses of complete netlists run over the compiled arrays of
:meth:`Netlist.compile` — one cached topological sort shared with
simulation and CNF encoding instead of a fresh sort per query.  The
cone walks (:func:`fanin_cone`, :func:`fanout_cone`) also accept
netlists under construction (locking passes query cones mid-splice,
when a net may be temporarily undriven), falling back to the dict walk
unless a valid compiled form is already cached.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable, Sequence

from repro.circuit.compiled import CompiledCircuit
from repro.circuit.netlist import Netlist


def _cached_compiled(netlist: Netlist) -> CompiledCircuit | None:
    """The netlist's compiled form if (and only if) it is already cached
    and still valid — never triggers compilation."""
    cached = netlist._compiled
    if cached is not None and cached[0] == netlist._structure_guard():
        return cached[1]
    return None


def levelize(netlist: Netlist) -> dict[str, int]:
    """Topological level of every net (inputs are level 0)."""
    compiled = netlist.compile()
    return dict(zip(compiled.net_names, compiled.levels()))


def depth(netlist: Netlist) -> int:
    """Logic depth: maximum level over all nets."""
    levels = netlist.compile().levels()
    return max(levels, default=0)


def fanin_cone(netlist: Netlist, net: str) -> set[str]:
    """All nets in the transitive fanin of ``net`` (inclusive)."""
    compiled = _cached_compiled(netlist)
    if compiled is not None and net in compiled.slot_of:
        names = compiled.net_names
        return {
            names[s] for s in compiled.fanin_cone_slots(compiled.slot_of[net])
        }
    cone: set[str] = set()
    queue = deque([net])
    while queue:
        current = queue.popleft()
        if current in cone:
            continue
        cone.add(current)
        gate = netlist.gates.get(current)
        if gate is not None:
            queue.extend(gate.inputs)
    return cone


def fanin_support(netlist: Netlist, net: str) -> set[str]:
    """Primary inputs in the transitive fanin of ``net``."""
    return fanin_cone(netlist, net) & set(netlist.inputs)


def fanout_cone(netlist: Netlist, net: str) -> set[str]:
    """All gate outputs transitively depending on ``net`` (exclusive)."""
    compiled = _cached_compiled(netlist)
    if compiled is not None and net in compiled.slot_of:
        names = compiled.net_names
        return {
            names[s] for s in compiled.fanout_cone_slots(compiled.slot_of[net])
        }
    fanout_map = netlist.fanouts()
    cone: set[str] = set()
    queue = deque(fanout_map.get(net, ()))
    while queue:
        current = queue.popleft()
        if current in cone:
            continue
        cone.add(current)
        queue.extend(fanout_map.get(current, ()))
    return cone


def key_controlled_gates(netlist: Netlist, key_inputs: Iterable[str]) -> set[str]:
    """Gate outputs whose fanin cone contains at least one key input.

    Computed as a single taint-propagation sweep over the compiled gate
    arrays.
    """
    compiled = netlist.compile()
    slot_of = compiled.slot_of
    tainted = compiled.tainted_slots(slot_of[net] for net in key_inputs)
    names = compiled.net_names
    return {
        names[out]
        for out in compiled.gate_output_slots
        if tainted[out]
    }


def rank_inputs_by_key_influence(
    netlist: Netlist,
    key_inputs: Sequence[str],
    candidates: Sequence[str] | None = None,
) -> list[tuple[str, int]]:
    """Rank candidate primary inputs by key-controlled gates in their fan-out.

    This is the paper's splitting-input heuristic.  ``candidates``
    defaults to every primary input that is not a key input.  Returns
    ``(input, count)`` pairs sorted by descending count, ties broken by
    input order for determinism.
    """
    key_set = set(key_inputs)
    if candidates is None:
        candidates = [net for net in netlist.inputs if net not in key_set]
    compiled = netlist.compile()
    slot_of = compiled.slot_of
    controlled = compiled.tainted_slots(slot_of[net] for net in key_inputs)
    # Key inputs themselves are tainted seeds, not controlled *gates*.
    for net in key_inputs:
        controlled[slot_of[net]] = False

    # One reverse sweep per candidate over the compiled fanout arrays is
    # simple and fast enough; the sizes here are ISCAS-class (hundreds
    # of PIs, thousands of gates).
    readers = compiled.fanout_slots()

    def count_controlled(net: str) -> int:
        seen = [False] * compiled.num_slots
        stack = list(readers[slot_of[net]])
        hits = 0
        while stack:
            current = stack.pop()
            if seen[current]:
                continue
            seen[current] = True
            if controlled[current]:
                hits += 1
            stack.extend(readers[current])
        return hits

    ranked = [(net, count_controlled(net)) for net in candidates]
    order = {net: i for i, net in enumerate(netlist.inputs)}
    ranked.sort(key=lambda pair: (-pair[1], order.get(pair[0], 0)))
    return ranked


def cone_statistics(netlist: Netlist) -> dict[str, dict[str, int]]:
    """Per-output support and cone-size statistics (reporting helper)."""
    compiled = netlist.compile()
    stats: dict[str, dict[str, int]] = {}
    num_inputs = len(compiled.inputs)
    for net, slot in zip(compiled.outputs, compiled.output_slots):
        cone = compiled.fanin_cone_slots(slot)
        support = sum(1 for s in cone if s < num_inputs)
        stats[net] = {
            "cone_gates": len(cone) - support,
            "support": support,
        }
    return stats
