"""Bit-parallel netlist simulation.

Nets carry Python integers used as bit vectors: lane *i* of every net
is one simulation pattern.  Because Python integers are arbitrary
precision, exhaustively simulating a 20-input circuit is a single
sweep with 2**20-bit lanes — no numpy needed, and still fast because
the work per gate is one big-int operation.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.circuit.gates import GateType, eval_gate
from repro.circuit.netlist import Netlist


def simulate(
    netlist: Netlist, input_values: Mapping[str, int], width: int = 1
) -> dict[str, int]:
    """Simulate ``width`` parallel patterns.

    ``input_values`` maps every primary input to an integer whose low
    ``width`` bits are the per-pattern values.  Returns the value of
    every net.
    """
    if width < 1:
        raise ValueError("width must be positive")
    mask = (1 << width) - 1
    values: dict[str, int] = {}
    for net in netlist.inputs:
        if net not in input_values:
            raise KeyError(f"missing value for primary input {net!r}")
        values[net] = input_values[net] & mask
    for gate in netlist.topological_order():
        values[gate.output] = eval_gate(
            gate.gtype, [values[src] for src in gate.inputs], mask
        )
    return values


def evaluate(
    netlist: Netlist, input_bits: Mapping[str, int] | Sequence[int]
) -> dict[str, int]:
    """Single-pattern simulation returning only primary-output values.

    ``input_bits`` is either a mapping from input name to 0/1 or a
    sequence aligned with ``netlist.inputs``.
    """
    if not isinstance(input_bits, Mapping):
        if len(input_bits) != len(netlist.inputs):
            raise ValueError(
                f"expected {len(netlist.inputs)} input bits, "
                f"got {len(input_bits)}"
            )
        input_bits = dict(zip(netlist.inputs, input_bits))
    values = simulate(netlist, input_bits, width=1)
    return {net: values[net] for net in netlist.outputs}


def exhaustive_patterns(num_inputs: int) -> list[int]:
    """Bit-parallel input stimuli covering all 2**n patterns.

    Entry *j* is the value of input *j* across the 2**n lanes: lane
    ``p`` holds bit ``j`` of the pattern index ``p``.  Input 0 is the
    least significant bit of the pattern index.
    """
    if num_inputs < 0:
        raise ValueError("num_inputs must be non-negative")
    if num_inputs > 24:
        raise ValueError("exhaustive simulation beyond 24 inputs is unreasonable")
    total = 1 << num_inputs
    patterns = []
    for j in range(num_inputs):
        period = 1 << (j + 1)
        half = 1 << j
        block = ((1 << half) - 1) << half  # 'half' zeros then 'half' ones
        value = 0
        for start in range(0, total, period):
            value |= block << start
        patterns.append(value)
    return patterns


def truth_table(netlist: Netlist) -> dict[str, int]:
    """Exhaustive simulation: each output as a 2**n-bit truth table.

    Bit ``p`` of the result is the output under input pattern ``p``,
    where bit *j* of ``p`` is the value of ``netlist.inputs[j]``.
    """
    n = len(netlist.inputs)
    stimuli = exhaustive_patterns(n)
    values = simulate(
        netlist, dict(zip(netlist.inputs, stimuli)), width=1 << n
    )
    return {net: values[net] for net in netlist.outputs}


def outputs_as_int(output_values: Mapping[str, int], outputs: Sequence[str]) -> int:
    """Pack single-bit output values into an integer (outputs[0] = LSB)."""
    word = 0
    for i, net in enumerate(outputs):
        if output_values[net]:
            word |= 1 << i
    return word


def random_patterns(num_inputs: int, width: int, seed: int = 0) -> list[int]:
    """``width`` random parallel patterns for each of ``num_inputs`` inputs."""
    import random

    rng = random.Random(seed)
    return [rng.getrandbits(width) for _ in range(num_inputs)]
