"""Bit-parallel netlist simulation.

Nets carry Python integers used as bit vectors: lane *i* of every net
is one simulation pattern.  Because Python integers are arbitrary
precision, exhaustively simulating a 20-input circuit is a single
sweep with 2**20-bit lanes and one big-int operation per gate.

Big-int lanes are the always-available baseline, not the whole story:
each gate pays a fixed interpreter constant (~50-130ns) no matter how
many gates share its level.  On wide, shallow circuits — PLA planes,
match/decode fabrics, parity networks with thousands of same-opcode
gates per level — that constant dominates, and the regime belongs to
the optional numpy backend in :mod:`repro.circuit.lanes`, selected via
the ``lanes="auto"|"python"|"numpy"`` lever threaded through
``Oracle``/``CompiledCircuit``/``check_equivalence``.  ``auto`` picks
numpy only when it is importable *and* the sweep shape wins: a big
circuit (``AUTO_MIN_GATES``), wide levels (``num_gates / stages >=
AUTO_MIN_STAGE_OPS``) and a narrow sweep (``width <=
AUTO_MAX_LANES``).  Otherwise — deep carry chains, very wide sweeps,
machines without numpy — it silently stays on the big-int path, which
wins those regimes outright.  Both backends are exact bit-for-bit
parity twins.

The public functions are thin mapping-based wrappers over the compiled
evaluation core (:meth:`Netlist.compile`): the netlist is lowered once
to an integer-indexed :class:`repro.circuit.compiled.CompiledCircuit`
and every call evaluates over flat slot arrays instead of re-sorting
and dict-walking the netlist.  :func:`simulate_reference` keeps the
original dict-walk implementation as the independent parity baseline
(and as the "legacy" side of ``benchmarks/test_bench_sim.py``).
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.circuit.compiled import exhaustive_words
from repro.circuit.gates import eval_gate
from repro.circuit.netlist import Netlist


def simulate(
    netlist: Netlist, input_values: Mapping[str, int], width: int = 1
) -> dict[str, int]:
    """Simulate ``width`` parallel patterns.

    ``input_values`` maps every primary input to an integer whose low
    ``width`` bits are the per-pattern values.  Returns the value of
    every net.
    """
    if width < 1:
        raise ValueError("width must be positive")
    compiled = netlist.compile()
    values = compiled.eval_mapping(input_values, (1 << width) - 1)
    return dict(zip(compiled.net_names, values))


def simulate_reference(
    netlist: Netlist, input_values: Mapping[str, int], width: int = 1
) -> dict[str, int]:
    """The original per-gate dict-walk simulator.

    Functionally identical to :func:`simulate` but re-sorts the netlist
    and walks string-keyed dicts on every call.  Kept as the
    independent implementation that property tests and the simulation
    benchmark compare the compiled core against.
    """
    if width < 1:
        raise ValueError("width must be positive")
    mask = (1 << width) - 1
    values: dict[str, int] = {}
    for net in netlist.inputs:
        if net not in input_values:
            raise KeyError(f"missing value for primary input {net!r}")
        values[net] = input_values[net] & mask
    for gate in netlist.topological_order():
        values[gate.output] = eval_gate(
            gate.gtype, [values[src] for src in gate.inputs], mask
        )
    return values


def evaluate(
    netlist: Netlist, input_bits: Mapping[str, int] | Sequence[int]
) -> dict[str, int]:
    """Single-pattern simulation returning only primary-output values.

    ``input_bits`` is either a mapping from input name to 0/1 or a
    sequence aligned with ``netlist.inputs``.
    """
    return netlist.compile().eval_single(input_bits)


def exhaustive_patterns(num_inputs: int) -> list[int]:
    """Bit-parallel input stimuli covering all 2**n patterns.

    Entry *j* is the value of input *j* across the 2**n lanes: lane
    ``p`` holds bit ``j`` of the pattern index ``p``.  Input 0 is the
    least significant bit of the pattern index.
    """
    return exhaustive_words(num_inputs)


def truth_table(netlist: Netlist) -> dict[str, int]:
    """Exhaustive simulation: each output as a 2**n-bit truth table.

    Bit ``p`` of the result is the output under input pattern ``p``,
    where bit *j* of ``p`` is the value of ``netlist.inputs[j]``.
    """
    compiled = netlist.compile()
    return dict(zip(compiled.outputs, compiled.truth_table_words()))


def outputs_as_int(output_values: Mapping[str, int], outputs: Sequence[str]) -> int:
    """Pack single-bit output values into an integer (outputs[0] = LSB)."""
    word = 0
    for i, net in enumerate(outputs):
        if output_values[net]:
            word |= 1 << i
    return word


def random_patterns(num_inputs: int, width: int, seed: int = 0) -> list[int]:
    """``width`` random parallel patterns for each of ``num_inputs`` inputs."""
    import random

    rng = random.Random(seed)
    return [rng.getrandbits(width) for _ in range(num_inputs)]


def random_stimuli_words(
    inputs: Sequence[str],
    num_lanes: int,
    rng,
    pin: Mapping[str, bool] | None = None,
) -> dict[str, int]:
    """Lane-transposed random single-bit stimuli: input name -> word.

    Draws one bit per (lane, input) in lane-major order — the same RNG
    stream as a historical per-pattern ``{net: rng.getrandbits(1)}``
    loop — so batched callers stay seed-for-seed compatible with their
    per-pattern predecessors.  ``pin`` overrides named inputs with
    constants; the pinned position still consumes a draw, again to
    preserve the stream.
    """
    pin = pin or {}
    words = {net: 0 for net in inputs}
    for lane in range(num_lanes):
        for net in inputs:
            bit = rng.getrandbits(1)
            if net in pin:
                bit = int(pin[net])
            if bit:
                words[net] |= 1 << lane
    return words
