"""Command-line interface: ``repro-lock`` (or ``python -m repro``).

Subcommands map one-to-one onto the library's experiment runners::

    repro-lock figure1
    repro-lock table1 --key-sizes 4,8 --scale 0.2 --jobs 4
    repro-lock table2 --scale 0.4 --time-limit 120 --jobs 8
    repro-lock defense --circuit c1908 --key-size 4 -N 2
    repro-lock attack --circuit c6288 --scheme sarlock --key-size 8 -N 2
    repro-lock attack --engine reference ...   # literal Algorithm 1 arm
    repro-lock matrix --schemes sarlock,xor --attacks sat,appsat \
        --engines sharded,reference --circuits c432 --efforts 1,2
    repro-lock matrix --list-schemes           # registry rosters
    repro-lock matrix --list-attacks
    repro-lock bench --circuit c7552 --scale 0.3 --out c7552.bench
    repro-lock cache info

``attack``/``table1``/``table2`` pick the multi-key engine with
``--engine {sharded,reference}`` (default: the shared-encoding sharded
engine; ``reference`` is the per-sub-space synthesis arm).  ``matrix``
evaluates any ``scheme x attack x engine x circuit`` grid under the
multi-key premise — scheme and attack names come from the registries
(``--list-schemes`` / ``--list-attacks``) and results export as CSV or
JSON with ``--csv`` / ``--json``.

Experiment subcommands share the runner flags: ``--jobs`` fans rows
out over a process pool, ``--cache-dir`` relocates the on-disk result
cache (default ``$REPRO_CACHE_DIR`` or ``~/.cache/repro-lock``) and
``--no-cache`` disables it.  A warm cache replays a table without
re-solving anything.
"""

from __future__ import annotations

import argparse
import sys


def _parse_int_list(text: str) -> tuple[int, ...]:
    return tuple(int(tok) for tok in text.split(",") if tok.strip())


def _add_runner_args(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("runner")
    group.add_argument(
        "--jobs", "-j", type=int, default=1,
        help="worker processes for experiment tasks (default: 1, serial)",
    )
    group.add_argument(
        "--cache-dir", default="",
        help="result-cache directory (default: $REPRO_CACHE_DIR "
             "or ~/.cache/repro-lock)",
    )
    group.add_argument(
        "--no-cache", action="store_true",
        help="neither read nor write the result cache",
    )
    group.add_argument(
        "--quiet", action="store_true",
        help="suppress per-task progress lines on stderr",
    )


def _open_cache(cache_dir: str):
    from repro.runner import ResultCache

    cache = ResultCache(cache_dir or None)
    if cache.root.exists() and not cache.root.is_dir():
        raise SystemExit(
            f"repro-lock: error: cache dir {cache.root} exists and is "
            "not a directory"
        )
    return cache


def _make_runner(args: argparse.Namespace):
    from repro.runner import Runner, print_progress

    cache = None if args.no_cache else _open_cache(args.cache_dir)
    progress = None if args.quiet else print_progress
    return Runner(jobs=max(1, args.jobs), cache=cache, progress=progress)


def _cmd_figure1(args: argparse.Namespace) -> int:
    from repro.experiments.figure1 import run_figure1

    result = run_figure1(correct_key=args.key, runner=_make_runner(args))
    print(result.format())
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    from repro.experiments.table1 import run_table1

    result = run_table1(
        key_sizes=_parse_int_list(args.key_sizes),
        efforts=_parse_int_list(args.efforts),
        scale=args.scale,
        time_limit_per_task=args.time_limit,
        parallel=args.parallel,
        runner=_make_runner(args),
        engine=args.engine,
    )
    print(result.format())
    return 0


def _cmd_table2(args: argparse.Namespace) -> int:
    from repro.experiments.table2 import TABLE2_CIRCUITS, run_table2
    from repro.locking.lut_lock import LutModuleSpec

    circuits = (
        tuple(args.circuits.split(",")) if args.circuits else TABLE2_CIRCUITS
    )
    spec = LutModuleSpec.by_name(args.spec)
    result = run_table2(
        circuits=circuits,
        scale=args.scale,
        spec=spec,
        time_limit_per_task=args.time_limit,
        parallel=not args.sequential,
        verify=not args.no_verify,
        runner=_make_runner(args),
        engine=args.engine,
    )
    print(result.format())
    return 0


def _cmd_ablation(args: argparse.Namespace) -> int:
    runner = _make_runner(args)
    if args.which in ("splitting", "both"):
        from repro.experiments.ablation_splitting import run_splitting_ablation

        print(run_splitting_ablation(scale=args.scale, runner=runner).format())
    if args.which in ("synthesis", "both"):
        from repro.experiments.ablation_synthesis import run_synthesis_ablation

        print(run_synthesis_ablation(scale=args.scale, runner=runner).format())
    return 0


def _cmd_defense(args: argparse.Namespace) -> int:
    from repro.experiments.defense import run_defense_experiment

    result = run_defense_experiment(
        circuit=args.circuit,
        scale=args.scale,
        key_size=args.key_size,
        effort=args.effort,
        time_limit_per_task=args.time_limit,
        runner=_make_runner(args),
    )
    print(result.format())
    return 0


def _cmd_attack(args: argparse.Namespace) -> int:
    from repro.bench_circuits.iscas85 import iscas85_like
    from repro.core.compose import verify_composition
    from repro.core.multikey import multikey_attack
    from repro.locking.base import LockingError
    from repro.locking.registry import lock_circuit

    original = iscas85_like(args.circuit, args.scale)
    try:
        if args.scheme == "lut":
            locked = lock_circuit(
                "lut", original, spec=args.lut_spec, seed=args.seed
            )
        else:
            locked = lock_circuit(
                args.scheme, original, key_size=args.key_size, seed=args.seed
            )
    except (ValueError, LockingError) as error:
        raise SystemExit(f"repro-lock: error: {error}")
    if args.sharded and args.engine == "reference":
        raise SystemExit(
            "repro-lock: error: --sharded contradicts --engine reference"
        )
    engine = "sharded" if args.sharded else args.engine
    print(f"locked: {locked}")

    runner = None
    if engine == "sharded" and args.parallel:
        # Stream each chunk's partial-key results as it lands.
        import multiprocessing

        from repro.runner import Runner, print_progress

        runner = Runner(
            jobs=multiprocessing.cpu_count(),
            progress=None if args.quiet else print_progress,
        )

    try:
        result = multikey_attack(
            locked,
            original,
            effort=args.effort,
            parallel=args.parallel,
            time_limit_per_task=args.time_limit,
            engine=engine,
            attack=args.attack,
            runner=runner,
        )
    except ValueError as error:
        raise SystemExit(f"repro-lock: error: {error}")
    print(
        f"engine={result.engine} attack={result.attack} status={result.status} "
        f"splitting={result.splitting_inputs} dips/task={result.dips_per_task}"
    )
    print(
        f"max task {result.max_subtask_seconds:.2f}s, "
        f"mean {result.mean_subtask_seconds:.2f}s, "
        f"wall {result.wall_seconds:.2f}s"
        + (
            f" (one-time encode {result.encode_seconds:.2f}s)"
            if result.engine == "sharded"
            else ""
        )
    )
    if not args.quiet:
        stats = result.solver_stats
        if stats:
            print(
                "solver totals: "
                f"{stats.get('conflicts', 0)} conflicts, "
                f"{stats.get('decisions', 0)} decisions, "
                f"{stats.get('learned', 0)} learned clauses"
            )
            for task in result.subtasks:
                s = task.solver_stats
                print(
                    f"  shard {task.index}: #DIP={task.num_dips} "
                    f"conflicts={s.get('conflicts', 0)} "
                    f"decisions={s.get('decisions', 0)} "
                    f"learned={s.get('learned', 0)} "
                    f"t={task.total_seconds:.2f}s"
                )
    exact = result.status == "ok" and all(
        task.status == "ok" for task in result.subtasks
    )
    if exact:
        equivalent = verify_composition(
            locked, result.splitting_inputs, result.keys, original
        )
        print(f"multi-key composition equivalent: {bool(equivalent)}")
    elif result.status == "ok":
        # Settled (approximate) keys cannot pass CEC by design.
        print("multi-key composition: skipped (approximate sub-space keys)")
    return 0 if result.status == "ok" else 1


def _parse_str_list(text: str) -> tuple[str, ...]:
    return tuple(tok.strip() for tok in text.split(",") if tok.strip())


def _cmd_matrix(args: argparse.Namespace) -> int:
    from repro.attacks.registry import attack_info, registered_attacks
    from repro.locking.registry import registered_schemes, scheme_info

    if args.list_schemes or args.list_attacks:
        if args.list_schemes:
            print("registered locking schemes:")
            for name in registered_schemes():
                print(f"  {name}: {scheme_info(name).description}")
        if args.list_attacks:
            print("registered attacks:")
            for name in registered_attacks():
                info = attack_info(name)
                shard = " [shared-encoding]" if info.supports_shared_encoding else ""
                print(f"  {name}: {info.description}{shard}")
        return 0

    from pathlib import Path

    from repro.locking.base import LockingError
    from repro.scenarios import ScenarioSpec, run_matrix

    def scheme_axis(name: str) -> tuple[str, dict]:
        # The LUT module's key width comes from its spec, every other
        # registered scheme takes --key-size directly.
        if name == "lut":
            return name, {"spec": args.lut_spec}
        return name, {"key_size": args.key_size}

    try:
        spec = ScenarioSpec(
            schemes=[scheme_axis(name) for name in _parse_str_list(args.schemes)],
            attacks=_parse_str_list(args.attacks),
            engines=_parse_str_list(args.engines),
            circuits=_parse_str_list(args.circuits),
            scale=args.scale,
            efforts=_parse_int_list(args.efforts),
            seeds=_parse_int_list(args.seeds),
            time_limit_per_task=args.time_limit,
            max_dips_per_task=args.max_dips,
            include_baseline=args.baseline,
            verify_composition=args.verify,
        )
    except ValueError as error:
        raise SystemExit(f"repro-lock: error: {error}")
    try:
        result = run_matrix(
            spec, runner=_make_runner(args), inner_parallel=args.parallel
        )
    except (ValueError, LockingError) as error:
        # Scheme/attack errors surface here when a cell worker rejects
        # its params (e.g. an odd antisat key size).
        raise SystemExit(f"repro-lock: error: {error}")
    print(result.format())
    if args.csv:
        Path(args.csv).write_text(result.to_csv())
        print(f"wrote {len(result.cells)} cells to {args.csv}")
    if args.json:
        Path(args.json).write_text(result.to_json())
        print(f"wrote {len(result.cells)} cells to {args.json}")
    # Like `attack`: exit nonzero when any cell failed, so CI smoke
    # runs catch partial/timeout cells and CEC failures, not just
    # crashes.
    failed = any(
        cell.status != "ok" or cell.composition_equivalent is False
        for cell in result.cells
    )
    return 1 if failed else 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench_circuits.iscas85 import iscas85_like
    from repro.circuit.bench import format_bench, write_bench_file

    netlist = iscas85_like(args.circuit, args.scale)
    if args.out:
        write_bench_file(netlist, args.out)
        print(f"wrote {netlist} to {args.out}")
    else:
        print(format_bench(netlist), end="")
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    cache = _open_cache(args.cache_dir)
    if args.action == "clear":
        removed = cache.clear(kind=args.kind or None)
        print(f"removed {removed} artifact(s) from {cache.root}")
    else:
        print(f"cache dir: {cache.root}")
        if not cache.root.is_dir():
            print("  (empty — nothing cached yet)")
            return 0
        for kind_dir in sorted(p for p in cache.root.iterdir() if p.is_dir()):
            count = cache.entry_count(kind_dir.name)
            print(f"  {kind_dir.name}: {count} artifact(s)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lock",
        description="Multi-key SAT attack on logic locking (DAC'24 LBR reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("figure1", help="regenerate Fig. 1(a)/(b)")
    p.add_argument("--key", type=lambda s: int(s, 0), default=0b101)
    _add_runner_args(p)
    p.set_defaults(func=_cmd_figure1)

    p = sub.add_parser("table1", help="regenerate Table 1 (#DIP vs N)")
    p.add_argument("--key-sizes", default="4,8,12")
    p.add_argument("--efforts", default="0,1,2,3,4")
    p.add_argument("--scale", type=float, default=0.25)
    p.add_argument("--time-limit", type=float, default=None)
    p.add_argument("--parallel", action="store_true")
    p.add_argument(
        "--engine", choices=("sharded", "reference"), default="sharded",
        help="multi-key engine (default: sharded)",
    )
    _add_runner_args(p)
    p.set_defaults(func=_cmd_table1)

    p = sub.add_parser("table2", help="regenerate Table 2 (LUT runtimes)")
    p.add_argument("--circuits", default="")
    p.add_argument("--scale", type=float, default=0.4)
    p.add_argument("--spec", choices=("tiny", "small", "paper"), default="paper")
    p.add_argument("--time-limit", type=float, default=300.0)
    p.add_argument("--sequential", action="store_true")
    p.add_argument("--no-verify", action="store_true")
    p.add_argument(
        "--engine", choices=("sharded", "reference"), default="sharded",
        help="multi-key engine for the N>0 arm (default: sharded)",
    )
    _add_runner_args(p)
    p.set_defaults(func=_cmd_table2)

    p = sub.add_parser("ablation", help="run the A1/A2 ablations")
    p.add_argument("which", choices=("splitting", "synthesis", "both"))
    p.add_argument("--scale", type=float, default=0.3)
    _add_runner_args(p)
    p.set_defaults(func=_cmd_ablation)

    p = sub.add_parser("defense", help="run the D1 countermeasure experiment")
    p.add_argument("--circuit", default="c1908")
    p.add_argument("--scale", type=float, default=0.3)
    p.add_argument("--key-size", type=int, default=5)
    p.add_argument("-N", "--effort", type=int, default=3)
    p.add_argument("--time-limit", type=float, default=300.0)
    _add_runner_args(p)
    p.set_defaults(func=_cmd_defense)

    p = sub.add_parser("attack", help="lock a benchmark and attack it")
    p.add_argument("--circuit", default="c6288")
    p.add_argument(
        "--scheme", default="sarlock",
        help="registered scheme name (see matrix --list-schemes)",
    )
    p.add_argument(
        "--attack", default="sat",
        help="registered per-sub-space attack (see matrix --list-attacks)",
    )
    p.add_argument(
        "--lut-spec", choices=("tiny", "small", "paper"), default="small",
        help="LUT module preset for --scheme lut (default: small)",
    )
    p.add_argument("--key-size", type=int, default=8)
    p.add_argument("-N", "--effort", type=int, default=2)
    p.add_argument("--scale", type=float, default=0.25)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--parallel", action="store_true")
    p.add_argument("--time-limit", type=float, default=None)
    p.add_argument(
        "--engine", choices=("sharded", "reference"), default="sharded",
        help="multi-key engine (default: sharded)",
    )
    p.add_argument(
        "--sharded", action="store_true",
        help="shorthand for --engine sharded",
    )
    p.add_argument(
        "--quiet", action="store_true",
        help="suppress per-shard solver statistics",
    )
    p.set_defaults(func=_cmd_attack)

    p = sub.add_parser(
        "matrix",
        help="evaluate a scheme x attack x engine x circuit scenario grid",
    )
    p.add_argument(
        "--schemes", default="sarlock,xor",
        help="comma-separated registered scheme names (default: sarlock,xor)",
    )
    p.add_argument(
        "--attacks", default="sat",
        help="comma-separated registered attack names (default: sat)",
    )
    p.add_argument(
        "--engines", default="sharded",
        help="comma-separated multi-key engines (default: sharded)",
    )
    p.add_argument("--circuits", default="c432")
    p.add_argument("--scale", type=float, default=0.25)
    p.add_argument("--efforts", default="1")
    p.add_argument("--seeds", default="0")
    p.add_argument(
        "--key-size", type=int, default=4,
        help="key bits for width-parameterized schemes (default: 4)",
    )
    p.add_argument(
        "--lut-spec", choices=("tiny", "small", "paper"), default="tiny",
        help="LUT module preset for the 'lut' scheme (default: tiny)",
    )
    p.add_argument("--time-limit", type=float, default=None)
    p.add_argument("--max-dips", type=int, default=None)
    p.add_argument(
        "--baseline", action="store_true",
        help="also run the N=0 exact baseline per cell (Table 2's ratio)",
    )
    p.add_argument(
        "--verify", action="store_true",
        help="CEC the composed multi-key netlist for successful cells",
    )
    p.add_argument("--parallel", action="store_true")
    p.add_argument("--csv", default="", help="write cells as CSV to this path")
    p.add_argument("--json", default="", help="write cells as JSON to this path")
    p.add_argument(
        "--list-schemes", action="store_true",
        help="print the locking-scheme registry and exit",
    )
    p.add_argument(
        "--list-attacks", action="store_true",
        help="print the attack registry and exit",
    )
    _add_runner_args(p)
    p.set_defaults(func=_cmd_matrix)

    p = sub.add_parser("bench", help="emit an ISCAS-class stand-in as .bench")
    p.add_argument("--circuit", default="c7552")
    p.add_argument("--scale", type=float, default=1.0)
    p.add_argument("--out", default="")
    p.set_defaults(func=_cmd_bench)

    p = sub.add_parser("cache", help="inspect or clear the result cache")
    p.add_argument("action", choices=("info", "clear"))
    p.add_argument("--kind", default="", help="limit clear to one task kind")
    p.add_argument("--cache-dir", default="")
    p.set_defaults(func=_cmd_cache)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
