"""Command-line interface: ``repro-lock`` (or ``python -m repro``).

The CLI is a *thin client* over :mod:`repro.service`: every subcommand
builds a typed request envelope, submits it through a
:class:`~repro.service.Service`, renders the streamed events as
progress lines on stderr, and prints the rendered response (or, with
``--json``/``--envelope``, the raw response envelope) on stdout.
``repro-lock serve`` runs the same machinery as a long-lived JSON-lines
daemon.  Subcommands map one-to-one onto request envelopes::

    repro-lock figure1
    repro-lock table1 --key-sizes 4,8 --scale 0.2 --jobs 4
    repro-lock table2 --scale 0.4 --time-limit 120 --jobs 8
    repro-lock defense --circuit c1908 --key-size 4 -N 2
    repro-lock attack --circuit c6288 --scheme sarlock --key-size 8 -N 2
    repro-lock attack --engine reference ...   # literal Algorithm 1 arm
    repro-lock matrix --schemes sarlock,xor --attacks sat,appsat \
        --engines sharded,reference --circuits c432 --efforts 1,2
    repro-lock matrix --circuits real_c432 --lanes numpy   # real corpus
    repro-lock matrix --metrics corruption,subspace --key-samples 64 \
        --csv out.csv                          # corruption metric columns
    repro-lock matrix --list-schemes           # registry rosters
    repro-lock matrix --list-attacks
    repro-lock matrix --list-metrics
    repro-lock matrix --list-circuits
    repro-lock metrics --circuit c432 --scheme sarlock --key-size 8 -N 2
    repro-lock figure2 --circuit c432 --key-size 6 --efforts 0,1,2,3
    repro-lock bench --circuit c7552 --scale 0.3 --out c7552.bench
    repro-lock bench --circuit real_c880 --out real_c880.bench
    repro-lock serve                           # JSON-lines daemon (stdio)
    repro-lock serve --port 8642 --jobs 8      # ... or TCP
    repro-lock serve --http 8080 --jobs 8 --max-pending 64 \
        --cache-backend sharded                # ... or the HTTP gateway
    repro-lock cache info

``attack``/``table1``/``table2`` pick the multi-key engine with
``--engine {sharded,reference}`` (default: the shared-encoding sharded
engine; ``reference`` is the per-sub-space synthesis arm).  ``matrix``
evaluates any ``scheme x attack x engine x circuit`` grid under the
multi-key premise — scheme and attack names come from the registries
(``--list-schemes`` / ``--list-attacks``) and results export as CSV or
JSON with ``--csv`` / ``--json``.

Experiment subcommands share the runner flags: ``--jobs`` fans rows
out over a process pool, ``--cache-dir`` relocates the on-disk result
cache (default ``$REPRO_CACHE_DIR`` or ``~/.cache/repro-lock``) and
``--no-cache`` disables it.  A warm cache replays a table without
re-solving anything.

Anywhere a circuit name is accepted, genuine ``.bench`` corpus
circuits (``real_c432``/``real_c499``/``real_c880``, plus any file
registered via ``repro.bench_circuits.register_corpus_file``) work
exactly like the stand-ins; ``--lanes`` picks the simulation backend
for wide sweeps (``auto`` uses numpy when installed and worthwhile —
the choice never changes results, only wall-clock).  ``--opt`` picks
the structural optimization level applied before simulation and CNF
encoding (constant sweeping, chain collapse, structural hashing, cone
pruning — parity-preserving, so recovered keys are identical).
"""

from __future__ import annotations

import argparse
import sys


def _parse_int_list(text: str) -> list[int]:
    return [int(tok) for tok in text.split(",") if tok.strip()]


def _parse_str_list(text: str) -> list[str]:
    return [tok.strip() for tok in text.split(",") if tok.strip()]


def _add_runner_args(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("runner")
    group.add_argument(
        "--jobs", "-j", type=int, default=1,
        help="worker processes for experiment tasks (default: 1, serial)",
    )
    group.add_argument(
        "--cache-dir", default="",
        help="result-cache directory (default: $REPRO_CACHE_DIR "
             "or ~/.cache/repro-lock)",
    )
    group.add_argument(
        "--cache-backend", default=None,
        help="cache storage backend: directory | sharded | memory "
             "(default: $REPRO_CACHE_BACKEND or directory)",
    )
    group.add_argument(
        "--no-cache", action="store_true",
        help="neither read nor write the result cache",
    )
    group.add_argument(
        "--quiet", action="store_true",
        help="suppress per-task progress lines on stderr",
    )
    group.add_argument(
        "--lanes", choices=("auto", "python", "numpy"), default=None,
        help="simulation lane backend for wide sweeps (default: auto — "
             "numpy when installed and the sweep is large enough)",
    )
    group.add_argument(
        "--opt", choices=("auto", "off", "light", "full"), default=None,
        help="structural optimization of circuits before simulation and "
             "CNF encoding (default: auto — recovered keys are identical, "
             "only size and wall-clock change)",
    )


def _add_envelope_arg(
    parser: argparse.ArgumentParser, *, alias_json: bool = True
) -> None:
    flags = ["--envelope"] + (["--json"] if alias_json else [])
    parser.add_argument(
        *flags, dest="envelope", action="store_true",
        help="print the raw response envelope (JSON) instead of text",
    )


def _open_cache(cache_dir: str, backend: str | None = None):
    from repro.runner import ResultCache

    try:
        cache = ResultCache(cache_dir or None, backend=backend)
    except ValueError as error:  # unknown backend name, with the roster
        raise SystemExit(f"repro-lock: error: {error}")
    if cache.root is not None and cache.root.exists() and not cache.root.is_dir():
        raise SystemExit(
            f"repro-lock: error: cache dir {cache.root} exists and is "
            "not a directory"
        )
    return cache


def _make_service(args: argparse.Namespace, inner_parallel: bool = False):
    """The one place CLI runner flags become an execution Service."""
    from repro.service import Service

    cache = (
        None
        if args.no_cache
        else _open_cache(args.cache_dir, getattr(args, "cache_backend", None))
    )
    return Service(
        jobs=max(1, args.jobs),
        cache=cache,
        inner_parallel=inner_parallel,
        max_pending=getattr(args, "max_pending", None),
    )


def _submit(args: argparse.Namespace, request, inner_parallel: bool = False):
    """Submit one envelope; stream progress; return the response.

    Progress events render to stderr exactly as the classic
    ``print_progress`` callback did (``--quiet`` silences them); error
    responses become clean ``SystemExit``s.
    """
    from repro.service import render_event

    service = _make_service(args, inner_parallel=inner_parallel)
    job = service.submit(request)
    quiet = getattr(args, "quiet", False)
    for event in job.events():
        if quiet:
            continue
        line = render_event(event)
        if line is not None:
            print(line, file=sys.stderr, flush=True)
    response = job.result()
    if response.status == "error":
        raise SystemExit(f"repro-lock: error: {response.error}")
    return response


def _emit(args: argparse.Namespace, response, verbose: bool = True) -> None:
    """Print a response: raw envelope under ``--json``, else as text."""
    from repro.service import render_response, to_json

    if getattr(args, "envelope", False):
        print(to_json(response))
    else:
        print(render_response(response, verbose=verbose))


def _experiment_request(experiment: str, **params):
    """Build an ExperimentRequest, mapping envelope errors to exits."""
    from repro.service import ExperimentRequest

    try:
        return ExperimentRequest(experiment=experiment, params=params)
    except ValueError as error:
        raise SystemExit(f"repro-lock: error: {error}")


def _cmd_figure1(args: argparse.Namespace) -> int:
    request = _experiment_request("figure1", correct_key=args.key)
    _emit(args, _submit(args, request))
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    request = _experiment_request(
        "table1",
        key_sizes=_parse_int_list(args.key_sizes),
        efforts=_parse_int_list(args.efforts),
        scale=args.scale,
        time_limit_per_task=args.time_limit,
        parallel=args.parallel,
        engine=args.engine,
    )
    _emit(args, _submit(args, request))
    return 0


def _cmd_table2(args: argparse.Namespace) -> int:
    from repro.experiments.table2 import TABLE2_CIRCUITS

    circuits = (
        _parse_str_list(args.circuits) if args.circuits
        else list(TABLE2_CIRCUITS)
    )
    request = _experiment_request(
        "table2",
        circuits=circuits,
        scale=args.scale,
        spec=args.spec,
        time_limit_per_task=args.time_limit,
        parallel=not args.sequential,
        verify=not args.no_verify,
        engine=args.engine,
    )
    _emit(args, _submit(args, request))
    return 0


def _cmd_ablation(args: argparse.Namespace) -> int:
    if args.which in ("splitting", "both"):
        request = _experiment_request("ablation_splitting", scale=args.scale)
        _emit(args, _submit(args, request))
    if args.which in ("synthesis", "both"):
        request = _experiment_request("ablation_synthesis", scale=args.scale)
        _emit(args, _submit(args, request))
    return 0


def _cmd_defense(args: argparse.Namespace) -> int:
    request = _experiment_request(
        "defense",
        circuit=args.circuit,
        scale=args.scale,
        key_size=args.key_size,
        effort=args.effort,
        time_limit_per_task=args.time_limit,
    )
    _emit(args, _submit(args, request))
    return 0


def _cmd_attack(args: argparse.Namespace) -> int:
    from repro.service import AttackRequest

    if args.sharded and args.engine == "reference":
        raise SystemExit(
            "repro-lock: error: --sharded contradicts --engine reference"
        )
    if args.scheme == "lut":
        scheme_params = {"spec": args.lut_spec, "seed": args.seed}
    else:
        scheme_params = {"key_size": args.key_size, "seed": args.seed}
    if args.parallel and args.jobs <= 1:
        # The classic `attack --parallel` shape: this one-shot service
        # gets a machine-wide budget (a daemon keeps whatever --jobs
        # it was started with — parallel attacks stay inside it).
        import multiprocessing

        args.jobs = multiprocessing.cpu_count()
    try:
        request = AttackRequest(
            circuit=args.circuit,
            scheme=args.scheme,
            scheme_params=scheme_params,
            attack=args.attack,
            engine="sharded" if args.sharded else args.engine,
            effort=args.effort,
            scale=args.scale,
            seed=args.seed,
            solver=args.solver,
            opt=args.opt,
            time_limit_per_task=args.time_limit,
            parallel=args.parallel,
        )
    except ValueError as error:
        raise SystemExit(f"repro-lock: error: {error}")
    response = _submit(args, request)
    _emit(args, response, verbose=not args.quiet)
    return 0 if response.status == "ok" else 1


def _print_circuits() -> None:
    """The `matrix --list-circuits` roster: corpus entries + stand-ins.

    Corpus rows print the parsed ``.bench`` fingerprint; stand-in rows
    print the ISCAS-85 reference profile the generator targets at
    scale 1.0 (the built netlist scales with ``--scale``).
    """
    from repro.bench_circuits.corpus import corpus_entry, corpus_names
    from repro.bench_circuits.iscas85 import ISCAS85_PROFILES

    print("registered corpus circuits (.bench files):")
    names = corpus_names()
    if not names:
        print("  (none registered)")
    for name in names:
        entry = corpus_entry(name)
        print(
            f"  {name}: {entry.num_inputs} PI, {entry.num_outputs} PO, "
            f"{entry.num_gates} gates"
        )
    print("stand-in generators (ISCAS-85 class, sized by --scale):")
    print("  c17: 5 PI, 2 PO, 6 gates (exact)")
    for name in sorted(ISCAS85_PROFILES):
        profile = ISCAS85_PROFILES[name]
        print(
            f"  {name}: {profile['pi']} PI, {profile['po']} PO, "
            f"~{profile['gates']} gates at scale 1.0"
        )


def _cmd_matrix(args: argparse.Namespace) -> int:
    from repro.attacks.registry import attack_info, registered_attacks
    from repro.locking.registry import registered_schemes, scheme_info

    if (args.list_schemes or args.list_attacks or args.list_solvers
            or args.list_metrics or args.list_circuits):
        if args.list_schemes:
            print("registered locking schemes:")
            for name in registered_schemes():
                print(f"  {name}: {scheme_info(name).description}")
        if args.list_attacks:
            print("registered attacks:")
            for name in registered_attacks():
                info = attack_info(name)
                shard = " [shared-encoding]" if info.supports_shared_encoding else ""
                print(f"  {name}: {info.description}{shard}")
        if args.list_solvers:
            from repro.sat.registry import registered_solvers, solver_info

            print("registered solver backends:")
            for name in registered_solvers():
                info = solver_info(name)
                caps = ",".join(
                    flag
                    for flag, on in info.capabilities.as_dict().items()
                    if on
                )
                print(f"  {name}: {info.description} [{caps or 'none'}]")
        if args.list_metrics:
            from repro.metrics import metric_info, registered_metrics

            print("registered corruption metrics:")
            for name in registered_metrics():
                print(f"  {name}: {metric_info(name).description}")
        if args.list_circuits:
            _print_circuits()
        return 0

    from pathlib import Path

    from repro.service import MatrixRequest

    def scheme_axis(name: str) -> list:
        # The LUT module's key width comes from its spec, every other
        # registered scheme takes --key-size directly.
        if name == "lut":
            return [name, {"spec": args.lut_spec}]
        return [name, {"key_size": args.key_size}]

    try:
        request = MatrixRequest(
            schemes=[scheme_axis(name) for name in _parse_str_list(args.schemes)],
            attacks=_parse_str_list(args.attacks),
            engines=_parse_str_list(args.engines),
            circuits=_parse_str_list(args.circuits),
            scale=args.scale,
            efforts=_parse_int_list(args.efforts),
            seeds=_parse_int_list(args.seeds),
            solver=args.solver,
            opt=args.opt,
            time_limit_per_task=args.time_limit,
            max_dips_per_task=args.max_dips,
            include_baseline=args.baseline,
            verify_composition=args.verify,
            metrics=_parse_str_list(args.metrics),
            key_samples=args.key_samples,
            metrics_seed=args.metrics_seed,
        )
    except ValueError as error:
        raise SystemExit(f"repro-lock: error: {error}")
    response = _submit(args, request, inner_parallel=args.parallel)
    _emit(args, response)

    if (args.csv or args.json) and "cells" in (response.result or {}):
        from repro.scenarios.matrix import MatrixResult

        result = MatrixResult.from_payload(response.result)
        if args.csv:
            Path(args.csv).write_text(result.to_csv())
            print(f"wrote {len(result.cells)} cells to {args.csv}")
        if args.json:
            Path(args.json).write_text(result.to_json())
            print(f"wrote {len(result.cells)} cells to {args.json}")
    # Like `attack`: exit nonzero when any cell failed, so CI smoke
    # runs catch partial/timeout cells and CEC failures, not just
    # crashes.
    return 0 if response.status == "ok" else 1


def _cmd_metrics(args: argparse.Namespace) -> int:
    from repro.service import MetricsRequest

    if args.scheme == "lut":
        scheme_params = {"spec": args.lut_spec}
    else:
        scheme_params = {"key_size": args.key_size}
    try:
        request = MetricsRequest(
            circuit=args.circuit,
            scheme=args.scheme,
            scheme_params=scheme_params,
            metrics=_parse_str_list(args.metrics),
            key_samples=args.key_samples,
            seed=args.seed,
            metrics_seed=args.metrics_seed,
            effort=args.effort,
            scale=args.scale,
            opt=args.opt,
        )
    except ValueError as error:
        raise SystemExit(f"repro-lock: error: {error}")
    _emit(args, _submit(args, request))
    return 0


def _cmd_figure2(args: argparse.Namespace) -> int:
    request = _experiment_request(
        "figure2",
        circuit=args.circuit,
        scheme=args.scheme,
        key_size=args.key_size,
        scale=args.scale,
        efforts=_parse_int_list(args.efforts),
        key_samples=args.key_samples,
        seed=args.seed,
    )
    _emit(args, _submit(args, request))
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.service import BenchRequest

    try:
        request = BenchRequest(circuit=args.circuit, scale=args.scale)
    except ValueError as error:
        raise SystemExit(f"repro-lock: error: {error}")
    response = _submit(args, request)
    if args.out:
        # --out always writes, whatever lands on stdout below.
        with open(args.out, "w") as handle:
            handle.write(response.result["text"])
    if getattr(args, "envelope", False):
        _emit(args, response)
    elif args.out:
        print(f"wrote {response.result['name']} to {args.out}")
    else:
        print(response.result["text"], end="")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service.daemon import create_tcp_server, serve_stdio
    from repro.service.http import create_http_server

    service = _make_service(args)
    servers = []
    if args.port is not None:
        server = create_tcp_server(service, host=args.host, port=args.port)
        host, port = server.server_address[:2]
        print(
            f"repro-lock serve: listening on {host}:{port} (tcp)",
            file=sys.stderr,
        )
        servers.append(server)
    if args.http is not None:
        server = create_http_server(service, host=args.host, port=args.http)
        host, port = server.server_address[:2]
        print(
            f"repro-lock serve: listening on {host}:{port} (http)",
            file=sys.stderr,
        )
        servers.append(server)
    if not servers:
        serve_stdio(service)
        return 0
    # All but the last transport run on background threads; the last
    # owns the foreground (Ctrl-C stops everything).
    import threading

    threads = [
        threading.Thread(target=server.serve_forever, daemon=True)
        for server in servers[:-1]
    ]
    for thread in threads:
        thread.start()
    try:
        servers[-1].serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        for server in servers[:-1]:
            server.shutdown()
        for server in servers:
            server.server_close()
        for thread in threads:
            thread.join(timeout=10)
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    # Everything below goes through the backend-agnostic ResultCache
    # surface (kinds/entry_count/clear), so `cache info` prints the
    # same text for the same contents whatever backend stores them.
    cache = _open_cache(args.cache_dir, args.cache_backend)
    where = cache.root if cache.root is not None else cache.describe()
    if args.action == "clear":
        removed = cache.clear(kind=args.kind or None)
        print(f"removed {removed} artifact(s) from {where}")
    else:
        print(f"cache dir: {where}")
        kinds = cache.kinds()
        if not kinds:
            print("  (empty — nothing cached yet)")
            return 0
        for kind in kinds:
            count = cache.entry_count(kind)
            print(f"  {kind}: {count} artifact(s)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lock",
        description="Multi-key SAT attack on logic locking (DAC'24 LBR reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("figure1", help="regenerate Fig. 1(a)/(b)")
    p.add_argument("--key", type=lambda s: int(s, 0), default=0b101)
    _add_runner_args(p)
    _add_envelope_arg(p)
    p.set_defaults(func=_cmd_figure1)

    p = sub.add_parser("table1", help="regenerate Table 1 (#DIP vs N)")
    p.add_argument("--key-sizes", default="4,8,12")
    p.add_argument("--efforts", default="0,1,2,3,4")
    p.add_argument("--scale", type=float, default=0.25)
    p.add_argument("--time-limit", type=float, default=None)
    p.add_argument("--parallel", action="store_true")
    p.add_argument(
        "--engine", choices=("sharded", "reference"), default="sharded",
        help="multi-key engine (default: sharded)",
    )
    _add_runner_args(p)
    _add_envelope_arg(p)
    p.set_defaults(func=_cmd_table1)

    p = sub.add_parser("table2", help="regenerate Table 2 (LUT runtimes)")
    p.add_argument("--circuits", default="")
    p.add_argument("--scale", type=float, default=0.4)
    p.add_argument("--spec", choices=("tiny", "small", "paper"), default="paper")
    p.add_argument("--time-limit", type=float, default=300.0)
    p.add_argument("--sequential", action="store_true")
    p.add_argument("--no-verify", action="store_true")
    p.add_argument(
        "--engine", choices=("sharded", "reference"), default="sharded",
        help="multi-key engine for the N>0 arm (default: sharded)",
    )
    _add_runner_args(p)
    _add_envelope_arg(p)
    p.set_defaults(func=_cmd_table2)

    p = sub.add_parser("ablation", help="run the A1/A2 ablations")
    p.add_argument("which", choices=("splitting", "synthesis", "both"))
    p.add_argument("--scale", type=float, default=0.3)
    _add_runner_args(p)
    _add_envelope_arg(p)
    p.set_defaults(func=_cmd_ablation)

    p = sub.add_parser("defense", help="run the D1 countermeasure experiment")
    p.add_argument("--circuit", default="c1908")
    p.add_argument("--scale", type=float, default=0.3)
    p.add_argument("--key-size", type=int, default=5)
    p.add_argument("-N", "--effort", type=int, default=3)
    p.add_argument("--time-limit", type=float, default=300.0)
    _add_runner_args(p)
    _add_envelope_arg(p)
    p.set_defaults(func=_cmd_defense)

    p = sub.add_parser("attack", help="lock a benchmark and attack it")
    p.add_argument("--circuit", default="c6288")
    p.add_argument(
        "--scheme", default="sarlock",
        help="registered scheme name (see matrix --list-schemes)",
    )
    p.add_argument(
        "--attack", default="sat",
        help="registered per-sub-space attack (see matrix --list-attacks)",
    )
    p.add_argument(
        "--lut-spec", choices=("tiny", "small", "paper"), default="small",
        help="LUT module preset for --scheme lut (default: small)",
    )
    p.add_argument("--key-size", type=int, default=8)
    p.add_argument("-N", "--effort", type=int, default=2)
    p.add_argument("--scale", type=float, default=0.25)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--parallel", action="store_true")
    p.add_argument("--time-limit", type=float, default=None)
    p.add_argument(
        "--engine", choices=("sharded", "reference"), default="sharded",
        help="multi-key engine (default: sharded)",
    )
    p.add_argument(
        "--solver", default=None,
        help="registered SAT backend (see matrix --list-solvers; "
        "default: REPRO_SOLVER or 'python')",
    )
    p.add_argument(
        "--sharded", action="store_true",
        help="shorthand for --engine sharded",
    )
    _add_runner_args(p)
    _add_envelope_arg(p)
    p.set_defaults(func=_cmd_attack)

    p = sub.add_parser(
        "matrix",
        help="evaluate a scheme x attack x engine x circuit scenario grid",
    )
    p.add_argument(
        "--schemes", default="sarlock,xor",
        help="comma-separated registered scheme names (default: sarlock,xor)",
    )
    p.add_argument(
        "--attacks", default="sat",
        help="comma-separated registered attack names (default: sat)",
    )
    p.add_argument(
        "--engines", default="sharded",
        help="comma-separated multi-key engines (default: sharded)",
    )
    p.add_argument("--circuits", default="c432")
    p.add_argument("--scale", type=float, default=0.25)
    p.add_argument("--efforts", default="1")
    p.add_argument("--seeds", default="0")
    p.add_argument(
        "--key-size", type=int, default=4,
        help="key bits for width-parameterized schemes (default: 4)",
    )
    p.add_argument(
        "--lut-spec", choices=("tiny", "small", "paper"), default="tiny",
        help="LUT module preset for the 'lut' scheme (default: tiny)",
    )
    p.add_argument(
        "--solver", default=None,
        help="registered SAT backend for every cell (see --list-solvers; "
        "default: REPRO_SOLVER or 'python')",
    )
    p.add_argument("--time-limit", type=float, default=None)
    p.add_argument("--max-dips", type=int, default=None)
    p.add_argument(
        "--baseline", action="store_true",
        help="also run the N=0 exact baseline per cell (Table 2's ratio)",
    )
    p.add_argument(
        "--verify", action="store_true",
        help="CEC the composed multi-key netlist for successful cells",
    )
    p.add_argument("--parallel", action="store_true")
    p.add_argument(
        "--metrics", default="",
        help="comma-separated corruption metrics to attach per cell "
             "(see --list-metrics; default: none)",
    )
    p.add_argument(
        "--key-samples", type=int, default=64,
        help="wrong keys sampled per metric cell (0 = exhaustive; "
             "default: 64)",
    )
    p.add_argument(
        "--metrics-seed", type=int, default=None,
        help="sample-stream seed for metric cells (default: each "
             "cell's own seed)",
    )
    p.add_argument("--csv", default="", help="write cells as CSV to this path")
    p.add_argument("--json", default="", help="write cells as JSON to this path")
    p.add_argument(
        "--list-schemes", action="store_true",
        help="print the locking-scheme registry and exit",
    )
    p.add_argument(
        "--list-attacks", action="store_true",
        help="print the attack registry and exit",
    )
    p.add_argument(
        "--list-solvers", action="store_true",
        help="print the SAT solver-backend registry and exit",
    )
    p.add_argument(
        "--list-metrics", action="store_true",
        help="print the corruption-metric registry and exit",
    )
    p.add_argument(
        "--list-circuits", action="store_true",
        help="print every resolvable circuit (corpus + stand-ins) and exit",
    )
    _add_runner_args(p)
    _add_envelope_arg(p, alias_json=False)
    p.set_defaults(func=_cmd_matrix)

    p = sub.add_parser(
        "metrics",
        help="evaluate corruption metrics for one locked circuit",
    )
    p.add_argument("--circuit", default="c432")
    p.add_argument(
        "--scheme", default="sarlock",
        help="registered scheme name (see matrix --list-schemes)",
    )
    p.add_argument(
        "--metrics", default="corruption,bit_flip,avalanche,subspace",
        help="comma-separated registered metrics (see matrix "
             "--list-metrics; default: all core metrics)",
    )
    p.add_argument("--key-size", type=int, default=8)
    p.add_argument(
        "--lut-spec", choices=("tiny", "small", "paper"), default="small",
        help="LUT module preset for --scheme lut (default: small)",
    )
    p.add_argument(
        "--key-samples", type=int, default=64,
        help="wrong keys to sample (0 = exhaustive; default: 64)",
    )
    p.add_argument("-N", "--effort", type=int, default=0,
                   help="splitting effort for the subspace metric (2^N "
                        "sub-spaces; default: 0)")
    p.add_argument("--scale", type=float, default=0.25)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--metrics-seed", type=int, default=None,
        help="sample-stream seed (default: --seed)",
    )
    _add_runner_args(p)
    _add_envelope_arg(p)
    p.set_defaults(func=_cmd_metrics)

    p = sub.add_parser(
        "figure2",
        help="regenerate Fig. 2 (corruption rate vs. key sub-spaces)",
    )
    p.add_argument("--circuit", default="c432")
    p.add_argument(
        "--scheme", default="sarlock",
        help="registered scheme name (see matrix --list-schemes)",
    )
    p.add_argument("--key-size", type=int, default=6)
    p.add_argument("--scale", type=float, default=0.25)
    p.add_argument("--efforts", default="0,1,2,3")
    p.add_argument(
        "--key-samples", type=int, default=32,
        help="wrong keys to sample per point (0 = exhaustive; default: 32)",
    )
    p.add_argument("--seed", type=int, default=0)
    _add_runner_args(p)
    _add_envelope_arg(p)
    p.set_defaults(func=_cmd_figure2)

    p = sub.add_parser("bench", help="emit an ISCAS-class stand-in as .bench")
    p.add_argument("--circuit", default="c7552")
    p.add_argument("--scale", type=float, default=1.0)
    p.add_argument("--out", default="")
    _add_runner_args(p)
    _add_envelope_arg(p)
    p.set_defaults(func=_cmd_bench)

    p = sub.add_parser(
        "serve",
        help="run the job daemon (stdio JSON lines, TCP with --port, "
             "HTTP with --http)",
    )
    p.add_argument(
        "--port", type=int, default=None,
        help="listen on TCP instead of stdio (0 picks a free port)",
    )
    p.add_argument(
        "--http", type=int, default=None,
        help="also/instead serve the HTTP/JSON gateway on this port "
             "(0 picks a free port)",
    )
    p.add_argument(
        "--host", default="127.0.0.1",
        help="bind address for TCP and HTTP (default: 127.0.0.1)",
    )
    p.add_argument(
        "--max-pending", type=int, default=None,
        help="admission control: refuse submissions past this many "
             "unfinished jobs (queue_full / HTTP 503 + Retry-After; "
             "default: unbounded)",
    )
    _add_runner_args(p)
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser("cache", help="inspect or clear the result cache")
    p.add_argument("action", choices=("info", "clear"))
    p.add_argument("--kind", default="", help="limit clear to one task kind")
    p.add_argument("--cache-dir", default="")
    p.add_argument(
        "--cache-backend", default=None,
        help="cache storage backend: directory | sharded | memory "
             "(default: $REPRO_CACHE_BACKEND or directory)",
    )
    p.set_defaults(func=_cmd_cache)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if getattr(args, "lanes", None):
        # Process default plus REPRO_LANES so spawned workers inherit
        # the lever under any start method; results are identical on
        # every backend — this only moves wall-clock.
        import os

        from repro.circuit.lanes import set_default_lanes

        set_default_lanes(args.lanes)
        os.environ["REPRO_LANES"] = args.lanes
    if getattr(args, "opt", None):
        # Same propagation shape as --lanes: process default plus
        # REPRO_OPT for spawned workers.  Optimization preserves every
        # circuit's truth table — the lever moves size and wall-clock.
        import os

        from repro.circuit.opt import set_default_opt

        set_default_opt(args.opt)
        os.environ["REPRO_OPT"] = args.opt
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
