"""Common machinery for locked circuits and keys.

Notation follows the paper: the original circuit ``C`` computes
``f : B^|I| -> B^|O|``; the locked circuit ``C_l`` computes
``f_l : B^|I| x B^|K| -> B^|O|``; the correct key ``k*`` satisfies
``f_l(i, k*) = f(i)`` for every input ``i``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from collections.abc import Mapping, Sequence

from repro.circuit.equivalence import EquivalenceResult, check_equivalence
from repro.circuit.netlist import Netlist
from repro.synth.cleanup import remove_dead_gates
from repro.synth.simplify import propagate_constants


class LockingError(Exception):
    """A locking scheme could not be applied to the given circuit."""


def random_key(width: int, seed: int | None = None) -> tuple[int, ...]:
    """A uniformly random key as a bit tuple (index 0 = first key port)."""
    rng = random.Random(seed)
    return tuple(rng.getrandbits(1) for _ in range(width))


def key_from_int(value: int, width: int) -> tuple[int, ...]:
    """Unpack an integer key; bit ``j`` of ``value`` is key port ``j``."""
    if value < 0 or value >= (1 << width):
        raise ValueError(f"key {value} does not fit in {width} bits")
    return tuple((value >> j) & 1 for j in range(width))


def key_to_int(bits: Sequence[int]) -> int:
    """Pack a bit tuple into an integer (bit ``j`` = key port ``j``)."""
    return sum((1 << j) for j, bit in enumerate(bits) if bit)


@dataclass
class LockedCircuit:
    """A locked netlist together with its key interface.

    The locked netlist's primary inputs are ``original_inputs``
    followed by ``key_inputs``; output names are identical to the
    original circuit's so oracle responses line up net-for-net.
    """

    netlist: Netlist
    key_inputs: list[str]
    correct_key: tuple[int, ...]
    original_inputs: list[str]
    scheme: str = "generic"
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if len(self.correct_key) != len(self.key_inputs):
            raise LockingError(
                f"correct key has {len(self.correct_key)} bits for "
                f"{len(self.key_inputs)} key ports"
            )
        missing = [
            net
            for net in self.key_inputs + self.original_inputs
            if net not in self.netlist.inputs
        ]
        if missing:
            raise LockingError(f"nets missing from locked netlist: {missing}")

    @property
    def key_size(self) -> int:
        return len(self.key_inputs)

    @property
    def correct_key_int(self) -> int:
        return key_to_int(self.correct_key)

    # ------------------------------------------------------------------
    # Key handling
    # ------------------------------------------------------------------
    def key_assignment(
        self, key: int | Sequence[int] | Mapping[str, bool | int]
    ) -> dict[str, bool]:
        """Normalize any key representation to a port->bool mapping."""
        if isinstance(key, Mapping):
            return {net: bool(key[net]) for net in self.key_inputs}
        if isinstance(key, int):
            key = key_from_int(key, self.key_size)
        if len(key) != self.key_size:
            raise ValueError(
                f"expected {self.key_size} key bits, got {len(key)}"
            )
        return {net: bool(bit) for net, bit in zip(self.key_inputs, key)}

    def apply_key(self, key: int | Sequence[int] | Mapping[str, bool]) -> Netlist:
        """The unlocked netlist under ``key``: key ports folded away.

        The result has exactly the original circuit's interface, so it
        can be equivalence-checked against the original directly.
        """
        pins = self.key_assignment(key)
        folded = propagate_constants(self.netlist, pins)
        folded.inputs = [
            net for net in folded.inputs if net not in set(self.key_inputs)
        ]
        folded = remove_dead_gates(folded)
        folded.name = f"{self.netlist.name}@key"
        return folded

    def verify_key(
        self, original: Netlist, key: int | Sequence[int] | Mapping[str, bool]
    ) -> EquivalenceResult:
        """CEC the keyed circuit against the original."""
        return check_equivalence(self.apply_key(key), original)

    def is_correct_interface(self, original: Netlist) -> bool:
        """Locked and original circuits agree on ports (minus the key)."""
        return (
            set(self.original_inputs) == set(original.inputs)
            and set(self.netlist.outputs) == set(original.outputs)
        )

    def __repr__(self) -> str:
        return (
            f"LockedCircuit({self.scheme}, |I|={len(self.original_inputs)}, "
            f"|K|={self.key_size}, gates={self.netlist.num_gates})"
        )


def fresh_key_names(netlist: Netlist, width: int, stem: str = "keyinput") -> list[str]:
    """Key-port names that do not collide with existing nets."""
    used = set(netlist.nets())
    names = []
    counter = 0
    while len(names) < width:
        candidate = f"{stem}{counter}"
        counter += 1
        if candidate not in used:
            names.append(candidate)
    return names
