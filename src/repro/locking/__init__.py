"""Logic-locking schemes.

Implements the paper's two benchmark targets — SARLock [7] and
LUT-based insertion [6] — plus random XOR/XNOR locking (the classic
baseline the SAT attack was built against) and Anti-SAT as an
extension.  Every scheme returns a :class:`LockedCircuit` bundling the
locked netlist, the ordered key ports and the correct key, and is
registered by name in :mod:`repro.locking.registry` so scenario grids
and the CLI can reference schemes declaratively.
"""

from repro.locking.antisat import antisat_lock
from repro.locking.base import LockedCircuit, LockingError, random_key
from repro.locking.defense import (
    SplittingResistance,
    entangled_sarlock,
    splitting_resistance,
)
from repro.locking.lut_lock import LutModuleSpec, lut_lock
from repro.locking.metrics import (
    error_matrix,
    error_rate,
    format_error_matrix,
    keys_unlocking_subspace,
)
from repro.locking.registry import (
    SchemeInfo,
    lock_circuit,
    register_scheme,
    registered_schemes,
    scheme_info,
)
from repro.locking.sarlock import sarlock_lock
from repro.locking.xor_lock import xor_lock

__all__ = [
    "LockedCircuit",
    "LockingError",
    "random_key",
    "xor_lock",
    "sarlock_lock",
    "antisat_lock",
    "lut_lock",
    "LutModuleSpec",
    "error_rate",
    "error_matrix",
    "format_error_matrix",
    "keys_unlocking_subspace",
    "entangled_sarlock",
    "splitting_resistance",
    "SplittingResistance",
    "SchemeInfo",
    "register_scheme",
    "registered_schemes",
    "scheme_info",
    "lock_circuit",
]
