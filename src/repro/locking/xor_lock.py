"""Random XOR/XNOR key-gate insertion (EPIC-style random logic locking).

The original locking proposal and the workload the SAT attack [5] was
designed to break: each key bit drives an XOR (correct bit 0) or XNOR
(correct bit 1) spliced into a randomly chosen wire.
"""

from __future__ import annotations

import random

from repro.circuit.gates import GateType
from repro.circuit.netlist import Gate, Netlist, fresh_net_namer
from repro.locking.base import LockedCircuit, LockingError, fresh_key_names


def splice_gate(
    netlist: Netlist,
    target: str,
    gtype: GateType,
    side_inputs: list[str],
    namer,
) -> None:
    """Replace wire ``target`` with ``gtype(target_driver, *side_inputs)``.

    The original driver is moved to a fresh net; the new gate takes
    over the original name, so every reader (and the primary-output
    list) sees the spliced signal without any rewiring.  ``target``
    must be gate-driven.
    """
    driver = netlist.gates.pop(target, None)
    if driver is None:
        raise LockingError(f"cannot splice into non-gate net {target!r}")
    moved = namer()
    netlist.gates[moved] = Gate(moved, driver.gtype, driver.inputs)
    netlist.gates[target] = Gate(target, gtype, tuple([moved] + side_inputs))


def xor_lock(
    netlist: Netlist,
    key_size: int,
    seed: int = 0,
    correct_key: tuple[int, ...] | None = None,
) -> LockedCircuit:
    """Insert ``key_size`` XOR/XNOR key gates on random internal wires.

    Each selected wire ``w`` is replaced by ``XOR(w, k_i)`` when the
    correct key bit is 0 or ``XNOR(w, k_i)`` when it is 1, so the
    correct key restores the original function.
    """
    if key_size < 1:
        raise LockingError("key_size must be positive")
    candidates = list(netlist.gates)
    if len(candidates) < key_size:
        raise LockingError(
            f"circuit has {len(candidates)} gates, cannot host "
            f"{key_size} key gates"
        )
    rng = random.Random(seed)
    targets = rng.sample(candidates, key_size)
    if correct_key is None:
        correct_key = tuple(rng.getrandbits(1) for _ in range(key_size))
    if len(correct_key) != key_size:
        raise LockingError("correct_key width does not match key_size")

    locked = netlist.copy(name=f"{netlist.name}_xorlock{key_size}")
    key_names = fresh_key_names(locked, key_size)
    namer = fresh_net_namer(locked, "klg_")

    for key_name, target, bit in zip(key_names, targets, correct_key):
        locked.add_input(key_name)
        gtype = GateType.XNOR if bit else GateType.XOR
        splice_gate(locked, target, gtype, [key_name], namer)

    locked.validate()
    return LockedCircuit(
        netlist=locked,
        key_inputs=key_names,
        correct_key=tuple(correct_key),
        original_inputs=list(netlist.inputs),
        scheme="xor",
        meta={"seed": seed, "targets": targets},
    )
