"""Anti-SAT locking [Xie & Srivastava] — an extension beyond the paper.

The Anti-SAT block computes

    flip(x, ka, kb) = AND_j(x_j ^ ka_j)  AND  NAND_j(x_j ^ kb_j)

over ``n`` tapped signals.  Whenever ``ka == kb`` the two terms are
complementary and the flip is constantly 0 (any such key is correct);
otherwise the flip fires on exactly one input pattern (``x = !ka``),
like SARLock's point function.  Key size is ``2n``.

The paper's multi-key attack applies unchanged, which is why this
scheme is included: it demonstrates the attack beyond the two schemes
benchmarked in the paper.
"""

from __future__ import annotations

import random
from collections.abc import Sequence

from repro.circuit.gates import GateType
from repro.circuit.netlist import Netlist, fresh_net_namer
from repro.locking.base import LockedCircuit, LockingError, fresh_key_names
from repro.locking.xor_lock import splice_gate


def antisat_lock(
    netlist: Netlist,
    n: int,
    tapped_inputs: Sequence[str] | None = None,
    flip_output: str | None = None,
    seed: int = 0,
) -> LockedCircuit:
    """Attach an Anti-SAT block of width ``n`` (key size ``2n``).

    The correct key stored in the result sets ``ka = kb`` to a random
    pattern; every key with ``ka == kb`` is equally correct.
    """
    if n < 1:
        raise LockingError("n must be positive")
    if n > len(netlist.inputs):
        raise LockingError(f"n {n} exceeds {len(netlist.inputs)} primary inputs")
    if tapped_inputs is None:
        tapped_inputs = list(netlist.inputs[:n])
    else:
        tapped_inputs = list(tapped_inputs)
        if len(tapped_inputs) != n:
            raise LockingError("need exactly n tapped inputs")

    if flip_output is None:
        gate_driven = [o for o in netlist.outputs if o in netlist.gates]
        if not gate_driven:
            raise LockingError("no gate-driven primary output to corrupt")
        flip_output = gate_driven[0]

    locked = netlist.copy(name=f"{netlist.name}_antisat{n}")
    key_names = fresh_key_names(locked, 2 * n)
    locked.add_inputs(key_names)
    ka, kb = key_names[:n], key_names[n:]
    namer = fresh_net_namer(locked, "asb_")

    xa_nets = []
    for tap, key in zip(tapped_inputs, ka):
        net = namer()
        locked.add_gate(net, GateType.XOR, [tap, key])
        xa_nets.append(net)
    g = namer()
    locked.add_gate(g, GateType.AND, xa_nets)

    xb_nets = []
    for tap, key in zip(tapped_inputs, kb):
        net = namer()
        locked.add_gate(net, GateType.XOR, [tap, key])
        xb_nets.append(net)
    gbar = namer()
    locked.add_gate(gbar, GateType.NAND, xb_nets)

    flip = namer()
    locked.add_gate(flip, GateType.AND, [g, gbar])
    splice_gate(locked, flip_output, GateType.XOR, [flip], namer)

    rng = random.Random(seed)
    half = tuple(rng.getrandbits(1) for _ in range(n))
    correct_key = half + half  # ka == kb

    locked.validate()
    return LockedCircuit(
        netlist=locked,
        key_inputs=key_names,
        correct_key=correct_key,
        original_inputs=list(netlist.inputs),
        scheme="antisat",
        meta={"tapped_inputs": list(tapped_inputs), "flip_output": flip_output},
    )
