"""LUT-based insertion locking [Chowdhury et al., ISCAS'21].

A two-stage look-up-table module replaces a small subcircuit: each
stage-1 LUT absorbs one fanin gate of a chosen target gate, and the
stage-2 LUT absorbs the target gate itself.  Every LUT is widened with
padding inputs (primary inputs the original gate ignored), so the key —
the concatenated LUT truth tables — spans a function space exponentially
larger than the original gates.  The correct key programs each LUT to
its original gate function (padding ignored), making the scheme correct
by construction.

This is the second category of SAT-attack countermeasure the paper
discusses: it does not inflate ``#DIP`` much, but each miter iteration
must reason through the LUT decoders, so per-DIP solve time explodes.

The paper inserts a "14-input 2-stage LUT module ... equating to a key
size of 156".  That exact bit count is not derivable from the prose;
:meth:`LutModuleSpec.paper_scale` is the closest clean realization
(two 6-input stage-1 LUTs + one 5-input stage-2 LUT = 160 key bits,
~14 distinct source nets).  Smaller presets keep pure-Python SAT
attacks tractable in tests and benchmarks.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.circuit.analysis import fanin_cone, fanout_cone
from repro.circuit.gates import GateType, eval_gate_const
from repro.circuit.netlist import Gate, Netlist, fresh_net_namer
from repro.locking.base import LockedCircuit, LockingError, fresh_key_names


@dataclass(frozen=True)
class LutModuleSpec:
    """Shape of the two-stage LUT module.

    Attributes:
        stage1_width: Inputs per stage-1 LUT.
        num_stage1: How many fanin gates become stage-1 LUTs.
        stage2_width: Inputs of the stage-2 LUT (>= target-gate fanin).
    """

    stage1_width: int = 4
    num_stage1: int = 2
    stage2_width: int = 4
    shared_padding: bool = True

    def __post_init__(self) -> None:
        if self.stage1_width < 1 or self.stage2_width < 1:
            raise ValueError("LUT widths must be positive")
        if self.num_stage1 < 0:
            raise ValueError("num_stage1 must be non-negative")
        if self.num_stage1 > self.stage2_width:
            raise ValueError("stage-1 outputs must fit into the stage-2 LUT")
        if self.stage1_width > 8 or self.stage2_width > 8:
            raise ValueError("LUT wider than 8 inputs: decoder would be huge")

    @property
    def key_bits(self) -> int:
        return self.num_stage1 * (1 << self.stage1_width) + (1 << self.stage2_width)

    @classmethod
    def by_name(cls, name: str) -> "LutModuleSpec":
        """Resolve a preset by name: ``tiny`` | ``small`` | ``paper``.

        The single roster behind every CLI/example spec argument;
        raises ``ValueError`` with the known names on a miss.
        """
        presets = {
            "tiny": cls.tiny,
            "small": cls.small,
            "paper": cls.paper_scale,
        }
        try:
            return presets[name]()
        except KeyError:
            known = ", ".join(sorted(presets))
            raise ValueError(
                f"unknown LUT spec {name!r} (known: {known})"
            ) from None

    @classmethod
    def tiny(cls) -> "LutModuleSpec":
        """2x 3-LUT + 3-LUT = 24 key bits; for unit tests."""
        return cls(stage1_width=3, num_stage1=2, stage2_width=3)

    @classmethod
    def small(cls) -> "LutModuleSpec":
        """2x 4-LUT + 4-LUT = 48 key bits; benchmark default."""
        return cls(stage1_width=4, num_stage1=2, stage2_width=4)

    @classmethod
    def paper_scale(cls) -> "LutModuleSpec":
        """2x 6-LUT + 5-LUT = 160 key bits (paper: "key size of 156")."""
        return cls(stage1_width=6, num_stage1=2, stage2_width=5)


def _build_lut(
    netlist: Netlist,
    out_net: str,
    input_nets: list[str],
    key_nets: list[str],
    namer,
) -> None:
    """Emit a LUT: ``out = OR_j (minterm_j(inputs) AND key_j)``.

    ``input_nets[m]`` is bit ``m`` (LSB) of the truth-table index.
    """
    width = len(input_nets)
    if len(key_nets) != (1 << width):
        raise ValueError("need 2^width key bits")
    inverted: dict[str, str] = {}
    for net in input_nets:
        if net not in inverted:
            inv = namer()
            netlist.add_gate(inv, GateType.NOT, [net])
            inverted[net] = inv
    minterms = []
    for j in range(1 << width):
        lits = [
            net if (j >> m) & 1 else inverted[net]
            for m, net in enumerate(input_nets)
        ]
        term = namer()
        netlist.add_gate(term, GateType.AND, lits + [key_nets[j]])
        minterms.append(term)
    netlist.add_gate(out_net, GateType.OR, minterms)


def _gate_truth_table(gate: Gate, width: int) -> list[int]:
    """Truth table of ``gate`` widened to ``width`` inputs (padding ignored)."""
    arity = len(gate.inputs)
    table = []
    for j in range(1 << width):
        bits = [(j >> m) & 1 for m in range(arity)]
        table.append(eval_gate_const(gate.gtype, bits))
    return table


def _pick_padding(
    netlist: Netlist,
    needed: int,
    exclude: set[str],
    forbidden: set[str],
    rng: random.Random,
    preferred: list[str] | None = None,
) -> list[str]:
    """Choose padding nets: the shared pool first, then PIs, then nets
    outside ``forbidden``."""
    pool = [n for n in (preferred or []) if n not in exclude]
    others = [
        n for n in netlist.inputs if n not in exclude and n not in set(pool)
    ]
    rng.shuffle(others)
    pool += others
    padding = pool[:needed]
    if len(padding) < needed:
        extra = [
            n
            for n in netlist.gates
            if n not in exclude and n not in forbidden
        ]
        rng.shuffle(extra)
        padding += extra[: needed - len(padding)]
    if len(padding) < needed:
        raise LockingError("not enough nets available for LUT padding")
    return padding


def _replace_gate_with_lut(
    netlist: Netlist,
    target: str,
    width: int,
    key_nets: list[str],
    namer,
    rng: random.Random,
    key_set: set[str],
    preferred_padding: list[str] | None = None,
) -> tuple[list[int], list[str]]:
    """Swap gate ``target`` for a ``width``-input LUT under the same name.

    Returns ``(correct_truth_table, lut_input_nets)``.
    """
    gate = netlist.gates.pop(target)
    if len(gate.inputs) > width:
        netlist.gates[target] = gate
        raise LockingError(
            f"gate {target!r} has {len(gate.inputs)} fanins > LUT width {width}"
        )
    # Padding must not depend on the target, or we would create a cycle.
    forbidden = fanout_cone(netlist, target) | {target}
    padding = _pick_padding(
        netlist,
        needed=width - len(gate.inputs),
        exclude=set(gate.inputs) | {target} | key_set,
        forbidden=forbidden,
        rng=rng,
        preferred=preferred_padding,
    )
    inputs = list(gate.inputs) + padding
    _build_lut(netlist, target, inputs, key_nets, namer)
    return _gate_truth_table(gate, width), inputs


def _candidate_targets(netlist: Netlist, spec: LutModuleSpec) -> list[str]:
    """Gates that can host the module: observable, enough suitable fanins."""
    observable: set[str] = set()
    for out in netlist.outputs:
        observable |= fanin_cone(netlist, out)
    candidates = []
    for net, gate in netlist.gates.items():
        if net not in observable:
            continue  # locking dead logic would corrupt nothing
        if gate.gtype in (GateType.CONST0, GateType.CONST1):
            continue
        if len(gate.inputs) > spec.stage2_width:
            continue
        fanin_gates = [
            src
            for src in dict.fromkeys(gate.inputs)
            if src in netlist.gates
            and len(netlist.gates[src].inputs) <= spec.stage1_width
            and netlist.gates[src].gtype
            not in (GateType.CONST0, GateType.CONST1)
        ]
        if len(fanin_gates) >= spec.num_stage1:
            candidates.append(net)
    return candidates


def lut_lock(
    netlist: Netlist,
    spec: LutModuleSpec | None = None,
    seed: int = 0,
    target: str | None = None,
) -> LockedCircuit:
    """Insert one two-stage LUT module; key = concatenated truth tables."""
    spec = spec or LutModuleSpec.small()
    rng = random.Random(seed)

    locked = netlist.copy(name=f"{netlist.name}_lutlock{spec.key_bits}")
    if target is None:
        candidates = _candidate_targets(locked, spec)
        if not candidates:
            raise LockingError(
                f"no gate can host a {spec.num_stage1}x{spec.stage1_width}"
                f"+{spec.stage2_width} LUT module"
            )
        target = rng.choice(sorted(candidates))
    elif target not in locked.gates:
        raise LockingError(f"target {target!r} is not a gate")

    key_names = fresh_key_names(locked, spec.key_bits)
    locked.add_inputs(key_names)
    namer = fresh_net_namer(locked, "lut_")

    target_gate = locked.gates[target]
    fanin_gates = [
        src
        for src in dict.fromkeys(target_gate.inputs)
        if src in locked.gates
        and src != target
        and len(locked.gates[src].inputs) <= spec.stage1_width
        and locked.gates[src].gtype not in (GateType.CONST0, GateType.CONST1)
    ]
    if len(fanin_gates) < spec.num_stage1:
        raise LockingError(
            f"target {target!r} has only {len(fanin_gates)} suitable fanin "
            f"gates, need {spec.num_stage1}"
        )
    stage1_targets = fanin_gates[: spec.num_stage1]

    # A shared padding pool concentrates the module's support on a few
    # primary inputs (the paper's module has ~14 distinct sources), so
    # the splitting heuristic can hit every LUT decoder at once.
    shared_pool: list[str] | None = None
    if spec.shared_padding:
        shared_pool = [n for n in locked.inputs if n not in set(key_names)]
        rng.shuffle(shared_pool)
        shared_pool = shared_pool[: max(spec.stage1_width, spec.stage2_width)]

    correct_bits: list[int] = []
    module_inputs: set[str] = set()
    cursor = 0
    for s1 in stage1_targets:
        key_slice = key_names[cursor : cursor + (1 << spec.stage1_width)]
        cursor += 1 << spec.stage1_width
        table, inputs = _replace_gate_with_lut(
            locked, s1, spec.stage1_width, key_slice, namer, rng,
            set(key_names), shared_pool,
        )
        correct_bits.extend(table)
        module_inputs.update(inputs)

    key_slice = key_names[cursor : cursor + (1 << spec.stage2_width)]
    table, inputs = _replace_gate_with_lut(
        locked, target, spec.stage2_width, key_slice, namer, rng,
        set(key_names), shared_pool,
    )
    correct_bits.extend(table)
    module_inputs.update(inputs)
    # Stage-2 reads the stage-1 LUT outputs, not raw sources.
    module_inputs -= set(stage1_targets)

    locked.validate()
    return LockedCircuit(
        netlist=locked,
        key_inputs=key_names,
        correct_key=tuple(correct_bits),
        original_inputs=list(netlist.inputs),
        scheme="lut",
        meta={
            "spec": spec,
            "target": target,
            "stage1_targets": stage1_targets,
            "module_source_nets": sorted(module_inputs),
        },
    )
