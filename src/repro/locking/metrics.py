"""Corruption metrics for locked circuits.

:func:`error_matrix` regenerates the data behind Fig. 1(a): for every
(input pattern, key pattern) pair, does the locked circuit err?
:func:`keys_unlocking_subspace` counts the keys that unlock a
restricted input sub-space — the quantity the multi-key attack
exploits (the paper's example finds three incorrect keys unlocking the
MSB=0 half).
"""

from __future__ import annotations

import random
from collections.abc import Mapping

from repro.circuit.netlist import Netlist
from repro.circuit.simulator import simulate, truth_table
from repro.locking.base import LockedCircuit


def _locked_truth_tables(locked: LockedCircuit) -> dict[str, int]:
    """Exhaustive truth tables of the locked netlist (inputs + key)."""
    total_bits = len(locked.netlist.inputs)
    if total_bits > 22:
        raise ValueError(
            f"exhaustive analysis of {total_bits} total input bits is too large"
        )
    return truth_table(locked.netlist)


def _lane_shifts(locked: LockedCircuit) -> tuple[list[int], list[int]]:
    """Bit positions of the original/key input ports in the locked
    netlist's lane index — computed once, not per (input, key) pair."""
    position = {net: i for i, net in enumerate(locked.netlist.inputs)}
    input_shift = [position[net] for net in locked.original_inputs]
    key_shift = [position[net] for net in locked.key_inputs]
    return input_shift, key_shift


def _pattern_index(locked: LockedCircuit, input_pattern: int, key_pattern: int) -> int:
    """Lane index for (input, key) in the locked circuit's truth table."""
    input_shift, key_shift = _lane_shifts(locked)
    index = 0
    for j, shift in enumerate(input_shift):
        if (input_pattern >> j) & 1:
            index |= 1 << shift
    for j, shift in enumerate(key_shift):
        if (key_pattern >> j) & 1:
            index |= 1 << shift
    return index


def error_matrix(locked: LockedCircuit, original: Netlist) -> list[list[bool]]:
    """``matrix[i][k]`` is True iff key ``k`` errs on input pattern ``i``.

    Input pattern bit ``j`` drives ``original.inputs[j]``; key pattern
    bit ``j`` drives ``locked.key_inputs[j]``.  Only feasible for small
    circuits (exhaustive over inputs x keys).
    """
    tt_locked = _locked_truth_tables(locked)
    tt_orig = truth_table(original)
    num_inputs = len(locked.original_inputs)
    num_keys = locked.key_size
    # Original circuit may order inputs differently; map patterns by name.
    orig_pos = {net: i for i, net in enumerate(original.inputs)}
    input_shift, key_shift = _lane_shifts(locked)
    key_lane = [
        sum(1 << key_shift[j] for j in range(num_keys) if (k >> j) & 1)
        for k in range(1 << num_keys)
    ]
    outputs = list(original.outputs)

    matrix: list[list[bool]] = []
    for i in range(1 << num_inputs):
        orig_index = 0
        base_lane = 0
        for j in range(num_inputs):
            if (i >> j) & 1:
                orig_index |= 1 << orig_pos[locked.original_inputs[j]]
                base_lane |= 1 << input_shift[j]
        golden = [(tt_orig[out] >> orig_index) & 1 for out in outputs]
        row = []
        for k in range(1 << num_keys):
            lane = base_lane | key_lane[k]
            err = any(
                ((tt_locked[out] >> lane) & 1) != golden[idx]
                for idx, out in enumerate(outputs)
            )
            row.append(err)
        matrix.append(row)
    return matrix


def format_error_matrix(matrix: list[list[bool]], key_width: int) -> str:
    """Render an error matrix the way Fig. 1(a) does (rows=inputs)."""
    num_inputs_bits = max(1, (len(matrix) - 1).bit_length())
    header_keys = [format(k, f"0{key_width}b")[::-1] for k in range(len(matrix[0]))]
    # Display MSB-first like the paper (bit j of the pattern is port j).
    header_keys = [k[::-1] for k in header_keys]
    lines = ["input \\ key  " + " ".join(f"{k:>{key_width}}" for k in header_keys)]
    for i, row in enumerate(matrix):
        label = format(i, f"0{num_inputs_bits}b")
        cells = " ".join(
            f"{'x' if err else '.':>{key_width}}" for err in row
        )
        lines.append(f"{label:>11}  {cells}")
    return "\n".join(lines)


def error_rate(
    locked: LockedCircuit,
    original: Netlist,
    key: int | Mapping[str, bool],
    num_samples: int = 0,
    seed: int = 0,
) -> float:
    """Fraction of input patterns on which ``key`` produces a wrong output.

    Exhaustive when the input count allows (or ``num_samples == 0``);
    otherwise Monte-Carlo with ``num_samples`` random patterns.
    """
    keyed = locked.apply_key(key)
    n = len(original.inputs)
    if num_samples <= 0:
        if n > 20:
            raise ValueError("circuit too wide for exhaustive rate; pass num_samples")
        tt_a = truth_table(keyed)
        tt_b = truth_table(original)
        # keyed may list inputs in a different order than original.
        if keyed.inputs == original.inputs:
            diff = 0
            for out in original.outputs:
                diff |= tt_a[out] ^ tt_b[out]
            return bin(diff).count("1") / (1 << n)
        num_samples = 1 << n  # fall through to per-pattern loop

    rng = random.Random(seed)
    errors = 0
    width = num_samples
    stimuli = {net: rng.getrandbits(width) for net in original.inputs}
    vals_a = simulate(keyed, stimuli, width=width)
    vals_b = simulate(original, stimuli, width=width)
    diff = 0
    for out in original.outputs:
        diff |= vals_a[out] ^ vals_b[out]
    errors = bin(diff).count("1")
    return errors / width


def keys_unlocking_subspace(
    locked: LockedCircuit,
    original: Netlist,
    pin: Mapping[str, bool],
) -> list[int]:
    """All keys producing correct outputs on every input consistent with ``pin``.

    This is the quantity behind the multi-key premise: restricting the
    input space (e.g. MSB=0) typically enlarges the set of usable keys
    beyond the single correct one.  Exhaustive; small circuits only.
    """
    matrix = error_matrix(locked, original)
    num_inputs = len(locked.original_inputs)
    input_pos = {net: j for j, net in enumerate(locked.original_inputs)}
    for net in pin:
        if net not in input_pos:
            raise ValueError(f"pinned net {net!r} is not an original input")

    def consistent(i: int) -> bool:
        return all(
            ((i >> input_pos[net]) & 1) == int(value) for net, value in pin.items()
        )

    good = []
    for k in range(1 << locked.key_size):
        if all(
            not matrix[i][k] for i in range(1 << num_inputs) if consistent(i)
        ):
            good.append(k)
    return good
