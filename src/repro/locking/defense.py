"""Countermeasures against the multi-key attack (the paper's future work).

The paper closes with: *"Future works include creating effective
defenses to counter the new 'multi-key' attack scenario."*  This
module prototypes the most direct such defense and the analysis that
motivates it.

The multi-key attack wins because pinning a few primary inputs (a)
shrinks the locked cone and (b) inflates the set of keys that unlock
the sub-space.  ``entangled_sarlock`` attacks both levers: instead of
comparing the key against N raw primary inputs, it compares against N
*parity functions* spread across the whole input space.  Pinning any
small set of inputs then neither simplifies the comparator (every
parity still depends on many free inputs) nor collapses the reachable
comparator patterns (each parity still takes both values), so

* the conditional netlists barely shrink, and
* the per-sub-space unlocking key count stays at 1 — every wrong key
  still errs inside every sub-space.

The second property holds exactly when the parity tap matrix keeps
rank ``|K|`` after deleting the pinned input columns — guaranteed
whenever ``|K| <= |I| - N`` and the taps remain independent on the
free inputs (random taps over half the inputs achieve this with high
probability; the constructor enforces full rank over *all* inputs).
With ``|K|`` close to ``|I|`` the guarantee degrades gracefully: a
rank-``r`` restriction still leaves ``2^r`` reachable comparator
patterns, so splitting buys the attacker at most ``2^(|K|-r)``
usable keys instead of SARLock's ``2^(|K|) - 2^(|K|-N)``.

The defense is not free: the parity trees add area, and like SARLock
it keeps low output corruption.  ``splitting_resistance`` quantifies
the defensive effect so the trade-off is measurable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from collections.abc import Sequence

from repro.circuit.gates import GateType
from repro.circuit.netlist import Netlist, fresh_net_namer
from repro.locking.base import (
    LockedCircuit,
    LockingError,
    fresh_key_names,
    key_from_int,
)
from repro.locking.xor_lock import splice_gate


def entangled_sarlock(
    netlist: Netlist,
    key_size: int,
    correct_key: int | Sequence[int] | None = None,
    taps_per_bit: int | None = None,
    flip_output: str | None = None,
    seed: int = 0,
    resist_effort: int = 0,
) -> LockedCircuit:
    """SARLock with parity-entangled comparator inputs.

    Comparator bit ``j`` compares ``key_j`` against
    ``parity(taps_j)`` where ``taps_j`` is a spread-out subset of the
    primary inputs (``taps_per_bit`` of them, default ``|I| // 2``).
    Functionally this is still a point function — exactly one parity
    pattern triggers the flip per wrong key — so corruption behaviour
    matches SARLock, but the trigger condition cannot be disabled or
    simplified by pinning a few inputs.

    ``resist_effort`` is the splitting effort ``N`` the designer wants
    a *guarantee* against: the tap rows are then chosen as a linear
    code of minimum distance ``N + 1``, so deleting any ``N`` input
    columns cannot drop the comparator's rank and every sub-space
    keeps exactly one valid key.  Such a code must exist for the
    chosen ``(|I|, |K|, N + 1)`` (Singleton: ``N <= |I| - |K|``); the
    greedy sampler raises if it cannot find one.  With the default
    ``resist_effort=0`` only plain linear independence is enforced.
    """
    if key_size < 1:
        raise LockingError("key_size must be positive")
    inputs = list(netlist.inputs)
    if len(inputs) < 2:
        raise LockingError("need at least two primary inputs to entangle")
    taps_per_bit = taps_per_bit or max(2, len(inputs) // 2)
    taps_per_bit = min(taps_per_bit, len(inputs))
    rng = random.Random(seed)

    if correct_key is None:
        correct_key = tuple(rng.getrandbits(1) for _ in range(key_size))
    elif isinstance(correct_key, int):
        correct_key = key_from_int(correct_key, key_size)
    else:
        correct_key = tuple(int(b) for b in correct_key)
        if len(correct_key) != key_size:
            raise LockingError("correct_key width does not match key_size")

    if flip_output is None:
        gate_driven = [o for o in netlist.outputs if o in netlist.gates]
        if not gate_driven:
            raise LockingError("no gate-driven primary output to corrupt")
        flip_output = gate_driven[0]

    locked = netlist.copy(name=f"{netlist.name}_esarlock{key_size}")
    key_names = fresh_key_names(locked, key_size)
    locked.add_inputs(key_names)
    namer = fresh_net_namer(locked, "esl_")

    # Entangled comparator: eq_j = XNOR(parity(taps_j), key_j).  The
    # tap sets must be linearly independent over GF(2), otherwise some
    # comparator patterns are unreachable and wrong keys whose pattern
    # is unreachable would never err (extra correct keys).
    if key_size > len(inputs):
        raise LockingError(
            "key_size cannot exceed the input count (rank bound)"
        )
    if resist_effort > 0:
        tap_sets = _distance_robust_tap_sets(
            inputs, key_size, taps_per_bit, rng, min_weight=resist_effort + 1
        )
    else:
        tap_sets = _independent_tap_sets(inputs, key_size, taps_per_bit, rng)
    eq_nets = []
    for taps, key in zip(tap_sets, key_names):
        parity = namer()
        locked.add_gate(parity, GateType.XOR, taps)
        eq = namer()
        locked.add_gate(eq, GateType.XNOR, [parity, key])
        eq_nets.append(eq)
    match = namer()
    locked.add_gate(match, GateType.AND, eq_nets)

    # wrong = 1 iff key != k* (inversion pattern hardwires k*).
    mask_lits = []
    for key, bit in zip(key_names, correct_key):
        if bit:
            mask_lits.append(key)
        else:
            inv = namer()
            locked.add_gate(inv, GateType.NOT, [key])
            mask_lits.append(inv)
    wrong = namer()
    locked.add_gate(wrong, GateType.NAND, mask_lits)

    flip = namer()
    locked.add_gate(flip, GateType.AND, [match, wrong])
    splice_gate(locked, flip_output, GateType.XOR, [flip], namer)

    locked.validate()
    return LockedCircuit(
        netlist=locked,
        key_inputs=key_names,
        correct_key=correct_key,
        original_inputs=inputs,
        scheme="entangled-sarlock",
        meta={
            "tap_sets": tap_sets,
            "taps_per_bit": taps_per_bit,
            "flip_output": flip_output,
        },
    )


def _distance_robust_tap_sets(
    inputs: list[str],
    key_size: int,
    taps_per_bit: int,
    rng: random.Random,
    min_weight: int,
    max_tries: int = 2000,
) -> list[list[str]]:
    """Sample tap rows spanning a GF(2) code of minimum distance
    ``min_weight``.

    Every nonzero row combination then has support on more than
    ``min_weight - 1`` inputs, so deleting that many input columns can
    never zero a combination — the restricted comparator keeps full
    rank under any splitting assignment of that size.  Greedy
    rejection sampling; raises if the parameters admit no such code
    within the retry budget.
    """
    position = {net: i for i, net in enumerate(inputs)}
    # Fixing every row's weight over-constrains the code search, so
    # sample row weights from a window around the requested tap count
    # (never below the required minimum distance).
    low = max(min_weight, taps_per_bit - 2)
    high = min(len(inputs), taps_per_bit + 2)
    # Greedy with restarts: a bad early row can make the target code
    # unreachable, so rebuild from scratch when progress stalls.
    for _restart in range(max_tries // 10):
        combos = [0]  # all XOR combinations of accepted rows
        tap_sets: list[list[str]] = []
        stalls = 0
        while len(tap_sets) < key_size and stalls < 10 * key_size:
            taps = rng.sample(inputs, rng.randint(low, high))
            row = 0
            for net in taps:
                row |= 1 << position[net]
            extended = [c ^ row for c in combos]
            if all(bin(c).count("1") >= min_weight for c in extended):
                combos += extended
                tap_sets.append(taps)
            else:
                stalls += 1
        if len(tap_sets) == key_size:
            return tap_sets
    raise LockingError(
        f"no ({len(inputs)}, {key_size}) parity code of distance "
        f"{min_weight} found; lower key_size or resist_effort"
    )


def _independent_tap_sets(
    inputs: list[str],
    key_size: int,
    taps_per_bit: int,
    rng: random.Random,
    max_tries: int = 200,
) -> list[list[str]]:
    """Sample GF(2)-linearly-independent parity tap sets.

    Each tap set is a row vector over the inputs; incremental Gaussian
    elimination keeps only rows that grow the span.
    """
    position = {net: i for i, net in enumerate(inputs)}
    basis: dict[int, int] = {}  # pivot bit -> reduced row bitmask
    tap_sets: list[list[str]] = []
    tries = 0
    while len(tap_sets) < key_size:
        tries += 1
        if tries > max_tries:
            raise LockingError(
                "could not sample independent parity taps "
                f"({key_size} bits over {len(inputs)} inputs)"
            )
        taps = rng.sample(inputs, taps_per_bit)
        row = 0
        for net in taps:
            row |= 1 << position[net]
        reduced = row
        accepted = False
        while reduced:
            pivot = reduced.bit_length() - 1
            existing = basis.get(pivot)
            if existing is None:
                basis[pivot] = reduced
                accepted = True
                break
            reduced ^= existing
        if accepted:
            tap_sets.append(taps)
        # else: row is dependent on the current basis; resample.
    return tap_sets


@dataclass
class SplittingResistance:
    """How much a splitting assignment weakens a locked circuit."""

    pinned: dict[str, bool]
    keys_unlocking_subspace: int
    conditional_gates: int
    original_gates: int

    @property
    def key_inflation(self) -> int:
        """Usable keys beyond the correct one (0 = fully resistant)."""
        return max(0, self.keys_unlocking_subspace - 1)

    @property
    def gate_reduction(self) -> float:
        if self.original_gates == 0:
            return 0.0
        return 1.0 - self.conditional_gates / self.original_gates


def splitting_resistance(
    locked: LockedCircuit,
    original: Netlist,
    effort: int,
    seed: int = 0,
) -> SplittingResistance:
    """Measure the two levers the multi-key attack pulls, for the
    strongest splitting assignment the attacker's heuristic would pick.

    Uses the BDD engine for exact sub-space key counting, so it scales
    past brute force.
    """
    from repro.bdd.analysis import count_keys_unlocking_subspace
    from repro.core.splitting import select_splitting_inputs
    from repro.synth.optimize import synthesize

    splitting = select_splitting_inputs(locked, effort, seed=seed)
    pinned = {net: False for net in splitting}
    keys = count_keys_unlocking_subspace(locked, original, pinned)
    conditional = synthesize(locked.netlist, pin=pinned)
    return SplittingResistance(
        pinned=pinned,
        keys_unlocking_subspace=keys,
        conditional_gates=conditional.gates_after,
        original_gates=locked.netlist.num_gates,
    )
