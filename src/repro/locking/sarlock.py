"""SARLock: SAT-attack-resistant logic locking [Yasin et al., HOST'16].

SARLock adds a point-function comparator: the flip signal is

    flip(i, k) = [i|_P == k] AND [k != k*]

where ``P`` is the set of protected primary inputs.  The flip is XORed
into one primary output.  Each wrong key corrupts exactly one input
pattern, so every SAT-attack DIP eliminates exactly one wrong key and
``#DIP`` grows as ``2^|K|`` — the paper's Table 1 uses this
determinism as a flow checker, and Fig. 1(a) is exactly this error
distribution for ``|I| = |K| = 3`` and ``k* = 101``.
"""

from __future__ import annotations

import random
from collections.abc import Sequence

from repro.circuit.gates import GateType
from repro.circuit.netlist import Netlist, fresh_net_namer
from repro.locking.base import (
    LockedCircuit,
    LockingError,
    fresh_key_names,
    key_from_int,
)
from repro.locking.xor_lock import splice_gate


def sarlock_lock(
    netlist: Netlist,
    key_size: int,
    correct_key: int | Sequence[int] | None = None,
    protected_inputs: Sequence[str] | None = None,
    flip_output: str | None = None,
    seed: int = 0,
) -> LockedCircuit:
    """Lock ``netlist`` with a SARLock comparator.

    Args:
        netlist: Original circuit.
        key_size: Number of key bits (must not exceed the input count).
        correct_key: ``k*`` as an int or bit sequence; random if None.
        protected_inputs: The ``|K|`` primary inputs compared against
            the key; defaults to the first ``key_size`` inputs.
        flip_output: The primary output to corrupt; defaults to the
            first gate-driven output.
        seed: Randomness for the default correct key.
    """
    if key_size < 1:
        raise LockingError("key_size must be positive")
    if key_size > len(netlist.inputs):
        raise LockingError(
            f"key_size {key_size} exceeds {len(netlist.inputs)} primary inputs"
        )
    if protected_inputs is None:
        protected_inputs = list(netlist.inputs[:key_size])
    else:
        protected_inputs = list(protected_inputs)
        unknown = [p for p in protected_inputs if p not in netlist.inputs]
        if unknown:
            raise LockingError(f"protected inputs not in circuit: {unknown}")
    if len(protected_inputs) != key_size:
        raise LockingError("need exactly key_size protected inputs")

    if correct_key is None:
        correct_key = tuple(random.Random(seed).getrandbits(1) for _ in range(key_size))
    elif isinstance(correct_key, int):
        correct_key = key_from_int(correct_key, key_size)
    else:
        correct_key = tuple(int(b) for b in correct_key)
        if len(correct_key) != key_size:
            raise LockingError("correct_key width does not match key_size")

    if flip_output is None:
        gate_driven = [o for o in netlist.outputs if o in netlist.gates]
        if not gate_driven:
            raise LockingError("no gate-driven primary output to corrupt")
        flip_output = gate_driven[0]
    elif flip_output not in netlist.gates:
        raise LockingError(f"flip output {flip_output!r} is not gate-driven")

    locked = netlist.copy(name=f"{netlist.name}_sarlock{key_size}")
    key_names = fresh_key_names(locked, key_size)
    locked.add_inputs(key_names)
    namer = fresh_net_namer(locked, "srl_")

    # match = AND_j XNOR(protected_j, key_j)       (i|_P == k)
    eq_nets = []
    for pin, key in zip(protected_inputs, key_names):
        eq = namer()
        locked.add_gate(eq, GateType.XNOR, [pin, key])
        eq_nets.append(eq)
    match = namer()
    locked.add_gate(match, GateType.AND, eq_nets)

    # wrong = NAND_j lit_j  where lit_j = key_j if k*_j else NOT key_j,
    # i.e. wrong == 1 iff k != k*.  The inversion pattern hardwires k*.
    mask_lits = []
    for key, bit in zip(key_names, correct_key):
        if bit:
            mask_lits.append(key)
        else:
            inv = namer()
            locked.add_gate(inv, GateType.NOT, [key])
            mask_lits.append(inv)
    wrong = namer()
    locked.add_gate(wrong, GateType.NAND, mask_lits)

    flip = namer()
    locked.add_gate(flip, GateType.AND, [match, wrong])
    splice_gate(locked, flip_output, GateType.XOR, [flip], namer)

    locked.validate()
    return LockedCircuit(
        netlist=locked,
        key_inputs=key_names,
        correct_key=correct_key,
        original_inputs=list(netlist.inputs),
        scheme="sarlock",
        meta={
            "protected_inputs": list(protected_inputs),
            "flip_output": flip_output,
        },
    )
