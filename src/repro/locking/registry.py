"""The locking-scheme registry: declarative access to every scheme.

Each scheme is registered under a short name with a uniform calling
convention — ``fn(netlist, **params) -> LockedCircuit`` where every
``param`` is JSON-serializable — so schemes can be named in scenario
grids (:mod:`repro.scenarios`), runner task params, and CLI arguments
without importing scheme modules by hand.

All registered schemes accept ``seed``; the width parameter is
``key_size`` everywhere it makes sense (``antisat`` maps it onto its
``ka‖kb`` halves, ``lut`` takes a ``spec`` preset name or field dict
instead, since its key width is the concatenated truth tables).

Adding a scheme::

    @register_scheme("my_scheme", description="one-line summary")
    def _my_scheme(netlist, key_size=4, seed=0):
        ...
        return LockedCircuit(...)
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable, Mapping

from repro.circuit.netlist import Netlist
from repro.locking.antisat import antisat_lock
from repro.locking.base import LockedCircuit, LockingError
from repro.locking.defense import entangled_sarlock
from repro.locking.lut_lock import LutModuleSpec, lut_lock
from repro.locking.sarlock import sarlock_lock
from repro.locking.xor_lock import xor_lock


@dataclass(frozen=True)
class SchemeInfo:
    """One registry entry: name, factory, human summary."""

    name: str
    fn: Callable[..., LockedCircuit]
    description: str = ""


_REGISTRY: dict[str, SchemeInfo] = {}


def register_scheme(
    name: str, *, description: str = ""
) -> Callable[[Callable[..., LockedCircuit]], Callable[..., LockedCircuit]]:
    """Decorator registering ``fn`` as the locking scheme ``name``."""

    def decorate(fn: Callable[..., LockedCircuit]) -> Callable[..., LockedCircuit]:
        existing = _REGISTRY.get(name)
        if existing is not None and existing.fn is not fn:
            raise ValueError(f"locking scheme {name!r} already registered")
        _REGISTRY[name] = SchemeInfo(name=name, fn=fn, description=description)
        return fn

    return decorate


def scheme_info(name: str) -> SchemeInfo:
    """Resolve a registered scheme; ``ValueError`` lists the roster."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "<none>"
        raise ValueError(
            f"unknown locking scheme {name!r} (known: {known})"
        ) from None


def registered_schemes() -> list[str]:
    """Sorted names of every registered locking scheme."""
    return sorted(_REGISTRY)


def lock_circuit(name: str, netlist: Netlist, **params) -> LockedCircuit:
    """Lock ``netlist`` with the registered scheme ``name``."""
    return scheme_info(name).fn(netlist, **params)


# ----------------------------------------------------------------------
# Built-in schemes
# ----------------------------------------------------------------------


@register_scheme(
    "xor", description="random XOR/XNOR key gates (EPIC-style baseline)"
)
def _xor(netlist: Netlist, key_size: int = 4, seed: int = 0, **kwargs):
    return xor_lock(netlist, key_size, seed=seed, **kwargs)


@register_scheme(
    "sarlock", description="SARLock point-function comparator (paper scheme 1)"
)
def _sarlock(netlist: Netlist, key_size: int = 4, seed: int = 0, **kwargs):
    return sarlock_lock(netlist, key_size, seed=seed, **kwargs)


@register_scheme(
    "antisat", description="Anti-SAT block (key is ka‖kb; key_size must be even)"
)
def _antisat(netlist: Netlist, key_size: int = 4, seed: int = 0, **kwargs):
    if key_size % 2:
        raise LockingError(
            f"antisat key_size must be even (got {key_size}): the key is "
            "two equal-width halves ka‖kb"
        )
    return antisat_lock(netlist, key_size // 2, seed=seed, **kwargs)


@register_scheme(
    "lut",
    description="two-stage LUT insertion (spec: preset name or field dict)",
)
def _lut(
    netlist: Netlist,
    spec: str | Mapping | LutModuleSpec = "small",
    seed: int = 0,
    **kwargs,
):
    if isinstance(spec, str):
        spec = LutModuleSpec.by_name(spec)
    elif isinstance(spec, Mapping):
        spec = LutModuleSpec(**spec)
    return lut_lock(netlist, spec, seed=seed, **kwargs)


@register_scheme(
    "entangled",
    description="parity-entangled SARLock (the D1 multi-key countermeasure)",
)
def _entangled(
    netlist: Netlist,
    key_size: int = 4,
    seed: int = 0,
    resist_effort: int = 0,
    **kwargs,
):
    return entangled_sarlock(
        netlist, key_size, seed=seed, resist_effort=resist_effort, **kwargs
    )
