"""Declarative scenario grids: ``scheme x attack x engine x circuit``.

A :class:`ScenarioSpec` names *what* to evaluate — locking schemes and
attacks by their registry names, multi-key engines, carrier circuits,
splitting efforts, seeds — and expands into one content-hashed
``scenario_cell`` task per grid point (:mod:`repro.scenarios.matrix`).
Because every cell is a plain :class:`repro.runner.TaskSpec`, a matrix
run fans out across processes under ``--jobs`` and warm re-runs replay
from the on-disk result cache like any other experiment.

Axis entries are JSON-shaped: a scheme or attack axis entry is either
a bare registry name (``"sarlock"``), a ``(name, params)`` pair
(``("sarlock", {"key_size": 8})``) or a mapping with a ``"name"`` key
(``{"name": "sarlock", "key_size": 8}``) — whatever reads best in the
calling code.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Mapping, Sequence

from repro.attacks.registry import attack_info
from repro.circuit.opt import resolve_opt
from repro.locking.registry import scheme_info
from repro.runner import TaskSpec
from repro.sat.registry import resolve_solver_name, solver_info

#: The recognized multi-key engines (see repro.core.multikey).
ENGINES = ("sharded", "reference")


def normalize_axis(entry) -> tuple[str, dict]:
    """Normalize one scheme/attack axis entry to ``(name, params)``."""
    if isinstance(entry, str):
        return entry, {}
    if isinstance(entry, Mapping):
        params = dict(entry)
        try:
            name = params.pop("name")
        except KeyError:
            raise ValueError(
                f"axis mapping {entry!r} needs a 'name' key"
            ) from None
        return str(name), params
    name, params = entry
    return str(name), dict(params)


@dataclass
class ScenarioSpec:
    """One declarative grid of multi-key attack scenarios.

    Attributes:
        schemes: Locking-scheme axis (registry names + params).
        attacks: Per-sub-space attack axis (registry names + params).
        engines: Multi-key engine axis (``"sharded"`` and/or
            ``"reference"``; a sharded cell whose attack cannot share
            an encoding runs the reference path and reports it).
        circuits: Carrier-circuit names — corpus entries (e.g. the
            shipped ``real_c432``) or ISCAS-class stand-ins, resolved
            via :func:`repro.bench_circuits.corpus.resolve_circuit`.
        scale: Carrier-circuit scale factor.
        efforts: Splitting efforts ``N`` (``2^N`` sub-spaces each).
        seeds: Seeds; each feeds the scheme (unless its params pin
            one), the splitting selection and the attack.
        solver: Registered solver backend for every cell (``None`` ->
            the process default, resolved to a concrete name at
            construction so cells hash the backend that actually runs).
        opt: Structural optimization level for every cell's attack
            (``None`` -> the process default; see
            :mod:`repro.circuit.opt`).  Resolved at construction like
            ``solver``, so ``"auto"`` hashes as the concrete level it
            runs at.
        time_limit_per_task / max_dips_per_task: Sub-attack budgets.
        include_baseline: Also run the ``N = 0`` exact-SAT baseline
            per cell and report the max-subtask/baseline ratio
            (Table 2's metric).
        verify_composition: CEC the composed multi-key netlist against
            the original for cells whose attack recovered *exact* keys
            on every sub-space (approximate "settled" AppSAT keys skip
            CEC — composition equivalence is an exact-key property).
        measure_resistance: Measure the defense levers per cell
            (BDD-exact sub-space key count, conditional shrink, area
            overhead) — the D1 experiment's columns.
        metrics: Corruption-metric roster (registry names from
            :mod:`repro.metrics`); empty means no metric columns.
            Metric cells are keyed by (scheme, circuit, effort, seed)
            only, so the attack/engine/solver axes share one
            ``corruption_cell`` task per point.
        key_samples: Wrong keys sampled per metric cell (``0`` =
            exhaustive); hashed into metric-cell identity.
        metrics_seed: Sample-stream seed for metric cells (``None`` ->
            each cell's own seed); the resolved value is hashed.

    ``expand()`` is deterministic: cells enumerate in axis order
    scheme -> attack -> engine -> circuit -> effort -> seed.  For an
    attack without a registered ``shard_fn`` every requested engine
    resolves to the reference path, so the engine axis collapses to one
    ``"reference"`` cell per grid point — the same computation is never
    run (or cached) twice under two engine labels.
    """

    schemes: Sequence[object]
    attacks: Sequence[object] = ("sat",)
    engines: Sequence[str] = ("sharded",)
    circuits: Sequence[str] = ("c432",)
    scale: float = 0.25
    efforts: Sequence[int] = (1,)
    seeds: Sequence[int] = (0,)
    solver: str | None = None
    opt: str | None = None
    time_limit_per_task: float | None = None
    max_dips_per_task: int | None = None
    include_baseline: bool = False
    verify_composition: bool = False
    measure_resistance: bool = False
    metrics: Sequence[str] = ()
    key_samples: int = 64
    metrics_seed: int | None = None

    def __post_init__(self) -> None:
        self.schemes = [normalize_axis(entry) for entry in self.schemes]
        self.attacks = [normalize_axis(entry) for entry in self.attacks]
        self.engines = list(self.engines)
        self.circuits = list(self.circuits)
        self.efforts = [int(n) for n in self.efforts]
        self.seeds = [int(s) for s in self.seeds]
        self.solver = resolve_solver_name(self.solver)
        self.opt = resolve_opt(self.opt)
        self.metrics = [str(name) for name in self.metrics]
        self.key_samples = int(self.key_samples)
        if self.metrics_seed is not None:
            self.metrics_seed = int(self.metrics_seed)
        self.validate()

    def validate(self) -> None:
        """Resolve every axis name now, not inside worker processes."""
        for name, _ in self.schemes:
            scheme_info(name)  # raises with the roster on a miss
        for name, _ in self.attacks:
            attack_info(name)
        solver_info(self.solver)
        for engine in self.engines:
            if engine not in ENGINES:
                known = ", ".join(ENGINES)
                raise ValueError(
                    f"unknown engine {engine!r} (known: {known})"
                )
        from repro.bench_circuits.corpus import circuit_names, known_circuit

        for circuit in self.circuits:
            if not known_circuit(circuit):
                raise ValueError(
                    f"unknown circuit {circuit!r} (known: "
                    f"{', '.join(circuit_names())})"
                )
        if not (self.schemes and self.attacks and self.engines
                and self.circuits and self.efforts and self.seeds):
            raise ValueError("every ScenarioSpec axis needs at least one entry")
        if self.metrics:
            from repro.metrics import metric_info

            for name in self.metrics:
                metric_info(name)  # raises with the roster on a miss
        if self.key_samples < 0:
            raise ValueError("key_samples must be non-negative")

    def effective_engines(self, attack: str) -> list[str]:
        """The engine axis after resolving the cell's capabilities.

        Attacks with a ``shard_fn`` on a backend with checkpoint frames
        keep the requested engines; any other combination always runs
        the reference path, so the axis collapses to a single
        ``"reference"`` entry — otherwise identical cells would execute
        (and cache) twice under two engine labels.
        """
        if (
            attack_info(attack).supports_shared_encoding
            and solver_info(self.solver).supports_sharding
        ):
            return list(self.engines)
        return ["reference"]

    @property
    def size(self) -> int:
        """Number of grid cells this spec expands into."""
        per_point = (
            len(self.schemes)
            * len(self.circuits)
            * len(self.efforts)
            * len(self.seeds)
        )
        return per_point * sum(
            len(self.effective_engines(attack)) for attack, _ in self.attacks
        )

    def expand(self) -> list[TaskSpec]:
        """The grid as one ``scenario_cell`` :class:`TaskSpec` per point."""
        from repro.scenarios.matrix import scenario_cell_task

        return [
            scenario_cell_task(
                scheme=scheme,
                scheme_params=scheme_params,
                attack=attack,
                attack_params=attack_params,
                engine=engine,
                circuit=circuit,
                scale=self.scale,
                effort=effort,
                seed=seed,
                solver=self.solver,
                opt=self.opt,
                time_limit_per_task=self.time_limit_per_task,
                max_dips_per_task=self.max_dips_per_task,
                include_baseline=self.include_baseline,
                verify=self.verify_composition,
                measure_resistance=self.measure_resistance,
            )
            for scheme, scheme_params in self.schemes
            for attack, attack_params in self.attacks
            for engine in self.effective_engines(attack)
            for circuit in self.circuits
            for effort in self.efforts
            for seed in self.seeds
        ]

    def expand_metrics(self) -> list[TaskSpec]:
        """One ``corruption_cell`` task per (scheme, circuit, N, seed).

        Metric values do not depend on the attack, engine or solver
        axes — only on what was locked and how it is sampled — so the
        metric grid is the scheme x circuit x effort x seed projection
        of the full grid: every attack/engine/solver cell at a point
        shares that point's single cached metric task.  Empty when the
        spec requests no metrics.
        """
        if not self.metrics:
            return []
        from repro.metrics import corruption_cell_task

        return [
            corruption_cell_task(
                scheme=scheme,
                scheme_params=scheme_params,
                circuit=circuit,
                scale=self.scale,
                effort=effort,
                seed=seed,
                metrics=self.metrics,
                key_samples=self.key_samples,
                metrics_seed=self.metrics_seed,
                opt=self.opt,
            )
            for scheme, scheme_params in self.schemes
            for circuit in self.circuits
            for effort in self.efforts
            for seed in self.seeds
        ]

    @property
    def metrics_size(self) -> int:
        """Number of metric cells (0 when no metrics are requested)."""
        if not self.metrics:
            return 0
        return (
            len(self.schemes)
            * len(self.circuits)
            * len(self.efforts)
            * len(self.seeds)
        )

    @property
    def total_tasks(self) -> int:
        """Grid cells plus metric cells — the run's task count."""
        return self.size + self.metrics_size

    @classmethod
    def from_payload(cls, payload: Mapping) -> "ScenarioSpec":
        """Rebuild a spec from :meth:`describe` output (or any superset).

        The inverse of :meth:`describe`: derived keys (``size``) and
        unknown extras are ignored, so payloads decoded from older or
        newer exports reconstruct as long as the axis fields are there.
        """
        known = {
            "schemes", "attacks", "engines", "circuits", "scale",
            "efforts", "seeds", "solver", "opt", "time_limit_per_task",
            "max_dips_per_task", "include_baseline",
            "verify_composition", "measure_resistance",
            "metrics", "key_samples", "metrics_seed",
        }
        return cls(**{k: v for k, v in payload.items() if k in known})

    def describe(self) -> dict:
        """JSON-shaped summary (embedded in matrix exports)."""
        return {
            "schemes": [[name, params] for name, params in self.schemes],
            "attacks": [[name, params] for name, params in self.attacks],
            "engines": list(self.engines),
            "circuits": list(self.circuits),
            "scale": self.scale,
            "efforts": list(self.efforts),
            "seeds": list(self.seeds),
            "solver": self.solver,
            "opt": self.opt,
            "time_limit_per_task": self.time_limit_per_task,
            "max_dips_per_task": self.max_dips_per_task,
            "include_baseline": self.include_baseline,
            "verify_composition": self.verify_composition,
            "measure_resistance": self.measure_resistance,
            "metrics": list(self.metrics),
            "key_samples": self.key_samples,
            "metrics_seed": self.metrics_seed,
            "size": self.size,
        }
