"""The scenario-matrix runner: one worker kind for every grid cell.

``scenario_cell`` is the single registered task behind the whole
matrix: lock a carrier circuit with a registered scheme, run the
multi-key attack with a registered per-sub-space attack on a chosen
engine, optionally compare against the ``N = 0`` baseline, CEC the
composed keys, and measure defense resistance.  The paper's table
drivers (:mod:`repro.experiments.table1` / ``table2`` / ``defense``)
are thin :class:`~repro.scenarios.spec.ScenarioSpec` wrappers over
this worker — and any other ``scheme x attack x engine x circuit``
cell is one declarative spec away.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import asdict, dataclass, field, replace

from repro.bench_circuits.corpus import resolve_circuit
from repro.core.compose import verify_composition
from repro.core.multikey import multikey_attack
from repro.locking.registry import lock_circuit
from repro.runner import Runner, TaskSpec, canonical_json, register_task
from repro.scenarios.spec import ScenarioSpec


@dataclass
class ScenarioCell:
    """One evaluated grid point: the scenario plus every metric.

    Optional blocks (baseline comparison, CEC verdict, resistance
    levers) are ``None`` when the spec did not request them.
    """

    scheme: str
    scheme_params: dict
    attack: str
    attack_params: dict
    engine: str
    engine_used: str
    circuit: str
    scale: float
    effort: int
    seed: int
    status: str
    key_size: int
    gates: int
    dips_per_task: list[int]
    max_dips: int
    uniform: bool
    key_ints: list[int | None]
    oracle_queries: int
    min_seconds: float
    mean_seconds: float
    max_seconds: float
    wall_seconds: float
    encode_seconds: float
    baseline_seconds: float | None = None
    baseline_status: str | None = None
    baseline_dips: int | None = None
    ratio: float | None = None
    composition_equivalent: bool | None = None
    subspace_keys: int | None = None
    gate_reduction: float | None = None
    area_overhead: float | None = None
    # Default covers payloads recorded before the backend registry.
    solver: str = "python"
    # Default covers payloads recorded before the optimization lever.
    opt: str = "off"
    # Defaults cover payloads recorded before the metrics subsystem.
    # ``metrics`` maps metric name -> headline value; the detail blocks
    # keep the full per-key/per-output material for downstream plots.
    metrics: dict | None = None
    metrics_detail: dict | None = None
    key_samples: int | None = None
    metrics_seed: int | None = None


@register_task("scenario_cell")
def _scenario_cell_task(params: dict) -> dict:
    """Worker: evaluate one (scheme, attack, engine, circuit, N) cell."""
    seed = params["seed"]
    effort = params["effort"]
    solver = params.get("solver")
    opt = params.get("opt", "off")
    time_limit = params.get("time_limit_per_task")
    original = resolve_circuit(params["circuit"], params["scale"])
    scheme_params = dict(params.get("scheme_params") or {})
    scheme_params.setdefault("seed", seed)
    locked = lock_circuit(params["scheme"], original, **scheme_params)

    baseline_seconds = baseline_status = baseline_dips = ratio = None
    if params.get("include_baseline"):
        # The paper's baseline column: the exact single-key SAT attack
        # (N = 0, reference arm), whatever the cell's own attack is.
        baseline = multikey_attack(
            locked,
            original,
            effort=0,
            time_limit_per_task=time_limit,
            seed=seed,
            solver=solver,
            opt=opt,
        )
        baseline_seconds = baseline.max_subtask_seconds
        baseline_status = baseline.status
        baseline_dips = baseline.total_dips

    attack = multikey_attack(
        locked,
        original,
        effort=effort,
        parallel=params.get("parallel", False),
        processes=params.get("processes"),
        time_limit_per_task=time_limit,
        max_dips_per_task=params.get("max_dips_per_task"),
        seed=seed,
        engine=params["engine"],
        attack=params["attack"],
        attack_params=params.get("attack_params") or {},
        solver=solver,
        opt=opt,
    )
    if baseline_seconds is not None:
        ratio = attack.max_subtask_seconds / max(baseline_seconds, 1e-9)

    # Composition equivalence is an exact-key property: a "settled"
    # AppSAT key is approximate by design (wrong on up to the error
    # threshold), so CEC would legitimately fail without the attack
    # having failed.  Verify only when every sub-space key is exact.
    exact = attack.status == "ok" and all(
        task.status == "ok" for task in attack.subtasks
    )
    equivalent = None
    if params.get("verify") and exact:
        equivalent = bool(
            verify_composition(
                locked, attack.splitting_inputs, attack.keys, original
            )
        )

    subspace_keys = gate_reduction = area_overhead = None
    if params.get("measure_resistance"):
        from repro.locking.defense import splitting_resistance
        from repro.synth.library import estimate_area

        resistance = splitting_resistance(locked, original, effort, seed=seed)
        subspace_keys = resistance.keys_unlocking_subspace
        gate_reduction = resistance.gate_reduction
        area_overhead = (
            estimate_area(locked.netlist) / estimate_area(original) - 1
        )

    dips = attack.dips_per_task
    return asdict(
        ScenarioCell(
            scheme=params["scheme"],
            scheme_params=dict(params.get("scheme_params") or {}),
            attack=params["attack"],
            attack_params=dict(params.get("attack_params") or {}),
            engine=params["engine"],
            engine_used=attack.engine,
            circuit=params["circuit"],
            scale=params["scale"],
            effort=effort,
            seed=seed,
            status=attack.status,
            key_size=locked.key_size,
            gates=locked.netlist.num_gates,
            dips_per_task=dips,
            max_dips=max(dips) if dips else 0,
            uniform=len(set(dips)) == 1,
            key_ints=attack.key_ints,
            oracle_queries=sum(t.oracle_queries for t in attack.subtasks),
            min_seconds=attack.min_subtask_seconds,
            mean_seconds=attack.mean_subtask_seconds,
            max_seconds=attack.max_subtask_seconds,
            wall_seconds=attack.wall_seconds,
            encode_seconds=attack.encode_seconds,
            baseline_seconds=baseline_seconds,
            baseline_status=baseline_status,
            baseline_dips=baseline_dips,
            ratio=ratio,
            composition_equivalent=equivalent,
            subspace_keys=subspace_keys,
            gate_reduction=gate_reduction,
            area_overhead=area_overhead,
            solver=attack.solver,
            opt=opt,
        )
    )


def scenario_cell_task(
    scheme: str,
    scheme_params: dict,
    attack: str,
    attack_params: dict,
    engine: str,
    circuit: str,
    scale: float,
    effort: int,
    seed: int,
    solver: str | None = None,
    opt: str | None = None,
    time_limit_per_task: float | None = None,
    max_dips_per_task: int | None = None,
    include_baseline: bool = False,
    verify: bool = False,
    measure_resistance: bool = False,
    parallel: bool = False,
    processes: int | None = None,
) -> TaskSpec:
    """The :class:`TaskSpec` for one matrix cell.

    Everything that determines the artifact — scheme, attack, engine,
    solver backend, optimization level, circuit, budgets, the optional
    measurement blocks — is hashed (different backends may return
    different, equally valid, keys, and the opt level changes the
    encoding a cell attacks); inner-attack parallelism lives in the
    unhashed execution context, so serial and fanned-out evaluations
    share cache entries.
    """
    from repro.circuit.opt import resolve_opt
    from repro.sat.registry import resolve_solver_name

    return TaskSpec(
        kind="scenario_cell",
        params={
            "scheme": scheme,
            "scheme_params": dict(scheme_params or {}),
            "attack": attack,
            "attack_params": dict(attack_params or {}),
            "engine": engine,
            "circuit": circuit,
            "scale": scale,
            "effort": effort,
            "seed": seed,
            "solver": resolve_solver_name(solver),
            "opt": resolve_opt(opt),
            "time_limit_per_task": time_limit_per_task,
            "max_dips_per_task": max_dips_per_task,
            "include_baseline": include_baseline,
            "verify": verify,
            "measure_resistance": measure_resistance,
        },
        context={"parallel": parallel, "processes": processes},
        label=f"{scheme}x{attack}x{engine} {circuit} N={effort}",
    )


#: Flat CSV column order (list/dict fields serialize as canonical JSON).
_CSV_COLUMNS = [
    "scheme", "scheme_params", "attack", "attack_params", "engine",
    "engine_used", "solver", "opt", "circuit", "scale", "effort", "seed",
    "status",
    "key_size", "gates", "max_dips", "uniform", "dips_per_task",
    "oracle_queries", "min_seconds", "mean_seconds", "max_seconds",
    "wall_seconds", "encode_seconds", "baseline_seconds",
    "baseline_status", "baseline_dips", "ratio",
    "composition_equivalent", "subspace_keys", "gate_reduction",
    "area_overhead",
]


@dataclass
class MatrixResult:
    """Every evaluated cell of one :class:`ScenarioSpec`, in grid order."""

    spec: ScenarioSpec
    cells: list[ScenarioCell] = field(default_factory=list)

    def select(self, **filters) -> list[ScenarioCell]:
        """Cells whose attributes match every ``field=value`` filter."""
        return [
            cell
            for cell in self.cells
            if all(getattr(cell, name) == value for name, value in filters.items())
        ]

    def cell(self, **filters) -> ScenarioCell:
        """The unique cell matching ``filters`` (KeyError otherwise)."""
        matches = self.select(**filters)
        if len(matches) != 1:
            raise KeyError(
                f"{len(matches)} cells match {filters!r} (expected exactly 1)"
            )
        return matches[0]

    def format(self) -> str:
        """Human-readable summary table of the whole matrix."""
        # Imported lazily: repro.experiments' package __init__ pulls in
        # the table drivers, which are themselves built on this module.
        from repro.experiments.report import format_table, seconds

        metric_names = list(self.spec.metrics)
        headers = [
            "Scheme", "|K|", "Attack", "Engine", "Circuit", "N",
            "Status", "max #DIP", "max t", "CEC",
        ] + metric_names
        rows = []
        for cell in self.cells:
            engine = cell.engine_used
            if cell.engine != cell.engine_used:
                engine = f"{cell.engine}->{cell.engine_used}"
            row = [
                cell.scheme,
                cell.key_size,
                cell.attack,
                engine,
                cell.circuit,
                cell.effort,
                cell.status,
                cell.max_dips,
                seconds(cell.max_seconds),
                {True: "pass", False: "FAIL", None: "-"}[
                    cell.composition_equivalent
                ],
            ]
            for name in metric_names:
                value = (cell.metrics or {}).get(name)
                row.append("-" if value is None else f"{value:.4g}")
            rows.append(row)
        title = (
            f"Scenario matrix: {len(self.cells)} cells "
            f"(scale={self.spec.scale})"
        )
        return format_table(headers, rows, title=title)

    def to_payload(self) -> dict:
        """The matrix as one JSON-shaped dict (spec summary + cells).

        This is the service layer's response payload for matrix jobs;
        :meth:`from_payload` inverts it, so a response envelope that
        crossed a daemon socket reconstructs to an equal result.
        """
        return {
            "spec": self.spec.describe(),
            "cells": [asdict(cell) for cell in self.cells],
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "MatrixResult":
        """Rebuild a matrix result from :meth:`to_payload` output."""
        return cls(
            spec=ScenarioSpec.from_payload(payload["spec"]),
            cells=[ScenarioCell(**cell) for cell in payload["cells"]],
        )

    def to_json(self) -> str:
        """The full matrix as JSON (spec summary + every cell)."""
        return json.dumps(self.to_payload(), indent=2) + "\n"

    def csv_columns(self) -> list[str]:
        """The CSV header: fixed columns plus one per requested metric.

        Metric columns appear only when the spec asked for metrics, in
        the spec's roster order, so metric-free exports stay byte-
        compatible with earlier format versions.
        """
        columns = list(_CSV_COLUMNS)
        if self.spec.metrics:
            columns += ["key_samples", "metrics_seed"]
            columns += [f"metric_{name}" for name in self.spec.metrics]
        return columns

    def to_csv(self) -> str:
        """The matrix as flat CSV (one row per cell)."""
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        columns = self.csv_columns()
        writer.writerow(columns)
        for cell in self.cells:
            record = asdict(cell)
            row = []
            for column in columns:
                if column.startswith("metric_"):
                    value = (record["metrics"] or {}).get(column[len("metric_"):])
                else:
                    value = record[column]
                if isinstance(value, (dict, list)):
                    value = json.dumps(value, sort_keys=True)
                row.append(value)
            writer.writerow(row)
        return buffer.getvalue()


def _metric_point(scheme: str, scheme_params: dict, circuit: str,
                  effort: int, seed: int) -> tuple:
    """The grid-point key metric reports attach on (axis projection)."""
    return (scheme, canonical_json(scheme_params or {}), circuit, effort, seed)


def attach_metrics(result: MatrixResult, reports: dict[tuple, dict]) -> None:
    """Merge ``corruption_cell`` artifacts into their grid cells.

    ``reports`` is keyed by :func:`_metric_point`; every attack/engine
    cell at a grid point receives the point's single metric report —
    the dedup that makes metrics an axis *annotation*, not an axis
    multiplier.
    """
    for cell in result.cells:
        report = reports.get(
            _metric_point(
                cell.scheme, cell.scheme_params, cell.circuit,
                cell.effort, cell.seed,
            )
        )
        if report is None:
            continue
        cell.metrics = {
            name: block["value"] for name, block in report["metrics"].items()
        }
        cell.metrics_detail = {
            name: block["detail"] for name, block in report["metrics"].items()
        }
        cell.key_samples = report["key_samples"]
        cell.metrics_seed = report["seed"]


def run_matrix(
    spec: ScenarioSpec,
    runner: Runner | None = None,
    inner_parallel: bool = False,
    processes: int | None = None,
) -> MatrixResult:
    """Evaluate every cell of ``spec`` through the shared runner.

    Parallelism lives in exactly one place: the runner's pool when it
    will actually fan cells out, otherwise inside each cell's ``2^N``
    sub-attacks (``inner_parallel=True``).  Context is unhashed, so
    flipping it is cache-safe.

    When the spec requests metrics, the deduplicated
    ``corruption_cell`` tasks ride the same runner submission (same
    pool, same cache) and their values land on every matching cell.
    """
    runner = runner or Runner()
    specs = spec.expand()
    if inner_parallel and (
        runner.jobs <= 1 or runner.pending_count(specs) <= 1
    ):
        specs = [
            replace(
                task,
                context={**task.context, "parallel": True, "processes": processes},
            )
            for task in specs
        ]
    result = MatrixResult(spec=spec)
    reports: dict[tuple, dict] = {}
    for task in runner.run(specs + spec.expand_metrics()):
        if task.spec.kind == "corruption_cell":
            params = task.spec.params
            reports[
                _metric_point(
                    params["scheme"], params["scheme_params"],
                    params["circuit"], params["effort"], params["seed"],
                )
            ] = task.artifact
        else:
            result.cells.append(ScenarioCell(**task.artifact))
    attach_metrics(result, reports)
    return result
