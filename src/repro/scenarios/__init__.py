"""The scenario-matrix subsystem.

Declarative evaluation of any ``scheme x attack x engine x circuit``
grid under the multi-key premise: name registered locking schemes
(:mod:`repro.locking.registry`) and attacks
(:mod:`repro.attacks.registry`) in a :class:`ScenarioSpec`, and
:func:`run_matrix` expands the grid into content-hashed
``scenario_cell`` tasks through :mod:`repro.runner` — parallel under
``--jobs``, replayable from the result cache.

Typical use::

    from repro.runner import Runner
    from repro.scenarios import ScenarioSpec, run_matrix

    spec = ScenarioSpec(
        schemes=[("sarlock", {"key_size": 4}), "xor"],
        attacks=("sat", "appsat"),
        engines=("sharded", "reference"),
        circuits=("c432",),
        scale=0.12,
        efforts=(1,),
    )
    result = run_matrix(spec, runner=Runner(jobs=4))
    print(result.format())

The paper's table drivers (:mod:`repro.experiments.table1` /
``table2`` / ``defense``) are thin specs over this machinery.
"""

from repro.scenarios.matrix import (
    MatrixResult,
    ScenarioCell,
    run_matrix,
    scenario_cell_task,
)
from repro.scenarios.spec import ENGINES, ScenarioSpec, normalize_axis

__all__ = [
    "ENGINES",
    "MatrixResult",
    "ScenarioCell",
    "ScenarioSpec",
    "normalize_axis",
    "run_matrix",
    "scenario_cell_task",
]
