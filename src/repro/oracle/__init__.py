"""The attacker's black-box oracle (the "working chip")."""

from repro.oracle.oracle import Oracle

__all__ = ["Oracle"]
