"""Black-box functional oracle.

The SAT attack threat model grants the attacker a working unlocked
chip that can be queried with input patterns ("obtainable through
querying a commercially available chip").  :class:`Oracle` simulates
that chip from the original netlist while hiding its structure behind
a query-only interface, and counts queries so experiments can report
oracle usage.

The original netlist is compiled once at construction; every query —
single-pattern or bit-parallel — evaluates through the integer-indexed
:class:`repro.circuit.compiled.CompiledCircuit` core.

Query accounting: every *pattern* applied to the chip counts as one
query.  ``query`` and ``query_int`` add 1; ``query_batch`` adds
``len(patterns)``; ``query_vector`` adds ``width``.  A batched call is
therefore cost-equivalent to the per-pattern loop it replaces — the
batching buys wall-clock speed, not a lower reported oracle count.

Wide sweeps run behind the lane-backend lever (see
:mod:`repro.circuit.lanes`): ``query_batch`` chunks its patterns at
the active backend's preferred sweep width — one giant big-int sweep
thrashes the cache on the python backend, while numpy wants batches
wide enough to amortize its stage overhead — and ``query_vector``
dispatches through the same lever.  Chunking is invisible in results
*and* in accounting: responses are concatenated in pattern order and
the query count stays one per pattern.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.circuit.lanes import preferred_chunk_lanes, resolve_lanes
from repro.circuit.netlist import Netlist
from repro.circuit.opt import resolve_opt


class Oracle:
    """Query-only wrapper around the original circuit.

    ``lanes`` picks the evaluation backend for bit-parallel queries
    (``None`` -> the process default, normally ``"auto"``); results
    are backend-independent by the lane-parity contract.  ``opt`` runs
    the structural optimizer (:mod:`repro.circuit.opt`) on the
    compiled circuit once at construction — fewer gates shrink both
    the big-int sweep and the numpy stage matrices; responses are
    identical by the optimizer's parity contract.
    """

    def __init__(
        self,
        original: Netlist,
        lanes: str | None = None,
        opt: str | None = None,
    ):
        self._netlist = original
        self._compiled = original.compile()
        level = resolve_opt(opt)
        if level != "off":
            self._compiled = self._compiled.optimized(level).compiled
        self._lanes = lanes
        self.query_count = 0

    @property
    def input_names(self) -> list[str]:
        return list(self._compiled.inputs)

    @property
    def output_names(self) -> list[str]:
        return list(self._compiled.outputs)

    def query(self, input_bits: Mapping[str, int] | Sequence[int]) -> dict[str, int]:
        """Apply one input pattern; returns output name -> bit."""
        self.query_count += 1
        return self._compiled.eval_single(input_bits)

    def query_int(self, pattern: int) -> int:
        """Integer convenience: bit ``j`` of ``pattern`` drives input ``j``.

        Returns the outputs packed the same way (output ``j`` = bit ``j``).
        """
        self.query_count += 1
        return self._compiled.evaluate_pattern(pattern)

    def query_batch(self, patterns: Sequence[int]) -> list[int]:
        """Apply many packed patterns in ONE bit-parallel sweep.

        ``patterns[p]`` is an integer whose bit ``j`` drives input
        ``j``; the result holds one packed output word per pattern
        (bit ``k`` = output ``k``, as in :meth:`query_int`).  Counts
        ``len(patterns)`` queries — see the module docstring.

        ::

            >>> from repro.circuit.netlist import Netlist
            >>> from repro.circuit.gates import GateType
            >>> netlist = Netlist("toy")
            >>> _ = netlist.add_input("a")
            >>> _ = netlist.add_input("b")
            >>> _ = netlist.add_gate("x", GateType.AND, ["a", "b"])
            >>> netlist.set_outputs(["x"])
            >>> oracle = Oracle(netlist)
            >>> oracle.query_batch([0b00, 0b01, 0b10, 0b11])
            [0, 0, 0, 1]
            >>> oracle.query_count
            4
        """
        self.query_count += len(patterns)
        compiled = self._compiled
        backend = resolve_lanes(
            self._lanes,
            num_gates=compiled.num_gates,
            width=len(patterns),
            stages=compiled.lane_stage_hint()[1],
        )
        chunk = preferred_chunk_lanes(backend)
        if len(patterns) <= chunk:
            return compiled.eval_batch(patterns, lanes=backend)
        results: list[int] = []
        for start in range(0, len(patterns), chunk):
            results.extend(
                compiled.eval_batch(
                    patterns[start : start + chunk], lanes=backend
                )
            )
        return results

    def query_vector(
        self, stimuli: Mapping[str, int], width: int
    ) -> dict[str, int]:
        """Bit-parallel query keyed by net name.

        ``stimuli`` maps every primary input to a ``width``-lane word;
        returns output name -> word.  Counts ``width`` queries.
        """
        if width < 1:
            raise ValueError("width must be positive")
        self.query_count += width
        compiled = self._compiled
        try:
            words = [stimuli[name] for name in compiled.inputs]
        except KeyError as exc:
            raise KeyError(
                f"missing value for primary input {exc.args[0]!r}"
            ) from None
        outputs = compiled.eval_outputs_wide(words, width, lanes=self._lanes)
        return dict(zip(compiled.outputs, outputs))
