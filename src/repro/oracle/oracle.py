"""Black-box functional oracle.

The SAT attack threat model grants the attacker a working unlocked
chip that can be queried with input patterns ("obtainable through
querying a commercially available chip").  :class:`Oracle` simulates
that chip from the original netlist while hiding its structure behind
a query-only interface, and counts queries so experiments can report
oracle usage.

The original netlist is compiled once at construction; every query —
single-pattern or bit-parallel — evaluates through the integer-indexed
:class:`repro.circuit.compiled.CompiledCircuit` core.

Query accounting: every *pattern* applied to the chip counts as one
query.  ``query`` and ``query_int`` add 1; ``query_batch`` adds
``len(patterns)``; ``query_vector`` adds ``width``.  A batched call is
therefore cost-equivalent to the per-pattern loop it replaces — the
batching buys wall-clock speed, not a lower reported oracle count.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.circuit.netlist import Netlist


class Oracle:
    """Query-only wrapper around the original circuit."""

    def __init__(self, original: Netlist):
        self._netlist = original
        self._compiled = original.compile()
        self.query_count = 0

    @property
    def input_names(self) -> list[str]:
        return list(self._compiled.inputs)

    @property
    def output_names(self) -> list[str]:
        return list(self._compiled.outputs)

    def query(self, input_bits: Mapping[str, int] | Sequence[int]) -> dict[str, int]:
        """Apply one input pattern; returns output name -> bit."""
        self.query_count += 1
        return self._compiled.eval_single(input_bits)

    def query_int(self, pattern: int) -> int:
        """Integer convenience: bit ``j`` of ``pattern`` drives input ``j``.

        Returns the outputs packed the same way (output ``j`` = bit ``j``).
        """
        self.query_count += 1
        return self._compiled.evaluate_pattern(pattern)

    def query_batch(self, patterns: Sequence[int]) -> list[int]:
        """Apply many packed patterns in ONE bit-parallel sweep.

        ``patterns[p]`` is an integer whose bit ``j`` drives input
        ``j``; the result holds one packed output word per pattern
        (bit ``k`` = output ``k``, as in :meth:`query_int`).  Counts
        ``len(patterns)`` queries — see the module docstring.

        ::

            >>> from repro.circuit.netlist import Netlist
            >>> from repro.circuit.gates import GateType
            >>> netlist = Netlist("toy")
            >>> _ = netlist.add_input("a")
            >>> _ = netlist.add_input("b")
            >>> _ = netlist.add_gate("x", GateType.AND, ["a", "b"])
            >>> netlist.set_outputs(["x"])
            >>> oracle = Oracle(netlist)
            >>> oracle.query_batch([0b00, 0b01, 0b10, 0b11])
            [0, 0, 0, 1]
            >>> oracle.query_count
            4
        """
        self.query_count += len(patterns)
        return self._compiled.eval_batch(patterns)

    def query_vector(
        self, stimuli: Mapping[str, int], width: int
    ) -> dict[str, int]:
        """Bit-parallel query keyed by net name.

        ``stimuli`` maps every primary input to a ``width``-lane word;
        returns output name -> word.  Counts ``width`` queries.
        """
        if width < 1:
            raise ValueError("width must be positive")
        self.query_count += width
        compiled = self._compiled
        values = compiled.eval_mapping(stimuli, (1 << width) - 1)
        return {net: values[compiled.slot_of[net]] for net in compiled.outputs}
