"""Black-box functional oracle.

The SAT attack threat model grants the attacker a working unlocked
chip that can be queried with input patterns ("obtainable through
querying a commercially available chip").  :class:`Oracle` simulates
that chip from the original netlist while hiding its structure behind
a query-only interface, and counts queries so experiments can report
oracle usage.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.circuit.netlist import Netlist
from repro.circuit.simulator import evaluate


class Oracle:
    """Query-only wrapper around the original circuit."""

    def __init__(self, original: Netlist):
        self._netlist = original
        self.query_count = 0

    @property
    def input_names(self) -> list[str]:
        return list(self._netlist.inputs)

    @property
    def output_names(self) -> list[str]:
        return list(self._netlist.outputs)

    def query(self, input_bits: Mapping[str, int] | Sequence[int]) -> dict[str, int]:
        """Apply one input pattern; returns output name -> bit."""
        self.query_count += 1
        return evaluate(self._netlist, input_bits)

    def query_int(self, pattern: int) -> int:
        """Integer convenience: bit ``j`` of ``pattern`` drives input ``j``.

        Returns the outputs packed the same way (output ``j`` = bit ``j``).
        """
        bits = {
            net: (pattern >> j) & 1 for j, net in enumerate(self._netlist.inputs)
        }
        response = self.query(bits)
        packed = 0
        for j, net in enumerate(self._netlist.outputs):
            if response[net]:
                packed |= 1 << j
        return packed
