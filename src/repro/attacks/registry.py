"""The attack registry: one declarative surface over every attack.

Every oracle-guided attack in the repo — the exact SAT attack, the
AppSAT approximation, exhaustive key search — is registered here under
a short name and normalized to one calling convention (the
:class:`Attack` protocol) and one result shape
(:class:`AttackOutcome`).  That uniformity is what lets
:func:`repro.core.multikey.multikey_attack` run *any* registered
attack as the per-sub-space strategy of the paper's multi-key attack,
and what lets the scenario matrix (:mod:`repro.scenarios`) enumerate
``scheme x attack x engine x circuit`` grids declaratively.

Registration carries one capability flag: attacks that can run against
a pre-built shared miter encoding (today: the exact SAT attack)
register a ``shard_fn`` alongside the standalone ``fn``, and the
sharded multi-key engine reuses its one-shot encoding for them.
Attacks without a ``shard_fn`` still work under ``engine="sharded"`` —
the multi-key driver transparently falls back to the reference
per-sub-space path.

Adding an attack::

    @register_attack("my_attack", description="one-line summary")
    def _my_attack(locked, oracle, *, pin=None, time_limit=None,
                   max_dips=None, seed=0, **params):
        ...
        return AttackOutcome(attack="my_attack", ...)

Count one oracle query per applied pattern (the accounting invariant
that keeps reported query columns comparable across attacks).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Callable, Mapping
from typing import Protocol

from repro.attacks.appsat import appsat_attack
from repro.attacks.brute_force import brute_force_attack
from repro.attacks.sat_attack import (
    MiterEncoding,
    run_dip_loop,
    sat_attack,
)
from repro.locking.base import LockedCircuit, key_to_int
from repro.oracle.oracle import Oracle

#: Statuses that count as a successful sub-space attack.  ``"ok"`` is
#: an exact key; ``"settled"`` is AppSAT's acceptance criterion (the
#: empirical error rate stayed under threshold) — approximate by
#: design, still the attack succeeding on its own terms.
SUCCESS_STATUSES = frozenset({"ok", "settled"})


@dataclass
class AttackOutcome:
    """What every registered attack returns, whatever its engine.

    Attributes:
        attack: The registered attack name that produced this outcome.
        key: The recovered key (``None`` when the attack failed or a
            budget stopped it without a candidate).
        status: ``"ok"`` | ``"settled"`` | ``"timeout"`` |
            ``"dip_limit"`` | ``"no_key"`` (see
            :data:`SUCCESS_STATUSES`).
        elapsed_seconds: Wall-clock time of the attack.
        oracle_queries: Oracle queries issued by this attack (a delta,
            so shared oracles report per-attack counts correctly).
        num_dips: DIP iterations, for DIP-driven attacks (0 otherwise).
        solver_stats: Solver counter deltas, when a solver was used.
        key_order: Key port names fixing :attr:`key_int` bit order.
        pinned: The sub-space restriction the attack ran under.
        all_keys: Every correct key as an integer, for attacks that
            enumerate (brute force); ``None`` for attacks that return
            a single witness.
        detail: Attack-specific extras (e.g. AppSAT's checkpoint error
            rates) — JSON-serializable, informational only.
    """

    attack: str
    key: dict[str, bool] | None
    status: str
    elapsed_seconds: float
    oracle_queries: int
    num_dips: int = 0
    solver_stats: dict[str, int] = field(default_factory=dict)
    key_order: list[str] = field(default_factory=list)
    pinned: dict[str, bool] = field(default_factory=dict)
    all_keys: list[int] | None = None
    detail: dict = field(default_factory=dict)

    @property
    def succeeded(self) -> bool:
        """True when the attack met its own success criterion."""
        return self.status in SUCCESS_STATUSES and self.key is not None

    @property
    def key_int(self) -> int | None:
        """Key packed as an integer (bit ``j`` = key port ``j``)."""
        if self.key is None:
            return None
        return key_to_int([int(self.key[net]) for net in self.key_order])


class Attack(Protocol):
    """The calling convention every registered attack satisfies.

    ``pin`` restricts the attack to one input sub-space (the multi-key
    attack's per-sub-space contract); ``time_limit`` / ``max_dips`` are
    budgets an attack may honour or ignore (brute force ignores both);
    ``seed`` feeds any internal randomness; ``solver`` names a
    registered solver backend (:mod:`repro.sat.registry`) — attacks
    that use no solver ignore it; ``opt`` picks the structural
    optimization level applied to the circuits an attack encodes or
    simulates (:mod:`repro.circuit.opt`) — attacks that build no such
    structures ignore it; extra keyword ``params`` are attack-specific
    knobs.
    """

    def __call__(
        self,
        locked: LockedCircuit,
        oracle: Oracle,
        *,
        pin: Mapping[str, bool] | None = None,
        time_limit: float | None = None,
        max_dips: int | None = None,
        seed: int = 0,
        solver: str | None = None,
        opt: str | None = None,
        **params,
    ) -> AttackOutcome: ...


@dataclass(frozen=True)
class AttackInfo:
    """One registry entry: the attack plus its capabilities.

    ``shard_fn`` — when not ``None`` — runs the attack against a
    pre-built :class:`~repro.attacks.sat_attack.MiterEncoding` with
    assumption pins and a guard literal, which is what lets the sharded
    multi-key engine share one encoding across all ``2^N`` sub-spaces.
    """

    name: str
    fn: Callable[..., AttackOutcome]
    shard_fn: Callable[..., AttackOutcome] | None = None
    description: str = ""

    @property
    def supports_shared_encoding(self) -> bool:
        return self.shard_fn is not None


_REGISTRY: dict[str, AttackInfo] = {}


def register_attack(
    name: str,
    *,
    shard_fn: Callable[..., AttackOutcome] | None = None,
    description: str = "",
) -> Callable[[Callable[..., AttackOutcome]], Callable[..., AttackOutcome]]:
    """Decorator registering ``fn`` as the attack called ``name``."""

    def decorate(fn: Callable[..., AttackOutcome]) -> Callable[..., AttackOutcome]:
        existing = _REGISTRY.get(name)
        if existing is not None and existing.fn is not fn:
            raise ValueError(f"attack {name!r} already registered")
        _REGISTRY[name] = AttackInfo(
            name=name, fn=fn, shard_fn=shard_fn, description=description
        )
        return fn

    return decorate


def attack_info(name: str) -> AttackInfo:
    """Resolve a registered attack; ``ValueError`` lists the roster."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "<none>"
        raise ValueError(
            f"unknown attack {name!r} (known: {known})"
        ) from None


def registered_attacks() -> list[str]:
    """Sorted names of every registered attack."""
    return sorted(_REGISTRY)


def run_attack(
    name: str,
    locked: LockedCircuit,
    oracle: Oracle,
    *,
    pin: Mapping[str, bool] | None = None,
    time_limit: float | None = None,
    max_dips: int | None = None,
    seed: int = 0,
    solver: str | None = None,
    opt: str | None = None,
    **params,
) -> AttackOutcome:
    """Run the registered attack ``name`` under the uniform convention."""
    return attack_info(name).fn(
        locked,
        oracle,
        pin=pin,
        time_limit=time_limit,
        max_dips=max_dips,
        seed=seed,
        solver=solver,
        opt=opt,
        **params,
    )


# ----------------------------------------------------------------------
# Built-in attacks
# ----------------------------------------------------------------------


def _sat_shard_fn(
    enc: MiterEncoding,
    oracle: Oracle,
    *,
    pin: Mapping[str, bool] | None = None,
    assume=(),
    guard: int | None = None,
    time_limit: float | None = None,
    max_dips: int | None = None,
    seed: int = 0,
    extract_on_budget: bool = False,
) -> AttackOutcome:
    """The exact SAT attack against a shared miter encoding."""
    result = run_dip_loop(
        enc,
        oracle,
        pin=pin,
        assume=assume,
        guard=guard,
        time_limit=time_limit,
        max_dips=max_dips,
        record_iterations=False,
        extract_on_budget=extract_on_budget,
    )
    return AttackOutcome(
        attack="sat",
        key=result.key,
        status=result.status,
        elapsed_seconds=result.elapsed_seconds,
        oracle_queries=result.oracle_queries,
        num_dips=result.num_dips,
        solver_stats=result.solver_stats,
        key_order=result.key_order,
        pinned=result.pinned,
    )


@register_attack(
    "sat",
    shard_fn=_sat_shard_fn,
    description="exact oracle-guided SAT attack (DIP refinement)",
)
def _sat_attack(
    locked: LockedCircuit,
    oracle: Oracle,
    *,
    pin: Mapping[str, bool] | None = None,
    time_limit: float | None = None,
    max_dips: int | None = None,
    seed: int = 0,
    solver: str | None = None,
    opt: str | None = None,
    extract_on_budget: bool = False,
) -> AttackOutcome:
    result = sat_attack(
        locked,
        oracle,
        pin=pin,
        time_limit=time_limit,
        max_dips=max_dips,
        record_iterations=False,
        extract_on_budget=extract_on_budget,
        solver=solver,
        opt=opt,
    )
    return AttackOutcome(
        attack="sat",
        key=result.key,
        status=result.status,
        elapsed_seconds=result.elapsed_seconds,
        oracle_queries=result.oracle_queries,
        num_dips=result.num_dips,
        solver_stats=result.solver_stats,
        key_order=result.key_order,
        pinned=result.pinned,
        detail={"encode": result.encode_stats} if result.encode_stats else {},
    )


@register_attack(
    "appsat",
    description="approximate SAT attack (DIPs + random error checkpoints)",
)
def _appsat(
    locked: LockedCircuit,
    oracle: Oracle,
    *,
    pin: Mapping[str, bool] | None = None,
    time_limit: float | None = None,
    max_dips: int | None = None,
    seed: int = 0,
    solver: str | None = None,
    opt: str | None = None,
    dips_per_round: int = 8,
    queries_per_checkpoint: int = 64,
    error_threshold: float = 0.01,
    settle_rounds: int = 2,
) -> AttackOutcome:
    queries_before = oracle.query_count
    result = appsat_attack(
        locked,
        oracle,
        dips_per_round=dips_per_round,
        queries_per_checkpoint=queries_per_checkpoint,
        error_threshold=error_threshold,
        settle_rounds=settle_rounds,
        time_limit=time_limit,
        seed=seed,
        pin=pin,
        max_dips=max_dips,
        solver=solver,
        opt=opt,
    )
    # "exact" means the underlying DIP loop converged — the key is
    # exact on the (sub-)space, identical to the SAT attack's "ok".
    status = "ok" if result.status == "exact" else result.status
    return AttackOutcome(
        attack="appsat",
        key=result.key,
        status=status,
        elapsed_seconds=result.elapsed_seconds,
        # A true delta: the budget-replay implementation re-queries the
        # oracle on earlier DIPs each round, and those queries count
        # (the accounting invariant is queries *issued*, not the
        # algorithmic minimum an incremental AppSAT would need — that
        # minimum rides in detail as num_dips + random_queries).
        oracle_queries=oracle.query_count - queries_before,
        num_dips=result.num_dips,
        key_order=result.key_order,
        pinned=result.pinned,
        detail={
            "native_status": result.status,
            "estimated_error_rate": result.estimated_error_rate,
            "checkpoints": list(result.checkpoints),
            "random_queries": result.random_queries,
        },
    )


@register_attack(
    "brute_force",
    description="exhaustive key enumeration (all correct keys; small circuits)",
)
def _brute_force(
    locked: LockedCircuit,
    oracle: Oracle,
    *,
    pin: Mapping[str, bool] | None = None,
    time_limit: float | None = None,
    max_dips: int | None = None,
    seed: int = 0,
    solver: str | None = None,
    opt: str | None = None,
) -> AttackOutcome:
    # Budgets, seeds, solver backends and optimization levels are
    # meaningless for an exhaustive sweep; they are accepted (protocol)
    # and ignored.
    result = brute_force_attack(locked, oracle, pin=pin)
    key = (
        locked.key_assignment(result.key_int)
        if result.key_int is not None
        else None
    )
    return AttackOutcome(
        attack="brute_force",
        key=key,
        status="ok" if result.keys else "no_key",
        elapsed_seconds=result.elapsed_seconds,
        oracle_queries=result.oracle_queries,
        key_order=result.key_order,
        pinned=result.pinned,
        all_keys=list(result.keys),
        detail={"num_keys": result.num_keys},
    )
