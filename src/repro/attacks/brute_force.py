"""Exhaustive key search, for cross-validating the SAT attack on
small instances (and for enumerating *all* functionally correct keys,
which the SAT attack does not do)."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from collections.abc import Mapping

from repro.circuit.simulator import truth_table
from repro.locking.base import LockedCircuit
from repro.oracle.oracle import Oracle


@dataclass
class BruteForceResult:
    """Every functionally correct key on a (possibly pinned) sub-space.

    Attributes:
        keys: All key integers matching the oracle on every input
            consistent with :attr:`pinned`, in ascending order.
        elapsed_seconds: Wall-clock time of the enumeration.
        oracle_queries: Oracle queries issued (one per candidate input
            pattern; the golden sweep is batched but still counted
            per pattern).
        key_order: Key port names fixing the bit order of each entry
            in :attr:`keys`.
        pinned: The sub-space restriction the search ran under.
    """

    keys: list[int]
    elapsed_seconds: float
    oracle_queries: int
    key_order: list[str] = field(default_factory=list)
    pinned: dict[str, bool] = field(default_factory=dict)

    @property
    def key_int(self) -> int | None:
        """The smallest correct key (``None`` when nothing matched)."""
        return self.keys[0] if self.keys else None

    @property
    def num_keys(self) -> int:
        """How many keys unlock the sub-space."""
        return len(self.keys)


def brute_force_attack(
    locked: LockedCircuit,
    oracle: Oracle,
    pin: Mapping[str, bool] | None = None,
) -> BruteForceResult:
    """All keys matching the oracle on every input consistent with ``pin``.

    Exhaustive over both the key space and the input space; only
    sensible when ``|I| + |K|`` is small (~20 bits).  The golden
    responses come from ONE bit-parallel :meth:`Oracle.query_batch`
    sweep (still counted as one query per pattern); each candidate key
    is checked against a compiled truth table of the keyed circuit.
    """
    start = time.perf_counter()
    queries_before = oracle.query_count
    num_inputs = len(locked.original_inputs)
    if num_inputs + locked.key_size > 22:
        raise ValueError("brute force limited to ~22 total input+key bits")
    pin = dict(pin or {})
    input_pos = {net: j for j, net in enumerate(locked.original_inputs)}
    for net in pin:
        if net not in input_pos:
            raise ValueError(f"pinned net {net!r} is not an original input")

    def consistent(pattern: int) -> bool:
        return all(
            ((pattern >> input_pos[net]) & 1) == int(value)
            for net, value in pin.items()
        )

    candidate_patterns = [
        p for p in range(1 << num_inputs) if consistent(p)
    ]
    # Oracle inputs may be ordered differently from the locked view;
    # remap each packed pattern onto the oracle's own bit order.
    oracle_pos = {net: j for j, net in enumerate(oracle.input_names)}
    remap = [oracle_pos[net] for net in locked.original_inputs]
    golden = oracle.query_batch(
        [
            sum(
                1 << remap[j]
                for j in range(num_inputs)
                if (p >> j) & 1
            )
            for p in candidate_patterns
        ]
    )
    output_order = oracle.output_names

    good_keys = []
    lanes: list[int] | None = None
    for key in range(1 << locked.key_size):
        keyed = locked.apply_key(key)
        tables = truth_table(keyed)
        if lanes is None:
            # keyed.inputs is identical for every key (the original
            # inputs in locked-netlist order), so the pattern -> lane
            # mapping is computed once and reused.
            pos = {net: j for j, net in enumerate(keyed.inputs)}
            shift = [pos[net] for net in locked.original_inputs]
            lanes = [
                sum(1 << shift[j] for j in range(num_inputs) if (p >> j) & 1)
                for p in candidate_patterns
            ]
        ok = True
        for idx, lane in enumerate(lanes):
            packed = golden[idx]
            if any(
                ((tables[out] >> lane) & 1) != ((packed >> k) & 1)
                for k, out in enumerate(output_order)
            ):
                ok = False
                break
        if ok:
            good_keys.append(key)
    return BruteForceResult(
        keys=good_keys,
        elapsed_seconds=time.perf_counter() - start,
        oracle_queries=oracle.query_count - queries_before,
        key_order=list(locked.key_inputs),
        pinned=pin,
    )


def brute_force_keys(
    locked: LockedCircuit,
    oracle: Oracle,
    pin: Mapping[str, bool] | None = None,
) -> list[int]:
    """The bare key list of :func:`brute_force_attack` (compat shim)."""
    return brute_force_attack(locked, oracle, pin=pin).keys
