"""Exhaustive key search, for cross-validating the SAT attack on
small instances (and for enumerating *all* functionally correct keys,
which the SAT attack does not do)."""

from __future__ import annotations

from collections.abc import Mapping

from repro.circuit.simulator import truth_table
from repro.locking.base import LockedCircuit
from repro.oracle.oracle import Oracle


def brute_force_keys(
    locked: LockedCircuit,
    oracle: Oracle,
    pin: Mapping[str, bool] | None = None,
) -> list[int]:
    """All keys matching the oracle on every input consistent with ``pin``.

    Exhaustive over both the key space and the input space; only
    sensible when ``|I| + |K|`` is small (~20 bits).  The golden
    responses come from ONE bit-parallel :meth:`Oracle.query_batch`
    sweep (still counted as one query per pattern); each candidate key
    is checked against a compiled truth table of the keyed circuit.
    """
    num_inputs = len(locked.original_inputs)
    if num_inputs + locked.key_size > 22:
        raise ValueError("brute force limited to ~22 total input+key bits")
    pin = dict(pin or {})
    input_pos = {net: j for j, net in enumerate(locked.original_inputs)}
    for net in pin:
        if net not in input_pos:
            raise ValueError(f"pinned net {net!r} is not an original input")

    def consistent(pattern: int) -> bool:
        return all(
            ((pattern >> input_pos[net]) & 1) == int(value)
            for net, value in pin.items()
        )

    candidate_patterns = [
        p for p in range(1 << num_inputs) if consistent(p)
    ]
    # Oracle inputs may be ordered differently from the locked view;
    # remap each packed pattern onto the oracle's own bit order.
    oracle_pos = {net: j for j, net in enumerate(oracle.input_names)}
    remap = [oracle_pos[net] for net in locked.original_inputs]
    golden = oracle.query_batch(
        [
            sum(
                1 << remap[j]
                for j in range(num_inputs)
                if (p >> j) & 1
            )
            for p in candidate_patterns
        ]
    )
    output_order = oracle.output_names

    good_keys = []
    lanes: list[int] | None = None
    for key in range(1 << locked.key_size):
        keyed = locked.apply_key(key)
        tables = truth_table(keyed)
        if lanes is None:
            # keyed.inputs is identical for every key (the original
            # inputs in locked-netlist order), so the pattern -> lane
            # mapping is computed once and reused.
            pos = {net: j for j, net in enumerate(keyed.inputs)}
            shift = [pos[net] for net in locked.original_inputs]
            lanes = [
                sum(1 << shift[j] for j in range(num_inputs) if (p >> j) & 1)
                for p in candidate_patterns
            ]
        ok = True
        for idx, lane in enumerate(lanes):
            packed = golden[idx]
            if any(
                ((tables[out] >> lane) & 1) != ((packed >> k) & 1)
                for k, out in enumerate(output_order)
            ):
                ok = False
                break
        if ok:
            good_keys.append(key)
    return good_keys
