"""Exhaustive key search, for cross-validating the SAT attack on
small instances (and for enumerating *all* functionally correct keys,
which the SAT attack does not do)."""

from __future__ import annotations

from collections.abc import Mapping

from repro.circuit.simulator import truth_table
from repro.locking.base import LockedCircuit
from repro.oracle.oracle import Oracle


def brute_force_keys(
    locked: LockedCircuit,
    oracle: Oracle,
    pin: Mapping[str, bool] | None = None,
) -> list[int]:
    """All keys matching the oracle on every input consistent with ``pin``.

    Exhaustive over both the key space and the input space; only
    sensible when ``|I| + |K|`` is small (~20 bits).
    """
    num_inputs = len(locked.original_inputs)
    if num_inputs + locked.key_size > 22:
        raise ValueError("brute force limited to ~22 total input+key bits")
    pin = dict(pin or {})
    input_pos = {net: j for j, net in enumerate(locked.original_inputs)}

    def consistent(pattern: int) -> bool:
        return all(
            ((pattern >> input_pos[net]) & 1) == int(value)
            for net, value in pin.items()
        )

    candidate_patterns = [
        p for p in range(1 << num_inputs) if consistent(p)
    ]
    golden = {
        p: oracle.query(
            {net: (p >> j) & 1 for j, net in enumerate(locked.original_inputs)}
        )
        for p in candidate_patterns
    }

    good_keys = []
    for key in range(1 << locked.key_size):
        keyed = locked.apply_key(key)
        tables = truth_table(keyed)
        pos = {net: j for j, net in enumerate(keyed.inputs)}
        ok = True
        for p in candidate_patterns:
            lane = 0
            for net, j in input_pos.items():
                if (p >> j) & 1:
                    lane |= 1 << pos[net]
            if any(
                ((tables[out] >> lane) & 1) != golden[p][out]
                for out in keyed.outputs
            ):
                ok = False
                break
        if ok:
            good_keys.append(key)
    return good_keys
