"""The oracle-guided SAT attack [5], used as the paper's baseline.

The attack builds a *miter*: two copies of the locked circuit share
their primary inputs but carry independent key vectors, and a guarded
clause asserts that some output pair differs.  Each satisfying
assignment yields a Distinguishing Input Pattern (DIP); querying the
oracle on the DIP and constraining both key vectors to reproduce the
observed response eliminates at least one wrong key equivalence class.
When the miter becomes UNSAT, any key consistent with the recorded
I/O pairs is functionally correct on the whole (possibly pinned) input
space.

This module reproduces the "Baseline [5]" column of the paper's
Table 2 and the ``N = 0`` row of Table 1; :mod:`repro.core.multikey`
invokes it once per sub-space for the multi-key attack itself.

The implementation is split into two reusable pieces:

* :func:`build_miter_encoding` encodes the locked circuit's miter once
  into an incremental solver and returns a :class:`MiterEncoding`
  handle (slot-indexed solver variables, key halves, activation
  literal).
* :func:`run_dip_loop` drives the DIP refinement loop against a
  pre-built encoding.  Sub-space restrictions arrive either as unit
  clauses (``pin`` — permanent, the classic single-attack form) or as
  per-call *assumptions* plus a *guard* literal for the learned I/O
  constraints — which is how :mod:`repro.core.sharded` runs ``2^N``
  sub-space shards against one warm solver without re-encoding.

Implementation notes (all standard, all load-bearing for speed):

* The locked netlist is compiled once (``netlist.compile()``); the DIP
  loop works entirely on integer slots — solver variables live in
  slot-indexed arrays, and the per-DIP simulation is one sweep over
  the compiled gate program.
* Only the *key-controlled* cone is duplicated; the key-independent
  majority of the circuit is encoded once and shared by both halves.
* Per-DIP constraint copies are built from a single-pattern simulation:
  nets outside the key cone are substituted as constants, so each DIP
  adds only O(cone) clauses.
* One incremental solver carries learned clauses across iterations;
  the miter assertion hangs off an activation literal so the final
  key-extraction call can drop it.
* Input pins (the multi-key attack's sub-space condition) are plain
  unit clauses, and DIPs then automatically respect the pinned bits.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from collections.abc import Mapping, Sequence

from repro.circuit.cnf import encode_gate
from repro.circuit.compiled import CompiledCircuit
from repro.circuit.gates import GateType
from repro.circuit.opt import resolve_opt
from repro.circuit.simulator import random_stimuli_words
from repro.locking.base import LockedCircuit, key_to_int
from repro.oracle.oracle import Oracle
from repro.sat.registry import create_solver, resolve_solver_name
from repro.sat.solver import Solver


@dataclass
class AttackIteration:
    """One DIP-loop iteration, for per-iteration runtime reporting."""

    dip: dict[str, int]
    elapsed_seconds: float
    conflicts: int


@dataclass
class SatAttackResult:
    """Outcome of a (possibly pinned) SAT attack.

    Attributes:
        key: The recovered key (``None`` on a budget stop without
            ``extract_on_budget``).
        num_dips: DIP iterations executed.
        elapsed_seconds: Wall-clock time of this attack/shard.
        status: ``"ok"`` | ``"timeout"`` | ``"dip_limit"``.
        oracle_queries: Oracle queries *this attack* issued (a delta,
            so a shared oracle reports per-shard counts correctly).
        pinned: The sub-space restriction the attack ran under.
        iterations: Per-DIP timing when ``record_iterations`` was set.
        solver_stats: Solver counter deltas for this attack (see
            :meth:`repro.sat.solver.SolverStats.as_dict`).
        key_order: Key port names, fixing the bit order of
            :attr:`key_bits` / :attr:`key_int`.
        encode_stats: Structural facts about the miter encoding this
            attack ran on (opt level, gate counts pre/post
            optimization, solver variable/clause counts) — see
            :func:`build_miter_encoding`.  Empty when the caller drove
            :func:`run_dip_loop` directly.
    """

    key: dict[str, bool] | None
    num_dips: int
    elapsed_seconds: float
    status: str  # "ok" | "timeout" | "dip_limit"
    oracle_queries: int
    pinned: dict[str, bool] = field(default_factory=dict)
    iterations: list[AttackIteration] = field(default_factory=list)
    solver_stats: dict[str, int] = field(default_factory=dict)
    key_order: list[str] = field(default_factory=list)
    encode_stats: dict = field(default_factory=dict)

    @property
    def succeeded(self) -> bool:
        """True when the loop ran to completion and produced a key."""
        return self.status == "ok" and self.key is not None

    @property
    def key_bits(self) -> tuple[int, ...] | None:
        """Key as a bit tuple in :attr:`key_order` (None without a key)."""
        if self.key is None:
            return None
        return tuple(int(self.key[net]) for net in self.key_order)

    @property
    def key_int(self) -> int | None:
        """Key packed as an integer (bit ``j`` = key port ``j``)."""
        bits = self.key_bits
        return None if bits is None else key_to_int(bits)


@dataclass
class MiterEncoding:
    """A locked circuit's miter, encoded once into an incremental solver.

    Built by :func:`build_miter_encoding`; consumed by
    :func:`run_dip_loop` (possibly many times, with different
    assumptions — that reuse is the sharded engine's whole point).

    Attributes:
        solver: The incremental CDCL solver holding the encoding.
        compiled: The compiled locked circuit the encoding came from.
        key_inputs: Key port names (the locked circuit's key order).
        input_vars: Primary-input net -> solver variable (key ports
            excluded; both miter halves share these).
        key1 / key2: Slot-indexed variables of the two key vectors.
        cone_idx: Indices of key-controlled gates in compiled order.
        controlled_pos: ``(name, slot)`` of key-controlled outputs.
        act: Activation literal for the miter difference clause;
            assume ``act`` while searching DIPs, ``-act`` to extract.
        true_var: Anchor variable fixed to true (constant substitution).
        base_vars: Variable count right after base encoding — the
            soundness ceiling for :meth:`Solver.export_learnts`.
        solver_name: Registry name of the backend holding the encoding
            (``"custom"`` when the caller passed an instance of an
            unregistered type).
        opt: Resolved optimization level the circuit was encoded at
            (see :mod:`repro.circuit.opt`); ``compiled`` is the
            *optimized* circuit when this is not ``"off"``.
        gates_before / gates_after: Structural gate count of the locked
            circuit before and after optimization (equal when
            ``opt="off"``).
        base_clauses: Clause count right after base encoding; together
            with :attr:`base_vars` this is the encoded size every
            backend sees (compare across opt levels for the reduction).
    """

    solver: Solver
    compiled: CompiledCircuit
    key_inputs: list[str]
    input_vars: dict[str, int]
    key1: list[int]
    key2: list[int]
    cone_idx: list[int]
    controlled_pos: list[tuple[str, int]]
    act: int
    true_var: int
    base_vars: int
    solver_name: str = "python"
    opt: str = "off"
    gates_before: int = 0
    gates_after: int = 0
    base_clauses: int = 0

    def encode_stats(self) -> dict:
        """JSON-ready pre/post structural summary of this encoding."""
        return {
            "opt": self.opt,
            "gates_before": self.gates_before,
            "gates_after": self.gates_after,
            "vars": self.base_vars,
            "clauses": self.base_clauses,
        }


def build_miter_encoding(
    locked: LockedCircuit,
    solver: Solver | str | None = None,
    opt: str | None = None,
) -> MiterEncoding:
    """Encode ``locked``'s key-comparison miter into ``solver`` once.

    Args:
        locked: The reverse-engineered locked netlist with key ports.
        solver: Backend to encode into — a registered backend *name*
            (see :mod:`repro.sat.registry`), a solver instance, or
            ``None`` for the process default backend.
        opt: Structural-optimization level (:mod:`repro.circuit.opt`);
            ``None`` follows the process default.  The locked circuit —
            key cone included — is optimized *once*, before the cone
            split, so the shared half, both duplicated halves and every
            per-DIP constraint copy are built from the smaller circuit
            and every backend sees fewer variables and clauses.

    Returns a :class:`MiterEncoding` whose variable numbering is a
    deterministic function of the (optimized) compiled circuit — two
    processes encoding the same circuit at the same opt level agree on
    every variable id, which is what makes cross-process learned-clause
    import sound.
    """
    netlist = locked.netlist
    compiled = netlist.compile()
    gates_before = compiled.num_gates
    level = resolve_opt(opt)
    if level != "off":
        compiled = compiled.optimized(level).compiled
    slot_of = compiled.slot_of
    num_slots = compiled.num_slots
    key_set = set(locked.key_inputs)

    key_slots = [slot_of[net] for net in locked.key_inputs]
    controlled = compiled.tainted_slots(key_slots)
    gate_types = compiled.gate_types
    gate_out = compiled.gate_output_slots
    gate_fanins = compiled.gate_fanin_slots
    shared_idx = [i for i, out in enumerate(gate_out) if not controlled[out]]
    cone_idx = [i for i, out in enumerate(gate_out) if controlled[out]]

    if solver is None or isinstance(solver, str):
        solver_name = resolve_solver_name(solver)
        solver = create_solver(solver_name)
    else:
        solver_name = getattr(solver, "backend_name", "custom")
    # Slot-indexed solver variables (0 = no variable for that slot).
    shared_vars = [0] * num_slots
    input_vars: dict[str, int] = {}
    for name in compiled.inputs:
        if name in key_set:
            continue
        var = solver.new_var()
        shared_vars[slot_of[name]] = var
        input_vars[name] = var
    key1 = [0] * num_slots
    key2 = [0] * num_slots
    for s in key_slots:
        key1[s] = solver.new_var()
    for s in key_slots:
        key2[s] = solver.new_var()

    # Key-independent logic, encoded once and shared by both halves.
    # (Untainted gates cannot read a key slot, so every fanin already
    # has a shared variable by topological order.)
    for i in shared_idx:
        out = solver.new_var()
        shared_vars[gate_out[i]] = out
        encode_gate(
            solver, gate_types[i], out, [shared_vars[s] for s in gate_fanins[i]]
        )

    def encode_cone(key_vars: list[int]) -> list[int]:
        half = [0] * num_slots
        for i in cone_idx:
            ins = []
            for s in gate_fanins[i]:
                var = half[s] or key_vars[s] or shared_vars[s]
                ins.append(var)
            out = solver.new_var()
            encode_gate(solver, gate_types[i], out, ins)
            half[gate_out[i]] = out
        return half

    half1 = encode_cone(key1)
    half2 = encode_cone(key2)

    # Miter over key-controlled outputs only; key-independent outputs
    # cannot differ between the halves.
    act = solver.new_var()
    diff_vars = []
    controlled_pos: list[tuple[str, int]] = []
    for po, po_slot in zip(compiled.outputs, compiled.output_slots):
        if not controlled[po_slot]:
            continue
        controlled_pos.append((po, po_slot))
        va, vb = half1[po_slot], half2[po_slot]
        diff = solver.new_var()
        solver.add_clauses(
            [[-diff, va, vb], [-diff, -va, -vb], [diff, -va, vb], [diff, va, -vb]]
        )
        diff_vars.append(diff)
    solver.add_clause([-act] + diff_vars)

    # Anchor variable for substituting simulated constants per DIP.
    true_var = solver.new_var()
    solver.add_clause([true_var])

    return MiterEncoding(
        solver=solver,
        compiled=compiled,
        key_inputs=list(locked.key_inputs),
        input_vars=input_vars,
        key1=key1,
        key2=key2,
        cone_idx=cone_idx,
        controlled_pos=controlled_pos,
        act=act,
        true_var=true_var,
        base_vars=solver.num_vars,
        solver_name=solver_name,
        opt=level,
        gates_before=gates_before,
        gates_after=compiled.num_gates,
        base_clauses=solver.num_clauses,
    )


def _encode_copy_gate(
    solver: Solver, gtype: GateType, ins: list[int], true_var: int
) -> int:
    """Encode one gate of a per-DIP constraint copy, folding constants.

    ``ins`` are DIMACS literals where ``±true_var`` plays constant
    true/false.  Gates whose output is forced by constant inputs fold
    to a constant literal, single-survivor gates alias their input —
    only genuinely key-dependent gates allocate a variable and clauses.
    On SARLock/LUT cones this collapses most of each copy (comparator
    XNORs against pinned bits become key literals, MUX trees with
    constant selects become wires), which keeps the per-DIP clause
    cost proportional to the *live* cone, not the structural one.
    """
    TRUE, FALSE = true_var, -true_var

    def is_const(lit: int) -> bool:
        return lit == TRUE or lit == FALSE

    if gtype is GateType.CONST0:
        return FALSE
    if gtype is GateType.CONST1:
        return TRUE
    if gtype is GateType.BUF:
        return ins[0]
    if gtype is GateType.NOT:
        return -ins[0]
    if gtype is GateType.MUX:
        sel, d1, d0 = ins
        if sel == TRUE:
            return d1
        if sel == FALSE:
            return d0
        if d1 == d0:
            return d1
    if gtype in (GateType.AND, GateType.NAND, GateType.OR, GateType.NOR):
        conjunctive = gtype in (GateType.AND, GateType.NAND)
        inverted = gtype in (GateType.NAND, GateType.NOR)
        killer = FALSE if conjunctive else TRUE  # absorbing constant
        live = []
        for lit in ins:
            if lit == killer:
                return -killer if inverted else killer
            if not is_const(lit):
                live.append(lit)
        if not live:  # every input was the identity constant
            return killer if inverted else -killer
        if len(live) == 1:
            return -live[0] if inverted else live[0]
        ins = live
        gtype = GateType.AND if conjunctive else GateType.OR
        out = solver.new_var()
        encode_gate(solver, gtype, out, ins)
        return -out if inverted else out
    if gtype in (GateType.XOR, GateType.XNOR):
        parity = gtype is GateType.XNOR
        live = []
        for lit in ins:
            if lit == TRUE:
                parity = not parity
            elif lit == FALSE:
                pass
            else:
                live.append(lit)
        if not live:
            return TRUE if parity else FALSE
        if len(live) == 1:
            return -live[0] if parity else live[0]
        out = solver.new_var()
        encode_gate(solver, GateType.XNOR if parity else GateType.XOR, out, live)
        return out
    out = solver.new_var()
    encode_gate(solver, gtype, out, ins)
    return out


def run_dip_loop(
    enc: MiterEncoding,
    oracle: Oracle,
    pin: Mapping[str, bool] | None = None,
    assume: Sequence[int] = (),
    guard: int | None = None,
    time_limit: float | None = None,
    max_dips: int | None = None,
    record_iterations: bool = True,
    extract_on_budget: bool = False,
    start: float | None = None,
) -> SatAttackResult:
    """Drive the DIP refinement loop against a pre-built miter encoding.

    Args:
        enc: Encoding from :func:`build_miter_encoding`.  May carry
            state from earlier calls — learned clauses are an asset,
            and guarded constraints from other sub-spaces are inert.
        oracle: Black-box access to the original function.
        pin: The sub-space restriction, for reporting and for the
            per-DIP simulation.  The *solver-side* restriction must be
            supplied separately: either unit clauses added by the
            caller (classic :func:`sat_attack`) or ``assume`` literals.
        assume: Extra assumption literals applied to every solver call
            (the sharded engine pins splitting inputs here).
        guard: When set, every learned I/O constraint is guarded by
            this literal (clauses get ``-guard``) and ``guard`` joins
            the assumptions — so constraints from this sub-space do not
            leak into other shards sharing the solver.
        time_limit: Wall-clock budget in seconds (None = unlimited).
        max_dips: Iteration cap (None = unlimited).
        record_iterations: Keep per-DIP timing (cheap; disable for
            massive sweeps).
        extract_on_budget: When a budget stops the DIP loop early,
            still extract a key consistent with the DIPs seen so far
            (an *approximate* key — AppSAT builds on this).
        start: Clock origin for ``elapsed_seconds``/``time_limit``
            (defaults to now; :func:`sat_attack` passes its own start
            so encoding time counts against the budget).

    Returns the recovered key — correct on every input consistent with
    the sub-space restriction — plus per-call statistics (oracle
    queries and solver counters are deltas, so shared oracles/solvers
    report per-shard numbers).
    """
    if start is None:
        start = time.perf_counter()
    pin = dict(pin or {})
    solver = enc.solver
    compiled = enc.compiled
    num_slots = compiled.num_slots
    input_vars = enc.input_vars
    cone_idx = enc.cone_idx
    controlled_pos = enc.controlled_pos
    gate_types = compiled.gate_types
    gate_out = compiled.gate_output_slots
    gate_fanins = compiled.gate_fanin_slots
    true_var = enc.true_var
    input_names = compiled.inputs

    base_assume = list(assume)
    if guard is not None:
        base_assume.append(guard)
    stats_before = solver.stats.as_dict()
    queries_before = oracle.query_count

    iterations: list[AttackIteration] = []
    num_dips = 0
    status = "ok"

    while True:
        if time_limit is not None and time.perf_counter() - start > time_limit:
            status = "timeout"
            break
        if max_dips is not None and num_dips >= max_dips:
            status = "dip_limit"
            break
        iter_start = time.perf_counter()
        conflicts_before = solver.stats.conflicts
        if not solver.solve(assumptions=[enc.act] + base_assume):
            break  # no DIP left: key space is functionally collapsed

        dip = {
            net: int(solver.model_value(var) or 0)
            for net, var in input_vars.items()
        }
        response = oracle.query(dip)
        num_dips += 1

        # Values of all key-independent slots under this DIP (key = 0).
        words = [dip.get(name, 0) for name in input_names]
        values = compiled.eval_words(words, 1)

        for key_vars in (enc.key1, enc.key2):
            copy_lits = [0] * num_slots
            for i in cone_idx:
                ins = []
                for s in gate_fanins[i]:
                    lit = copy_lits[s] or key_vars[s]
                    if lit:
                        ins.append(lit)
                    else:  # key-independent: substitute the simulated constant
                        ins.append(true_var if values[s] else -true_var)
                copy_lits[gate_out[i]] = _encode_copy_gate(
                    solver, gate_types[i], ins, true_var
                )
            for po, po_slot in controlled_pos:
                out = copy_lits[po_slot]
                lit = out if response[po] else -out
                if guard is None:
                    solver.add_clause([lit])
                else:
                    solver.add_clause([-guard, lit])

        if record_iterations:
            iterations.append(
                AttackIteration(
                    dip=dip,
                    elapsed_seconds=time.perf_counter() - iter_start,
                    conflicts=solver.stats.conflicts - conflicts_before,
                )
            )

    key: dict[str, bool] | None = None
    if status == "ok" or extract_on_budget:
        # Any key satisfying the accumulated I/O constraints works
        # (and is exact when the DIP loop ran to completion).
        if solver.solve(assumptions=[-enc.act] + base_assume):
            slot_of = compiled.slot_of
            key = {
                net: bool(solver.model_value(enc.key1[slot_of[net]]))
                for net in enc.key_inputs
            }
        elif status == "ok":  # pragma: no cover - k* satisfies everything
            status = "no_key"

    stats_after = solver.stats.as_dict()
    delta = {
        name: stats_after[name] - stats_before[name] for name in stats_after
    }
    # The decision-level high-water mark is not a counter; report the
    # absolute maximum observed so far instead of a meaningless delta.
    delta["max_decision_level"] = stats_after["max_decision_level"]

    return SatAttackResult(
        key=key,
        num_dips=num_dips,
        elapsed_seconds=time.perf_counter() - start,
        status=status,
        oracle_queries=oracle.query_count - queries_before,
        pinned=pin,
        iterations=iterations,
        solver_stats=delta,
        key_order=list(enc.key_inputs),
    )


def sat_attack(
    locked: LockedCircuit,
    oracle: Oracle,
    pin: Mapping[str, bool] | None = None,
    time_limit: float | None = None,
    max_dips: int | None = None,
    record_iterations: bool = True,
    extract_on_budget: bool = False,
    solver: Solver | str | None = None,
    opt: str | None = None,
) -> SatAttackResult:
    """Run the SAT attack on ``locked`` against ``oracle``.

    Args:
        locked: The reverse-engineered locked netlist with key ports.
        oracle: Black-box access to the original function.
        pin: Optional constants on primary inputs — this restricts the
            attack to a sub-space and is exactly how the multi-key
            attack invokes it (Algorithm 1, line 5).
        time_limit: Wall-clock budget in seconds (None = unlimited).
        max_dips: Iteration cap (None = unlimited).
        record_iterations: Keep per-DIP timing (cheap; disable for
            massive sweeps).
        extract_on_budget: When a budget stops the DIP loop early,
            still extract a key consistent with the DIPs seen so far
            (an *approximate* key — AppSAT builds on this).
        solver: Backend name/instance (see :func:`build_miter_encoding`).
        opt: Structural-optimization level for the miter encoding
            (see :func:`build_miter_encoding`; ``None`` = process
            default).

    Returns the recovered key — correct on every input consistent with
    ``pin`` — plus run statistics.
    """
    start = time.perf_counter()
    pin = dict(pin or {})
    key_set = set(locked.key_inputs)
    for net in pin:
        if net not in locked.netlist.inputs or net in key_set:
            raise ValueError(f"pinned net {net!r} is not a primary input")

    enc = build_miter_encoding(locked, solver=solver, opt=opt)
    for net, value in pin.items():
        var = enc.input_vars[net]
        enc.solver.add_clause([var if value else -var])
    if pin and hasattr(enc.solver, "simplify"):
        # Constant-propagate the pins through the shared logic before
        # the DIP loop: the reference multi-key arm pays for pinned
        # clauses on every conflict otherwise.
        enc.solver.simplify()

    result = run_dip_loop(
        enc,
        oracle,
        pin=pin,
        time_limit=time_limit,
        max_dips=max_dips,
        record_iterations=record_iterations,
        extract_on_budget=extract_on_budget,
        start=start,
    )
    result.encode_stats = enc.encode_stats()
    return result


def verify_key_against_oracle(
    locked: LockedCircuit,
    key: Mapping[str, bool] | int,
    oracle: Oracle,
    num_samples: int = 64,
    seed: int = 0,
    pin: Mapping[str, bool] | None = None,
    lanes: str | None = None,
) -> bool:
    """Attacker-side sanity check: keyed circuit vs oracle on random inputs.

    The attacker has no golden netlist, so full CEC is impossible for
    them; random differential testing against the oracle is the
    realistic check.  ``pin`` restricts sampled patterns to a sub-space.
    All ``num_samples`` patterns run as ONE bit-parallel sweep on each
    side (the oracle still counts ``num_samples`` queries); ``lanes``
    picks the attacker-side evaluation backend (the oracle side uses
    its own lever) without affecting the RNG stream or the result.
    """
    import random

    if num_samples < 1:
        return True
    rng = random.Random(seed)
    keyed = locked.apply_key(key)
    compiled = keyed.compile()
    stimuli = random_stimuli_words(compiled.inputs, num_samples, rng, pin)
    words = [stimuli[net] for net in compiled.inputs]
    got = dict(
        zip(
            compiled.outputs,
            compiled.eval_outputs_wide(words, num_samples, lanes=lanes),
        )
    )
    expected = oracle.query_vector(stimuli, num_samples)
    return all(got[po] == expected[po] for po in expected)
