"""The oracle-guided SAT attack [5], used as the paper's baseline.

The attack builds a *miter*: two copies of the locked circuit share
their primary inputs but carry independent key vectors, and a guarded
clause asserts that some output pair differs.  Each satisfying
assignment yields a Distinguishing Input Pattern (DIP); querying the
oracle on the DIP and constraining both key vectors to reproduce the
observed response eliminates at least one wrong key equivalence class.
When the miter becomes UNSAT, any key consistent with the recorded
I/O pairs is functionally correct on the whole (possibly pinned) input
space.

Implementation notes (all standard, all load-bearing for speed):

* The locked netlist is compiled once (``netlist.compile()``); the DIP
  loop works entirely on integer slots — solver variables live in
  slot-indexed arrays, and the per-DIP simulation is one sweep over
  the compiled gate program.
* Only the *key-controlled* cone is duplicated; the key-independent
  majority of the circuit is encoded once and shared by both halves.
* Per-DIP constraint copies are built from a single-pattern simulation:
  nets outside the key cone are substituted as constants, so each DIP
  adds only O(cone) clauses.
* One incremental solver carries learned clauses across iterations;
  the miter assertion hangs off an activation literal so the final
  key-extraction call can drop it.
* Input pins (the multi-key attack's sub-space condition) are plain
  unit clauses, and DIPs then automatically respect the pinned bits.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from collections.abc import Mapping

from repro.circuit.cnf import encode_gate
from repro.circuit.simulator import random_stimuli_words
from repro.locking.base import LockedCircuit, key_to_int
from repro.oracle.oracle import Oracle
from repro.sat.solver import Solver


@dataclass
class AttackIteration:
    """One DIP-loop iteration, for per-iteration runtime reporting."""

    dip: dict[str, int]
    elapsed_seconds: float
    conflicts: int


@dataclass
class SatAttackResult:
    """Outcome of a (possibly pinned) SAT attack."""

    key: dict[str, bool] | None
    num_dips: int
    elapsed_seconds: float
    status: str  # "ok" | "timeout" | "dip_limit"
    oracle_queries: int
    pinned: dict[str, bool] = field(default_factory=dict)
    iterations: list[AttackIteration] = field(default_factory=list)
    solver_stats: dict[str, int] = field(default_factory=dict)
    key_order: list[str] = field(default_factory=list)

    @property
    def succeeded(self) -> bool:
        return self.status == "ok" and self.key is not None

    @property
    def key_bits(self) -> tuple[int, ...] | None:
        if self.key is None:
            return None
        return tuple(int(self.key[net]) for net in self.key_order)

    @property
    def key_int(self) -> int | None:
        bits = self.key_bits
        return None if bits is None else key_to_int(bits)


def sat_attack(
    locked: LockedCircuit,
    oracle: Oracle,
    pin: Mapping[str, bool] | None = None,
    time_limit: float | None = None,
    max_dips: int | None = None,
    record_iterations: bool = True,
    extract_on_budget: bool = False,
) -> SatAttackResult:
    """Run the SAT attack on ``locked`` against ``oracle``.

    Args:
        locked: The reverse-engineered locked netlist with key ports.
        oracle: Black-box access to the original function.
        pin: Optional constants on primary inputs — this restricts the
            attack to a sub-space and is exactly how the multi-key
            attack invokes it (Algorithm 1, line 5).
        time_limit: Wall-clock budget in seconds (None = unlimited).
        max_dips: Iteration cap (None = unlimited).
        record_iterations: Keep per-DIP timing (cheap; disable for
            massive sweeps).
        extract_on_budget: When a budget stops the DIP loop early,
            still extract a key consistent with the DIPs seen so far
            (an *approximate* key — AppSAT builds on this).

    Returns the recovered key — correct on every input consistent with
    ``pin`` — plus run statistics.
    """
    start = time.perf_counter()
    pin = dict(pin or {})
    netlist = locked.netlist
    compiled = netlist.compile()
    slot_of = compiled.slot_of
    num_slots = compiled.num_slots
    key_set = set(locked.key_inputs)
    for net in pin:
        if net not in netlist.inputs or net in key_set:
            raise ValueError(f"pinned net {net!r} is not a primary input")

    key_slots = [slot_of[net] for net in locked.key_inputs]
    controlled = compiled.tainted_slots(key_slots)
    gate_types = compiled.gate_types
    gate_out = compiled.gate_output_slots
    gate_fanins = compiled.gate_fanin_slots
    shared_idx = [i for i, out in enumerate(gate_out) if not controlled[out]]
    cone_idx = [i for i, out in enumerate(gate_out) if controlled[out]]

    solver = Solver()
    # Slot-indexed solver variables (0 = no variable for that slot).
    shared_vars = [0] * num_slots
    input_vars: dict[str, int] = {}
    for name in compiled.inputs:
        if name in key_set:
            continue
        var = solver.new_var()
        shared_vars[slot_of[name]] = var
        input_vars[name] = var
    key1 = [0] * num_slots
    key2 = [0] * num_slots
    for s in key_slots:
        key1[s] = solver.new_var()
    for s in key_slots:
        key2[s] = solver.new_var()

    # Key-independent logic, encoded once and shared by both halves.
    # (Untainted gates cannot read a key slot, so every fanin already
    # has a shared variable by topological order.)
    for i in shared_idx:
        out = solver.new_var()
        shared_vars[gate_out[i]] = out
        encode_gate(
            solver, gate_types[i], out, [shared_vars[s] for s in gate_fanins[i]]
        )

    def encode_cone(key_vars: list[int]) -> list[int]:
        half = [0] * num_slots
        for i in cone_idx:
            ins = []
            for s in gate_fanins[i]:
                var = half[s] or key_vars[s] or shared_vars[s]
                ins.append(var)
            out = solver.new_var()
            encode_gate(solver, gate_types[i], out, ins)
            half[gate_out[i]] = out
        return half

    half1 = encode_cone(key1)
    half2 = encode_cone(key2)

    # Miter over key-controlled outputs only; key-independent outputs
    # cannot differ between the halves.
    act = solver.new_var()
    diff_vars = []
    controlled_pos: list[tuple[str, int]] = []
    for po, po_slot in zip(compiled.outputs, compiled.output_slots):
        if not controlled[po_slot]:
            continue
        controlled_pos.append((po, po_slot))
        va, vb = half1[po_slot], half2[po_slot]
        diff = solver.new_var()
        solver.add_clauses(
            [[-diff, va, vb], [-diff, -va, -vb], [diff, -va, vb], [diff, va, -vb]]
        )
        diff_vars.append(diff)
    solver.add_clause([-act] + diff_vars)

    for net, value in pin.items():
        solver.add_clause([input_vars[net] if value else -input_vars[net]])

    # Anchor variable for substituting simulated constants per DIP.
    true_var = solver.new_var()
    solver.add_clause([true_var])

    input_names = compiled.inputs

    iterations: list[AttackIteration] = []
    num_dips = 0
    status = "ok"

    while True:
        if time_limit is not None and time.perf_counter() - start > time_limit:
            status = "timeout"
            break
        if max_dips is not None and num_dips >= max_dips:
            status = "dip_limit"
            break
        iter_start = time.perf_counter()
        conflicts_before = solver.stats.conflicts
        if not solver.solve(assumptions=[act]):
            break  # no DIP left: key space is functionally collapsed

        dip = {
            net: int(solver.model_value(var) or 0)
            for net, var in input_vars.items()
        }
        response = oracle.query(dip)
        num_dips += 1

        # Values of all key-independent slots under this DIP (key = 0).
        words = [dip.get(name, 0) for name in input_names]
        values = compiled.eval_words(words, 1)

        for key_vars in (key1, key2):
            copy_vars = [0] * num_slots
            for i in cone_idx:
                ins = []
                for s in gate_fanins[i]:
                    var = copy_vars[s] or key_vars[s]
                    if var:
                        ins.append(var)
                    else:  # key-independent: substitute the simulated constant
                        ins.append(true_var if values[s] else -true_var)
                out = solver.new_var()
                encode_gate(solver, gate_types[i], out, ins)
                copy_vars[gate_out[i]] = out
            for po, po_slot in controlled_pos:
                var = copy_vars[po_slot]
                solver.add_clause([var if response[po] else -var])

        if record_iterations:
            iterations.append(
                AttackIteration(
                    dip=dip,
                    elapsed_seconds=time.perf_counter() - iter_start,
                    conflicts=solver.stats.conflicts - conflicts_before,
                )
            )

    key: dict[str, bool] | None = None
    if status == "ok" or extract_on_budget:
        # Any key satisfying the accumulated I/O constraints works
        # (and is exact when the DIP loop ran to completion).
        if solver.solve(assumptions=[-act]):
            key = {
                net: bool(solver.model_value(key1[slot_of[net]]))
                for net in locked.key_inputs
            }
        elif status == "ok":  # pragma: no cover - k* satisfies everything
            status = "no_key"

    return SatAttackResult(
        key=key,
        num_dips=num_dips,
        elapsed_seconds=time.perf_counter() - start,
        status=status,
        oracle_queries=oracle.query_count,
        pinned=pin,
        iterations=iterations,
        solver_stats=solver.stats.as_dict(),
        key_order=list(locked.key_inputs),
    )


def verify_key_against_oracle(
    locked: LockedCircuit,
    key: Mapping[str, bool] | int,
    oracle: Oracle,
    num_samples: int = 64,
    seed: int = 0,
    pin: Mapping[str, bool] | None = None,
) -> bool:
    """Attacker-side sanity check: keyed circuit vs oracle on random inputs.

    The attacker has no golden netlist, so full CEC is impossible for
    them; random differential testing against the oracle is the
    realistic check.  ``pin`` restricts sampled patterns to a sub-space.
    All ``num_samples`` patterns run as ONE bit-parallel sweep on each
    side (the oracle still counts ``num_samples`` queries).
    """
    import random

    if num_samples < 1:
        return True
    rng = random.Random(seed)
    keyed = locked.apply_key(key)
    compiled = keyed.compile()
    stimuli = random_stimuli_words(compiled.inputs, num_samples, rng, pin)
    got = compiled.eval_mapping(stimuli, (1 << num_samples) - 1)
    expected = oracle.query_vector(stimuli, num_samples)
    return all(
        got[compiled.slot_of[po]] == expected[po] for po in expected
    )
