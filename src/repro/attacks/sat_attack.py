"""The oracle-guided SAT attack [5], used as the paper's baseline.

The attack builds a *miter*: two copies of the locked circuit share
their primary inputs but carry independent key vectors, and a guarded
clause asserts that some output pair differs.  Each satisfying
assignment yields a Distinguishing Input Pattern (DIP); querying the
oracle on the DIP and constraining both key vectors to reproduce the
observed response eliminates at least one wrong key equivalence class.
When the miter becomes UNSAT, any key consistent with the recorded
I/O pairs is functionally correct on the whole (possibly pinned) input
space.

Implementation notes (all standard, all load-bearing for speed):

* Only the *key-controlled* cone is duplicated; the key-independent
  majority of the circuit is encoded once and shared by both halves.
* Per-DIP constraint copies are built from a single-pattern simulation:
  nets outside the key cone are substituted as constants, so each DIP
  adds only O(cone) clauses.
* One incremental solver carries learned clauses across iterations;
  the miter assertion hangs off an activation literal so the final
  key-extraction call can drop it.
* Input pins (the multi-key attack's sub-space condition) are plain
  unit clauses, and DIPs then automatically respect the pinned bits.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from collections.abc import Mapping

from repro.circuit.analysis import key_controlled_gates
from repro.circuit.cnf import encode_gate
from repro.circuit.netlist import Gate
from repro.circuit.simulator import simulate
from repro.locking.base import LockedCircuit, key_to_int
from repro.oracle.oracle import Oracle
from repro.sat.solver import Solver


@dataclass
class AttackIteration:
    """One DIP-loop iteration, for per-iteration runtime reporting."""

    dip: dict[str, int]
    elapsed_seconds: float
    conflicts: int


@dataclass
class SatAttackResult:
    """Outcome of a (possibly pinned) SAT attack."""

    key: dict[str, bool] | None
    num_dips: int
    elapsed_seconds: float
    status: str  # "ok" | "timeout" | "dip_limit"
    oracle_queries: int
    pinned: dict[str, bool] = field(default_factory=dict)
    iterations: list[AttackIteration] = field(default_factory=list)
    solver_stats: dict[str, int] = field(default_factory=dict)
    key_order: list[str] = field(default_factory=list)

    @property
    def succeeded(self) -> bool:
        return self.status == "ok" and self.key is not None

    @property
    def key_bits(self) -> tuple[int, ...] | None:
        if self.key is None:
            return None
        return tuple(int(self.key[net]) for net in self.key_order)

    @property
    def key_int(self) -> int | None:
        bits = self.key_bits
        return None if bits is None else key_to_int(bits)


def sat_attack(
    locked: LockedCircuit,
    oracle: Oracle,
    pin: Mapping[str, bool] | None = None,
    time_limit: float | None = None,
    max_dips: int | None = None,
    record_iterations: bool = True,
    extract_on_budget: bool = False,
) -> SatAttackResult:
    """Run the SAT attack on ``locked`` against ``oracle``.

    Args:
        locked: The reverse-engineered locked netlist with key ports.
        oracle: Black-box access to the original function.
        pin: Optional constants on primary inputs — this restricts the
            attack to a sub-space and is exactly how the multi-key
            attack invokes it (Algorithm 1, line 5).
        time_limit: Wall-clock budget in seconds (None = unlimited).
        max_dips: Iteration cap (None = unlimited).
        record_iterations: Keep per-DIP timing (cheap; disable for
            massive sweeps).
        extract_on_budget: When a budget stops the DIP loop early,
            still extract a key consistent with the DIPs seen so far
            (an *approximate* key — AppSAT builds on this).

    Returns the recovered key — correct on every input consistent with
    ``pin`` — plus run statistics.
    """
    start = time.perf_counter()
    pin = dict(pin or {})
    netlist = locked.netlist
    key_set = set(locked.key_inputs)
    for net in pin:
        if net not in netlist.inputs or net in key_set:
            raise ValueError(f"pinned net {net!r} is not a primary input")

    controlled = key_controlled_gates(netlist, locked.key_inputs)
    topo = netlist.topological_order()
    shared_gates = [g for g in topo if g.output not in controlled]
    cone_gates = [g for g in topo if g.output in controlled]

    solver = Solver()
    input_vars = {
        net: solver.new_var() for net in netlist.inputs if net not in key_set
    }
    key1 = {net: solver.new_var() for net in locked.key_inputs}
    key2 = {net: solver.new_var() for net in locked.key_inputs}

    # Key-independent logic, encoded once and shared by both halves.
    shared_vars = dict(input_vars)
    for gate in shared_gates:
        out = solver.new_var()
        shared_vars[gate.output] = out
        encode_gate(
            solver, gate.gtype, out, [_look(shared_vars, key1, src) for src in gate.inputs]
        )

    def encode_cone(key_vars: dict[str, int]) -> dict[str, int]:
        half: dict[str, int] = {}
        for gate in cone_gates:
            out = solver.new_var()
            ins = []
            for src in gate.inputs:
                if src in half:
                    ins.append(half[src])
                elif src in key_vars:
                    ins.append(key_vars[src])
                else:
                    ins.append(shared_vars[src])
            encode_gate(solver, gate.gtype, out, ins)
            half[gate.output] = out
        return half

    half1 = encode_cone(key1)
    half2 = encode_cone(key2)

    # Miter over key-controlled outputs only; key-independent outputs
    # cannot differ between the halves.
    act = solver.new_var()
    diff_vars = []
    for po in netlist.outputs:
        if po not in controlled:
            continue
        va, vb = half1[po], half2[po]
        diff = solver.new_var()
        solver.add_clauses(
            [[-diff, va, vb], [-diff, -va, -vb], [diff, -va, vb], [diff, va, -vb]]
        )
        diff_vars.append(diff)
    solver.add_clause([-act] + diff_vars)

    for net, value in pin.items():
        solver.add_clause([input_vars[net] if value else -input_vars[net]])

    # Anchor variable for substituting simulated constants per DIP.
    true_var = solver.new_var()
    solver.add_clause([true_var])

    zero_key = {net: 0 for net in locked.key_inputs}
    controlled_pos = [po for po in netlist.outputs if po in controlled]

    iterations: list[AttackIteration] = []
    num_dips = 0
    status = "ok"

    while True:
        if time_limit is not None and time.perf_counter() - start > time_limit:
            status = "timeout"
            break
        if max_dips is not None and num_dips >= max_dips:
            status = "dip_limit"
            break
        iter_start = time.perf_counter()
        conflicts_before = solver.stats.conflicts
        if not solver.solve(assumptions=[act]):
            break  # no DIP left: key space is functionally collapsed

        dip = {
            net: int(solver.model_value(var) or 0)
            for net, var in input_vars.items()
        }
        response = oracle.query(dip)
        num_dips += 1

        # Values of all key-independent nets under this DIP.
        values = simulate(netlist, {**dip, **zero_key}, width=1)

        for key_vars in (key1, key2):
            copy_vars: dict[str, int] = {}
            for gate in cone_gates:
                ins = []
                for src in gate.inputs:
                    if src in copy_vars:
                        ins.append(copy_vars[src])
                    elif src in key_vars:
                        ins.append(key_vars[src])
                    else:  # key-independent: substitute the simulated constant
                        ins.append(true_var if values[src] else -true_var)
                out = solver.new_var()
                encode_gate(solver, gate.gtype, out, ins)
                copy_vars[gate.output] = out
            for po in controlled_pos:
                var = copy_vars[po]
                solver.add_clause([var if response[po] else -var])

        if record_iterations:
            iterations.append(
                AttackIteration(
                    dip=dip,
                    elapsed_seconds=time.perf_counter() - iter_start,
                    conflicts=solver.stats.conflicts - conflicts_before,
                )
            )

    key: dict[str, bool] | None = None
    if status == "ok" or extract_on_budget:
        # Any key satisfying the accumulated I/O constraints works
        # (and is exact when the DIP loop ran to completion).
        if solver.solve(assumptions=[-act]):
            key = {
                net: bool(solver.model_value(var))
                for net, var in key1.items()
            }
        elif status == "ok":  # pragma: no cover - k* satisfies everything
            status = "no_key"

    return SatAttackResult(
        key=key,
        num_dips=num_dips,
        elapsed_seconds=time.perf_counter() - start,
        status=status,
        oracle_queries=oracle.query_count,
        pinned=pin,
        iterations=iterations,
        solver_stats=solver.stats.as_dict(),
        key_order=list(locked.key_inputs),
    )


def _look(shared: dict[str, int], keys: dict[str, int], net: str) -> int:
    """Variable of a net feeding the shared region (never key-driven)."""
    var = shared.get(net)
    if var is None:
        raise KeyError(
            f"net {net!r} feeds key-independent logic but is not shared "
            "(is a key input wired outside its cone?)"
        )
    return var


def verify_key_against_oracle(
    locked: LockedCircuit,
    key: Mapping[str, bool] | int,
    oracle: Oracle,
    num_samples: int = 64,
    seed: int = 0,
    pin: Mapping[str, bool] | None = None,
) -> bool:
    """Attacker-side sanity check: keyed circuit vs oracle on random inputs.

    The attacker has no golden netlist, so full CEC is impossible for
    them; random differential testing against the oracle is the
    realistic check.  ``pin`` restricts sampled patterns to a sub-space.
    """
    import random

    rng = random.Random(seed)
    keyed = locked.apply_key(key)
    pin = dict(pin or {})
    for _ in range(num_samples):
        pattern = {
            net: pin.get(net, rng.getrandbits(1)) for net in keyed.inputs
        }
        got = {po: v for po, v in simulate(keyed, pattern).items()}
        expected = oracle.query(pattern)
        if any(got[po] != expected[po] for po in expected):
            return False
    return True
