"""Oracle-guided attacks on logic locking.

:mod:`repro.attacks.sat_attack` is the classic SAT attack
[Subramanyan et al., HOST'15] — the ``N = 0`` baseline of the paper's
tables.  :mod:`repro.attacks.appsat` is the approximate variant,
:mod:`repro.attacks.brute_force` enumerates the key space for
cross-validation on small instances.

:mod:`repro.attacks.registry` unifies them behind one calling
convention (:class:`~repro.attacks.registry.Attack`) and one result
shape (:class:`~repro.attacks.registry.AttackOutcome`), so any
registered attack can serve as the per-sub-space strategy of the
multi-key attack and as an axis of the scenario matrix.
"""

from repro.attacks.appsat import AppSatResult, appsat_attack
from repro.attacks.brute_force import (
    BruteForceResult,
    brute_force_attack,
    brute_force_keys,
)
from repro.attacks.registry import (
    SUCCESS_STATUSES,
    Attack,
    AttackInfo,
    AttackOutcome,
    attack_info,
    register_attack,
    registered_attacks,
    run_attack,
)
from repro.attacks.sat_attack import (
    AttackIteration,
    SatAttackResult,
    sat_attack,
    verify_key_against_oracle,
)

__all__ = [
    "sat_attack",
    "SatAttackResult",
    "AttackIteration",
    "verify_key_against_oracle",
    "brute_force_keys",
    "brute_force_attack",
    "BruteForceResult",
    "appsat_attack",
    "AppSatResult",
    "Attack",
    "AttackInfo",
    "AttackOutcome",
    "SUCCESS_STATUSES",
    "attack_info",
    "register_attack",
    "registered_attacks",
    "run_attack",
]
