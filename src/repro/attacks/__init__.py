"""Oracle-guided attacks on logic locking.

:mod:`repro.attacks.sat_attack` is the classic SAT attack
[Subramanyan et al., HOST'15] — the ``N = 0`` baseline of the paper's
tables.  :mod:`repro.attacks.brute_force` enumerates the key space for
cross-validation on small instances.
"""

from repro.attacks.appsat import AppSatResult, appsat_attack
from repro.attacks.brute_force import brute_force_keys
from repro.attacks.sat_attack import (
    AttackIteration,
    SatAttackResult,
    sat_attack,
    verify_key_against_oracle,
)

__all__ = [
    "sat_attack",
    "SatAttackResult",
    "AttackIteration",
    "verify_key_against_oracle",
    "brute_force_keys",
    "appsat_attack",
    "AppSatResult",
]
