"""AppSAT-style approximate SAT attack (Shamsi et al., HOST'17).

The exact SAT attack must eliminate *every* wrong key — which is what
point-function schemes like SARLock weaponize.  AppSAT instead settles
for an *approximately* correct key: it interleaves DIP iterations with
random differential queries and stops once the candidate key's
empirical error rate stays below a threshold for several consecutive
checkpoints.

Included here because it is the other classic answer to SAT-resistant
locking and makes a revealing comparison with the paper's multi-key
attack: AppSAT relaxes *correctness* to stay fast, the multi-key
attack keeps exactness but relaxes *key uniqueness*.  The ``pin``
parameter restricts the whole procedure — DIP search *and* the random
error checkpoints — to one input sub-space, which is how
:func:`repro.core.multikey.multikey_attack` runs AppSAT as the
per-sub-space strategy of the multi-key attack.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from collections.abc import Mapping

from repro.attacks.sat_attack import sat_attack
from repro.circuit.simulator import random_stimuli_words
from repro.locking.base import LockedCircuit, key_to_int
from repro.oracle.oracle import Oracle
from repro.rng import make_rng


@dataclass
class AppSatResult:
    """An approximate key plus the evidence it was judged by."""

    key: dict[str, bool] | None
    num_dips: int
    random_queries: int
    elapsed_seconds: float
    status: str  # "settled" | "exact" | "timeout" | "dip_limit"
    estimated_error_rate: float
    checkpoints: list[float] = field(default_factory=list)
    key_order: list[str] = field(default_factory=list)
    pinned: dict[str, bool] = field(default_factory=dict)

    @property
    def key_int(self) -> int | None:
        if self.key is None:
            return None
        return key_to_int([int(self.key[net]) for net in self.key_order])


def appsat_attack(
    locked: LockedCircuit,
    oracle: Oracle,
    dips_per_round: int = 8,
    queries_per_checkpoint: int = 64,
    error_threshold: float = 0.01,
    settle_rounds: int = 2,
    time_limit: float | None = None,
    seed: int = 0,
    pin: Mapping[str, bool] | None = None,
    max_dips: int | None = None,
    solver: str | None = None,
    opt: str | None = None,
) -> AppSatResult:
    """Run the approximate attack.

    Each round runs ``dips_per_round`` exact DIP iterations, then
    extracts the current candidate key and measures its error rate on
    ``queries_per_checkpoint`` random patterns.  If the rate stays at
    or below ``error_threshold`` for ``settle_rounds`` consecutive
    checkpoints, the candidate is accepted.  If the underlying SAT
    attack converges first, the result is exact.

    ``pin`` restricts the attack to one input sub-space: DIPs respect
    the pinned constants and the checkpoint patterns are sampled inside
    the sub-space, so the accepted key is approximately correct *on the
    sub-space* — the multi-key attack's per-sub-space contract.
    ``max_dips`` caps the total DIP budget; when the cap is hit before
    the candidate settles, the best candidate so far is returned with
    status ``"dip_limit"``.  ``opt`` forwards the structural
    optimization level to the underlying exact attack's miter encoding
    (:mod:`repro.circuit.opt`).
    """
    start = time.perf_counter()
    pin = dict(pin or {})
    # make_rng's bare-int passthrough keeps the historical query
    # streams bit-for-bit (see repro.rng's migration contract).
    rng = make_rng(seed)
    checkpoints: list[float] = []
    total_dips = 0
    random_queries = 0
    settled_streak = 0

    # Reuse the exact attack's engine through its budget interface:
    # re-running with a growing DIP cap is equivalent to pausing, since
    # the attack is deterministic given the oracle and netlist.
    rounds = 0
    while True:
        rounds += 1
        budget = dips_per_round * rounds
        if max_dips is not None:
            budget = min(budget, max_dips)
        remaining = (
            None
            if time_limit is None
            else max(0.0, time_limit - (time.perf_counter() - start))
        )
        if remaining is not None and remaining == 0.0:
            return AppSatResult(
                key=None,
                num_dips=total_dips,
                random_queries=random_queries,
                elapsed_seconds=time.perf_counter() - start,
                status="timeout",
                estimated_error_rate=1.0,
                checkpoints=checkpoints,
                key_order=list(locked.key_inputs),
                pinned=pin,
            )
        result = sat_attack(
            locked,
            oracle,
            pin=pin,
            max_dips=budget,
            time_limit=remaining,
            record_iterations=False,
            solver=solver,
            opt=opt,
        )
        total_dips = result.num_dips
        if result.status == "ok":
            return AppSatResult(
                key=result.key,
                num_dips=total_dips,
                random_queries=random_queries,
                elapsed_seconds=time.perf_counter() - start,
                status="exact",
                estimated_error_rate=0.0,
                checkpoints=checkpoints,
                key_order=list(locked.key_inputs),
                pinned=pin,
            )

        # Extract the candidate key consistent with the DIPs so far by
        # re-running with the same budget but asking for key extraction:
        candidate = _candidate_key(
            locked, oracle, budget, pin=pin, solver=solver, opt=opt
        )
        out_of_budget = max_dips is not None and budget >= max_dips
        if candidate is None:
            if out_of_budget:
                return AppSatResult(
                    key=None,
                    num_dips=total_dips,
                    random_queries=random_queries,
                    elapsed_seconds=time.perf_counter() - start,
                    status="dip_limit",
                    estimated_error_rate=1.0,
                    checkpoints=checkpoints,
                    key_order=list(locked.key_inputs),
                    pinned=pin,
                )
            continue
        # One bit-parallel sweep for the whole checkpoint: lane q of
        # every word is random query q; the oracle still counts one
        # query per lane.  Pinned inputs hold their sub-space constant
        # in every lane, so the measured rate is a sub-space rate.
        keyed = locked.apply_key(candidate)
        compiled = keyed.compile()
        stimuli = random_stimuli_words(
            compiled.inputs, queries_per_checkpoint, rng, pin
        )
        got = compiled.eval_mapping(stimuli, (1 << queries_per_checkpoint) - 1)
        expected = oracle.query_vector(stimuli, queries_per_checkpoint)
        random_queries += queries_per_checkpoint
        diff = 0
        for po in expected:
            diff |= got[compiled.slot_of[po]] ^ expected[po]
        errors = bin(diff).count("1")
        rate = errors / queries_per_checkpoint
        checkpoints.append(rate)
        if rate <= error_threshold:
            settled_streak += 1
            if settled_streak >= settle_rounds:
                return AppSatResult(
                    key=candidate,
                    num_dips=total_dips,
                    random_queries=random_queries,
                    elapsed_seconds=time.perf_counter() - start,
                    status="settled",
                    estimated_error_rate=rate,
                    checkpoints=checkpoints,
                    key_order=list(locked.key_inputs),
                    pinned=pin,
                )
        else:
            settled_streak = 0
        if out_of_budget:
            return AppSatResult(
                key=candidate,
                num_dips=total_dips,
                random_queries=random_queries,
                elapsed_seconds=time.perf_counter() - start,
                status="dip_limit",
                estimated_error_rate=rate,
                checkpoints=checkpoints,
                key_order=list(locked.key_inputs),
                pinned=pin,
            )


def _candidate_key(
    locked: LockedCircuit,
    oracle: Oracle,
    dip_budget: int,
    pin: Mapping[str, bool] | None = None,
    solver: str | None = None,
    opt: str | None = None,
) -> dict[str, bool] | None:
    """A key consistent with the first ``dip_budget`` DIPs.

    Implemented by replaying the deterministic attack with the budget
    and extracting any key satisfying the accumulated constraints —
    the same thing AppSAT's incremental implementation reads off its
    live solver.
    """
    from repro.attacks.sat_attack import sat_attack as run

    # A fresh oracle view is fine: queries are pure functions.
    replay = run(
        locked,
        oracle,
        pin=pin,
        max_dips=dip_budget,
        record_iterations=False,
        extract_on_budget=True,
        solver=solver,
        opt=opt,
    )
    return replay.key
