"""Reusable word-level building blocks.

Each ``build_*`` helper appends gates to an existing netlist under a
name prefix and returns the nets carrying its results, so generators
can assemble datapaths the way RTL elaboration would.
"""

from __future__ import annotations

from repro.circuit.gates import GateType
from repro.circuit.netlist import Netlist


class BlockBuilder:
    """Names and appends gates for one functional block."""

    def __init__(self, netlist: Netlist, prefix: str):
        self.netlist = netlist
        self.prefix = prefix
        self._counter = 0

    def fresh(self, hint: str = "n") -> str:
        name = f"{self.prefix}_{hint}{self._counter}"
        self._counter += 1
        return name

    def gate(self, gtype: GateType, ins: list[str], hint: str = "n") -> str:
        out = self.fresh(hint)
        self.netlist.add_gate(out, gtype, ins)
        return out

    # ------------------------------------------------------------------
    # Bit-level primitives
    # ------------------------------------------------------------------
    def full_adder(self, a: str, b: str, cin: str) -> tuple[str, str]:
        """Returns (sum, carry-out)."""
        axb = self.gate(GateType.XOR, [a, b], "fx")
        s = self.gate(GateType.XOR, [axb, cin], "fs")
        g1 = self.gate(GateType.AND, [a, b], "fg")
        g2 = self.gate(GateType.AND, [axb, cin], "fh")
        cout = self.gate(GateType.OR, [g1, g2], "fc")
        return s, cout

    def half_adder(self, a: str, b: str) -> tuple[str, str]:
        return (
            self.gate(GateType.XOR, [a, b], "hs"),
            self.gate(GateType.AND, [a, b], "hc"),
        )

    def mux2(self, sel: str, d1: str, d0: str) -> str:
        return self.gate(GateType.MUX, [sel, d1, d0], "mx")

    # ------------------------------------------------------------------
    # Word-level blocks
    # ------------------------------------------------------------------
    def ripple_adder(
        self, a: list[str], b: list[str], cin: str
    ) -> tuple[list[str], str]:
        """Word addition; a[0] is the LSB.  Returns (sum_bits, carry_out)."""
        if len(a) != len(b):
            raise ValueError("operand widths differ")
        sums = []
        carry = cin
        for bit_a, bit_b in zip(a, b):
            s, carry = self.full_adder(bit_a, bit_b, carry)
            sums.append(s)
        return sums, carry

    def word_op(self, gtype: GateType, a: list[str], b: list[str]) -> list[str]:
        """Bitwise two-operand word operation."""
        if len(a) != len(b):
            raise ValueError("operand widths differ")
        return [self.gate(gtype, [x, y], "w") for x, y in zip(a, b)]

    def word_not(self, a: list[str]) -> list[str]:
        return [self.gate(GateType.NOT, [x], "wn") for x in a]

    def word_mux(self, sel: str, d1: list[str], d0: list[str]) -> list[str]:
        if len(d1) != len(d0):
            raise ValueError("mux operand widths differ")
        return [self.mux2(sel, x, y) for x, y in zip(d1, d0)]

    def reduce(self, gtype: GateType, nets: list[str], fan: int = 2) -> str:
        """Balanced reduction tree (e.g. wide AND/OR/XOR)."""
        if not nets:
            raise ValueError("cannot reduce an empty net list")
        layer = list(nets)
        while len(layer) > 1:
            next_layer = []
            for start in range(0, len(layer), fan):
                chunk = layer[start : start + fan]
                if len(chunk) == 1:
                    next_layer.append(chunk[0])
                else:
                    next_layer.append(self.gate(gtype, chunk, "rd"))
            layer = next_layer
        return layer[0]

    def parity(self, nets: list[str]) -> str:
        return self.reduce(GateType.XOR, nets)

    def equality(self, a: list[str], b: list[str]) -> str:
        """1 iff the words are equal."""
        eqs = self.word_op(GateType.XNOR, a, b)
        return self.reduce(GateType.AND, eqs)

    def less_than(self, a: list[str], b: list[str]) -> str:
        """Unsigned a < b (a[0] is the LSB), via borrow ripple."""
        if len(a) != len(b):
            raise ValueError("operand widths differ")
        borrow: str | None = None
        for bit_a, bit_b in zip(a, b):
            na = self.gate(GateType.NOT, [bit_a], "lt")
            lt = self.gate(GateType.AND, [na, bit_b], "lt")
            eq = self.gate(GateType.XNOR, [bit_a, bit_b], "lt")
            if borrow is None:
                borrow = lt
            else:
                keep = self.gate(GateType.AND, [eq, borrow], "lt")
                borrow = self.gate(GateType.OR, [lt, keep], "lt")
        assert borrow is not None
        return borrow

    def decoder(self, sel: list[str]) -> list[str]:
        """One-hot decode: returns 2^len(sel) nets (index LSB-first)."""
        inverted = self.word_not(sel)
        outs = []
        for index in range(1 << len(sel)):
            lits = [
                sel[j] if (index >> j) & 1 else inverted[j]
                for j in range(len(sel))
            ]
            outs.append(
                lits[0]
                if len(lits) == 1
                else self.gate(GateType.AND, lits, "dc")
            )
        return outs

    def priority_encoder(self, requests: list[str]) -> list[str]:
        """Grant the lowest-index active request (one-hot grants)."""
        grants = []
        blocked: str | None = None
        for req in requests:
            if blocked is None:
                grants.append(req)
                blocked = req
            else:
                nb = self.gate(GateType.NOT, [blocked], "pe")
                grants.append(self.gate(GateType.AND, [req, nb], "pe"))
                blocked = self.gate(GateType.OR, [blocked, req], "pe")
        return grants
