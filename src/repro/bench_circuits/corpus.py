"""Genuine-format ``.bench`` circuit corpus.

The stand-ins in :mod:`repro.bench_circuits.iscas85` are *constructed*
netlists; this module is the seam for circuits that arrive as real
``.bench`` files — the shipped ISCAS'85-profile reconstructions under
``data/`` and any user-supplied netlist registered at runtime.  A
registered circuit is addressable everywhere a stand-in is: scenario
matrix cells, ``AttackRequest`` envelopes, and the CLI all resolve
circuit names through :func:`resolve_circuit`.

Registration invariants
-----------------------

* **Content hash is cache identity.**  Each entry records the
  ``CompiledCircuit.content_hash()`` of its parsed netlist; matrix and
  task caches key on circuit *structure*, so editing a registered file
  changes the hash and every dependent cache entry misses instead of
  serving stale results.  Re-registering the same name with identical
  content is an idempotent no-op; with different content it is an
  error (pick a new name).
* **Corpus names never shadow stand-ins.**  Registering ``c432`` is
  rejected: the stand-in namespace keys existing golden results and
  cache entries.  The shipped files use the ``real_`` prefix
  (``real_c432``, ``real_c499``, ``real_c880``).
* **Loads are fresh.**  :func:`load_corpus` re-parses per call so
  callers can mutate (lock, rename) without poisoning the registry.
* **Scale does not apply.**  Real netlists are fixed-size artifacts;
  :func:`resolve_circuit` ignores the ``scale`` knob for corpus names
  and only applies it to stand-ins.

::

    >>> sorted(corpus_names())
    ['real_c432', 'real_c499', 'real_c880']
    >>> entry = corpus_entry("real_c432")
    >>> (entry.num_inputs, entry.num_outputs, entry.num_gates)
    (36, 7, 160)
    >>> netlist = load_corpus("real_c432")
    >>> netlist.compile().content_hash() == entry.content_hash
    True
    >>> resolve_circuit("real_c432").num_gates     # corpus: scale ignored
    160
    >>> resolve_circuit("c17").num_gates           # stand-in fallback
    6
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path

from repro.bench_circuits.iscas85 import ISCAS85_PROFILES, c17, iscas85_like
from repro.circuit.bench import parse_bench
from repro.circuit.netlist import Netlist

_DATA_DIR = Path(__file__).resolve().parent / "data"

#: Stand-in names resolvable next to the corpus (c17 is genuine but
#: embedded, not file-backed).
_STANDIN_NAMES = frozenset(ISCAS85_PROFILES) | {"c17"}


@dataclass(frozen=True)
class CorpusEntry:
    """One registered ``.bench`` file and its structural fingerprint."""

    name: str
    path: str
    content_hash: str
    num_inputs: int
    num_outputs: int
    num_gates: int
    source: str

    def profile(self) -> dict[str, int]:
        return {
            "pi": self.num_inputs,
            "po": self.num_outputs,
            "gates": self.num_gates,
        }


_REGISTRY: dict[str, CorpusEntry] = {}


class CorpusError(ValueError):
    """Registration or lookup failure."""


def register_corpus_file(
    path: str | os.PathLike[str],
    name: str | None = None,
    source: str = "user",
) -> CorpusEntry:
    """Parse, fingerprint, and register a ``.bench`` file.

    ``name`` defaults to the file stem.  See the module docstring for
    the naming and re-registration invariants.
    """
    path = Path(path)
    name = name or path.stem
    if name in _STANDIN_NAMES:
        raise CorpusError(
            f"corpus name {name!r} would shadow the {name!r} stand-in; "
            f"register it under a distinct name (e.g. 'real_{name}')"
        )
    text = path.read_text()
    netlist = parse_bench(text, name=name)
    netlist.validate()
    content_hash = netlist.compile().content_hash()
    existing = _REGISTRY.get(name)
    if existing is not None:
        if existing.content_hash == content_hash:
            return existing
        raise CorpusError(
            f"corpus name {name!r} already registered with different "
            f"content (hash {existing.content_hash[:12]} != "
            f"{content_hash[:12]}); pick a new name"
        )
    entry = CorpusEntry(
        name=name,
        path=str(path),
        content_hash=content_hash,
        num_inputs=len(netlist.inputs),
        num_outputs=len(netlist.outputs),
        num_gates=netlist.num_gates,
        source=source,
    )
    _REGISTRY[name] = entry
    return entry


def corpus_names() -> list[str]:
    """Registered corpus circuit names, sorted."""
    return sorted(_REGISTRY)


def corpus_entry(name: str) -> CorpusEntry:
    """Registry record for ``name`` (raises :class:`CorpusError`)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise CorpusError(
            f"unknown corpus circuit {name!r}; registered: {corpus_names()}"
        ) from None


def load_corpus(name: str) -> Netlist:
    """Freshly parsed netlist for a registered corpus circuit.

    Verifies the file still matches its registered content hash, so a
    file edited after registration fails loudly instead of silently
    shipping a different circuit under a cached identity.
    """
    entry = corpus_entry(name)
    netlist = parse_bench(Path(entry.path).read_text(), name=name)
    if netlist.compile().content_hash() != entry.content_hash:
        raise CorpusError(
            f"corpus file {entry.path!r} changed on disk since "
            f"registration of {name!r}; re-register under a new name"
        )
    return netlist


def known_circuit(name: str) -> bool:
    """True if ``name`` resolves to a corpus entry or a stand-in."""
    return name in _REGISTRY or name in _STANDIN_NAMES


def circuit_names() -> list[str]:
    """Every resolvable circuit name: corpus entries then stand-ins."""
    return corpus_names() + sorted(_STANDIN_NAMES)


def resolve_circuit(name: str, scale: float = 1.0) -> Netlist:
    """Resolve a circuit name: corpus first, stand-ins second.

    Corpus circuits are fixed-size real netlists, so ``scale`` is
    ignored for them (see the module docstring); stand-ins receive it
    unchanged.
    """
    if name in _REGISTRY:
        return load_corpus(name)
    if name == "c17":
        return c17()
    if name in ISCAS85_PROFILES:
        return iscas85_like(name, scale)
    raise CorpusError(
        f"unknown circuit {name!r}; choose from {circuit_names()}"
    )


def _register_builtin() -> None:
    for path in sorted(_DATA_DIR.glob("*.bench")):
        register_corpus_file(
            path, source="builtin reconstruction (see data/README.md)"
        )


_register_builtin()
