"""Parametric generators for complete benchmark circuits."""

from __future__ import annotations

from repro.bench_circuits.blocks import BlockBuilder
from repro.circuit.gates import GateType
from repro.circuit.netlist import Netlist


def _inputs(netlist: Netlist, stem: str, width: int) -> list[str]:
    return netlist.add_inputs([f"{stem}{i}" for i in range(width)])


def ripple_carry_adder(width: int, name: str | None = None) -> Netlist:
    """``width``-bit adder with carry-in/out (sum0 is the LSB)."""
    netlist = Netlist(name or f"rca{width}")
    a = _inputs(netlist, "a", width)
    b = _inputs(netlist, "b", width)
    cin = netlist.add_input("cin")
    bb = BlockBuilder(netlist, "add")
    sums, cout = bb.ripple_adder(a, b, cin)
    out_names = []
    for i, s in enumerate(sums):
        out = f"sum{i}"
        netlist.add_gate(out, GateType.BUF, [s])
        out_names.append(out)
    netlist.add_gate("cout", GateType.BUF, [cout])
    netlist.set_outputs(out_names + ["cout"])
    netlist.validate()
    return netlist


def array_multiplier(width: int, name: str | None = None) -> Netlist:
    """``width x width`` unsigned array multiplier (the c6288 function).

    Built exactly the way c6288 is: an AND-gate partial-product array
    reduced by carry-save adder rows.  At ``width=16`` the gate count
    lands in the same class as the real c6288 (~2400 gates).
    """
    netlist = Netlist(name or f"mul{width}")
    a = _inputs(netlist, "a", width)
    b = _inputs(netlist, "b", width)
    bb = BlockBuilder(netlist, "mul")

    # Partial products pp[i][j] = a[j] & b[i], weight i + j.
    rows = [
        [bb.gate(GateType.AND, [a[j], b[i]], f"pp{i}_") for j in range(width)]
        for i in range(width)
    ]

    # Accumulate row by row with ripple adders (carry-propagate array).
    acc = rows[0]  # weights 0 .. width-1
    result = [acc[0]]
    acc = acc[1:]
    for i in range(1, width):
        padded = acc + []
        row = rows[i]
        # Align: acc covers weights i .. i+width-2; row covers i .. i+width-1.
        carry: str | None = None
        new_acc = []
        for j in range(width):
            x = row[j]
            y = padded[j] if j < len(padded) else None
            if y is None and carry is None:
                new_acc.append(x)
            elif y is None:
                s, carry = bb.half_adder(x, carry)
                new_acc.append(s)
            elif carry is None:
                s, carry = bb.half_adder(x, y)
                new_acc.append(s)
            else:
                s, carry = bb.full_adder(x, y, carry)
                new_acc.append(s)
        if carry is not None:
            new_acc.append(carry)
        result.append(new_acc[0])
        acc = new_acc[1:]
    result.extend(acc)

    outputs = []
    for i, net in enumerate(result[: 2 * width]):
        out = f"p{i}"
        netlist.add_gate(out, GateType.BUF, [net])
        outputs.append(out)
    netlist.set_outputs(outputs)
    netlist.validate()
    return netlist


def simple_alu(
    width: int,
    select_bits: int = 3,
    with_flags: bool = True,
    name: str | None = None,
    extra_controls: int = 0,
) -> Netlist:
    """A ``width``-bit ALU: add/sub/and/or/xor/not/shift/pass.

    ``extra_controls`` appends enable/mask inputs that gate the result
    word — a cheap way to match the wide control interfaces of the
    ISCAS ALU benchmarks while keeping every input observable.
    """
    if select_bits < 3:
        raise ValueError("need at least 3 select bits for 8 operations")
    netlist = Netlist(name or f"alu{width}")
    a = _inputs(netlist, "a", width)
    b = _inputs(netlist, "b", width)
    op = _inputs(netlist, "op", select_bits)
    cin = netlist.add_input("cin")
    masks = _inputs(netlist, "en", extra_controls) if extra_controls else []
    bb = BlockBuilder(netlist, "alu")

    add_s, add_c = bb.ripple_adder(a, b, cin)
    nb = bb.word_not(b)
    sub_s, sub_c = bb.ripple_adder(a, nb, bb.gate(GateType.OR, [cin, cin], "one"))
    # subtraction uses cin as forced-1 borrow stand-in to keep cin observable
    and_w = bb.word_op(GateType.AND, a, b)
    or_w = bb.word_op(GateType.OR, a, b)
    xor_w = bb.word_op(GateType.XOR, a, b)
    not_w = bb.word_not(a)
    shl_w = [cin] + a[:-1]  # shift left in cin
    pass_w = list(b)

    sel = bb.decoder(op[:3])
    lanes = [add_s, sub_s, and_w, or_w, xor_w, not_w, shl_w, pass_w]
    result = []
    for i in range(width):
        picked = [
            bb.gate(GateType.AND, [sel[k], lanes[k][i]], "pk")
            for k in range(8)
        ]
        bit = bb.reduce(GateType.OR, picked)
        for mask in masks:
            bit = bb.gate(GateType.AND, [bit, mask], "mk")
        result.append(bit)

    outputs = []
    for i, net in enumerate(result):
        out = f"f{i}"
        netlist.add_gate(out, GateType.BUF, [net])
        outputs.append(out)
    if with_flags:
        # NOR does not tree-compose; reduce with OR and invert once.
        any_set = bb.reduce(GateType.OR, result)
        zero = bb.gate(GateType.NOT, [any_set], "z")
        netlist.add_gate("zero", GateType.BUF, [zero])
        carry = bb.mux2(sel[1], sub_c, add_c)
        netlist.add_gate("carry", GateType.BUF, [carry])
        parity = bb.parity(result)
        netlist.add_gate("parity", GateType.BUF, [parity])
        outputs += ["zero", "carry", "parity"]
    netlist.set_outputs(outputs)
    netlist.validate()
    return netlist


def hamming_sec_corrector(
    data_width: int,
    check_bits: int | None = None,
    name: str | None = None,
    nand_style: bool = False,
) -> Netlist:
    """Single-error-correcting decoder (the c499/c1355 function family).

    Inputs are ``data_width`` data bits plus ``check_bits`` received
    check bits; outputs are the corrected data word.  The syndrome is
    recomputed from the data, XORed with the received check bits and
    decoded to flip the erroneous bit.  With ``nand_style=True`` the
    XOR trees are expanded to NAND structures, mirroring how c1355 is
    c499 with XORs dissolved into NANDs.
    """
    if check_bits is None:
        check_bits = max(2, (data_width - 1).bit_length() + 1)
    netlist = Netlist(name or f"sec{data_width}")
    data = _inputs(netlist, "d", data_width)
    recv = _inputs(netlist, "c", check_bits)
    bb = BlockBuilder(netlist, "sec")

    # Syndrome bit j = parity of data bits whose index has bit j set
    # (a Hamming-style parity-check matrix).
    syndrome = []
    for j in range(check_bits):
        taps = [
            data[i] for i in range(data_width) if ((i + 1) >> j) & 1
        ] or [data[0]]
        recomputed = bb.parity(taps)
        syndrome.append(bb.gate(GateType.XOR, [recomputed, recv[j]], f"sy{j}_"))

    select = bb.decoder(syndrome[: min(check_bits, 10)])
    outputs = []
    for i in range(data_width):
        flip = select[(i + 1) % len(select)]
        out = f"q{i}"
        netlist.add_gate(out, GateType.XOR, [data[i], flip])
        outputs.append(out)
    netlist.set_outputs(outputs)
    netlist.validate()
    if nand_style:
        netlist = expand_xor_to_nand(netlist)
    return netlist


def word_comparator(width: int, name: str | None = None) -> Netlist:
    """Magnitude comparator: eq / lt / gt outputs."""
    netlist = Netlist(name or f"cmp{width}")
    a = _inputs(netlist, "a", width)
    b = _inputs(netlist, "b", width)
    bb = BlockBuilder(netlist, "cmp")
    eq = bb.equality(a, b)
    lt = bb.less_than(a, b)
    netlist.add_gate("eq", GateType.BUF, [eq])
    netlist.add_gate("lt", GateType.BUF, [lt])
    netlist.add_gate("gt", GateType.NOR, [eq, lt])
    netlist.set_outputs(["eq", "lt", "gt"])
    netlist.validate()
    return netlist


def priority_controller(
    channels: int, width: int, name: str | None = None
) -> Netlist:
    """Interrupt-controller-style circuit (the c432 function family).

    ``channels`` request words of ``width`` bits are masked by enable
    words; a priority encoder grants the lowest active channel and the
    grant vector plus summary outputs are exposed.
    """
    netlist = Netlist(name or f"prio{channels}x{width}")
    requests = [_inputs(netlist, f"r{c}_", width) for c in range(channels)]
    enables = [_inputs(netlist, f"e{c}_", width) for c in range(channels)]
    bb = BlockBuilder(netlist, "pr")

    active = []
    for req, en in zip(requests, enables):
        masked = bb.word_op(GateType.AND, req, en)
        active.append(bb.reduce(GateType.OR, masked))
    grants = bb.priority_encoder(active)

    outputs = []
    for c, grant in enumerate(grants):
        out = f"g{c}"
        netlist.add_gate(out, GateType.BUF, [grant])
        outputs.append(out)
    netlist.add_gate("any", GateType.OR, [f"g{c}" for c in range(channels)])
    outputs.append("any")
    netlist.set_outputs(outputs)
    netlist.validate()
    return netlist


def keyed_match_plane(
    terms: int = 768,
    taps: int = 16,
    bus: int = 64,
    seed: int = 7,
    name: str | None = None,
) -> Netlist:
    """Wide, shallow keyed match/decode fabric (PLA-plane shape).

    The SARLock/Anti-SAT point-function comparator — ``AND`` over
    ``XNOR(x_i, k_i)`` taps — replicated as ``terms`` parallel product
    terms over a shared ``bus``-bit data bus and ``bus``-bit key bus,
    with an OR-plane summarizing the match lines.  Each term compares
    ``taps`` pseudo-random (data bit, key bit) pairs; the reductions
    use alternating NAND/NOR planes, the standard-cell mapping of
    AND/OR trees (inverting gates are the cheap ones in CMOS).

    Every level holds one opcode, so the circuit is the numpy lane
    backend's best case: ~25k gates collapse into ~15 vector stages.
    It is the large-circuit tier workload in
    ``benchmarks/test_bench_sim.py`` — deliberately the *opposite*
    shape of :func:`array_multiplier`, whose deep carry chains are the
    big-int path's best case.
    """
    from repro.rng import make_rng

    rng = make_rng(seed)
    netlist = Netlist(name or f"match{terms}x{taps}")
    x = _inputs(netlist, "x", bus)
    k = _inputs(netlist, "k", bus)
    counter = 0

    def fresh() -> str:
        nonlocal counter
        counter += 1
        return f"mp{counter}"

    def inverting_reduce(nets: list[str], first: GateType) -> list[list[str]]:
        """Pairwise-reduce with alternating NAND/NOR planes.

        Two consecutive inverting planes compute one non-inverting
        reduction level (De Morgan), so starting from NAND this is an
        AND tree and from NOR an OR tree.  Odd leftovers are re-gated
        alone (a two-tied-input NAND/NOR is an inverter) to keep every
        net of a plane at the same inversion phase.  Returns the list
        of planes, narrowest last.
        """
        other = GateType.NOR if first is GateType.NAND else GateType.NAND
        planes = []
        cur = nets
        depth = 0
        while len(cur) > 1:
            kind = first if depth % 2 == 0 else other
            nxt = []
            for i in range(0, len(cur) - 1, 2):
                g = fresh()
                netlist.add_gate(g, kind, [cur[i], cur[i + 1]])
                nxt.append(g)
            if len(cur) % 2:
                g = fresh()
                netlist.add_gate(g, kind, [cur[-1], cur[-1]])
                nxt.append(g)
            planes.append(nxt)
            cur = nxt
            depth += 1
        if depth % 2:  # odd plane count: the tree is still inverted
            g = fresh()
            netlist.add_gate(g, other, [cur[0], cur[0]])
            planes.append([g])
        return planes

    lines = []
    for _ in range(terms):
        tap_nets = []
        for _ in range(taps):
            g = fresh()
            netlist.add_gate(
                g, GateType.XNOR, [rng.choice(x), rng.choice(k)]
            )
            tap_nets.append(g)
        lines.append(inverting_reduce(tap_nets, GateType.NAND)[-1][0])

    or_planes = inverting_reduce(lines, GateType.NOR)
    group = next((p for p in or_planes if len(p) <= 96), or_planes[-1])
    outputs = []
    for i, net in enumerate(group):
        out = f"m{i}"
        netlist.add_gate(out, GateType.BUF, [net])
        outputs.append(out)
    netlist.add_gate("hit", GateType.BUF, [or_planes[-1][-1]])
    netlist.set_outputs(outputs + ["hit"])
    netlist.validate()
    return netlist


def expand_xor_to_nand(netlist: Netlist) -> Netlist:
    """Dissolve 2-input XOR/XNOR gates into 4-NAND structures.

    ``XOR(a,b) = NAND(NAND(a, NAND(a,b)), NAND(b, NAND(a,b)))``; wider
    XORs are first chained pairwise.  This mirrors the relationship
    between c499 (XOR-rich) and c1355 (NAND-only, same function).
    """
    from repro.circuit.netlist import Gate, fresh_net_namer

    result = Netlist(name=f"{netlist.name}_nand")
    result.inputs = list(netlist.inputs)
    namer = fresh_net_namer(netlist, "xn_")

    def emit_xor2(out: str, a: str, b: str, invert: bool) -> None:
        mid = namer()
        result.gates[mid] = Gate(mid, GateType.NAND, (a, b))
        left = namer()
        result.gates[left] = Gate(left, GateType.NAND, (a, mid))
        right = namer()
        result.gates[right] = Gate(right, GateType.NAND, (b, mid))
        gtype = GateType.AND if invert else GateType.NAND
        result.gates[out] = Gate(out, gtype, (left, right))

    for gate in netlist.topological_order():
        if gate.gtype not in (GateType.XOR, GateType.XNOR) or len(gate.inputs) < 2:
            result.gates[gate.output] = gate
            continue
        invert = gate.gtype is GateType.XNOR
        acc = gate.inputs[0]
        for mid_input in gate.inputs[1:-1]:
            nxt = namer()
            emit_xor2(nxt, acc, mid_input, False)
            acc = nxt
        emit_xor2(gate.output, acc, gate.inputs[-1], invert)
    result.set_outputs(list(netlist.outputs))
    result.validate()
    return result
