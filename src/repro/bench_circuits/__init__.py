"""Benchmark circuit generators.

The paper evaluates on the ISCAS'85 suite.  The original ``.bench``
files cannot ship with this reproduction, so this package generates
*functional stand-ins*: circuits of the same functional family
(adders, ALUs, error correctors, multipliers, comparators) with the
same interface profile as the named benchmark at ``scale=1.0`` and a
``scale`` knob to shrink word widths for pure-Python SAT budgets.

Real ``.bench`` netlists drop in next to the stand-ins through
:mod:`repro.bench_circuits.corpus`: ISCAS'85-profile reconstructions
(``real_c432``/``real_c499``/``real_c880``) ship under ``data/`` and
user files register at runtime via :func:`register_corpus_file`; every
circuit-name consumer (matrix, service, CLI) resolves through
:func:`resolve_circuit`.  ``c17`` is tiny and public, so it is
embedded verbatim.
"""

from repro.bench_circuits.generators import (
    array_multiplier,
    hamming_sec_corrector,
    priority_controller,
    ripple_carry_adder,
    simple_alu,
    word_comparator,
)
from repro.bench_circuits.corpus import (
    CorpusEntry,
    CorpusError,
    circuit_names,
    corpus_entry,
    corpus_names,
    known_circuit,
    load_corpus,
    register_corpus_file,
    resolve_circuit,
)
from repro.bench_circuits.iscas85 import (
    ISCAS85_PROFILES,
    c17,
    iscas85_like,
    iscas85_names,
)

__all__ = [
    "CorpusEntry",
    "CorpusError",
    "circuit_names",
    "corpus_entry",
    "corpus_names",
    "known_circuit",
    "load_corpus",
    "register_corpus_file",
    "resolve_circuit",
    "ripple_carry_adder",
    "array_multiplier",
    "simple_alu",
    "hamming_sec_corrector",
    "word_comparator",
    "priority_controller",
    "c17",
    "iscas85_like",
    "iscas85_names",
    "ISCAS85_PROFILES",
]
