"""ISCAS'85-class benchmark stand-ins.

The real suite cannot be redistributed here, so each named constructor
builds a circuit of the same *functional family* (per Hansen et al.'s
reverse engineering of the suite) with the same primary-input /
primary-output profile at ``scale=1.0``:

========  =====================================  ====  ====  ======
name      function family                         PI    PO   gates*
========  =====================================  ====  ====  ======
c432      27-channel interrupt controller          36     7    160
c499      32-bit single-error corrector            41    32    202
c880      8-bit ALU                                60    26    383
c1355     32-bit SEC (c499 in NAND form)           41    32    546
c1908     16-bit SEC/DED                           33    25    880
c2670     12-bit ALU and controller               233   140   1193
c3540     8-bit ALU with BCD arithmetic            50    22   1669
c5315     9-bit ALU                               178   123   2307
c6288     16x16 array multiplier                   32    32   2406
c7552     32-bit adder/comparator                 207   108   3512
========  =====================================  ====  ====  ======

(*gate counts of the real netlists, for reference; stand-in counts are
the same order of magnitude but not identical.)

Interfaces are matched exactly by *observable* padding: spare inputs
feed parity trees that are XOR-folded into spare outputs, so every
port carries live logic.  ``scale`` shrinks word widths and padding
proportionally — the default experiments run at reduced scale because
the SAT substrate is pure Python (see DESIGN.md §4).
"""

from __future__ import annotations

from collections.abc import Callable

from repro.bench_circuits.generators import (
    array_multiplier,
    hamming_sec_corrector,
    priority_controller,
    simple_alu,
)
from repro.bench_circuits.blocks import BlockBuilder
from repro.circuit.bench import parse_bench
from repro.circuit.gates import GateType
from repro.circuit.netlist import Netlist

_C17_BENCH = """
# c17 — the only ISCAS'85 netlist small enough to embed verbatim
INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)
OUTPUT(G22)
OUTPUT(G23)
G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
"""


def c17() -> Netlist:
    """The genuine c17 netlist (6 NAND gates)."""
    return parse_bench(_C17_BENCH, name="c17")


def _scaled(value: int, scale: float, minimum: int = 2) -> int:
    return max(minimum, round(value * scale))


def _pad_interface(netlist: Netlist, target_pi: int, target_po: int) -> Netlist:
    """Grow the interface to exactly (target_pi, target_po), observably.

    Spare inputs are grouped into parity trees; each spare output XORs
    one parity tree with an existing output's signal, so no port is
    dangling and the core function remains recoverable.
    """
    extra_pi = max(0, target_pi - len(netlist.inputs))
    extra_po = max(0, target_po - len(netlist.outputs))
    if extra_pi == 0 and extra_po == 0:
        return netlist
    pads = netlist.add_inputs([f"xpad{i}" for i in range(extra_pi)])
    bb = BlockBuilder(netlist, "pad")

    if extra_po == 0:
        # Nothing to attach parities to: fold them into the first output.
        if pads:
            first = netlist.outputs[0]
            parity = bb.parity(pads)
            gate = netlist.gates[first]
            moved = bb.fresh("mv")
            netlist.gates[moved] = type(gate)(moved, gate.gtype, gate.inputs)
            del netlist.gates[first]
            netlist.add_gate(first, GateType.XOR, [moved, parity])
        return netlist

    # Split pads into extra_po parity groups (some may be empty).
    groups: list[list[str]] = [[] for _ in range(extra_po)]
    for i, pad in enumerate(pads):
        groups[i % extra_po].append(pad)
    existing = list(netlist.outputs)
    new_outputs = []
    for j, group in enumerate(groups):
        anchor = existing[j % len(existing)]
        out = f"ypad{j}"
        if group:
            parity = bb.parity(group)
            netlist.add_gate(out, GateType.XOR, [anchor, parity])
        else:
            netlist.add_gate(out, GateType.NOT, [anchor])
        new_outputs.append(out)
    netlist.set_outputs(existing + new_outputs)
    netlist.validate()
    return netlist


def _build_c432(scale: float) -> Netlist:
    # 3 request/enable word pairs of 6 bits = 36 inputs at scale 1.
    return priority_controller(
        channels=3, width=_scaled(6, scale), name="c432_like"
    )


def _build_c499(scale: float) -> Netlist:
    width = _scaled(32, scale, minimum=4)
    return hamming_sec_corrector(width, name="c499_like")


def _build_c1355(scale: float) -> Netlist:
    width = _scaled(32, scale, minimum=4)
    return hamming_sec_corrector(width, name="c1355_like", nand_style=True)


def _build_c1908(scale: float) -> Netlist:
    width = _scaled(16, scale, minimum=4)
    return hamming_sec_corrector(width, name="c1908_like", nand_style=True)


def _build_c880(scale: float) -> Netlist:
    return simple_alu(
        _scaled(8, scale), select_bits=3, extra_controls=2, name="c880_like"
    )


def _build_c2670(scale: float) -> Netlist:
    return simple_alu(
        _scaled(12, scale), select_bits=3, extra_controls=3, name="c2670_like"
    )


def _build_c3540(scale: float) -> Netlist:
    return simple_alu(
        _scaled(8, scale), select_bits=3, extra_controls=4, name="c3540_like"
    )


def _build_c5315(scale: float) -> Netlist:
    return simple_alu(
        _scaled(9, scale), select_bits=3, extra_controls=3, name="c5315_like"
    )


def _build_c6288(scale: float) -> Netlist:
    return array_multiplier(_scaled(16, scale), name="c6288_like")


def _build_c7552(scale: float) -> Netlist:
    width = _scaled(32, scale, minimum=4)
    netlist = Netlist("c7552_like")
    a = netlist.add_inputs([f"a{i}" for i in range(width)])
    b = netlist.add_inputs([f"b{i}" for i in range(width)])
    c = netlist.add_inputs([f"c{i}" for i in range(width)])
    cin = netlist.add_input("cin")
    bb = BlockBuilder(netlist, "top")
    sums, cout = bb.ripple_adder(a, b, cin)
    eq = bb.equality(sums, c)
    lt = bb.less_than(sums, c)
    outputs = []
    for i, s in enumerate(sums):
        out = f"sum{i}"
        netlist.add_gate(out, GateType.BUF, [s])
        outputs.append(out)
    netlist.add_gate("cout", GateType.BUF, [cout])
    netlist.add_gate("eq", GateType.BUF, [eq])
    netlist.add_gate("lt", GateType.BUF, [lt])
    netlist.add_gate("par", GateType.BUF, [bb.parity(sums)])
    netlist.set_outputs(outputs + ["cout", "eq", "lt", "par"])
    netlist.validate()
    return netlist


ISCAS85_PROFILES: dict[str, dict] = {
    "c432": {"pi": 36, "po": 7, "gates": 160, "family": "interrupt controller", "build": _build_c432},
    "c499": {"pi": 41, "po": 32, "gates": 202, "family": "32-bit SEC", "build": _build_c499},
    "c880": {"pi": 60, "po": 26, "gates": 383, "family": "8-bit ALU", "build": _build_c880},
    "c1355": {"pi": 41, "po": 32, "gates": 546, "family": "32-bit SEC (NAND)", "build": _build_c1355},
    "c1908": {"pi": 33, "po": 25, "gates": 880, "family": "16-bit SEC/DED", "build": _build_c1908},
    "c2670": {"pi": 233, "po": 140, "gates": 1193, "family": "12-bit ALU+ctrl", "build": _build_c2670},
    "c3540": {"pi": 50, "po": 22, "gates": 1669, "family": "8-bit ALU (BCD)", "build": _build_c3540},
    "c5315": {"pi": 178, "po": 123, "gates": 2307, "family": "9-bit ALU", "build": _build_c5315},
    "c6288": {"pi": 32, "po": 32, "gates": 2406, "family": "16x16 multiplier", "build": _build_c6288},
    "c7552": {"pi": 207, "po": 108, "gates": 3512, "family": "32-bit adder/comparator", "build": _build_c7552},
}


def iscas85_names() -> list[str]:
    """Benchmark names in the paper's Table 2 order plus the extras."""
    return list(ISCAS85_PROFILES)


def iscas85_like(name: str, scale: float = 1.0, match_interface: bool = True) -> Netlist:
    """Build the stand-in for an ISCAS'85 benchmark.

    Args:
        name: One of :func:`iscas85_names` (e.g. ``"c7552"``).
        scale: Word-width multiplier; 1.0 targets the real interface.
        match_interface: Pad PI/PO to ``round(real * scale)`` with
            observable parity glue (see :func:`_pad_interface`).
    """
    profile = ISCAS85_PROFILES.get(name)
    if profile is None:
        raise KeyError(
            f"unknown benchmark {name!r}; choose from {iscas85_names()}"
        )
    if scale <= 0:
        raise ValueError("scale must be positive")
    netlist = profile["build"](scale)
    if match_interface:
        netlist = _pad_interface(
            netlist,
            target_pi=round(profile["pi"] * scale),
            target_po=round(profile["po"] * scale),
        )
    return netlist
