"""Exact locking analyses via BDDs.

Brute force caps out around 22 input+key bits; these BDD versions
count exactly over much larger spaces (practical limits depend on the
circuit's BDD width, not its input count).
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.bdd.compile import compile_outputs
from repro.bdd.manager import FALSE, BddManager
from repro.circuit.netlist import Netlist
from repro.locking.base import LockedCircuit


def _difference_bdd(
    locked: LockedCircuit, original: Netlist, manager: BddManager
) -> tuple[int, dict[str, int], dict[str, int]]:
    """BDD of "some output differs", over input and key variables.

    Returns ``(diff, input_levels, key_levels)``.
    """
    input_levels = {net: manager.new_var() for net in locked.original_inputs}
    key_levels = {net: manager.new_var() for net in locked.key_inputs}

    locked_outs = compile_outputs(
        locked.netlist, manager, {**input_levels, **key_levels}
    )
    original_outs = compile_outputs(original, manager, input_levels)

    diff = FALSE
    for out in original.outputs:
        diff = manager.apply_or(
            diff, manager.apply_xor(locked_outs[out], original_outs[out])
        )
    return diff, input_levels, key_levels


def exact_error_rate(
    locked: LockedCircuit,
    original: Netlist,
    key: int | Mapping[str, bool],
) -> float:
    """Exact fraction of input patterns a key corrupts (no sampling)."""
    manager = BddManager()
    diff, input_levels, key_levels = _difference_bdd(locked, original, manager)
    assignment = locked.key_assignment(key)
    for net, value in assignment.items():
        diff = manager.restrict(diff, key_levels[net], bool(value))
    bad = manager.count_models(diff, input_levels.values())
    return bad / (1 << len(input_levels))


def count_keys_unlocking_subspace(
    locked: LockedCircuit,
    original: Netlist,
    pin: Mapping[str, bool] | None = None,
) -> int:
    """Exact number of keys correct on every input consistent with ``pin``.

    This is the multi-key premise quantified: for SARLock with ``|K|``
    protected bits and ``p`` of them pinned, the count is
    ``2^(|K|-p-?) ...`` — measured here exactly rather than argued.
    """
    pin = dict(pin or {})
    manager = BddManager()
    diff, input_levels, key_levels = _difference_bdd(locked, original, manager)
    for net, value in pin.items():
        if net not in input_levels:
            raise ValueError(f"pinned net {net!r} is not an original input")
        diff = manager.restrict(diff, input_levels[net], bool(value))
    free_inputs = [
        lvl for net, lvl in input_levels.items() if net not in pin
    ]
    errs_somewhere = manager.exists(diff, free_inputs)
    good = manager.apply_not(errs_somewhere)
    return manager.count_models(good, key_levels.values())


def bdd_equivalence_check(a: Netlist, b: Netlist) -> bool:
    """Canonical-form equivalence: compile both, compare node handles.

    An independent cross-check of the SAT-based CEC.
    """
    if set(a.inputs) != set(b.inputs) or set(a.outputs) != set(b.outputs):
        raise ValueError("circuits must share input and output names")
    manager = BddManager()
    levels = {net: manager.new_var() for net in a.inputs}
    outs_a = compile_outputs(a, manager, levels)
    outs_b = compile_outputs(b, manager, levels)
    return all(outs_a[net] == outs_b[net] for net in a.outputs)
