"""The BDD node manager: hash-consed nodes, ITE, quantification, counting.

Standard Bryant-style implementation with complement edges omitted for
clarity.  Nodes are integers: 0 and 1 are the terminals; every other
node is an index into the ``(var, low, high)`` triple tables.  The
unique table guarantees canonicity, so equality of functions is
pointer equality, and the operation cache keeps ITE polynomial.
"""

from __future__ import annotations

from math import inf

FALSE = 0
TRUE = 1


class BddManager:
    """Owns every node; functions are node handles tied to a manager."""

    def __init__(self, max_nodes: int = 2_000_000):
        # Parallel triple tables; entries 0/1 are placeholders.
        self._var = [-1, -1]
        self._low = [0, 0]
        self._high = [0, 0]
        self._unique: dict[tuple[int, int, int], int] = {}
        self._ite_cache: dict[tuple[int, int, int], int] = {}
        self._num_vars = 0
        self.max_nodes = max_nodes

    # ------------------------------------------------------------------
    # Variables and raw nodes
    # ------------------------------------------------------------------
    @property
    def num_vars(self) -> int:
        return self._num_vars

    @property
    def num_nodes(self) -> int:
        return len(self._var)

    def new_var(self) -> int:
        """Declare the next variable in the global order; returns its
        *level* (0-based), not a node."""
        level = self._num_vars
        self._num_vars += 1
        return level

    def var(self, level: int) -> int:
        """The function of a single variable."""
        self._require_level(level)
        return self._node(level, FALSE, TRUE)

    def nvar(self, level: int) -> int:
        """The negation of a single variable."""
        self._require_level(level)
        return self._node(level, TRUE, FALSE)

    def _require_level(self, level: int) -> None:
        if not (0 <= level < self._num_vars):
            raise ValueError(f"variable level {level} not declared")

    def _node(self, var: int, low: int, high: int) -> int:
        if low == high:
            return low
        key = (var, low, high)
        found = self._unique.get(key)
        if found is not None:
            return found
        if len(self._var) >= self.max_nodes:
            raise MemoryError(
                f"BDD node limit ({self.max_nodes}) exceeded; the variable "
                "order is bad for this function or the circuit is too wide"
            )
        index = len(self._var)
        self._var.append(var)
        self._low.append(low)
        self._high.append(high)
        self._unique[key] = index
        return index

    def level_of(self, node: int) -> float:
        """Variable level of a node (terminals sort last)."""
        return inf if node <= TRUE else self._var[node]

    # ------------------------------------------------------------------
    # Core operation: if-then-else
    # ------------------------------------------------------------------
    def ite(self, f: int, g: int, h: int) -> int:
        """``f ? g : h`` — every Boolean connective reduces to this."""
        if f == TRUE:
            return g
        if f == FALSE:
            return h
        if g == h:
            return g
        if g == TRUE and h == FALSE:
            return f
        key = (f, g, h)
        cached = self._ite_cache.get(key)
        if cached is not None:
            return cached

        top = min(self.level_of(f), self.level_of(g), self.level_of(h))

        def cofactor(node: int, branch: bool) -> int:
            if node <= TRUE or self._var[node] != top:
                return node
            return self._high[node] if branch else self._low[node]

        high = self.ite(cofactor(f, True), cofactor(g, True), cofactor(h, True))
        low = self.ite(cofactor(f, False), cofactor(g, False), cofactor(h, False))
        result = self._node(int(top), low, high)
        self._ite_cache[key] = result
        return result

    # ------------------------------------------------------------------
    # Boolean connectives
    # ------------------------------------------------------------------
    def apply_not(self, f: int) -> int:
        return self.ite(f, FALSE, TRUE)

    def apply_and(self, f: int, g: int) -> int:
        return self.ite(f, g, FALSE)

    def apply_or(self, f: int, g: int) -> int:
        return self.ite(f, TRUE, g)

    def apply_xor(self, f: int, g: int) -> int:
        return self.ite(f, self.apply_not(g), g)

    def apply_xnor(self, f: int, g: int) -> int:
        return self.ite(f, g, self.apply_not(g))

    def apply_nand(self, f: int, g: int) -> int:
        return self.apply_not(self.apply_and(f, g))

    def apply_nor(self, f: int, g: int) -> int:
        return self.apply_not(self.apply_or(f, g))

    def apply_mux(self, sel: int, d1: int, d0: int) -> int:
        return self.ite(sel, d1, d0)

    # ------------------------------------------------------------------
    # Quantification and restriction
    # ------------------------------------------------------------------
    def restrict(self, f: int, level: int, value: bool) -> int:
        """Cofactor of ``f`` with variable ``level`` fixed."""
        self._require_level(level)
        if f <= TRUE:
            return f
        var = self._var[f]
        if var > level:
            return f
        if var == level:
            return self._high[f] if value else self._low[f]
        low = self.restrict(self._low[f], level, value)
        high = self.restrict(self._high[f], level, value)
        return self._node(var, low, high)

    def exists(self, f: int, levels) -> int:
        """Existentially quantify a set of variable levels out of ``f``."""
        remaining = sorted(set(levels))
        result = f
        for level in remaining:
            result = self.apply_or(
                self.restrict(result, level, False),
                self.restrict(result, level, True),
            )
        return result

    def forall(self, f: int, levels) -> int:
        """Universally quantify a set of variable levels out of ``f``."""
        result = f
        for level in sorted(set(levels)):
            result = self.apply_and(
                self.restrict(result, level, False),
                self.restrict(result, level, True),
            )
        return result

    # ------------------------------------------------------------------
    # Evaluation and counting
    # ------------------------------------------------------------------
    def evaluate(self, f: int, assignment: dict[int, bool]) -> bool:
        """Evaluate under a full (or sufficient) level -> bool mapping."""
        node = f
        while node > TRUE:
            node = (
                self._high[node]
                if assignment.get(self._var[node], False)
                else self._low[node]
            )
        return node == TRUE

    def count_models(self, f: int, over_levels) -> int:
        """Number of assignments to ``over_levels`` satisfying ``f``.

        ``f`` must not depend on variables outside ``over_levels``
        (support outside the set raises).
        """
        levels = sorted(set(over_levels))
        position = {lvl: i for i, lvl in enumerate(levels)}
        n = len(levels)

        stray = self.support(f) - set(levels)
        if stray:
            raise ValueError(f"function depends on unquantified levels {stray}")

        # Memoized on node: the count over the suffix of the ordering
        # starting at the node's own level; gaps (skipped variables)
        # contribute a factor of two each at the call site.
        memo: dict[int, int] = {}

        def models_from(node: int, pos: int) -> int:
            """Satisfying suffixes of levels[pos:] for subfunction node."""
            if node == FALSE:
                return 0
            if node == TRUE:
                return 1 << (n - pos)
            node_pos = position[self._var[node]]
            base = memo.get(node)
            if base is None:
                base = models_from(
                    self._low[node], node_pos + 1
                ) + models_from(self._high[node], node_pos + 1)
                memo[node] = base
            # Variables skipped between pos and node_pos are free.
            return base << (node_pos - pos)

        return models_from(f, 0)

    def support(self, f: int) -> set[int]:
        """The set of variable levels ``f`` depends on."""
        seen: set[int] = set()
        result: set[int] = set()
        stack = [f]
        while stack:
            node = stack.pop()
            if node <= TRUE or node in seen:
                continue
            seen.add(node)
            result.add(self._var[node])
            stack.append(self._low[node])
            stack.append(self._high[node])
        return result

    def size(self, f: int) -> int:
        """Node count of the sub-DAG rooted at ``f``."""
        seen: set[int] = set()
        stack = [f]
        while stack:
            node = stack.pop()
            if node <= TRUE or node in seen:
                continue
            seen.add(node)
            stack.append(self._low[node])
            stack.append(self._high[node])
        return len(seen)
