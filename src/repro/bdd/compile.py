"""Compile netlists into BDDs."""

from __future__ import annotations

from collections.abc import Sequence

from repro.bdd.manager import BddManager
from repro.circuit.gates import GateType
from repro.circuit.netlist import Netlist


def _reduce(manager: BddManager, op, operands: list[int], unit: int) -> int:
    result = unit
    for node in operands:
        result = op(result, node)
    return result


def compile_outputs(
    netlist: Netlist,
    manager: BddManager,
    var_levels: dict[str, int],
) -> dict[str, int]:
    """Compile every output of ``netlist`` given input variable levels.

    ``var_levels`` must map every primary input to a declared manager
    level; gate functions are built bottom-up in topological order, so
    no recursion depth issues arise regardless of circuit depth.
    """
    missing = [net for net in netlist.inputs if net not in var_levels]
    if missing:
        raise ValueError(f"no BDD level assigned to inputs: {missing}")
    node_of: dict[str, int] = {
        net: manager.var(level) for net, level in var_levels.items()
    }
    for gate in netlist.topological_order():
        ins = [node_of[src] for src in gate.inputs]
        gtype = gate.gtype
        if gtype is GateType.AND:
            node = _reduce(manager, manager.apply_and, ins, 1)
        elif gtype is GateType.OR:
            node = _reduce(manager, manager.apply_or, ins, 0)
        elif gtype is GateType.NAND:
            node = manager.apply_not(_reduce(manager, manager.apply_and, ins, 1))
        elif gtype is GateType.NOR:
            node = manager.apply_not(_reduce(manager, manager.apply_or, ins, 0))
        elif gtype is GateType.XOR:
            node = _reduce(manager, manager.apply_xor, ins, 0)
        elif gtype is GateType.XNOR:
            node = manager.apply_not(_reduce(manager, manager.apply_xor, ins, 0))
        elif gtype is GateType.NOT:
            node = manager.apply_not(ins[0])
        elif gtype is GateType.BUF:
            node = ins[0]
        elif gtype is GateType.MUX:
            node = manager.apply_mux(ins[0], ins[1], ins[2])
        elif gtype is GateType.CONST0:
            node = 0
        elif gtype is GateType.CONST1:
            node = 1
        else:  # pragma: no cover - enum is exhaustive
            raise ValueError(f"unsupported gate type {gtype!r}")
        node_of[gate.output] = node
    return {out: node_of[out] for out in netlist.outputs}


def compile_netlist(
    netlist: Netlist,
    manager: BddManager | None = None,
    input_order: Sequence[str] | None = None,
) -> tuple[BddManager, dict[str, int], dict[str, int]]:
    """Compile a netlist with a fresh (or given) manager.

    Returns ``(manager, output_nodes, input_levels)``.  The default
    variable order is the netlist input order, which works well for
    the shallow/structured circuits in this repo; callers fighting
    blow-up can supply a better ``input_order``.
    """
    manager = manager or BddManager()
    order = list(input_order) if input_order is not None else list(netlist.inputs)
    if set(order) != set(netlist.inputs):
        raise ValueError("input_order must be a permutation of the inputs")
    levels = {net: manager.new_var() for net in order}
    outputs = compile_outputs(netlist, manager, levels)
    return manager, outputs, levels
