"""Reduced ordered binary decision diagrams (ROBDDs).

A second, independent reasoning engine next to the SAT solver.  BDDs
give *counting* for free, which the locking analyses exploit:

* exact wrong-key error rates on circuits too wide for exhaustive
  simulation,
* exact counts of keys unlocking an input sub-space (the quantity the
  multi-key premise rests on) for key sizes far beyond brute force,
* an alternative equivalence check that cross-validates the SAT-based
  CEC in tests.
"""

from repro.bdd.analysis import (
    bdd_equivalence_check,
    count_keys_unlocking_subspace,
    exact_error_rate,
)
from repro.bdd.compile import compile_netlist, compile_outputs
from repro.bdd.manager import BddManager

__all__ = [
    "BddManager",
    "compile_netlist",
    "compile_outputs",
    "exact_error_rate",
    "count_keys_unlocking_subspace",
    "bdd_equivalence_check",
]
