"""Shared deterministic randomness for samples, sweeps and workers.

Every stochastic corner of the system — wrong-key samples in the
metrics engine, AppSAT's random query batches, random-circuit
generation, the load generator's work shuffle — funnels through this
module so the same logical experiment draws the same stream no matter
which process, worker or engine executes it.

The core primitive is :func:`derive_seed`: a pure function from an
arbitrary tuple of labels/ints to a 63-bit seed.  Two call sites that
pass the same parts get the same stream; unrelated call sites stay
decorrelated by construction (their labels differ), with no global
counter or shared state to race on.

Migration contract: a *bare non-negative int is already a seed* and
passes through unchanged, so replacing ``random.Random(seed)`` with
``make_rng(seed)`` preserves every historical stream bit-for-bit.
Hashing only kicks in for composite or non-int parts.

::

    >>> derive_seed(42)                    # bare int: identity
    42
    >>> derive_seed("metrics", 42) == derive_seed("metrics", 42)
    True
    >>> derive_seed("metrics", 42) == derive_seed("loadgen", 42)
    False
"""

from __future__ import annotations

import hashlib
import json
import random
from collections.abc import Sequence

__all__ = ["derive_seed", "make_rng", "sample_wrong_keys", "shuffled"]


def derive_seed(*parts: object) -> int:
    """Collapse labels/ints into a deterministic 63-bit seed.

    A single bare non-negative int is returned unchanged (see the
    module docstring's migration contract).  Anything else — strings,
    multiple parts, negative ints, ``None`` — is canonical-JSON
    encoded and SHA-256 hashed, so the mapping is stable across
    processes, platforms and Python versions (no ``hash()``
    randomization).
    """
    if not parts:
        raise ValueError("derive_seed needs at least one part")
    if len(parts) == 1 and isinstance(parts[0], int) and not isinstance(
        parts[0], bool
    ) and parts[0] >= 0:
        return parts[0]
    blob = json.dumps(parts, sort_keys=True, default=str).encode("utf-8")
    digest = hashlib.sha256(blob).digest()
    return int.from_bytes(digest[:8], "big") >> 1


def make_rng(*parts: object) -> random.Random:
    """A :class:`random.Random` seeded by :func:`derive_seed`."""
    return random.Random(derive_seed(*parts))


def sample_wrong_keys(
    key_size: int,
    count: int,
    correct_key: int,
    *parts: object,
) -> list[int]:
    """Deterministic distinct wrong keys for a ``key_size``-bit lock.

    Draws ``count`` keys distinct from each other and from
    ``correct_key``, seeded by ``parts`` (defaulting to a stream
    derived from ``key_size`` and ``correct_key``).  When ``count <=
    0`` or the wrong-key space has at most ``count`` members, the full
    space is returned in ascending order instead — small locks are
    evaluated exhaustively rather than sampled.

    ::

        >>> sample_wrong_keys(2, 0, correct_key=0b10)
        [0, 1, 3]
        >>> keys = sample_wrong_keys(16, 8, correct_key=5)
        >>> len(keys) == len(set(keys)) == 8 and 5 not in keys
        True
        >>> keys == sample_wrong_keys(16, 8, correct_key=5)
        True
    """
    if key_size < 1:
        raise ValueError("key_size must be positive")
    space = 1 << key_size
    if correct_key < 0 or correct_key >= space:
        raise ValueError(f"correct key {correct_key} does not fit in {key_size} bits")
    if count <= 0 or space - 1 <= count:
        return [k for k in range(space) if k != correct_key]
    rng = make_rng(*parts) if parts else make_rng("wrong-keys", key_size, correct_key)
    seen = {correct_key}
    keys: list[int] = []
    while len(keys) < count:
        candidate = rng.getrandbits(key_size)
        if candidate not in seen:
            seen.add(candidate)
            keys.append(candidate)
    return keys


def shuffled(items: Sequence, *parts: object) -> list:
    """A deterministically shuffled copy of ``items``."""
    copy = list(items)
    make_rng(*parts).shuffle(copy)
    return copy
