"""Reproduction of "On the One-Key Premise of Logic Locking" (DAC'24 LBR).

The package provides, from the ground up:

* :mod:`repro.sat` — a CDCL SAT solver (MiniSAT substitute),
* :mod:`repro.circuit` — gate-level netlists, simulation, `.bench` I/O
  and SAT-based equivalence checking,
* :mod:`repro.synth` — the logic-synthesis passes used to shrink
  conditional netlists (Design Compiler substitute),
* :mod:`repro.locking` — SARLock, LUT-based insertion, XOR locking and
  Anti-SAT,
* :mod:`repro.oracle` — the black-box "working chip" oracle,
* :mod:`repro.attacks` — the classic oracle-guided SAT attack,
* :mod:`repro.core` — the paper's contribution: the multi-key
  input-space-splitting attack and its MUX-based key composition,
* :mod:`repro.bench_circuits` — ISCAS'85-class benchmark generators,
* :mod:`repro.scenarios` — the scenario matrix: declarative
  ``scheme x attack x engine x circuit`` grids under the multi-key
  premise,
* :mod:`repro.experiments` — runners regenerating each paper table and
  figure (thin scenario specs where the matrix covers them),
* :mod:`repro.service` — the typed job API: versioned request/response
  envelopes, streaming job events, and the ``repro serve`` JSON-lines
  daemon the CLI is a thin client of.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
