"""Figure 1: the paper's worked example.

(a) The error distribution of a 3-input circuit locked with SARLock
    (``|I| = |K| = 3``, ``k* = 101``): every wrong key errs on exactly
    the input pattern equal to itself.

(b) The multi-key unlock: one key per half of the input space (split
    on the MSB), composed through a MUX on the same condition, is
    functionally equivalent to the original — proven here by CEC.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

from repro.attacks.brute_force import brute_force_keys
from repro.circuit.gates import GateType
from repro.circuit.netlist import Netlist
from repro.core.compose import compose_multikey_netlist, verify_composition
from repro.core.multikey import multikey_attack
from repro.locking.metrics import error_matrix, format_error_matrix
from repro.locking.sarlock import sarlock_lock
from repro.oracle.oracle import Oracle
from repro.runner import Runner, TaskSpec, register_task


def paper_example_circuit() -> Netlist:
    """A 3-input, 1-output circuit standing in for Fig. 1's example.

    The paper does not specify the carrier function — SARLock's error
    distribution is independent of it — so we use a small non-trivial
    one: ``y = (i0 XOR i1) XOR i2``.
    """
    netlist = Netlist("fig1_example")
    netlist.add_inputs(["i0", "i1", "i2"])  # i2 is the MSB
    netlist.add_gate("t0", GateType.XOR, ["i0", "i1"])
    netlist.add_gate("y", GateType.XOR, ["t0", "i2"])
    netlist.set_outputs(["y"])
    return netlist


@dataclass
class Figure1Result:
    matrix: list[list[bool]]
    matrix_text: str
    correct_key: int
    keys_msb0: list[int]
    keys_msb1: list[int]
    chosen_keys: list[int]
    composition_equivalent: bool
    composed_gates: int
    incorrect_pair: tuple[int, int] | None = None
    incorrect_pair_equivalent: bool | None = None

    @classmethod
    def from_payload(cls, payload: dict) -> "Figure1Result":
        """Rebuild from ``asdict`` output (JSON turns the pair into a list)."""
        data = dict(payload)
        if data.get("incorrect_pair") is not None:
            data["incorrect_pair"] = tuple(data["incorrect_pair"])
        return cls(**data)

    def format(self) -> str:
        lines = [
            "Figure 1(a): error distribution (rows = inputs, cols = keys; "
            "x = erroneous output)",
            self.matrix_text,
            "",
            f"correct key k* = {self.correct_key:03b} "
            f"(displayed MSB-first, as in the paper)",
            f"keys unlocking the MSB=0 half: "
            f"{[format(k, '03b') for k in self.keys_msb0]}",
            f"keys unlocking the MSB=1 half: "
            f"{[format(k, '03b') for k in self.keys_msb1]}",
            "",
            "Figure 1(b): MUX composition of "
            f"{[format(k, '03b') for k in self.chosen_keys]} on the MSB: "
            f"equivalent = {self.composition_equivalent} "
            f"({self.composed_gates} gates)",
        ]
        if self.incorrect_pair is not None:
            a, b = self.incorrect_pair
            lines.append(
                "Figure 1(b) with two *incorrect* keys "
                f"({a:03b} for MSB=0, {b:03b} for MSB=1): "
                f"equivalent = {self.incorrect_pair_equivalent}"
            )
        return "\n".join(lines)


@register_task("figure1")
def _figure1_task(params: dict) -> dict:
    """Worker: both panels of Fig. 1 as one artifact."""
    return asdict(_compute_figure1(params["correct_key"]))


def figure1_task(correct_key: int) -> TaskSpec:
    """The :class:`TaskSpec` for a Figure 1 regeneration."""
    return TaskSpec(
        kind="figure1",
        params={"correct_key": correct_key},
        label=f"figure1 k*={correct_key:03b}",
    )


def run_figure1(
    correct_key: int = 0b101, runner: Runner | None = None
) -> Figure1Result:
    """Regenerate both panels of Fig. 1.

    The default ``correct_key`` is the paper's ``101``.  Keys are
    displayed MSB-first (bit 2 = ``i2``'s comparator bit) to match the
    figure.
    """
    runner = runner or Runner()
    [task] = runner.run([figure1_task(correct_key)])
    return Figure1Result.from_payload(task.artifact)


def _compute_figure1(correct_key: int) -> Figure1Result:
    original = paper_example_circuit()
    locked = sarlock_lock(
        original,
        key_size=3,
        correct_key=correct_key,
        protected_inputs=["i0", "i1", "i2"],
    )

    matrix = error_matrix(locked, original)
    keys_msb0 = brute_force_keys(locked, Oracle(original), pin={"i2": False})
    keys_msb1 = brute_force_keys(locked, Oracle(original), pin={"i2": True})

    # Recover one key per half with the pinned SAT attack, like the
    # paper's attacker would (Algorithm 1 with N = 1 on the MSB).
    attack = multikey_attack(
        locked, original, effort=1, splitting_inputs=["i2"]
    )
    chosen = [k for k in attack.key_ints if k is not None]
    equivalence = verify_composition(
        locked, attack.splitting_inputs, attack.keys, original
    )
    composed = compose_multikey_netlist(
        locked, attack.splitting_inputs, attack.keys
    )

    # The paper's point sharpened: compose two keys that are both
    # *incorrect* globally and prove the result is still equivalent.
    incorrect_pair: tuple[int, int] | None = None
    incorrect_equivalent: bool | None = None
    wrong0 = [k for k in keys_msb0 if k != correct_key]
    wrong1 = [k for k in keys_msb1 if k != correct_key]
    if wrong0 and wrong1:
        incorrect_pair = (wrong0[0], wrong1[0])
        incorrect_equivalent = bool(
            verify_composition(
                locked, ["i2"], [incorrect_pair[0], incorrect_pair[1]], original
            )
        )

    return Figure1Result(
        matrix=matrix,
        matrix_text=format_error_matrix(matrix, key_width=3),
        correct_key=correct_key,
        keys_msb0=keys_msb0,
        keys_msb1=keys_msb1,
        chosen_keys=chosen,
        composition_equivalent=bool(equivalence),
        composed_gates=composed.num_gates,
        incorrect_pair=incorrect_pair,
        incorrect_pair_equivalent=incorrect_equivalent,
    )
