"""Figure 2: corruption rate vs. number of key sub-spaces.

The confidentiality counterpart of Figure 1.  Figure 1 shows *where*
wrong keys unlock correct function; this figure quantifies the same
phenomenon as a curve: as the input space is partitioned into ``2^N``
sub-spaces along the fanout-ranked splitting inputs, the mean
per-sub-space corruption of a wrong key falls and the fraction of
(wrong key, sub-space) pairs that the key unlocks *exactly* rises —
the one-key premise dissolving into per-sub-space correctness.

The driver is a thin spec over the ``corruption_cell`` task
(:mod:`repro.metrics.task`): one cached cell per effort, all riding
the shared runner — parity with direct
:func:`repro.metrics.evaluate_corruption` calls is pinned by
``tests/metrics/test_figure2.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.runner import Runner, TaskSpec


@dataclass
class Figure2Row:
    """One point on the curve: splitting effort ``N`` -> corruption."""

    effort: int
    num_subspaces: int
    splitting_inputs: list[str]
    corruption: float
    subspace_rate: float
    subspace_min: float
    subspace_max: float
    unlock_fraction: float


@dataclass
class Figure2Result:
    """The corruption-vs-sub-spaces curve for one locked circuit."""

    circuit: str
    scheme: str
    key_size: int
    scale: float
    key_samples: int
    keys_sampled: int
    exhaustive_keys: bool
    input_samples: int
    seed: int
    rows: list[Figure2Row] = field(default_factory=list)

    @classmethod
    def from_payload(cls, payload: dict) -> "Figure2Result":
        data = dict(payload)
        data["rows"] = [
            row if isinstance(row, Figure2Row) else Figure2Row(**row)
            for row in data.get("rows", [])
        ]
        return cls(**data)

    def format(self) -> str:
        from repro.experiments.report import format_table

        headers = [
            "N", "2^N", "corruption", "subspace rate",
            "min", "max", "unlocked pairs",
        ]
        rows = [
            [
                row.effort,
                row.num_subspaces,
                f"{row.corruption:.4g}",
                f"{row.subspace_rate:.4g}",
                f"{row.subspace_min:.4g}",
                f"{row.subspace_max:.4g}",
                f"{row.unlock_fraction:.1%}",
            ]
            for row in self.rows
        ]
        title = (
            f"Figure 2: per-sub-space corruption, {self.scheme} on "
            f"{self.circuit} (|K|={self.key_size}, {self.keys_sampled} "
            f"wrong keys{' exhaustive' if self.exhaustive_keys else ''}, "
            f"{self.input_samples} patterns)"
        )
        return format_table(headers, rows, title=title)


def figure2_tasks(
    circuit: str,
    scheme: str,
    scheme_params: dict,
    scale: float,
    efforts: tuple[int, ...],
    key_samples: int,
    seed: int,
    opt: str | None = None,
) -> list[TaskSpec]:
    """One ``corruption_cell`` task per effort point."""
    from repro.metrics import corruption_cell_task

    return [
        corruption_cell_task(
            scheme=scheme,
            scheme_params=scheme_params,
            circuit=circuit,
            scale=scale,
            effort=effort,
            seed=seed,
            metrics=("corruption", "subspace"),
            key_samples=key_samples,
            opt=opt,
        )
        for effort in efforts
    ]


def run_figure2(
    circuit: str = "c432",
    scheme: str = "sarlock",
    scheme_params: dict | None = None,
    key_size: int = 6,
    scale: float = 0.25,
    efforts: tuple[int, ...] = (0, 1, 2, 3),
    key_samples: int = 32,
    seed: int = 0,
    opt: str | None = None,
    runner: Runner | None = None,
) -> Figure2Result:
    """Regenerate the corruption-vs-sub-spaces curve.

    ``key_size`` is a convenience merged into ``scheme_params`` when
    the params do not pin one (matching the other drivers' shape);
    ``efforts`` are the ``N`` points of the curve.  Every point is one
    cached ``corruption_cell`` task on the shared runner.
    """
    runner = runner or Runner()
    params = dict(scheme_params or {})
    params.setdefault("key_size", int(key_size))
    efforts = tuple(int(n) for n in efforts)
    tasks = figure2_tasks(
        circuit=circuit,
        scheme=scheme,
        scheme_params=params,
        scale=scale,
        efforts=efforts,
        key_samples=int(key_samples),
        seed=int(seed),
        opt=opt,
    )
    reports = [task.artifact for task in runner.run(tasks)]
    rows = []
    for report in reports:
        subspace = report["metrics"]["subspace"]["detail"]
        rows.append(
            Figure2Row(
                effort=report["effort"],
                num_subspaces=subspace["num_subspaces"],
                splitting_inputs=list(subspace["splitting_inputs"]),
                corruption=report["metrics"]["corruption"]["value"],
                subspace_rate=report["metrics"]["subspace"]["value"],
                subspace_min=subspace["min"],
                subspace_max=subspace["max"],
                unlock_fraction=subspace["unlock_fraction"],
            )
        )
    first = reports[0]
    return Figure2Result(
        circuit=circuit,
        scheme=scheme,
        key_size=first["key_size"],
        scale=float(scale),
        key_samples=int(key_samples),
        keys_sampled=first["keys_sampled"],
        exhaustive_keys=first["exhaustive_keys"],
        input_samples=first["input_samples"],
        seed=int(seed),
        rows=rows,
    )
