"""Experiment D1: evaluating the multi-key countermeasure.

The paper's conclusion calls for "effective defenses to counter the
new 'multi-key' attack scenario"; this experiment evaluates the
prototype in :mod:`repro.locking.defense` head-to-head with plain
SARLock across the two levers the attack relies on:

* how many keys unlock the strongest sub-space the attacker can pick
  (exact, via BDDs),
* how much the conditional netlist shrinks,
* what the multi-key attack actually costs against each.

Each scheme is one ``defense_row`` task submitted through
:mod:`repro.runner`, so the two arms run side by side under ``--jobs``
and warm re-runs come from the result cache.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

from repro.bench_circuits.iscas85 import iscas85_like
from repro.core.multikey import multikey_attack
from repro.experiments.report import format_table, seconds
from repro.locking.defense import entangled_sarlock, splitting_resistance
from repro.locking.sarlock import sarlock_lock
from repro.runner import Runner, TaskSpec, register_task
from repro.synth.library import estimate_area

#: Scheme name -> locker; the task worker rebuilds the lock from this.
DEFENSE_SCHEMES = ("sarlock", "entangled")


@dataclass
class DefenseRow:
    scheme: str
    subspace_keys: int
    gate_reduction: float
    baseline_dips: int
    multikey_max_dips: int
    multikey_max_seconds: float
    area_overhead: float
    status: str


@dataclass
class DefenseResult:
    circuit: str
    scale: float
    key_size: int
    effort: int
    rows: list[DefenseRow] = field(default_factory=list)

    def format(self) -> str:
        headers = [
            "Scheme",
            "Keys/subspace",
            "Cond. shrink",
            "Base #DIP",
            "N-split max #DIP",
            "N-split max t",
            "Area +%",
        ]
        body = [
            [
                row.scheme,
                row.subspace_keys,
                f"{row.gate_reduction:.0%}",
                row.baseline_dips,
                row.multikey_max_dips,
                seconds(row.multikey_max_seconds),
                f"{row.area_overhead * 100:.1f}%",
            ]
            for row in self.rows
        ]
        return format_table(
            headers,
            body,
            title=(
                f"D1: multi-key countermeasure on {self.circuit} "
                f"(scale={self.scale}, |K|={self.key_size}, N={self.effort})"
            ),
        )


@register_task("defense_row")
def _defense_row_task(params: dict) -> dict:
    """Worker: lock with one scheme, measure resistance + attack cost."""
    seed = params["seed"]
    effort = params["effort"]
    time_limit = params["time_limit_per_task"]
    original = iscas85_like(params["circuit"], params["scale"])
    base_area = estimate_area(original)
    scheme = params["scheme"]
    if scheme == "sarlock":
        locked = sarlock_lock(original, params["key_size"], seed=seed)
    elif scheme == "entangled":
        locked = entangled_sarlock(
            original, params["key_size"], seed=seed, resist_effort=effort
        )
    else:
        raise ValueError(f"unknown defense scheme {scheme!r}")

    resistance = splitting_resistance(locked, original, effort, seed=seed)
    baseline = multikey_attack(
        locked, original, effort=0,
        time_limit_per_task=time_limit,
    )
    attack = multikey_attack(
        locked, original, effort=effort,
        time_limit_per_task=time_limit,
    )
    return asdict(
        DefenseRow(
            scheme=scheme,
            subspace_keys=resistance.keys_unlocking_subspace,
            gate_reduction=resistance.gate_reduction,
            baseline_dips=baseline.total_dips,
            multikey_max_dips=max(attack.dips_per_task),
            multikey_max_seconds=attack.max_subtask_seconds,
            area_overhead=estimate_area(locked.netlist) / base_area - 1,
            status=attack.status,
        )
    )


def run_defense_experiment(
    circuit: str = "c1908",
    scale: float = 0.3,
    key_size: int = 5,
    effort: int = 3,
    seed: int = 1,
    time_limit_per_task: float | None = 300.0,
    runner: Runner | None = None,
) -> DefenseResult:
    """Compare plain SARLock against the entangled variant.

    The default ``key_size`` respects the defense's rank bound
    (``|K| <= |I| - N``) so the guarantee regime is what gets shown;
    push ``key_size`` past it to watch the guarantee degrade.
    """
    runner = runner or Runner()
    specs = [
        TaskSpec(
            kind="defense_row",
            params={
                "circuit": circuit,
                "scale": scale,
                "key_size": key_size,
                "effort": effort,
                "seed": seed,
                "time_limit_per_task": time_limit_per_task,
                "scheme": scheme,
            },
            label=f"D1 {circuit} {scheme}",
        )
        for scheme in DEFENSE_SCHEMES
    ]
    result = DefenseResult(
        circuit=circuit, scale=scale, key_size=key_size, effort=effort
    )
    for task in runner.run(specs):
        result.rows.append(DefenseRow(**task.artifact))
    return result
