"""Experiment D1: evaluating the multi-key countermeasure.

The paper's conclusion calls for "effective defenses to counter the
new 'multi-key' attack scenario"; this experiment evaluates the
prototype in :mod:`repro.locking.defense` head-to-head with plain
SARLock across the two levers the attack relies on:

* how many keys unlock the strongest sub-space the attacker can pick
  (exact, via BDDs),
* how much the conditional netlist shrinks,
* what the multi-key attack actually costs against each.

The two arms are a thin :class:`~repro.scenarios.spec.ScenarioSpec`
over the scenario matrix (one ``scenario_cell`` per scheme with the
baseline and resistance measurements enabled), so they run side by
side under ``--jobs`` and warm re-runs come from the result cache.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.report import format_table, seconds
from repro.runner import Runner
from repro.scenarios.matrix import run_matrix
from repro.scenarios.spec import ScenarioSpec

@dataclass
class DefenseRow:
    scheme: str
    subspace_keys: int
    gate_reduction: float
    baseline_dips: int
    multikey_max_dips: int
    multikey_max_seconds: float
    area_overhead: float
    status: str


@dataclass
class DefenseResult:
    circuit: str
    scale: float
    key_size: int
    effort: int
    rows: list[DefenseRow] = field(default_factory=list)

    @classmethod
    def from_payload(cls, payload: dict) -> "DefenseResult":
        """Rebuild from ``asdict`` output (a JSON round trip is lossless)."""
        data = dict(payload)
        data["rows"] = [DefenseRow(**row) for row in data.get("rows", [])]
        return cls(**data)

    def format(self) -> str:
        headers = [
            "Scheme",
            "Keys/subspace",
            "Cond. shrink",
            "Base #DIP",
            "N-split max #DIP",
            "N-split max t",
            "Area +%",
        ]
        body = [
            [
                row.scheme,
                row.subspace_keys,
                f"{row.gate_reduction:.0%}",
                row.baseline_dips,
                row.multikey_max_dips,
                seconds(row.multikey_max_seconds),
                f"{row.area_overhead * 100:.1f}%",
            ]
            for row in self.rows
        ]
        return format_table(
            headers,
            body,
            title=(
                f"D1: multi-key countermeasure on {self.circuit} "
                f"(scale={self.scale}, |K|={self.key_size}, N={self.effort})"
            ),
        )


def defense_spec(
    circuit: str,
    scale: float,
    key_size: int,
    effort: int,
    seed: int,
    time_limit_per_task: float | None,
) -> ScenarioSpec:
    """D1 as a declarative scenario grid: plain vs entangled SARLock.

    Both arms run the reference engine (the literal paper flow — the
    conditional-shrink lever only exists there) with the ``N = 0``
    baseline and the BDD-exact resistance measurements enabled.
    """
    return ScenarioSpec(
        schemes=[
            ("sarlock", {"key_size": key_size}),
            ("entangled", {"key_size": key_size, "resist_effort": effort}),
        ],
        attacks=("sat",),
        engines=("reference",),
        circuits=(circuit,),
        scale=scale,
        efforts=(effort,),
        seeds=(seed,),
        time_limit_per_task=time_limit_per_task,
        include_baseline=True,
        measure_resistance=True,
    )


def run_defense_experiment(
    circuit: str = "c1908",
    scale: float = 0.3,
    key_size: int = 5,
    effort: int = 3,
    seed: int = 1,
    time_limit_per_task: float | None = 300.0,
    runner: Runner | None = None,
) -> DefenseResult:
    """Compare plain SARLock against the entangled variant.

    The default ``key_size`` respects the defense's rank bound
    (``|K| <= |I| - N``) so the guarantee regime is what gets shown;
    push ``key_size`` past it to watch the guarantee degrade.
    """
    matrix = run_matrix(
        defense_spec(
            circuit=circuit,
            scale=scale,
            key_size=key_size,
            effort=effort,
            seed=seed,
            time_limit_per_task=time_limit_per_task,
        ),
        runner=runner or Runner(),
    )
    result = DefenseResult(
        circuit=circuit, scale=scale, key_size=key_size, effort=effort
    )
    for cell in matrix.cells:
        result.rows.append(
            DefenseRow(
                scheme=cell.scheme,
                subspace_keys=cell.subspace_keys,
                gate_reduction=cell.gate_reduction,
                baseline_dips=cell.baseline_dips,
                multikey_max_dips=cell.max_dips,
                multikey_max_seconds=cell.max_seconds,
                area_overhead=cell.area_overhead,
                status=cell.status,
            )
        )
    return result
