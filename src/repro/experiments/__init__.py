"""Experiment runners regenerating the paper's tables and figures.

Each module owns one artifact:

* :mod:`repro.experiments.table1` — Table 1 (#DIP vs splitting effort,
  SARLock-locked c7552-class),
* :mod:`repro.experiments.table2` — Table 2 (runtime of attacking
  LUT-based insertion, baseline vs 16 parallel sub-tasks),
* :mod:`repro.experiments.figure1` — Fig. 1(a) error distribution and
  Fig. 1(b) multi-key MUX composition,
* :mod:`repro.experiments.figure2` — corruption rate vs. number of
  key sub-spaces (the confidentiality counterpart of Fig. 1, built on
  :mod:`repro.metrics`),
* :mod:`repro.experiments.ablation_splitting` — A1: splitting-input
  selection strategies,
* :mod:`repro.experiments.ablation_synthesis` — A2: conditional-netlist
  synthesis on/off.

Every runner accepts a scale/limits so the same code serves smoke
tests, the pytest benchmarks and full-scale reproduction runs.  All of
them submit their rows/cells as :mod:`repro.runner` tasks: pass a
configured :class:`repro.runner.Runner` to fan work out across
processes and reuse cached artifacts.
"""

from repro.experiments.defense import DefenseResult, run_defense_experiment
from repro.experiments.figure1 import Figure1Result, run_figure1
from repro.experiments.figure2 import Figure2Result, run_figure2
from repro.experiments.table1 import Table1Result, run_table1
from repro.experiments.table2 import Table2Result, run_table2

__all__ = [
    "run_table1",
    "Table1Result",
    "run_table2",
    "Table2Result",
    "run_figure1",
    "Figure1Result",
    "run_figure2",
    "Figure2Result",
    "run_defense_experiment",
    "DefenseResult",
]
