"""Table 1: #DIP for SARLock-locked c7552 under splitting effort N.

The paper's flow checker: SARLock's #DIP is deterministic
(one DIP per wrong key in the reachable sub-space), so the expected
shape is ``#DIP ~ 2^|K| - 1`` at ``N = 0``, roughly halving per unit of
``N``, with *identical* #DIP across the ``2^N`` parallel tasks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bench_circuits.iscas85 import iscas85_like
from repro.core.multikey import MultiKeyResult, multikey_attack
from repro.experiments.report import format_table
from repro.locking.sarlock import sarlock_lock


@dataclass
class Table1Cell:
    """One (key size, effort) grid entry."""

    key_size: int
    effort: int
    dips_per_task: list[int]
    uniform: bool  # paper: "the same #DIP for all the parallelized tasks"
    max_dips: int
    status: str


@dataclass
class Table1Result:
    """The full grid plus provenance."""

    circuit: str
    scale: float
    key_sizes: list[int]
    efforts: list[int]
    cells: list[Table1Cell] = field(default_factory=list)

    def cell(self, key_size: int, effort: int) -> Table1Cell:
        for entry in self.cells:
            if entry.key_size == key_size and entry.effort == effort:
                return entry
        raise KeyError((key_size, effort))

    def format(self) -> str:
        headers = ["|K|"] + [
            f"N={n}" + (" (baseline)" if n == 0 else "") for n in self.efforts
        ]
        rows = []
        for k in self.key_sizes:
            row: list[object] = [k]
            for n in self.efforts:
                entry = self.cell(k, n)
                mark = "" if entry.uniform else "*"
                row.append(f"{entry.max_dips}{mark}")
            rows.append(row)
        note = "(#DIP of the parallel tasks; * = tasks disagreed)"
        title = (
            f"Table 1: #DIP for SARLock-locked {self.circuit} "
            f"(scale={self.scale}) {note}"
        )
        return format_table(headers, rows, title=title)


def run_table1(
    key_sizes: tuple[int, ...] = (4, 8, 12),
    efforts: tuple[int, ...] = (0, 1, 2, 3, 4),
    circuit: str = "c7552",
    scale: float = 0.25,
    seed: int = 0,
    time_limit_per_task: float | None = None,
    parallel: bool = False,
) -> Table1Result:
    """Regenerate Table 1.

    The paper uses the full-size c7552; ``scale`` shrinks the carrier
    circuit, which does not change SARLock's #DIP (it depends only on
    the key size and the splitting effort) but keeps pure-Python
    runtimes reasonable.
    """
    original = iscas85_like(circuit, scale)
    result = Table1Result(
        circuit=circuit,
        scale=scale,
        key_sizes=list(key_sizes),
        efforts=list(efforts),
    )
    for key_size in key_sizes:
        locked = sarlock_lock(original, key_size, seed=seed)
        for effort in efforts:
            attack: MultiKeyResult = multikey_attack(
                locked,
                original,
                effort=effort,
                parallel=parallel,
                time_limit_per_task=time_limit_per_task,
                seed=seed,
            )
            dips = attack.dips_per_task
            result.cells.append(
                Table1Cell(
                    key_size=key_size,
                    effort=effort,
                    dips_per_task=dips,
                    uniform=len(set(dips)) == 1,
                    max_dips=max(dips) if dips else 0,
                    status=attack.status,
                )
            )
    return result
