"""Table 1: #DIP for SARLock-locked c7552 under splitting effort N.

The paper's flow checker: SARLock's #DIP is deterministic
(one DIP per wrong key in the reachable sub-space), so the expected
shape is ``#DIP ~ 2^|K| - 1`` at ``N = 0``, roughly halving per unit of
``N``, with *identical* #DIP across the ``2^N`` parallel tasks.

The grid is a thin :class:`~repro.scenarios.spec.ScenarioSpec` over
the scenario matrix: every ``(key size, effort)`` entry is one
``scenario_cell`` task submitted through :mod:`repro.runner`, so the
grid fans out across cores and warm re-runs come straight from the
result cache.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.report import format_table
from repro.runner import Runner
from repro.scenarios.matrix import run_matrix
from repro.scenarios.spec import ScenarioSpec


@dataclass
class Table1Cell:
    """One (key size, effort) grid entry."""

    key_size: int
    effort: int
    dips_per_task: list[int]
    uniform: bool  # paper: "the same #DIP for all the parallelized tasks"
    max_dips: int
    status: str


@dataclass
class Table1Result:
    """The full grid plus provenance."""

    circuit: str
    scale: float
    key_sizes: list[int]
    efforts: list[int]
    cells: list[Table1Cell] = field(default_factory=list)

    def cell(self, key_size: int, effort: int) -> Table1Cell:
        for entry in self.cells:
            if entry.key_size == key_size and entry.effort == effort:
                return entry
        raise KeyError((key_size, effort))

    @classmethod
    def from_payload(cls, payload: dict) -> "Table1Result":
        """Rebuild from ``asdict`` output (a JSON round trip is lossless)."""
        data = dict(payload)
        data["cells"] = [Table1Cell(**cell) for cell in data.get("cells", [])]
        return cls(**data)

    def format(self) -> str:
        headers = ["|K|"] + [
            f"N={n}" + (" (baseline)" if n == 0 else "") for n in self.efforts
        ]
        rows = []
        for k in self.key_sizes:
            row: list[object] = [k]
            for n in self.efforts:
                entry = self.cell(k, n)
                mark = "" if entry.uniform else "*"
                row.append(f"{entry.max_dips}{mark}")
            rows.append(row)
        note = "(#DIP of the parallel tasks; * = tasks disagreed)"
        title = (
            f"Table 1: #DIP for SARLock-locked {self.circuit} "
            f"(scale={self.scale}) {note}"
        )
        return format_table(headers, rows, title=title)


def table1_spec(
    key_sizes: tuple[int, ...],
    efforts: tuple[int, ...],
    circuit: str,
    scale: float,
    seed: int,
    time_limit_per_task: float | None,
    engine: str = "sharded",
) -> ScenarioSpec:
    """Table 1 as a declarative scenario grid.

    One SARLock scheme axis entry per key size, the exact SAT attack,
    one engine — the matrix's expansion order (scheme-major, effort
    inner) reproduces the classic driver's row order exactly.
    """
    return ScenarioSpec(
        schemes=[("sarlock", {"key_size": k}) for k in key_sizes],
        attacks=("sat",),
        engines=(engine,),
        circuits=(circuit,),
        scale=scale,
        efforts=tuple(efforts),
        seeds=(seed,),
        time_limit_per_task=time_limit_per_task,
    )


def run_table1(
    key_sizes: tuple[int, ...] = (4, 8, 12),
    efforts: tuple[int, ...] = (0, 1, 2, 3, 4),
    circuit: str = "c7552",
    scale: float = 0.25,
    seed: int = 0,
    time_limit_per_task: float | None = None,
    parallel: bool = False,
    runner: Runner | None = None,
    engine: str = "sharded",
) -> Table1Result:
    """Regenerate Table 1.

    The paper uses the full-size c7552; ``scale`` shrinks the carrier
    circuit, which does not change SARLock's #DIP (it depends only on
    the key size and the splitting effort) but keeps pure-Python
    runtimes reasonable.

    ``engine`` selects the multi-key implementation: the default
    ``"sharded"`` engine shares one miter encoding across all
    sub-spaces; ``"reference"`` is the literal per-sub-space Algorithm
    1 arm (both report the same #DIP grid).
    """
    matrix = run_matrix(
        table1_spec(
            key_sizes=key_sizes,
            efforts=efforts,
            circuit=circuit,
            scale=scale,
            seed=seed,
            time_limit_per_task=time_limit_per_task,
            engine=engine,
        ),
        runner=runner or Runner(),
        inner_parallel=parallel,
    )
    result = Table1Result(
        circuit=circuit,
        scale=scale,
        key_sizes=list(key_sizes),
        efforts=list(efforts),
    )
    for cell in matrix.cells:
        result.cells.append(
            Table1Cell(
                key_size=cell.key_size,
                effort=cell.effort,
                dips_per_task=cell.dips_per_task,
                uniform=cell.uniform,
                max_dips=cell.max_dips,
                status=cell.status,
            )
        )
    return result
