"""Table 1: #DIP for SARLock-locked c7552 under splitting effort N.

The paper's flow checker: SARLock's #DIP is deterministic
(one DIP per wrong key in the reachable sub-space), so the expected
shape is ``#DIP ~ 2^|K| - 1`` at ``N = 0``, roughly halving per unit of
``N``, with *identical* #DIP across the ``2^N`` parallel tasks.

Every ``(key size, effort)`` grid entry is one ``table1_cell`` task
submitted through :mod:`repro.runner`, so the grid fans out across
cores and warm re-runs come straight from the result cache.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, replace

from repro.bench_circuits.iscas85 import iscas85_like
from repro.core.multikey import multikey_attack
from repro.experiments.report import format_table
from repro.locking.sarlock import sarlock_lock
from repro.runner import Runner, TaskSpec, register_task


@dataclass
class Table1Cell:
    """One (key size, effort) grid entry."""

    key_size: int
    effort: int
    dips_per_task: list[int]
    uniform: bool  # paper: "the same #DIP for all the parallelized tasks"
    max_dips: int
    status: str


@dataclass
class Table1Result:
    """The full grid plus provenance."""

    circuit: str
    scale: float
    key_sizes: list[int]
    efforts: list[int]
    cells: list[Table1Cell] = field(default_factory=list)

    def cell(self, key_size: int, effort: int) -> Table1Cell:
        for entry in self.cells:
            if entry.key_size == key_size and entry.effort == effort:
                return entry
        raise KeyError((key_size, effort))

    def format(self) -> str:
        headers = ["|K|"] + [
            f"N={n}" + (" (baseline)" if n == 0 else "") for n in self.efforts
        ]
        rows = []
        for k in self.key_sizes:
            row: list[object] = [k]
            for n in self.efforts:
                entry = self.cell(k, n)
                mark = "" if entry.uniform else "*"
                row.append(f"{entry.max_dips}{mark}")
            rows.append(row)
        note = "(#DIP of the parallel tasks; * = tasks disagreed)"
        title = (
            f"Table 1: #DIP for SARLock-locked {self.circuit} "
            f"(scale={self.scale}) {note}"
        )
        return format_table(headers, rows, title=title)


@register_task("table1_cell")
def _table1_cell_task(params: dict) -> dict:
    """Worker: one SARLock attack at one (key size, effort) point."""
    seed = params["seed"]
    original = iscas85_like(params["circuit"], params["scale"])
    locked = sarlock_lock(original, params["key_size"], seed=seed)
    attack = multikey_attack(
        locked,
        original,
        effort=params["effort"],
        parallel=params.get("parallel", False),
        time_limit_per_task=params["time_limit_per_task"],
        seed=seed,
        engine=params.get("engine", "reference"),
    )
    dips = attack.dips_per_task
    return asdict(
        Table1Cell(
            key_size=params["key_size"],
            effort=params["effort"],
            dips_per_task=dips,
            uniform=len(set(dips)) == 1,
            max_dips=max(dips) if dips else 0,
            status=attack.status,
        )
    )


def table1_task(
    key_size: int,
    effort: int,
    circuit: str,
    scale: float,
    seed: int,
    time_limit_per_task: float | None,
    parallel: bool = False,
    engine: str = "sharded",
) -> TaskSpec:
    """The :class:`TaskSpec` for one Table 1 grid entry.

    ``engine`` is hashed (it selects the attack implementation), while
    ``parallel`` stays in the unhashed execution context.
    """
    return TaskSpec(
        kind="table1_cell",
        params={
            "key_size": key_size,
            "effort": effort,
            "circuit": circuit,
            "scale": scale,
            "seed": seed,
            "time_limit_per_task": time_limit_per_task,
            "engine": engine,
        },
        context={"parallel": parallel},
        label=f"table1 |K|={key_size} N={effort}",
    )


def run_table1(
    key_sizes: tuple[int, ...] = (4, 8, 12),
    efforts: tuple[int, ...] = (0, 1, 2, 3, 4),
    circuit: str = "c7552",
    scale: float = 0.25,
    seed: int = 0,
    time_limit_per_task: float | None = None,
    parallel: bool = False,
    runner: Runner | None = None,
    engine: str = "sharded",
) -> Table1Result:
    """Regenerate Table 1.

    The paper uses the full-size c7552; ``scale`` shrinks the carrier
    circuit, which does not change SARLock's #DIP (it depends only on
    the key size and the splitting effort) but keeps pure-Python
    runtimes reasonable.

    ``engine`` selects the multi-key implementation: the default
    ``"sharded"`` engine shares one miter encoding across all
    sub-spaces; ``"reference"`` is the literal per-sub-space Algorithm
    1 arm (both report the same #DIP grid).
    """
    runner = runner or Runner()
    specs = [
        table1_task(
            key_size=key_size,
            effort=effort,
            circuit=circuit,
            scale=scale,
            seed=seed,
            time_limit_per_task=time_limit_per_task,
            parallel=False,
            engine=engine,
        )
        for key_size in key_sizes
        for effort in efforts
    ]
    # As in run_table2: give the 2^N sub-attack pool back to each cell
    # when the runner's own pool has at most one cell to execute.
    if parallel and (runner.jobs <= 1 or runner.pending_count(specs) <= 1):
        specs = [
            replace(task, context={**task.context, "parallel": True})
            for task in specs
        ]
    result = Table1Result(
        circuit=circuit,
        scale=scale,
        key_sizes=list(key_sizes),
        efforts=list(efforts),
    )
    for task in runner.run(specs):
        result.cells.append(Table1Cell(**task.artifact))
    return result
