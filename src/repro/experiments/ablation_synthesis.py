"""Ablation A2: what does conditional-netlist synthesis buy?

Algorithm 1 line 4 synthesizes each pinned netlist "to remove any
redundant logic".  This ablation runs the same sub-attacks with the
synthesis step disabled (the SAT attack still pins the inputs with
unit clauses, so results are identical — only cost changes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import fmean

from repro.bench_circuits.iscas85 import iscas85_like
from repro.core.multikey import multikey_attack
from repro.experiments.report import format_table, seconds
from repro.locking.lut_lock import LutModuleSpec, lut_lock


@dataclass
class SynthesisAblationRow:
    synthesis: bool
    mean_gates: float
    total_dips: int
    max_seconds: float
    mean_seconds: float
    keys_match: bool
    status: str


@dataclass
class SynthesisAblationResult:
    circuit: str
    scale: float
    effort: int
    rows: list[SynthesisAblationRow] = field(default_factory=list)

    def format(self) -> str:
        headers = [
            "Cond. synthesis",
            "Mean gates",
            "Total #DIP",
            "Max task",
            "Mean task",
            "Status",
        ]
        body = [
            [
                "on" if row.synthesis else "off",
                f"{row.mean_gates:.0f}",
                row.total_dips,
                seconds(row.max_seconds),
                seconds(row.mean_seconds),
                row.status,
            ]
            for row in self.rows
        ]
        return format_table(
            headers,
            body,
            title=(
                f"A2: conditional-netlist synthesis on {self.circuit} "
                f"(scale={self.scale}, N={self.effort})"
            ),
        )


def run_synthesis_ablation(
    circuit: str = "c1355",
    scale: float = 0.3,
    effort: int = 3,
    spec: LutModuleSpec | None = None,
    seed: int = 1,
    time_limit_per_task: float | None = 120.0,
) -> SynthesisAblationResult:
    """Run the multi-key attack with and without conditional synthesis."""
    spec = spec or LutModuleSpec.paper_scale()
    original = iscas85_like(circuit, scale)
    locked = lut_lock(original, spec, seed=seed)
    result = SynthesisAblationResult(circuit=circuit, scale=scale, effort=effort)
    reference_keys: list[int | None] | None = None
    for run_synthesis in (True, False):
        attack = multikey_attack(
            locked,
            original,
            effort=effort,
            run_synthesis=run_synthesis,
            seed=seed,
            time_limit_per_task=time_limit_per_task,
        )
        keys = attack.key_ints
        if reference_keys is None:
            reference_keys = keys
            keys_match = True
        else:
            keys_match = keys == reference_keys
        result.rows.append(
            SynthesisAblationRow(
                synthesis=run_synthesis,
                mean_gates=fmean(t.gates_after for t in attack.subtasks),
                total_dips=attack.total_dips,
                max_seconds=attack.max_subtask_seconds,
                mean_seconds=attack.mean_subtask_seconds,
                keys_match=keys_match,
                status=attack.status,
            )
        )
    return result
