"""Ablation A2: what does conditional-netlist synthesis buy?

Algorithm 1 line 4 synthesizes each pinned netlist "to remove any
redundant logic".  This ablation runs the same sub-attacks with the
synthesis step disabled (the SAT attack still pins the inputs with
unit clauses, so results are identical — only cost changes).  Each
on/off arm is one ``ablation_synthesis_row`` task submitted through
:mod:`repro.runner`; the worker reports the recovered keys so the
driver can check the two arms agree.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from statistics import fmean

from repro.bench_circuits.iscas85 import iscas85_like
from repro.core.multikey import multikey_attack
from repro.experiments.report import format_table, seconds
from repro.locking.lut_lock import LutModuleSpec, lut_lock
from repro.runner import Runner, TaskSpec, register_task


@dataclass
class SynthesisAblationRow:
    synthesis: bool
    mean_gates: float
    total_dips: int
    max_seconds: float
    mean_seconds: float
    keys_match: bool
    status: str


@dataclass
class SynthesisAblationResult:
    circuit: str
    scale: float
    effort: int
    rows: list[SynthesisAblationRow] = field(default_factory=list)

    @classmethod
    def from_payload(cls, payload: dict) -> "SynthesisAblationResult":
        """Rebuild from ``asdict`` output (a JSON round trip is lossless)."""
        data = dict(payload)
        data["rows"] = [
            SynthesisAblationRow(**row) for row in data.get("rows", [])
        ]
        return cls(**data)

    def format(self) -> str:
        headers = [
            "Cond. synthesis",
            "Mean gates",
            "Total #DIP",
            "Max task",
            "Mean task",
            "Status",
        ]
        body = [
            [
                "on" if row.synthesis else "off",
                f"{row.mean_gates:.0f}",
                row.total_dips,
                seconds(row.max_seconds),
                seconds(row.mean_seconds),
                row.status,
            ]
            for row in self.rows
        ]
        return format_table(
            headers,
            body,
            title=(
                f"A2: conditional-netlist synthesis on {self.circuit} "
                f"(scale={self.scale}, N={self.effort})"
            ),
        )


@register_task("ablation_synthesis_row")
def _synthesis_row_task(params: dict) -> dict:
    """Worker: one arm (synthesis on or off) of the A2 comparison.

    The artifact carries ``key_ints`` (not a row field) so the driver
    can compute ``keys_match`` across arms without serializing netlists.
    """
    seed = params["seed"]
    spec = LutModuleSpec(**params["spec"])
    original = iscas85_like(params["circuit"], params["scale"])
    locked = lut_lock(original, spec, seed=seed)
    attack = multikey_attack(
        locked,
        original,
        effort=params["effort"],
        run_synthesis=params["run_synthesis"],
        seed=seed,
        time_limit_per_task=params["time_limit_per_task"],
    )
    return {
        "synthesis": params["run_synthesis"],
        "mean_gates": fmean(t.gates_after for t in attack.subtasks),
        "total_dips": attack.total_dips,
        "max_seconds": attack.max_subtask_seconds,
        "mean_seconds": attack.mean_subtask_seconds,
        "status": attack.status,
        "key_ints": attack.key_ints,
    }


def run_synthesis_ablation(
    circuit: str = "c1355",
    scale: float = 0.3,
    effort: int = 3,
    spec: LutModuleSpec | None = None,
    seed: int = 1,
    time_limit_per_task: float | None = 120.0,
    runner: Runner | None = None,
) -> SynthesisAblationResult:
    """Run the multi-key attack with and without conditional synthesis."""
    spec = spec or LutModuleSpec.paper_scale()
    runner = runner or Runner()
    specs = [
        TaskSpec(
            kind="ablation_synthesis_row",
            params={
                "circuit": circuit,
                "scale": scale,
                "effort": effort,
                "spec": asdict(spec),
                "run_synthesis": run_synthesis,
                "seed": seed,
                "time_limit_per_task": time_limit_per_task,
            },
            label=f"A2 {circuit} synth={'on' if run_synthesis else 'off'}",
        )
        for run_synthesis in (True, False)
    ]
    result = SynthesisAblationResult(circuit=circuit, scale=scale, effort=effort)
    reference_keys: list[int | None] | None = None
    for task in runner.run(specs):
        artifact = dict(task.artifact)
        keys = artifact.pop("key_ints")
        if reference_keys is None:
            reference_keys = keys
            keys_match = True
        else:
            keys_match = keys == reference_keys
        result.rows.append(
            SynthesisAblationRow(keys_match=keys_match, **artifact)
        )
    return result
