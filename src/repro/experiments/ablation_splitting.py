"""Ablation A1: does the fan-out-cone splitting heuristic matter?

The paper selects splitting inputs by ranking primary inputs on the
number of key-controlled gates in their fan-out cones, arguing that
pinning such inputs "can significantly simplify the netlist's logic".
This ablation runs the multi-key attack with that heuristic against
``random`` and ``first`` selections and compares conditional-netlist
sizes, #DIP and sub-task runtimes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import fmean

from repro.bench_circuits.iscas85 import iscas85_like
from repro.core.multikey import multikey_attack
from repro.experiments.report import format_table, seconds
from repro.locking.lut_lock import LutModuleSpec, lut_lock


@dataclass
class AblationRow:
    strategy: str
    mean_gates_after: float
    total_dips: int
    max_seconds: float
    mean_seconds: float
    status: str


@dataclass
class SplittingAblationResult:
    circuit: str
    scale: float
    effort: int
    rows: list[AblationRow] = field(default_factory=list)

    def format(self) -> str:
        headers = [
            "Selection",
            "Mean cond. gates",
            "Total #DIP",
            "Max task",
            "Mean task",
            "Status",
        ]
        body = [
            [
                row.strategy,
                f"{row.mean_gates_after:.0f}",
                row.total_dips,
                seconds(row.max_seconds),
                seconds(row.mean_seconds),
                row.status,
            ]
            for row in self.rows
        ]
        return format_table(
            headers,
            body,
            title=(
                f"A1: splitting-input selection on {self.circuit} "
                f"(scale={self.scale}, N={self.effort})"
            ),
        )


def run_splitting_ablation(
    circuit: str = "c6288",
    scale: float = 0.3,
    effort: int = 3,
    spec: LutModuleSpec | None = None,
    strategies: tuple[str, ...] = ("fanout", "random", "first"),
    seed: int = 1,
    time_limit_per_task: float | None = 120.0,
) -> SplittingAblationResult:
    """Compare splitting strategies on one LUT-locked benchmark."""
    spec = spec or LutModuleSpec.paper_scale()
    original = iscas85_like(circuit, scale)
    locked = lut_lock(original, spec, seed=seed)
    result = SplittingAblationResult(circuit=circuit, scale=scale, effort=effort)
    for strategy in strategies:
        attack = multikey_attack(
            locked,
            original,
            effort=effort,
            selection=strategy,
            seed=seed,
            time_limit_per_task=time_limit_per_task,
        )
        result.rows.append(
            AblationRow(
                strategy=strategy,
                mean_gates_after=fmean(t.gates_after for t in attack.subtasks),
                total_dips=attack.total_dips,
                max_seconds=attack.max_subtask_seconds,
                mean_seconds=attack.mean_subtask_seconds,
                status=attack.status,
            )
        )
    return result
