"""Ablation A1: does the fan-out-cone splitting heuristic matter?

The paper selects splitting inputs by ranking primary inputs on the
number of key-controlled gates in their fan-out cones, arguing that
pinning such inputs "can significantly simplify the netlist's logic".
This ablation runs the multi-key attack with that heuristic against
``random`` and ``first`` selections and compares conditional-netlist
sizes, #DIP and sub-task runtimes.  Each strategy arm is one
``ablation_splitting_row`` task submitted through :mod:`repro.runner`.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from statistics import fmean

from repro.bench_circuits.iscas85 import iscas85_like
from repro.core.multikey import multikey_attack
from repro.experiments.report import format_table, seconds
from repro.locking.lut_lock import LutModuleSpec, lut_lock
from repro.runner import Runner, TaskSpec, register_task


@dataclass
class AblationRow:
    strategy: str
    mean_gates_after: float
    total_dips: int
    max_seconds: float
    mean_seconds: float
    status: str


@dataclass
class SplittingAblationResult:
    circuit: str
    scale: float
    effort: int
    rows: list[AblationRow] = field(default_factory=list)

    @classmethod
    def from_payload(cls, payload: dict) -> "SplittingAblationResult":
        """Rebuild from ``asdict`` output (a JSON round trip is lossless)."""
        data = dict(payload)
        data["rows"] = [AblationRow(**row) for row in data.get("rows", [])]
        return cls(**data)

    def format(self) -> str:
        headers = [
            "Selection",
            "Mean cond. gates",
            "Total #DIP",
            "Max task",
            "Mean task",
            "Status",
        ]
        body = [
            [
                row.strategy,
                f"{row.mean_gates_after:.0f}",
                row.total_dips,
                seconds(row.max_seconds),
                seconds(row.mean_seconds),
                row.status,
            ]
            for row in self.rows
        ]
        return format_table(
            headers,
            body,
            title=(
                f"A1: splitting-input selection on {self.circuit} "
                f"(scale={self.scale}, N={self.effort})"
            ),
        )


@register_task("ablation_splitting_row")
def _splitting_row_task(params: dict) -> dict:
    """Worker: the multi-key attack under one selection strategy."""
    seed = params["seed"]
    spec = LutModuleSpec(**params["spec"])
    original = iscas85_like(params["circuit"], params["scale"])
    locked = lut_lock(original, spec, seed=seed)
    attack = multikey_attack(
        locked,
        original,
        effort=params["effort"],
        selection=params["strategy"],
        seed=seed,
        time_limit_per_task=params["time_limit_per_task"],
    )
    return asdict(
        AblationRow(
            strategy=params["strategy"],
            mean_gates_after=fmean(t.gates_after for t in attack.subtasks),
            total_dips=attack.total_dips,
            max_seconds=attack.max_subtask_seconds,
            mean_seconds=attack.mean_subtask_seconds,
            status=attack.status,
        )
    )


def run_splitting_ablation(
    circuit: str = "c6288",
    scale: float = 0.3,
    effort: int = 3,
    spec: LutModuleSpec | None = None,
    strategies: tuple[str, ...] = ("fanout", "random", "first"),
    seed: int = 1,
    time_limit_per_task: float | None = 120.0,
    runner: Runner | None = None,
) -> SplittingAblationResult:
    """Compare splitting strategies on one LUT-locked benchmark."""
    spec = spec or LutModuleSpec.paper_scale()
    runner = runner or Runner()
    specs = [
        TaskSpec(
            kind="ablation_splitting_row",
            params={
                "circuit": circuit,
                "scale": scale,
                "effort": effort,
                "spec": asdict(spec),
                "strategy": strategy,
                "seed": seed,
                "time_limit_per_task": time_limit_per_task,
            },
            label=f"A1 {circuit} {strategy}",
        )
        for strategy in strategies
    ]
    result = SplittingAblationResult(circuit=circuit, scale=scale, effort=effort)
    for task in runner.run(specs):
        result.rows.append(AblationRow(**task.artifact))
    return result
