"""Table 2: runtime of attacking LUT-based insertion.

For each benchmark: the baseline single-key SAT attack versus the
multi-key attack at ``N = 4`` (16 sub-tasks).  As in the paper we
report the minimum / mean / maximum sub-task runtime and the
``maximum / baseline`` ratio — the attack's wall-clock cost on a
16-core machine is its slowest sub-task.

The benchmark list is a thin :class:`~repro.scenarios.spec.ScenarioSpec`
over the scenario matrix (one ``scenario_cell`` per circuit, with the
baseline arm and CEC verification enabled): rows fan out across worker
processes under ``--jobs`` and re-runs come back from the on-disk
result cache.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

from repro.experiments.report import format_table, seconds
from repro.locking.lut_lock import LutModuleSpec
from repro.runner import Runner
from repro.scenarios.matrix import run_matrix
from repro.scenarios.spec import ScenarioSpec

#: The paper's Table 2 benchmark list.
TABLE2_CIRCUITS = (
    "c880",
    "c1355",
    "c1908",
    "c2670",
    "c3540",
    "c5315",
    "c6288",
    "c7552",
)


@dataclass
class Table2Row:
    """One benchmark's baseline-vs-multikey comparison."""

    circuit: str
    baseline_seconds: float
    baseline_status: str
    min_seconds: float
    mean_seconds: float
    max_seconds: float
    multikey_status: str
    ratio: float  # max sub-task / baseline (the paper's metric)
    baseline_dips: int
    dips_per_task: list[int]
    composition_equivalent: bool | None = None


@dataclass
class Table2Result:
    scale: float
    effort: int
    spec: LutModuleSpec
    rows: list[Table2Row] = field(default_factory=list)

    @classmethod
    def from_payload(cls, payload: dict) -> "Table2Result":
        """Rebuild from ``asdict`` output (a JSON round trip is lossless)."""
        data = dict(payload)
        data["spec"] = LutModuleSpec(**data["spec"])
        data["rows"] = [Table2Row(**row) for row in data.get("rows", [])]
        return cls(**data)

    def format(self) -> str:
        headers = [
            "Circuit",
            "Baseline [5]",
            "Minimum",
            "Mean",
            "Maximum",
            "Maximum/Baseline",
            "CEC",
        ]
        body = []
        for row in self.rows:
            body.append(
                [
                    row.circuit,
                    seconds(row.baseline_seconds)
                    + ("" if row.baseline_status == "ok" else "!"),
                    seconds(row.min_seconds),
                    seconds(row.mean_seconds),
                    seconds(row.max_seconds)
                    + ("" if row.multikey_status == "ok" else "!"),
                    f"{row.ratio:.3f}",
                    {True: "pass", False: "FAIL", None: "-"}[
                        row.composition_equivalent
                    ],
                ]
            )
        title = (
            f"Table 2: runtime of attacking LUT-based insertion "
            f"(scale={self.scale}, {self.spec.key_bits}-bit key, N={self.effort})"
        )
        return format_table(headers, body, title=title)


def table2_spec(
    circuits: tuple[str, ...],
    scale: float,
    spec: LutModuleSpec,
    effort: int,
    time_limit_per_task: float | None,
    seed: int,
    verify: bool,
    engine: str = "sharded",
) -> ScenarioSpec:
    """Table 2 as a declarative scenario grid.

    One LUT-locked cell per circuit, with the ``N = 0`` baseline arm
    and (optionally) CEC verification of the composed multi-key
    netlist.  ``engine`` selects the N > 0 implementation and *is*
    hashed — timing columns are part of the artifact, and the engines
    earn different ones.
    """
    return ScenarioSpec(
        schemes=[("lut", {"spec": asdict(spec)})],
        attacks=("sat",),
        engines=(engine,),
        circuits=tuple(circuits),
        scale=scale,
        efforts=(effort,),
        seeds=(seed,),
        time_limit_per_task=time_limit_per_task,
        include_baseline=True,
        verify_composition=verify,
    )


def run_table2(
    circuits: tuple[str, ...] = TABLE2_CIRCUITS,
    scale: float = 0.4,
    spec: LutModuleSpec | None = None,
    effort: int = 4,
    parallel: bool = True,
    processes: int | None = None,
    time_limit_per_task: float | None = 300.0,
    seed: int = 1,
    verify: bool = True,
    runner: Runner | None = None,
    engine: str = "sharded",
) -> Table2Result:
    """Regenerate Table 2.

    ``spec`` defaults to :meth:`LutModuleSpec.paper_scale` (the
     14-input two-stage module).  ``verify=True`` additionally composes
    the 16 recovered keys per Fig. 1(b) and proves CEC equivalence —
    something the paper asserts but does not report per row.

    ``runner`` fans rows out across processes and serves cached rows;
    when its pool will execute more than one row the *inner* sub-task
    pool is disabled so worker processes do not oversubscribe the
    machine (a lone uncached row keeps its own 2^N-way pool).

    ``engine`` selects the multi-key implementation for the N > 0 arm
    (the baseline column is always the classic cold SAT attack): the
    default ``"sharded"`` engine shares one miter encoding across the
    ``2^N`` sub-spaces, ``"reference"`` reproduces the paper's literal
    per-sub-space flow.
    """
    spec = spec or LutModuleSpec.paper_scale()
    matrix = run_matrix(
        table2_spec(
            circuits=circuits,
            scale=scale,
            spec=spec,
            effort=effort,
            time_limit_per_task=time_limit_per_task,
            seed=seed,
            verify=verify,
            engine=engine,
        ),
        runner=runner or Runner(),
        inner_parallel=parallel,
        processes=processes,
    )
    result = Table2Result(scale=scale, effort=effort, spec=spec)
    for cell in matrix.cells:
        result.rows.append(
            Table2Row(
                circuit=cell.circuit,
                baseline_seconds=cell.baseline_seconds,
                baseline_status=cell.baseline_status,
                min_seconds=cell.min_seconds,
                mean_seconds=cell.mean_seconds,
                max_seconds=cell.max_seconds,
                multikey_status=cell.status,
                ratio=cell.ratio,
                baseline_dips=cell.baseline_dips,
                dips_per_task=cell.dips_per_task,
                composition_equivalent=cell.composition_equivalent,
            )
        )
    return result
