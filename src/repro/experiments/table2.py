"""Table 2: runtime of attacking LUT-based insertion.

For each benchmark: the baseline single-key SAT attack versus the
multi-key attack at ``N = 4`` (16 sub-tasks).  As in the paper we
report the minimum / mean / maximum sub-task runtime and the
``maximum / baseline`` ratio — the attack's wall-clock cost on a
16-core machine is its slowest sub-task.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bench_circuits.iscas85 import iscas85_like
from repro.core.compose import verify_composition
from repro.core.multikey import multikey_attack
from repro.experiments.report import format_table, seconds
from repro.locking.lut_lock import LutModuleSpec, lut_lock

#: The paper's Table 2 benchmark list.
TABLE2_CIRCUITS = (
    "c880",
    "c1355",
    "c1908",
    "c2670",
    "c3540",
    "c5315",
    "c6288",
    "c7552",
)


@dataclass
class Table2Row:
    """One benchmark's baseline-vs-multikey comparison."""

    circuit: str
    baseline_seconds: float
    baseline_status: str
    min_seconds: float
    mean_seconds: float
    max_seconds: float
    multikey_status: str
    ratio: float  # max sub-task / baseline (the paper's metric)
    baseline_dips: int
    dips_per_task: list[int]
    composition_equivalent: bool | None = None


@dataclass
class Table2Result:
    scale: float
    effort: int
    spec: LutModuleSpec
    rows: list[Table2Row] = field(default_factory=list)

    def format(self) -> str:
        headers = [
            "Circuit",
            "Baseline [5]",
            "Minimum",
            "Mean",
            "Maximum",
            "Maximum/Baseline",
            "CEC",
        ]
        body = []
        for row in self.rows:
            body.append(
                [
                    row.circuit,
                    seconds(row.baseline_seconds)
                    + ("" if row.baseline_status == "ok" else "!"),
                    seconds(row.min_seconds),
                    seconds(row.mean_seconds),
                    seconds(row.max_seconds)
                    + ("" if row.multikey_status == "ok" else "!"),
                    f"{row.ratio:.3f}",
                    {True: "pass", False: "FAIL", None: "-"}[
                        row.composition_equivalent
                    ],
                ]
            )
        title = (
            f"Table 2: runtime of attacking LUT-based insertion "
            f"(scale={self.scale}, {self.spec.key_bits}-bit key, N={self.effort})"
        )
        return format_table(headers, body, title=title)


def run_table2(
    circuits: tuple[str, ...] = TABLE2_CIRCUITS,
    scale: float = 0.4,
    spec: LutModuleSpec | None = None,
    effort: int = 4,
    parallel: bool = True,
    processes: int | None = None,
    time_limit_per_task: float | None = 300.0,
    seed: int = 1,
    verify: bool = True,
) -> Table2Result:
    """Regenerate Table 2.

    ``spec`` defaults to :meth:`LutModuleSpec.paper_scale` (the
     14-input two-stage module).  ``verify=True`` additionally composes
    the 16 recovered keys per Fig. 1(b) and proves CEC equivalence —
    something the paper asserts but does not report per row.
    """
    spec = spec or LutModuleSpec.paper_scale()
    result = Table2Result(scale=scale, effort=effort, spec=spec)
    for name in circuits:
        original = iscas85_like(name, scale)
        locked = lut_lock(original, spec, seed=seed)

        baseline = multikey_attack(
            locked,
            original,
            effort=0,
            time_limit_per_task=time_limit_per_task,
            seed=seed,
        )
        base_seconds = baseline.max_subtask_seconds

        attack = multikey_attack(
            locked,
            original,
            effort=effort,
            parallel=parallel,
            processes=processes,
            time_limit_per_task=time_limit_per_task,
            seed=seed,
        )

        equivalent: bool | None = None
        if verify and attack.status == "ok":
            equivalent = bool(
                verify_composition(
                    locked, attack.splitting_inputs, attack.keys, original
                )
            )

        result.rows.append(
            Table2Row(
                circuit=name,
                baseline_seconds=base_seconds,
                baseline_status=baseline.status,
                min_seconds=attack.min_subtask_seconds,
                mean_seconds=attack.mean_subtask_seconds,
                max_seconds=attack.max_subtask_seconds,
                multikey_status=attack.status,
                ratio=attack.max_subtask_seconds / max(base_seconds, 1e-9),
                baseline_dips=baseline.total_dips,
                dips_per_task=attack.dips_per_task,
                composition_equivalent=equivalent,
            )
        )
    return result
