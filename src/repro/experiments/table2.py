"""Table 2: runtime of attacking LUT-based insertion.

For each benchmark: the baseline single-key SAT attack versus the
multi-key attack at ``N = 4`` (16 sub-tasks).  As in the paper we
report the minimum / mean / maximum sub-task runtime and the
``maximum / baseline`` ratio — the attack's wall-clock cost on a
16-core machine is its slowest sub-task.

Each circuit is one ``table2_row`` task submitted through
:mod:`repro.runner`: rows fan out across worker processes under
``--jobs`` and re-runs come back from the on-disk result cache.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, replace

from repro.bench_circuits.iscas85 import iscas85_like
from repro.core.compose import verify_composition
from repro.core.multikey import multikey_attack
from repro.experiments.report import format_table, seconds
from repro.locking.lut_lock import LutModuleSpec, lut_lock
from repro.runner import Runner, TaskSpec, register_task

#: The paper's Table 2 benchmark list.
TABLE2_CIRCUITS = (
    "c880",
    "c1355",
    "c1908",
    "c2670",
    "c3540",
    "c5315",
    "c6288",
    "c7552",
)


@dataclass
class Table2Row:
    """One benchmark's baseline-vs-multikey comparison."""

    circuit: str
    baseline_seconds: float
    baseline_status: str
    min_seconds: float
    mean_seconds: float
    max_seconds: float
    multikey_status: str
    ratio: float  # max sub-task / baseline (the paper's metric)
    baseline_dips: int
    dips_per_task: list[int]
    composition_equivalent: bool | None = None


@dataclass
class Table2Result:
    scale: float
    effort: int
    spec: LutModuleSpec
    rows: list[Table2Row] = field(default_factory=list)

    def format(self) -> str:
        headers = [
            "Circuit",
            "Baseline [5]",
            "Minimum",
            "Mean",
            "Maximum",
            "Maximum/Baseline",
            "CEC",
        ]
        body = []
        for row in self.rows:
            body.append(
                [
                    row.circuit,
                    seconds(row.baseline_seconds)
                    + ("" if row.baseline_status == "ok" else "!"),
                    seconds(row.min_seconds),
                    seconds(row.mean_seconds),
                    seconds(row.max_seconds)
                    + ("" if row.multikey_status == "ok" else "!"),
                    f"{row.ratio:.3f}",
                    {True: "pass", False: "FAIL", None: "-"}[
                        row.composition_equivalent
                    ],
                ]
            )
        title = (
            f"Table 2: runtime of attacking LUT-based insertion "
            f"(scale={self.scale}, {self.spec.key_bits}-bit key, N={self.effort})"
        )
        return format_table(headers, body, title=title)


@register_task("table2_row")
def _table2_row_task(params: dict) -> dict:
    """Worker: lock one benchmark, run baseline + multi-key attack."""
    spec = LutModuleSpec(**params["spec"])
    seed = params["seed"]
    time_limit = params["time_limit_per_task"]
    original = iscas85_like(params["circuit"], params["scale"])
    locked = lut_lock(original, spec, seed=seed)

    baseline = multikey_attack(
        locked,
        original,
        effort=0,
        time_limit_per_task=time_limit,
        seed=seed,
    )
    base_seconds = baseline.max_subtask_seconds

    attack = multikey_attack(
        locked,
        original,
        effort=params["effort"],
        parallel=params.get("parallel", False),
        processes=params.get("processes"),
        time_limit_per_task=time_limit,
        seed=seed,
        engine=params.get("engine", "reference"),
    )

    equivalent: bool | None = None
    if params["verify"] and attack.status == "ok":
        equivalent = bool(
            verify_composition(
                locked, attack.splitting_inputs, attack.keys, original
            )
        )

    return asdict(
        Table2Row(
            circuit=params["circuit"],
            baseline_seconds=base_seconds,
            baseline_status=baseline.status,
            min_seconds=attack.min_subtask_seconds,
            mean_seconds=attack.mean_subtask_seconds,
            max_seconds=attack.max_subtask_seconds,
            multikey_status=attack.status,
            ratio=attack.max_subtask_seconds / max(base_seconds, 1e-9),
            baseline_dips=baseline.total_dips,
            dips_per_task=attack.dips_per_task,
            composition_equivalent=equivalent,
        )
    )


def table2_task(
    circuit: str,
    scale: float,
    spec: LutModuleSpec,
    effort: int,
    time_limit_per_task: float | None,
    seed: int,
    verify: bool,
    parallel: bool = False,
    processes: int | None = None,
    engine: str = "sharded",
) -> TaskSpec:
    """The :class:`TaskSpec` for one Table 2 row.

    Inner-attack parallelism goes in the (unhashed) execution context:
    it changes how a row is computed, never what it contains, so serial
    and fanned-out runs share cache entries.  ``engine`` selects the
    multi-key implementation and *is* hashed — timing columns are part
    of the artifact, and the engines earn different ones.
    """
    return TaskSpec(
        kind="table2_row",
        params={
            "circuit": circuit,
            "scale": scale,
            "spec": asdict(spec),
            "effort": effort,
            "time_limit_per_task": time_limit_per_task,
            "seed": seed,
            "verify": verify,
            "engine": engine,
        },
        context={"parallel": parallel, "processes": processes},
        label=f"table2 {circuit}",
    )


def run_table2(
    circuits: tuple[str, ...] = TABLE2_CIRCUITS,
    scale: float = 0.4,
    spec: LutModuleSpec | None = None,
    effort: int = 4,
    parallel: bool = True,
    processes: int | None = None,
    time_limit_per_task: float | None = 300.0,
    seed: int = 1,
    verify: bool = True,
    runner: Runner | None = None,
    engine: str = "sharded",
) -> Table2Result:
    """Regenerate Table 2.

    ``spec`` defaults to :meth:`LutModuleSpec.paper_scale` (the
     14-input two-stage module).  ``verify=True`` additionally composes
    the 16 recovered keys per Fig. 1(b) and proves CEC equivalence —
    something the paper asserts but does not report per row.

    ``runner`` fans rows out across processes and serves cached rows;
    when its pool will execute more than one row the *inner* sub-task
    pool is disabled so worker processes do not oversubscribe the
    machine (a lone uncached row keeps its own 2^N-way pool).

    ``engine`` selects the multi-key implementation for the N > 0 arm
    (the baseline column is always the classic cold SAT attack): the
    default ``"sharded"`` engine shares one miter encoding across the
    ``2^N`` sub-spaces, ``"reference"`` reproduces the paper's literal
    per-sub-space flow.
    """
    spec = spec or LutModuleSpec.paper_scale()
    runner = runner or Runner()
    specs = [
        table2_task(
            circuit=name,
            scale=scale,
            spec=spec,
            effort=effort,
            time_limit_per_task=time_limit_per_task,
            seed=seed,
            verify=verify,
            parallel=False,
            processes=processes,
            engine=engine,
        )
        for name in circuits
    ]
    # Parallelism lives in exactly one place: the runner's pool when it
    # will actually fan rows out, otherwise inside each row's 2^N
    # sub-attacks.  Context is unhashed, so flipping it is cache-safe.
    if parallel and (runner.jobs <= 1 or runner.pending_count(specs) <= 1):
        specs = [
            replace(task, context={**task.context, "parallel": True})
            for task in specs
        ]
    result = Table2Result(scale=scale, effort=effort, spec=spec)
    for task in runner.run(specs):
        result.rows.append(Table2Row(**task.artifact))
    return result
