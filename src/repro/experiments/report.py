"""Plain-text table rendering shared by the experiment runners."""

from __future__ import annotations

from collections.abc import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned monospace table."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def seconds(value: float) -> str:
    """Compact human-readable duration."""
    if value < 0.001:
        return f"{value * 1e6:.0f}us"
    if value < 1:
        return f"{value * 1e3:.1f}ms"
    if value < 120:
        return f"{value:.2f}s"
    return f"{value / 60:.1f}min"
