"""Algorithm 1: the multi-key attack (paper §3, Tables 1 and 2).

For splitting effort ``N`` the input space splits into ``2^N``
sub-spaces, and each sub-space yields its own partial key (it may be
"incorrect" globally — that is the point of the paper).  Two engines
implement the sub-space attacks:

* ``engine="reference"`` (this module) follows Algorithm 1 literally:
  each sub-task synthesizes a conditional netlist
  (:mod:`repro.core.conditional`) and cold-starts a pinned attack.
  ``parallel=True`` fans the independent sub-tasks out on a process
  pool.
* ``engine="sharded"`` (:mod:`repro.core.sharded`) encodes the miter
  once and runs the ``2^N`` sub-spaces as assumption-pinned shards
  against warm solver state — same partial keys, a fraction of the
  wall-clock.

The per-sub-space strategy is *any* attack registered in
:mod:`repro.attacks.registry` (``attack="sat"`` by default): the
paper's one-key critique applies to every oracle-guided attack, and
generalizing the sub-space step is what lets the scenario matrix
evaluate e.g. multi-key AppSAT.  Attacks that can run against a shared
miter encoding keep the sharded fast path; the rest transparently fall
back to the reference per-sub-space flow.

Both engines report cost following the paper's convention: *"our
attack's efficiency is determined by the runtime of the most
time-intensive sub-task"*.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass, field
from statistics import fmean

from repro.attacks.registry import SUCCESS_STATUSES, attack_info, run_attack
from repro.circuit.netlist import Netlist
from repro.core.conditional import generate_conditional_netlist
from repro.core.splitting import select_splitting_inputs, splitting_assignments
from repro.locking.base import LockedCircuit, key_to_int
from repro.oracle.oracle import Oracle


@dataclass
class SubTaskResult:
    """One of the ``2^N`` sub-attacks (a reference sub-task or a shard).

    Attributes:
        index: Sub-space index; bit ``j`` gives the value of splitting
            input ``j`` (Algorithm 1's task numbering).
        assignment: The splitting-input constants of this sub-space.
        key: The recovered partial key (``None`` on a budget stop).
        status: The sub-attack's :class:`AttackOutcome` status.
        num_dips: DIP iterations this sub-attack executed.
        elapsed_seconds: The attack loop's wall-clock time.
        synthesis_seconds: Conditional-synthesis time (0 for shards —
            the sharded engine never synthesizes).
        gates_before / gates_after: Netlist size around synthesis.
        oracle_queries: Oracle queries issued by this sub-attack.
        solver_stats: This sub-attack's solver counter deltas
            (conflicts, decisions, learned, ...).
        key_order: Key port names fixing :attr:`key_int` bit order.
        attack: Registered name of the per-sub-space attack that ran.
    """

    index: int
    assignment: dict[str, bool]
    key: dict[str, bool] | None
    status: str
    num_dips: int
    elapsed_seconds: float
    synthesis_seconds: float
    gates_before: int
    gates_after: int
    oracle_queries: int
    solver_stats: dict[str, int] = field(default_factory=dict)
    key_order: list[str] = field(default_factory=list)
    attack: str = "sat"

    @property
    def key_int(self) -> int | None:
        """Partial key packed as an integer (``None`` without a key)."""
        if self.key is None:
            return None
        return key_to_int([int(self.key[net]) for net in self.key_order])

    @property
    def total_seconds(self) -> float:
        """Attack plus synthesis time — the sub-task's full cost."""
        return self.elapsed_seconds + self.synthesis_seconds

    @classmethod
    def from_payload(cls, payload: dict) -> "SubTaskResult":
        """Rebuild from ``asdict`` output (a JSON round trip is lossless)."""
        return cls(**payload)


@dataclass
class MultiKeyResult:
    """Everything Algorithm 1 returns, plus the paper's runtime metrics.

    Attributes:
        effort: The splitting effort ``N``.
        splitting_inputs: The ``N`` pinned primary inputs.
        subtasks: One :class:`SubTaskResult` per sub-space, in index
            order.
        wall_seconds: End-to-end wall-clock of the whole attack.
        parallel: Whether sub-tasks fanned out across processes.
        selection: The splitting-input strategy used.
        engine: ``"reference"`` (per-sub-space synthesis + cold SAT)
            or ``"sharded"`` (shared encoding, warm shards).
        encode_seconds: Miter encoding cost on the critical path
            (sharded engine only: one encode when serial, the parent
            encode plus the slowest worker's re-encode when parallel;
            the reference arm pays encoding per sub-task inside
            ``elapsed_seconds``).
        attack: Registered name of the per-sub-space attack.
        solver: Registered solver backend the sub-attacks ran on.
    """

    effort: int
    splitting_inputs: list[str]
    subtasks: list[SubTaskResult]
    wall_seconds: float
    parallel: bool
    selection: str
    engine: str = "reference"
    encode_seconds: float = 0.0
    attack: str = "sat"
    solver: str = "python"

    @property
    def status(self) -> str:
        """``"ok"`` when every sub-task succeeded, else ``"partial"``.

        A sub-task succeeds when its status is in
        :data:`repro.attacks.registry.SUCCESS_STATUSES` — ``"ok"``
        (exact) or ``"settled"`` (AppSAT's acceptance criterion).
        """
        return (
            "ok"
            if all(t.status in SUCCESS_STATUSES for t in self.subtasks)
            else "partial"
        )

    @property
    def keys(self) -> list[dict[str, bool]]:
        """The recovered partial keys (budget-stopped sub-tasks omitted)."""
        return [t.key for t in self.subtasks if t.key is not None]

    @property
    def key_ints(self) -> list[int | None]:
        """Partial keys packed as integers, one entry per sub-space."""
        return [t.key_int for t in self.subtasks]

    @property
    def max_subtask_seconds(self) -> float:
        """Slowest sub-task — the paper's attack-cost metric."""
        return max((t.total_seconds for t in self.subtasks), default=0.0)

    @property
    def min_subtask_seconds(self) -> float:
        """Fastest sub-task (Table 2's "Minimum" column)."""
        return min((t.total_seconds for t in self.subtasks), default=0.0)

    @property
    def mean_subtask_seconds(self) -> float:
        """Mean sub-task cost (Table 2's "Mean" column)."""
        if not self.subtasks:
            return 0.0
        return fmean(t.total_seconds for t in self.subtasks)

    @property
    def total_dips(self) -> int:
        """DIP iterations summed over all sub-tasks."""
        return sum(t.num_dips for t in self.subtasks)

    @property
    def dips_per_task(self) -> list[int]:
        """#DIP per sub-space, in index order (Table 1's columns)."""
        return [t.num_dips for t in self.subtasks]

    @property
    def solver_stats(self) -> dict[str, int]:
        """Solver counters aggregated across every sub-task.

        Monotone counters (conflicts, decisions, propagations,
        learned, ...) are summed; ``max_decision_level`` is the
        maximum over sub-tasks.  Per-shard numbers stay available on
        each :class:`SubTaskResult` — nothing is lost when results
        cross the process-pool boundary.
        """
        totals: dict[str, int] = {}
        for task in self.subtasks:
            for name, value in task.solver_stats.items():
                if name == "max_decision_level":
                    totals[name] = max(totals.get(name, 0), value)
                else:
                    totals[name] = totals.get(name, 0) + value
        return totals

    def to_payload(self) -> dict:
        """The result as one JSON-shaped dict (the service's wire form)."""
        return asdict(self)

    @classmethod
    def from_payload(cls, payload: dict) -> "MultiKeyResult":
        """Rebuild from :meth:`to_payload` output.

        The round trip is lossless: every derived metric (``status``,
        ``max_subtask_seconds``, ``solver_stats`` aggregation, ...) is
        a property over the stored fields, so a result reconstructed
        from a daemon response reports identical numbers.
        """
        data = dict(payload)
        data["subtasks"] = [
            SubTaskResult.from_payload(task) for task in data["subtasks"]
        ]
        return cls(**data)


def _run_subtask(payload: tuple) -> SubTaskResult:
    """Worker body; module-level so it pickles for multiprocessing."""
    (
        locked,
        original,
        index,
        assignment,
        run_synthesis,
        synthesis_effort,
        time_limit,
        max_dips,
        attack,
        attack_params,
        seed,
        solver,
        opt,
    ) = payload
    conditional = generate_conditional_netlist(
        locked, assignment, run_synthesis=run_synthesis, effort=synthesis_effort
    )
    oracle = Oracle(original, opt=opt)
    outcome = run_attack(
        attack,
        conditional.locked,
        oracle,
        pin=assignment,
        time_limit=time_limit,
        max_dips=max_dips,
        seed=seed,
        solver=solver,
        opt=opt,
        **(attack_params or {}),
    )
    return SubTaskResult(
        index=index,
        assignment=dict(assignment),
        key=outcome.key,
        status=outcome.status,
        num_dips=outcome.num_dips,
        elapsed_seconds=outcome.elapsed_seconds,
        synthesis_seconds=(
            conditional.synthesis.elapsed_seconds if conditional.synthesis else 0.0
        ),
        gates_before=conditional.gates_before,
        gates_after=conditional.gates_after,
        oracle_queries=outcome.oracle_queries,
        solver_stats=outcome.solver_stats,
        key_order=list(locked.key_inputs),
        attack=attack,
    )


def multikey_attack(
    locked: LockedCircuit,
    oracle_netlist: Netlist,
    effort: int,
    selection: str = "fanout",
    run_synthesis: bool = True,
    synthesis_effort: int = 2,
    parallel: bool = False,
    processes: int | None = None,
    time_limit_per_task: float | None = None,
    max_dips_per_task: int | None = None,
    seed: int = 0,
    splitting_inputs: list[str] | None = None,
    engine: str = "reference",
    attack: str = "sat",
    attack_params: dict | None = None,
    solver: str | None = None,
    opt: str | None = None,
    runner=None,
) -> MultiKeyResult:
    """Run Algorithm 1 with splitting effort ``N = effort``.

    Args:
        locked: The locked design (attacker's netlist).
        oracle_netlist: The original design, used only to *simulate*
            the black-box oracle inside each sub-task (each worker
            process instantiates its own :class:`Oracle` from it).
        effort: ``N``; the input space splits into ``2^N`` sub-spaces.
        selection: Splitting-input strategy (see
            :func:`repro.core.splitting.select_splitting_inputs`).
        run_synthesis: Synthesize each conditional netlist (line 4 of
            Algorithm 1).  Disabling this is the A2 ablation.
            Reference engine only.
        parallel: Fan the sub-tasks out over a process pool.
        processes: Pool size (defaults to ``min(2^N, cpu_count)``).
        time_limit_per_task / max_dips_per_task: Sub-attack budgets.
        splitting_inputs: Override the selection entirely (used by
            tests and the composition example).
        engine: ``"reference"`` runs Algorithm 1 literally (one
            synthesized conditional netlist and one cold per-sub-space
            attack); ``"sharded"`` dispatches to
            :func:`repro.core.sharded.sharded_multikey_attack`, which
            shares a single miter encoding across all sub-spaces.
            When the chosen ``attack`` cannot run against a shared
            encoding (no registered ``shard_fn``), or the chosen
            ``solver`` backend has no checkpoint/rollback frames,
            ``"sharded"`` falls back to the reference per-sub-space
            path and the result's ``engine`` field reports
            ``"reference"``.
        attack: Registered per-sub-space attack name (see
            :func:`repro.attacks.registry.registered_attacks`).
        attack_params: Extra keyword params for the attack (e.g.
            AppSAT's ``error_threshold``); must be JSON-serializable
            when the attack is routed through the runner cache.
        solver: Registered solver backend name for the sub-attacks
            (``None`` -> the process default; see
            :mod:`repro.sat.registry`).
        opt: Structural optimization level for the circuits each
            sub-attack encodes and simulates (``None`` -> the process
            default; see :mod:`repro.circuit.opt`).  Resolved here so
            every sub-task — and the sharded engine's task hashes —
            see one concrete level.
        runner: Optional :class:`repro.runner.Runner` for the sharded
            engine's fan-out (ignored by the reference engine, whose
            sub-tasks carry live objects the task cache cannot hash).

    ``effort=0`` degenerates to the baseline single-key attack.
    """
    from repro.circuit.opt import resolve_opt
    from repro.sat.registry import resolve_solver_name, solver_info

    info = attack_info(attack)
    solver = resolve_solver_name(solver)
    opt = resolve_opt(opt)
    if (
        engine == "sharded"
        and info.supports_shared_encoding
        and solver_info(solver).supports_sharding
    ):
        from repro.core.sharded import sharded_multikey_attack

        return sharded_multikey_attack(
            locked,
            oracle_netlist,
            effort,
            selection=selection,
            parallel=parallel,
            processes=processes,
            time_limit_per_task=time_limit_per_task,
            max_dips_per_task=max_dips_per_task,
            seed=seed,
            splitting_inputs=splitting_inputs,
            attack=attack,
            attack_params=attack_params,
            solver=solver,
            opt=opt,
            runner=runner,
        )
    if engine not in ("reference", "sharded"):
        raise ValueError(f"unknown multikey engine {engine!r}")
    start = time.perf_counter()
    if splitting_inputs is None:
        splitting_inputs = select_splitting_inputs(
            locked, effort, strategy=selection, seed=seed
        )
    elif len(splitting_inputs) != effort:
        raise ValueError("splitting_inputs length must equal effort")
    assignments = splitting_assignments(splitting_inputs)

    payloads = [
        (
            locked,
            oracle_netlist,
            index,
            assignment,
            run_synthesis,
            synthesis_effort,
            time_limit_per_task,
            max_dips_per_task,
            attack,
            attack_params,
            seed,
            solver,
            opt,
        )
        for index, assignment in enumerate(assignments)
    ]

    if parallel and len(payloads) > 1:
        from repro.runner.executor import map_parallel

        subtasks = map_parallel(_run_subtask, payloads, processes=processes)
    else:
        subtasks = [_run_subtask(p) for p in payloads]

    return MultiKeyResult(
        effort=effort,
        splitting_inputs=list(splitting_inputs),
        subtasks=list(subtasks),
        wall_seconds=time.perf_counter() - start,
        parallel=parallel and len(payloads) > 1,
        selection=selection,
        attack=attack,
        solver=solver,
    )
