"""Algorithm 1: the multi-key attack.

For splitting effort ``N`` the input space splits into ``2^N``
sub-spaces.  Each sub-task synthesizes a conditional netlist and runs
the pinned SAT attack; its result key unlocks its sub-space (it may be
"incorrect" globally — that is the point of the paper).  The tasks are
embarrassingly parallel; ``parallel=True`` runs them on a process
pool, and the reported cost follows the paper's convention: *"our
attack's efficiency is determined by the runtime of the most
time-intensive sub-task"*.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from statistics import fmean

from repro.attacks.sat_attack import sat_attack
from repro.circuit.netlist import Netlist
from repro.core.conditional import generate_conditional_netlist
from repro.core.splitting import select_splitting_inputs, splitting_assignments
from repro.locking.base import LockedCircuit, key_to_int
from repro.oracle.oracle import Oracle


@dataclass
class SubTaskResult:
    """One of the ``2^N`` independent sub-attacks."""

    index: int
    assignment: dict[str, bool]
    key: dict[str, bool] | None
    status: str
    num_dips: int
    elapsed_seconds: float
    synthesis_seconds: float
    gates_before: int
    gates_after: int
    oracle_queries: int
    solver_stats: dict[str, int] = field(default_factory=dict)
    key_order: list[str] = field(default_factory=list)

    @property
    def key_int(self) -> int | None:
        if self.key is None:
            return None
        return key_to_int([int(self.key[net]) for net in self.key_order])

    @property
    def total_seconds(self) -> float:
        """Attack plus synthesis time — the sub-task's full cost."""
        return self.elapsed_seconds + self.synthesis_seconds


@dataclass
class MultiKeyResult:
    """Everything Algorithm 1 returns, plus the paper's runtime metrics."""

    effort: int
    splitting_inputs: list[str]
    subtasks: list[SubTaskResult]
    wall_seconds: float
    parallel: bool
    selection: str

    @property
    def status(self) -> str:
        return "ok" if all(t.status == "ok" for t in self.subtasks) else "partial"

    @property
    def keys(self) -> list[dict[str, bool]]:
        return [t.key for t in self.subtasks if t.key is not None]

    @property
    def key_ints(self) -> list[int | None]:
        return [t.key_int for t in self.subtasks]

    @property
    def max_subtask_seconds(self) -> float:
        return max((t.total_seconds for t in self.subtasks), default=0.0)

    @property
    def min_subtask_seconds(self) -> float:
        return min((t.total_seconds for t in self.subtasks), default=0.0)

    @property
    def mean_subtask_seconds(self) -> float:
        if not self.subtasks:
            return 0.0
        return fmean(t.total_seconds for t in self.subtasks)

    @property
    def total_dips(self) -> int:
        return sum(t.num_dips for t in self.subtasks)

    @property
    def dips_per_task(self) -> list[int]:
        return [t.num_dips for t in self.subtasks]


def _run_subtask(payload: tuple) -> SubTaskResult:
    """Worker body; module-level so it pickles for multiprocessing."""
    (
        locked,
        original,
        index,
        assignment,
        run_synthesis,
        synthesis_effort,
        time_limit,
        max_dips,
    ) = payload
    conditional = generate_conditional_netlist(
        locked, assignment, run_synthesis=run_synthesis, effort=synthesis_effort
    )
    oracle = Oracle(original)
    result = sat_attack(
        conditional.locked,
        oracle,
        pin=assignment,
        time_limit=time_limit,
        max_dips=max_dips,
        record_iterations=False,
    )
    return SubTaskResult(
        index=index,
        assignment=dict(assignment),
        key=result.key,
        status=result.status,
        num_dips=result.num_dips,
        elapsed_seconds=result.elapsed_seconds,
        synthesis_seconds=(
            conditional.synthesis.elapsed_seconds if conditional.synthesis else 0.0
        ),
        gates_before=conditional.gates_before,
        gates_after=conditional.gates_after,
        oracle_queries=result.oracle_queries,
        solver_stats=result.solver_stats,
        key_order=list(locked.key_inputs),
    )


def multikey_attack(
    locked: LockedCircuit,
    oracle_netlist: Netlist,
    effort: int,
    selection: str = "fanout",
    run_synthesis: bool = True,
    synthesis_effort: int = 2,
    parallel: bool = False,
    processes: int | None = None,
    time_limit_per_task: float | None = None,
    max_dips_per_task: int | None = None,
    seed: int = 0,
    splitting_inputs: list[str] | None = None,
) -> MultiKeyResult:
    """Run Algorithm 1 with splitting effort ``N = effort``.

    Args:
        locked: The locked design (attacker's netlist).
        oracle_netlist: The original design, used only to *simulate*
            the black-box oracle inside each sub-task (each worker
            process instantiates its own :class:`Oracle` from it).
        effort: ``N``; the input space splits into ``2^N`` sub-spaces.
        selection: Splitting-input strategy (see
            :func:`repro.core.splitting.select_splitting_inputs`).
        run_synthesis: Synthesize each conditional netlist (line 4 of
            Algorithm 1).  Disabling this is the A2 ablation.
        parallel: Fan the sub-tasks out over a process pool.
        processes: Pool size (defaults to ``min(2^N, cpu_count)``).
        time_limit_per_task / max_dips_per_task: Sub-attack budgets.
        splitting_inputs: Override the selection entirely (used by
            tests and the composition example).

    ``effort=0`` degenerates to the baseline single-key SAT attack.
    """
    start = time.perf_counter()
    if splitting_inputs is None:
        splitting_inputs = select_splitting_inputs(
            locked, effort, strategy=selection, seed=seed
        )
    elif len(splitting_inputs) != effort:
        raise ValueError("splitting_inputs length must equal effort")
    assignments = splitting_assignments(splitting_inputs)

    payloads = [
        (
            locked,
            oracle_netlist,
            index,
            assignment,
            run_synthesis,
            synthesis_effort,
            time_limit_per_task,
            max_dips_per_task,
        )
        for index, assignment in enumerate(assignments)
    ]

    if parallel and len(payloads) > 1:
        from repro.runner.executor import map_parallel

        subtasks = map_parallel(_run_subtask, payloads, processes=processes)
    else:
        subtasks = [_run_subtask(p) for p in payloads]

    return MultiKeyResult(
        effort=effort,
        splitting_inputs=list(splitting_inputs),
        subtasks=list(subtasks),
        wall_seconds=time.perf_counter() - start,
        parallel=parallel and len(payloads) > 1,
        selection=selection,
    )
