"""Multi-key composition (Fig. 1b).

Given the ``2^N`` keys recovered by the sub-attacks, drive each key
port with a MUX network selecting the right key constant based on the
same splitting inputs used to divide the function.  The result is a
*keyless* netlist that is functionally equivalent to the original —
the paper's demonstration that the one-key premise is unnecessary.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.circuit.equivalence import EquivalenceResult, check_equivalence
from repro.circuit.gates import GateType
from repro.circuit.netlist import Netlist, fresh_net_namer
from repro.locking.base import LockedCircuit, key_from_int


def _normalize_keys(
    locked: LockedCircuit, keys: Sequence[int | Sequence[int] | Mapping[str, bool]]
) -> list[dict[str, bool]]:
    return [locked.key_assignment(key) for key in keys]


def compose_multikey_netlist(
    locked: LockedCircuit,
    splitting_inputs: Sequence[str],
    keys: Sequence[int | Sequence[int] | Mapping[str, bool]],
    name: str | None = None,
) -> Netlist:
    """Build the Fig. 1(b) netlist: key ports driven by a key-select MUX.

    ``keys[i]`` must unlock the sub-space where bit ``j`` of ``i``
    equals the value of ``splitting_inputs[j]`` — exactly the indexing
    of :func:`repro.core.splitting.splitting_assignments`.

    The composed circuit has only the original primary inputs; each
    key port becomes an internal net computed from the splitting
    inputs.  Constant and shared MUX sub-trees are folded on the fly.
    """
    n = len(splitting_inputs)
    if len(keys) != (1 << n):
        raise ValueError(f"need 2^{n} keys, got {len(keys)}")
    for net in splitting_inputs:
        if net not in locked.original_inputs:
            raise ValueError(f"splitting input {net!r} is not an original input")
    normalized = _normalize_keys(locked, keys)

    composed = locked.netlist.copy(
        name=name or f"{locked.netlist.name}_multikey{n}"
    )
    composed.inputs = [
        net for net in composed.inputs if net not in set(locked.key_inputs)
    ]
    namer = fresh_net_namer(locked.netlist, "mk_")

    const_nets: dict[bool, str] = {}
    cache: dict[tuple, str] = {}

    def const_net(value: bool) -> str:
        net = const_nets.get(value)
        if net is None:
            net = namer()
            composed.add_gate(
                net, GateType.CONST1 if value else GateType.CONST0, []
            )
            const_nets[value] = net
        return net

    def build(values: tuple[bool, ...], dim: int, out_name: str | None) -> str:
        """MUX tree over splitting_inputs[0..dim); bit j of the index
        is the value of splitting input j."""
        if len(set(values)) == 1:
            if out_name is None:
                return const_net(values[0])
            composed.add_gate(
                out_name, GateType.CONST1 if values[0] else GateType.CONST0, []
            )
            return out_name
        key = (values, dim)
        if out_name is None and key in cache:
            return cache[key]
        half = 1 << (dim - 1)
        # Index bit dim-1 selects between the low and high halves.
        lo = build(values[:half], dim - 1, None)
        hi = build(values[half:], dim - 1, None)
        out = out_name or namer()
        composed.add_gate(
            out, GateType.MUX, [splitting_inputs[dim - 1], hi, lo]
        )
        if out_name is None:
            cache[key] = out
        return out

    for j, port in enumerate(locked.key_inputs):
        values = tuple(bool(assignment[port]) for assignment in normalized)
        build(values, n, port)

    composed.validate()
    return composed


def verify_composition(
    locked: LockedCircuit,
    splitting_inputs: Sequence[str],
    keys: Sequence[int | Sequence[int] | Mapping[str, bool]],
    original: Netlist,
) -> EquivalenceResult:
    """CEC the composed multi-key netlist against the original design."""
    composed = compose_multikey_netlist(locked, splitting_inputs, keys)
    return check_equivalence(composed, original)
