"""The paper's contribution: the multi-key input-space-splitting attack.

Algorithm 1 of the paper:

1. choose ``N`` splitting inputs (fan-out-cone heuristic),
2. for each of the ``2^N`` constant assignments, synthesize a
   conditional netlist and run the (pinned) SAT attack against the
   oracle — each sub-task returns a key valid on its sub-space,
3. the ``2^N`` keys collectively unlock the design: a MUX network
   selecting among them on the splitting condition reconstructs the
   original function exactly (Fig. 1b), which we prove by CEC.

Sub-tasks are independent, so :func:`multikey_attack` can fan them out
over a process pool — the paper's 16-core scenario.  Two engines
implement step 2: the literal ``"reference"`` arm (per-sub-space
synthesis + cold SAT attack) and the ``"sharded"`` arm
(:func:`sharded_multikey_attack`: one shared miter encoding, warm
assumption-pinned shards).
"""

from repro.core.compose import compose_multikey_netlist, verify_composition
from repro.core.conditional import ConditionalNetlist, generate_conditional_netlist
from repro.core.multikey import MultiKeyResult, SubTaskResult, multikey_attack
from repro.core.sharded import ShardEngine, sharded_multikey_attack
from repro.core.scheduling import (
    Schedule,
    attack_time_on_cores,
    lpt_schedule,
    speedup_curve,
)
from repro.core.splitting import select_splitting_inputs, splitting_assignments

__all__ = [
    "select_splitting_inputs",
    "splitting_assignments",
    "generate_conditional_netlist",
    "ConditionalNetlist",
    "multikey_attack",
    "sharded_multikey_attack",
    "ShardEngine",
    "MultiKeyResult",
    "SubTaskResult",
    "compose_multikey_netlist",
    "verify_composition",
    "lpt_schedule",
    "Schedule",
    "attack_time_on_cores",
    "speedup_curve",
]
