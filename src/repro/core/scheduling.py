"""Multi-core attack-time modelling.

The paper evaluates on a 16-core server and limits ``N`` to 4 so every
sub-task gets its own core; the reported attack cost is then the
slowest sub-task.  With more sub-tasks than cores the cost becomes a
scheduling question.  This module models it with the classic
longest-processing-time (LPT) greedy, so experiments can report "what
this attack costs on P cores" for any (N, P) without re-running
anything.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro.core.multikey import MultiKeyResult


@dataclass
class Schedule:
    """An assignment of sub-tasks to cores and its makespan."""

    num_cores: int
    makespan_seconds: float
    core_loads: list[float]
    assignment: list[list[int]]  # task indices per core

    @property
    def utilization(self) -> float:
        total = sum(self.core_loads)
        capacity = self.makespan_seconds * self.num_cores
        return total / capacity if capacity > 0 else 0.0


def lpt_schedule(durations: Sequence[float], num_cores: int) -> Schedule:
    """Greedy longest-processing-time-first schedule.

    LPT is a 4/3-approximation of the optimal makespan — plenty for
    reporting, and exactly what a practical attacker's job runner does.
    """
    if num_cores < 1:
        raise ValueError("need at least one core")
    order = sorted(range(len(durations)), key=lambda i: -durations[i])
    loads = [0.0] * num_cores
    assignment: list[list[int]] = [[] for _ in range(num_cores)]
    for index in order:
        core = min(range(num_cores), key=lambda c: loads[c])
        loads[core] += durations[index]
        assignment[core].append(index)
    return Schedule(
        num_cores=num_cores,
        makespan_seconds=max(loads) if loads else 0.0,
        core_loads=loads,
        assignment=assignment,
    )


def attack_time_on_cores(result: MultiKeyResult, num_cores: int) -> float:
    """Modelled wall-clock of a multi-key attack on ``num_cores`` cores."""
    durations = [task.total_seconds for task in result.subtasks]
    return lpt_schedule(durations, num_cores).makespan_seconds


def speedup_curve(
    result: MultiKeyResult, core_counts: Sequence[int]
) -> list[tuple[int, float, float]]:
    """``(cores, modelled_seconds, speedup_vs_1core)`` per core count."""
    single = attack_time_on_cores(result, 1)
    curve = []
    for cores in core_counts:
        t = attack_time_on_cores(result, cores)
        curve.append((cores, t, single / t if t > 0 else float("inf")))
    return curve
