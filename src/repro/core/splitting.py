"""Splitting-input selection (paper §4).

    "The selection of which N input ports to apply the splitting
    condition is determined through a fan-out cone analysis of the
    netlist's input ports, prioritizing those with the most
    key-controlled gates in their fan-out cones."

``strategy="random"`` exists for the ablation benchmark that justifies
this design choice.
"""

from __future__ import annotations

import random

from repro.circuit.analysis import rank_inputs_by_key_influence
from repro.locking.base import LockedCircuit


def select_splitting_inputs(
    locked: LockedCircuit,
    effort: int,
    strategy: str = "fanout",
    seed: int = 0,
) -> list[str]:
    """Choose the ``N = effort`` primary inputs to split on.

    Strategies:
        ``fanout``  — the paper's heuristic: rank inputs by the number
                      of key-controlled gates in their fan-out cone.
        ``random``  — uniform random choice (ablation baseline).
        ``first``   — the first ``N`` primary inputs (deterministic
                      strawman).
    """
    if effort < 0:
        raise ValueError("splitting effort must be non-negative")
    if effort > len(locked.original_inputs):
        raise ValueError(
            f"effort {effort} exceeds {len(locked.original_inputs)} inputs"
        )
    if effort == 0:
        return []
    if strategy == "fanout":
        ranked = rank_inputs_by_key_influence(
            locked.netlist, locked.key_inputs, candidates=locked.original_inputs
        )
        return [net for net, _count in ranked[:effort]]
    if strategy == "random":
        rng = random.Random(seed)
        return rng.sample(list(locked.original_inputs), effort)
    if strategy == "first":
        return list(locked.original_inputs[:effort])
    raise ValueError(f"unknown splitting strategy {strategy!r}")


def splitting_assignments(
    splitting_inputs: list[str],
) -> list[dict[str, bool]]:
    """All ``2^N`` constant assignments, indexed as in Algorithm 1.

    Bit ``j`` of the task index gives the value of
    ``splitting_inputs[j]`` (the algorithm's
    ``convert_to_binary_and_pad``).
    """
    n = len(splitting_inputs)
    return [
        {net: bool((index >> j) & 1) for j, net in enumerate(splitting_inputs)}
        for index in range(1 << n)
    ]
