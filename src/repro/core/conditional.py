"""Conditional netlist generation (Algorithm 1, line 4).

``generate_conditional_netlist`` pins the splitting inputs to their
constant pattern and synthesizes the result "to remove any redundant
logic".  The interface is preserved (pinned ports stay in the port
list) so the pinned SAT attack and the oracle line up net-for-net; the
reduction shows up purely as a smaller gate count — which is where the
paper's "smaller SAT instances to solve" advantage comes from.

This is the **reference arm** of the multi-key attack: it follows the
paper literally and serves as the parity baseline the sharded engine
(:mod:`repro.core.sharded`) is tested against.  The sharded hot path
never calls it — sub-spaces are selected there with solver assumptions
against one shared encoding instead of per-sub-space synthesis.  The
A2 ablation (``run_synthesis=False``) measures what this synthesis
step buys the reference arm.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Mapping

from repro.locking.base import LockedCircuit
from repro.synth.optimize import SynthesisResult, synthesize


@dataclass
class ConditionalNetlist:
    """A locked circuit specialized to one splitting assignment."""

    locked: LockedCircuit
    assignment: dict[str, bool]
    synthesis: SynthesisResult | None

    @property
    def gates_before(self) -> int:
        if self.synthesis is None:
            return self.locked.netlist.num_gates
        return self.synthesis.gates_before

    @property
    def gates_after(self) -> int:
        return self.locked.netlist.num_gates


def generate_conditional_netlist(
    locked: LockedCircuit,
    assignment: Mapping[str, bool],
    run_synthesis: bool = True,
    effort: int = 2,
) -> ConditionalNetlist:
    """Specialize ``locked`` to the input constants in ``assignment``.

    With ``run_synthesis=False`` the original netlist is kept — the
    A2 ablation measures what that costs the sub-attacks.
    """
    assignment = dict(assignment)
    for net in assignment:
        if net not in locked.original_inputs:
            raise ValueError(f"{net!r} is not an original primary input")

    if not run_synthesis:
        return ConditionalNetlist(
            locked=locked, assignment=assignment, synthesis=None
        )

    result = synthesize(locked.netlist, pin=assignment, effort=effort)
    specialized = LockedCircuit(
        netlist=result.netlist,
        key_inputs=list(locked.key_inputs),
        correct_key=locked.correct_key,
        original_inputs=list(locked.original_inputs),
        scheme=locked.scheme,
        meta={**locked.meta, "conditional_assignment": assignment},
    )
    return ConditionalNetlist(
        locked=specialized, assignment=assignment, synthesis=result
    )
