"""The shared-encoding sharded multi-key attack engine.

This is the fast arm of Algorithm 1.  The reference arm
(:func:`repro.core.multikey.multikey_attack` with
``engine="reference"``) treats the ``2^N`` sub-spaces as fully
independent attacks: each one synthesizes a conditional netlist
(:mod:`repro.core.conditional`), Tseitin-encodes a fresh miter and
cold-starts a SAT solver.  All of that work is structurally identical
across sub-spaces — the miter encoding depends only on the locked
circuit, not on the splitting assignment — so this engine pays for it
exactly once:

* the locked circuit's miter is encoded **once** from the compiled IR
  (:func:`repro.attacks.sat_attack.build_miter_encoding`);
* each sub-space is expressed by *assumption literals* pinning the
  splitting inputs — no per-sub-space conditional synthesis on the hot
  path (``generate_conditional_netlist`` stays as the parity /
  reference arm);
* every shard's learned I/O constraints hang off a per-shard *guard*
  literal, so shards can share one solver: clauses learned while
  solving shard *i* are sound for shard *j* (guards keep the
  sub-space-specific facts apart) and carry over as warm state;
* under ``parallel=True`` the shards fan out through
  :mod:`repro.runner` as registered ``multikey_shard_chunk`` tasks —
  ``--jobs`` shards a single attack across cores, partial-key results
  stream back per chunk through the runner's progress callback, and a
  pilot shard's learned clauses prime every worker's solver
  (:meth:`repro.sat.solver.Solver.export_learnts`).

The trade: the reference arm's synthesis can *shrink* each sub-problem
(the paper's "smaller SAT instances"), while this engine keeps the
full-size encoding but never rebuilds it.  On every benchmark here the
shared encoding wins by far more than synthesis saves —
``benchmarks/test_bench_multikey.py`` enforces a >=2x wall-clock floor
and records the trajectory in ``BENCH_multikey.json``.
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from dataclasses import asdict

from repro.attacks.registry import attack_info
from repro.attacks.sat_attack import build_miter_encoding
from repro.circuit.bench import format_bench, parse_bench
from repro.circuit.netlist import Netlist
from repro.circuit.opt import resolve_opt
from repro.core.multikey import MultiKeyResult, SubTaskResult
from repro.core.splitting import select_splitting_inputs, splitting_assignments
from repro.locking.base import LockedCircuit
from repro.oracle.oracle import Oracle
from repro.runner import Runner, TaskSpec, register_task
from repro.runner.executor import chunk_evenly

#: LBD cap for pilot-shard clauses shipped to worker solvers.
_WARM_START_MAX_LBD = 4


class ShardEngine:
    """One shared miter encoding, many sub-space shards.

    Build it once per (locked circuit, splitting inputs) pair, then
    call :meth:`run_shard` for any subset of the ``2^N`` sub-space
    indices.  Shards executed on the same engine share a single
    incremental solver, so later shards start from the learned-clause
    state of earlier ones.

    Args:
        locked: The locked design under attack.
        oracle: Black-box oracle for the original function.
        splitting_inputs: The ``N`` pinned primary inputs; bit ``j`` of
            a shard index gives the value of ``splitting_inputs[j]``
            (the indexing of
            :func:`repro.core.splitting.splitting_assignments`).
        prime_learnts: Optional DIMACS clauses from another engine's
            :meth:`export_warm_clauses` — imported as learned clauses
            before the first shard runs (silently skipped when the
            backend declares ``learnt_export`` off).
        solver: Registered solver backend name (``None`` -> process
            default).  The backend must declare the ``checkpoint`` and
            ``assumptions`` capabilities — shards are solver frames —
            or construction raises ``ValueError``.
        opt: Structural optimization level for the shared miter
            (``None`` -> process default; see :mod:`repro.circuit.opt`).
            Resolved once here — the optimized circuit fixes the
            variable numbering every shard and warm-start import
            relies on.
    """

    def __init__(
        self,
        locked: LockedCircuit,
        oracle: Oracle,
        splitting_inputs: Sequence[str],
        prime_learnts: Sequence[Sequence[int]] | None = None,
        solver: str | None = None,
        opt: str | None = None,
    ):
        from repro.sat.registry import resolve_solver_name, solver_info

        for net in splitting_inputs:
            if net not in locked.original_inputs:
                raise ValueError(
                    f"splitting input {net!r} is not an original primary input"
                )
        self.solver_name = resolve_solver_name(solver)
        backend = solver_info(self.solver_name)
        if not backend.supports_sharding:
            raise ValueError(
                f"solver backend {self.solver_name!r} cannot run the sharded "
                "engine (needs the checkpoint and assumptions capabilities); "
                "use engine='reference' (multikey_attack falls back "
                "automatically)"
            )
        self._can_exchange_learnts = backend.capabilities.learnt_export
        self.locked = locked
        self.oracle = oracle
        self.splitting_inputs = list(splitting_inputs)
        self.opt = resolve_opt(opt)
        start = time.perf_counter()
        self.enc = build_miter_encoding(
            locked, solver=self.solver_name, opt=self.opt
        )
        if prime_learnts and self._can_exchange_learnts:
            self.enc.solver.import_learnts(prime_learnts)
        # Imported units (and the encoding's own constants) assign
        # variables at the root; shed the clauses they satisfy before
        # the first shard starts paying for them on every propagation.
        if hasattr(self.enc.solver, "simplify"):
            self.enc.solver.simplify()
        self.encode_seconds = time.perf_counter() - start
        self._num_gates = locked.netlist.num_gates

    @property
    def num_shards(self) -> int:
        """``2^N`` for ``N`` splitting inputs."""
        return 1 << len(self.splitting_inputs)

    def assignment(self, index: int) -> dict[str, bool]:
        """The splitting-input constants of shard ``index``."""
        return {
            net: bool((index >> j) & 1)
            for j, net in enumerate(self.splitting_inputs)
        }

    def run_shard(
        self,
        index: int,
        time_limit: float | None = None,
        max_dips: int | None = None,
        attack: str = "sat",
        attack_params: dict | None = None,
        seed: int = 0,
    ) -> SubTaskResult:
        """Attack sub-space ``index`` against the shared encoding.

        The sub-space is selected purely with assumptions (splitting
        pins + a fresh guard literal for this shard's I/O constraints);
        nothing is re-encoded.  The shard runs inside a solver frame
        (:meth:`repro.sat.solver.Solver.checkpoint` /
        :meth:`~repro.sat.solver.Solver.rollback`): its DIP constraint
        copies vanish afterwards, while clauses learned about the base
        miter carry over warm to the next shard.

        ``attack`` must be a registered attack with a ``shard_fn``
        (today: ``"sat"``); attacks that cannot run against a shared
        encoding are rejected here — ``multikey_attack`` routes them
        to the reference per-sub-space path instead.

        Returns a :class:`~repro.core.multikey.SubTaskResult` whose
        ``solver_stats`` / ``oracle_queries`` are this shard's deltas.
        """
        if not 0 <= index < self.num_shards:
            raise ValueError(
                f"shard index {index} out of range for {self.num_shards} shards"
            )
        info = attack_info(attack)
        if info.shard_fn is None:
            raise ValueError(
                f"attack {attack!r} cannot run against a shared encoding; "
                "use engine='reference' (multikey_attack falls back "
                "automatically)"
            )
        assignment = self.assignment(index)
        input_vars = self.enc.input_vars
        assume = [
            input_vars[net] if value else -input_vars[net]
            for net, value in assignment.items()
        ]
        solver = self.enc.solver
        frame = solver.checkpoint()
        guard = solver.new_var()
        # Root facts accumulated by earlier shards (kept across
        # rollback) satisfy base clauses for good; shed them now.
        # Inside the frame this marks clauses deleted in place — the
        # clause-list length the mark snapshot relies on is untouched.
        if hasattr(solver, "simplify"):
            solver.simplify()
        outcome = info.shard_fn(
            self.enc,
            self.oracle,
            pin=assignment,
            assume=assume,
            guard=guard,
            time_limit=time_limit,
            max_dips=max_dips,
            seed=seed,
            **(attack_params or {}),
        )
        # Drop this shard's variables and constraints; keep what the
        # solver learned about the shared base encoding.
        solver.rollback(frame)
        return SubTaskResult(
            index=index,
            assignment=assignment,
            key=outcome.key,
            status=outcome.status,
            num_dips=outcome.num_dips,
            elapsed_seconds=outcome.elapsed_seconds,
            synthesis_seconds=0.0,
            gates_before=self._num_gates,
            gates_after=self._num_gates,
            oracle_queries=outcome.oracle_queries,
            solver_stats=outcome.solver_stats,
            key_order=list(self.locked.key_inputs),
            attack=attack,
        )

    def export_warm_clauses(
        self, max_lbd: int = _WARM_START_MAX_LBD
    ) -> list[list[int]]:
        """Learned clauses safe to prime another engine's solver with.

        Only clauses confined to the base miter variables are exported
        (they cannot depend on any shard's guarded constraints), so the
        result is implied by the encoding alone and sound to import
        into any engine built for the same circuit.  Backends without
        the ``learnt_export`` capability return an empty list — the
        shards still run, just without warm-start priming.
        """
        if not self._can_exchange_learnts:
            return []
        return self.enc.solver.export_learnts(
            max_var=self.enc.base_vars, max_lbd=max_lbd
        )


def _encoding_identity(locked: LockedCircuit, opt: str) -> str:
    """Content hash of the compiled circuit the miter is encoded from.

    With optimization on, the *optimized* circuit fixes the variable
    numbering, so its hash — not the raw netlist's — is the identity
    that warm-start clause imports must match.
    """
    compiled = locked.netlist.compile()
    if opt != "off":
        compiled = compiled.optimized(opt).compiled
    return compiled.content_hash()


def _locked_to_params(locked: LockedCircuit) -> dict:
    """JSON-serializable reconstruction recipe for a locked circuit."""
    return {
        "locked_bench": format_bench(locked.netlist),
        "key_inputs": list(locked.key_inputs),
        "correct_key": [int(b) for b in locked.correct_key],
        "original_inputs": list(locked.original_inputs),
        "scheme": locked.scheme,
    }


def _locked_from_params(params: dict) -> LockedCircuit:
    """Inverse of :func:`_locked_to_params` (runs in worker processes)."""
    return LockedCircuit(
        netlist=parse_bench(params["locked_bench"], name="locked"),
        key_inputs=list(params["key_inputs"]),
        correct_key=tuple(int(b) for b in params["correct_key"]),
        original_inputs=list(params["original_inputs"]),
        scheme=params.get("scheme", "generic"),
    )


@register_task("multikey_shard_chunk")
def _shard_chunk_task(params: dict) -> dict:
    """Worker: run a contiguous chunk of shards on one warm engine.

    The chunk shares a single :class:`ShardEngine` (one encoding, one
    solver), so learned clauses carry over between the shards executed
    on this worker.  ``prime_learnts`` arrives through the unhashed
    execution context and is only imported when the worker's encoding
    provably matches the exporter's (compiled content hash).
    """
    locked = _locked_from_params(params)
    opt = resolve_opt(params.get("opt", "off"))
    oracle = Oracle(
        parse_bench(params["oracle_bench"], name="oracle"), opt=opt
    )
    prime = params.get("prime_learnts")
    if prime and params.get("encoding_hash"):
        if _encoding_identity(locked, opt) != params["encoding_hash"]:
            prime = None  # pragma: no cover - defensive: never import blind
    engine = ShardEngine(
        locked,
        oracle,
        params["splitting_inputs"],
        prime_learnts=prime,
        solver=params.get("solver"),
        opt=opt,
    )
    shards = [
        asdict(
            engine.run_shard(
                index,
                time_limit=params.get("time_limit_per_task"),
                max_dips=params.get("max_dips_per_task"),
                attack=params.get("attack", "sat"),
                attack_params=params.get("attack_params"),
                seed=params.get("seed", 0),
            )
        )
        for index in params["shard_indices"]
    ]
    return {"shards": shards, "encode_seconds": engine.encode_seconds}


def shard_chunk_task(
    locked: LockedCircuit,
    oracle_netlist: Netlist,
    splitting_inputs: Sequence[str],
    shard_indices: Sequence[int],
    time_limit_per_task: float | None,
    max_dips_per_task: int | None,
    prime_learnts: list[list[int]] | None = None,
    encoding_hash: str | None = None,
    attack: str = "sat",
    attack_params: dict | None = None,
    seed: int = 0,
    solver: str | None = None,
    opt: str | None = None,
) -> TaskSpec:
    """The :class:`TaskSpec` for one worker's chunk of shards.

    Circuits travel as ``.bench`` text, so the params are plain JSON:
    the same attack hashes identically across processes and the
    runner's on-disk cache can replay shard chunks.  The solver backend
    is hashed too — different backends may return different (equally
    valid) partial keys, so their artifacts must not alias.  The
    optimization level is hashed for the same reason: it changes the
    encoding a shard solves against (and the structural stats a result
    may carry), so opt-on and opt-off artifacts must not alias either
    — callers pass the *resolved* level so ``"auto"`` never leaks into
    the hash.  Warm-start clauses ride in the unhashed execution
    context — they change how fast a chunk solves, never what it
    returns.
    """
    return TaskSpec(
        kind="multikey_shard_chunk",
        params={
            **_locked_to_params(locked),
            "oracle_bench": format_bench(oracle_netlist),
            "splitting_inputs": list(splitting_inputs),
            "shard_indices": list(shard_indices),
            "time_limit_per_task": time_limit_per_task,
            "max_dips_per_task": max_dips_per_task,
            "attack": attack,
            "attack_params": attack_params,
            "seed": seed,
            "solver": solver,
            "opt": resolve_opt(opt),
        },
        context={
            "prime_learnts": prime_learnts,
            "encoding_hash": encoding_hash,
        },
        label=(
            f"shards {shard_indices[0]}-{shard_indices[-1]}"
            if shard_indices
            else "shards <empty>"
        ),
    )


def sharded_multikey_attack(
    locked: LockedCircuit,
    oracle_netlist: Netlist,
    effort: int,
    selection: str = "fanout",
    parallel: bool = False,
    processes: int | None = None,
    time_limit_per_task: float | None = None,
    max_dips_per_task: int | None = None,
    seed: int = 0,
    splitting_inputs: list[str] | None = None,
    runner: Runner | None = None,
    warm_start: bool = True,
    attack: str = "sat",
    attack_params: dict | None = None,
    solver: str | None = None,
    opt: str | None = None,
) -> MultiKeyResult:
    """Run Algorithm 1 through the shared-encoding sharded engine.

    Drop-in alternative to
    :func:`repro.core.multikey.multikey_attack` (same
    :class:`~repro.core.multikey.MultiKeyResult` shape, same sub-space
    indexing, same partial-key semantics) that encodes the miter once
    and runs the ``2^N`` sub-spaces as assumption-pinned shards.

    Args:
        locked: The locked design (attacker's netlist).
        oracle_netlist: The original design; each engine instantiates
            its own :class:`~repro.oracle.oracle.Oracle` from it.
        effort: ``N``; the input space splits into ``2^N`` sub-spaces.
        selection: Splitting-input strategy (see
            :func:`repro.core.splitting.select_splitting_inputs`).
        parallel: Fan shard chunks out through :mod:`repro.runner`.
        processes: Worker count for the default runner (ignored when
            ``runner`` is supplied).
        time_limit_per_task / max_dips_per_task: Per-shard budgets.
        seed: Seed for the ``random`` selection strategy.
        splitting_inputs: Override the selection entirely.
        runner: Runner to submit shard chunks through (its progress
            callback streams each chunk's partial keys as it lands; its
            cache, when enabled, replays identical attacks).  A plain
            uncached pool is built when omitted.
        warm_start: In parallel mode, run shard 0 in-process first and
            prime every worker's solver with its exported learned
            clauses.
        attack: Registered per-shard attack; must carry a ``shard_fn``
            (today: ``"sat"``).  Attacks without one are rejected —
            :func:`repro.core.multikey.multikey_attack` falls back to
            the reference per-sub-space path for those.
        attack_params: Extra keyword params for the attack
            (JSON-serializable; they are part of the task hash).
        solver: Registered solver backend name (``None`` -> process
            default); must support sharding (checkpoint frames +
            assumptions) or the :class:`ShardEngine` raises.
        opt: Structural optimization level for the shared miter and
            the oracle's compiled circuit (``None`` -> process
            default; see :mod:`repro.circuit.opt`).  Resolved once
            here and hashed into the shard-chunk tasks; with opt on,
            the warm-start encoding identity is the *optimized*
            circuit's content hash.

    ``effort=0`` degenerates to the baseline single-key SAT attack on
    a single shard.

    Example (a 2-bit XOR-locked toy, split on one input)::

        >>> from repro.circuit.random_circuits import random_netlist
        >>> from repro.locking.xor_lock import xor_lock
        >>> original = random_netlist(4, 12, seed=7)
        >>> locked = xor_lock(original, 2, seed=1)
        >>> result = sharded_multikey_attack(locked, original, effort=1)
        >>> result.engine, result.status, len(result.subtasks)
        ('sharded', 'ok', 2)
        >>> all(task.key is not None for task in result.subtasks)
        True
    """
    from repro.sat.registry import resolve_solver_name

    start = time.perf_counter()
    attack_info(attack)  # fail fast on unknown names
    solver = resolve_solver_name(solver)  # pinned: the backend is hashed
    opt = resolve_opt(opt)  # pinned: the level is hashed too
    if splitting_inputs is None:
        splitting_inputs = select_splitting_inputs(
            locked, effort, strategy=selection, seed=seed
        )
    elif len(splitting_inputs) != effort:
        raise ValueError("splitting_inputs length must equal effort")
    assignments = splitting_assignments(splitting_inputs)
    num_shards = len(assignments)

    fan_out = (parallel or runner is not None) and num_shards > 1
    oracle = Oracle(oracle_netlist, opt=opt)
    engine = ShardEngine(
        locked, oracle, splitting_inputs, solver=solver, opt=opt
    )
    encode_seconds = engine.encode_seconds

    if not fan_out:
        subtasks = [
            engine.run_shard(
                index,
                time_limit=time_limit_per_task,
                max_dips=max_dips_per_task,
                attack=attack,
                attack_params=attack_params,
                seed=seed,
            )
            for index in range(num_shards)
        ]
    else:
        # Pilot shard in-process: its result is shard 0's, and its
        # learned clauses become every worker's warm start.
        pilot = engine.run_shard(
            0,
            time_limit=time_limit_per_task,
            max_dips=max_dips_per_task,
            attack=attack,
            attack_params=attack_params,
            seed=seed,
        )
        prime = engine.export_warm_clauses() if warm_start else None
        encoding_hash = _encoding_identity(locked, opt)
        if runner is None:
            import multiprocessing

            runner = Runner(jobs=processes or multiprocessing.cpu_count())
        chunks = chunk_evenly(
            list(range(1, num_shards)), max(1, runner.jobs)
        )
        specs = [
            shard_chunk_task(
                locked,
                oracle_netlist,
                splitting_inputs,
                chunk,
                time_limit_per_task,
                max_dips_per_task,
                prime_learnts=prime,
                encoding_hash=encoding_hash,
                attack=attack,
                attack_params=attack_params,
                seed=seed,
                solver=solver,
                opt=opt,
            )
            for chunk in chunks
        ]
        subtasks = [pilot]
        worker_encode = 0.0
        for task in runner.run(specs):
            for shard in task.artifact["shards"]:
                subtasks.append(SubTaskResult(**shard))
            worker_encode = max(
                worker_encode, task.artifact.get("encode_seconds", 0.0)
            )
        # Workers re-encode concurrently, so the critical path carries
        # the parent encode plus the slowest worker's re-encode.
        encode_seconds += worker_encode
        subtasks.sort(key=lambda task: task.index)

    return MultiKeyResult(
        effort=effort,
        splitting_inputs=list(splitting_inputs),
        subtasks=subtasks,
        wall_seconds=time.perf_counter() - start,
        parallel=fan_out,
        selection=selection,
        engine="sharded",
        encode_seconds=encode_seconds,
        attack=attack,
        solver=solver,
    )
