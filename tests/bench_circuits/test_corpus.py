"""Corpus tests: registration round-trip, shipped files, attack smoke.

The loader round-trip covers the whole naming pipeline the ISSUE asks
for — parse a ``.bench`` file, fingerprint it, register it, and
evaluate a scenario-matrix cell addressed by the registered name —
plus the shipped ``real_c432`` runs a genuine lock + SAT-attack + CEC
flow mirroring how the related repos drive real ISCAS netlists.
"""

import pytest

from repro.bench_circuits import ISCAS85_PROFILES
from repro.bench_circuits.corpus import (
    CorpusError,
    circuit_names,
    corpus_entry,
    corpus_names,
    known_circuit,
    load_corpus,
    register_corpus_file,
    resolve_circuit,
)
from repro.circuit.bench import format_bench, parse_bench
from repro.circuit.random_circuits import random_netlist
from repro.core.compose import verify_composition
from repro.core.multikey import multikey_attack
from repro.locking.registry import lock_circuit
from repro.oracle.oracle import Oracle
from repro.scenarios import ScenarioSpec, run_matrix

SHIPPED = ("real_c432", "real_c499", "real_c880")


class TestShippedCorpus:
    def test_registered_at_import(self):
        assert set(SHIPPED) <= set(corpus_names())

    @pytest.mark.parametrize("name", SHIPPED)
    def test_matches_published_profile(self, name):
        """Each reconstruction matches its namesake's published PI/PO/gates."""
        entry = corpus_entry(name)
        published = ISCAS85_PROFILES[name.removeprefix("real_")]
        assert entry.profile() == {
            "pi": published["pi"],
            "po": published["po"],
            "gates": published["gates"],
        }

    @pytest.mark.parametrize("name", SHIPPED)
    def test_load_is_fresh_and_hash_stable(self, name):
        entry = corpus_entry(name)
        first, second = load_corpus(name), load_corpus(name)
        assert first is not second
        assert first.compile().content_hash() == entry.content_hash
        assert second.compile().content_hash() == entry.content_hash

    def test_names_resolve_like_stand_ins(self):
        for name in SHIPPED:
            assert known_circuit(name)
            assert resolve_circuit(name).num_gates == corpus_entry(
                name
            ).num_gates
        assert known_circuit("c432")  # stand-ins still resolve
        assert not known_circuit("c9999")
        assert set(SHIPPED) <= set(circuit_names())

    def test_scale_ignored_for_corpus(self):
        assert (
            resolve_circuit("real_c432", scale=0.25).num_gates
            == resolve_circuit("real_c432", scale=1.0).num_gates
        )
        # ... but still applied to stand-ins.
        small = resolve_circuit("c432", scale=0.25)
        full = resolve_circuit("c432", scale=1.0)
        assert small.num_gates < full.num_gates


class TestRegistration:
    def _write(self, tmp_path, name, seed=5):
        netlist = random_netlist(5, 25, seed=seed)
        path = tmp_path / f"{name}.bench"
        path.write_text(format_bench(netlist))
        return path

    def test_round_trip_parse_hash_registry_matrix_cell(self, tmp_path):
        """The full pipeline: file -> hash -> registry -> matrix cell."""
        path = self._write(tmp_path, "user_circ")
        entry = register_corpus_file(path, source="test")
        # Parse and hash agree with a manual parse of the same text.
        manual = parse_bench(path.read_text(), name="user_circ")
        assert entry.content_hash == manual.compile().content_hash()
        assert entry.name == "user_circ"
        assert (entry.num_inputs, entry.num_outputs) == (
            len(manual.inputs),
            len(manual.outputs),
        )
        # The registered name is a first-class matrix circuit.
        spec = ScenarioSpec(
            schemes=[("xor", {"key_size": 3})],
            attacks=["sat"],
            engines=["reference"],
            circuits=["user_circ"],
            efforts=[1],
            seeds=[0],
        )
        result = run_matrix(spec)
        assert [cell.status for cell in result.cells] == ["ok"]
        assert result.cells[0].circuit == "user_circ"

    def test_idempotent_reregistration(self, tmp_path):
        path = self._write(tmp_path, "idem")
        assert register_corpus_file(path) == register_corpus_file(path)

    def test_name_conflict_with_different_content(self, tmp_path):
        register_corpus_file(self._write(tmp_path, "clash", seed=1))
        (tmp_path / "sub").mkdir(exist_ok=True)
        other = self._write(tmp_path / "sub", "clash", seed=2)
        with pytest.raises(CorpusError, match="different content"):
            register_corpus_file(other)

    def test_stand_in_names_are_reserved(self, tmp_path):
        path = self._write(tmp_path, "c432")
        with pytest.raises(CorpusError, match="stand-in"):
            register_corpus_file(path)
        path17 = self._write(tmp_path, "c17")
        with pytest.raises(CorpusError, match="stand-in"):
            register_corpus_file(path17)

    def test_edited_file_fails_loudly_on_load(self, tmp_path):
        path = self._write(tmp_path, "editme")
        register_corpus_file(path)
        netlist = random_netlist(5, 26, seed=9)
        path.write_text(format_bench(netlist))
        with pytest.raises(CorpusError, match="changed on disk"):
            load_corpus("editme")

    def test_unknown_names_list_choices(self):
        with pytest.raises(CorpusError, match="real_c432"):
            corpus_entry("nope")
        with pytest.raises(CorpusError, match="unknown circuit"):
            resolve_circuit("nope")

    def test_spec_validates_circuit_names(self):
        with pytest.raises(ValueError, match="unknown circuit"):
            ScenarioSpec(
                schemes=["xor"],
                attacks=["sat"],
                engines=["reference"],
                circuits=["not_a_circuit"],
                efforts=[1],
                seeds=[0],
            )


class TestRealC432AttackSmoke:
    """Lock the genuine-format c432 and break it, end to end."""

    def test_lock_attack_verify(self):
        original = load_corpus("real_c432")
        locked = lock_circuit("xor", original, key_size=4, seed=3)
        result = multikey_attack(locked, original, effort=1, seed=3)
        assert result.status == "ok"
        assert result.subtasks
        # The paper's success criterion: the MUX composition of the
        # recovered sub-space keys is equivalent to the original.
        assert verify_composition(
            locked, result.splitting_inputs, result.keys, original
        )

    def test_oracle_on_real_circuit(self):
        original = load_corpus("real_c432")
        oracle = Oracle(original)
        patterns = list(range(8))
        assert oracle.query_batch(patterns) == [
            oracle.query_int(p) for p in patterns
        ]
        assert oracle.query_count == 16
