"""Functional correctness of the benchmark generators."""

import pytest
from hypothesis import given, strategies as st

from repro.bench_circuits.generators import (
    array_multiplier,
    expand_xor_to_nand,
    hamming_sec_corrector,
    priority_controller,
    ripple_carry_adder,
    simple_alu,
    word_comparator,
)
from repro.circuit.gates import GateType
from repro.circuit.simulator import evaluate, truth_table


def _word(prefix: str, value: int, width: int) -> dict[str, int]:
    return {f"{prefix}{i}": (value >> i) & 1 for i in range(width)}


def _read_word(outs: dict[str, int], prefix: str, width: int) -> int:
    return sum(outs[f"{prefix}{i}"] << i for i in range(width))


class TestAdder:
    @given(a=st.integers(0, 255), b=st.integers(0, 255), cin=st.integers(0, 1))
    def test_addition(self, a, b, cin):
        n = ripple_carry_adder(8)
        outs = evaluate(n, {**_word("a", a, 8), **_word("b", b, 8), "cin": cin})
        got = _read_word(outs, "sum", 8) + (outs["cout"] << 8)
        assert got == a + b + cin

    def test_width_one(self):
        n = ripple_carry_adder(1)
        outs = evaluate(n, {"a0": 1, "b0": 1, "cin": 1})
        assert outs["sum0"] == 1 and outs["cout"] == 1


class TestMultiplier:
    @given(a=st.integers(0, 31), b=st.integers(0, 31))
    def test_multiplication_5x5(self, a, b):
        n = array_multiplier(5)
        outs = evaluate(n, {**_word("a", a, 5), **_word("b", b, 5)})
        assert _read_word(outs, "p", 10) == a * b

    def test_interface_is_c6288_shaped(self):
        n = array_multiplier(16)
        assert len(n.inputs) == 32
        assert len(n.outputs) == 32


class TestComparator:
    @given(a=st.integers(0, 63), b=st.integers(0, 63))
    def test_magnitude(self, a, b):
        n = word_comparator(6)
        outs = evaluate(n, {**_word("a", a, 6), **_word("b", b, 6)})
        assert outs["eq"] == int(a == b)
        assert outs["lt"] == int(a < b)
        assert outs["gt"] == int(a > b)


class TestAlu:
    OPS = {
        0: lambda a, b, c, w: (a + b + c) & ((1 << w) - 1),
        2: lambda a, b, c, w: a & b,
        3: lambda a, b, c, w: a | b,
        4: lambda a, b, c, w: a ^ b,
        5: lambda a, b, c, w: ~a & ((1 << w) - 1),
        6: lambda a, b, c, w: ((a << 1) | c) & ((1 << w) - 1),
        7: lambda a, b, c, w: b,
    }

    @given(
        a=st.integers(0, 15),
        b=st.integers(0, 15),
        cin=st.integers(0, 1),
        op=st.sampled_from([0, 2, 3, 4, 5, 6, 7]),
    )
    def test_operations(self, a, b, cin, op):
        w = 4
        n = simple_alu(w)
        bits = {
            **_word("a", a, w),
            **_word("b", b, w),
            **_word("op", op, 3),
            "cin": cin,
        }
        outs = evaluate(n, bits)
        assert _read_word(outs, "f", w) == self.OPS[op](a, b, cin, w)

    @given(a=st.integers(0, 15), b=st.integers(0, 15), cin=st.integers(0, 1))
    def test_subtract_with_borrow(self, a, b, cin):
        w = 4
        n = simple_alu(w)
        bits = {
            **_word("a", a, w),
            **_word("b", b, w),
            **_word("op", 1, 3),
            "cin": cin,
        }
        outs = evaluate(n, bits)
        expected = (a + ((~b) & 15) + cin) & 15
        assert _read_word(outs, "f", w) == expected

    def test_flags(self):
        w = 4
        n = simple_alu(w)
        bits = {
            **_word("a", 0, w),
            **_word("b", 0, w),
            **_word("op", 2, 3),
            "cin": 0,
        }
        outs = evaluate(n, bits)
        assert outs["zero"] == 1
        assert outs["parity"] == 0

    def test_extra_controls_mask_result(self):
        n = simple_alu(3, extra_controls=1)
        bits = {
            **_word("a", 7, 3),
            **_word("b", 7, 3),
            **_word("op", 3, 3),
            "cin": 0,
            "en0": 0,
        }
        outs = evaluate(n, bits)
        assert _read_word(outs, "f", 3) == 0

    def test_select_bits_floor(self):
        with pytest.raises(ValueError):
            simple_alu(4, select_bits=2)


class TestHammingSec:
    @given(data=st.integers(0, 255))
    def test_clean_word_with_matching_checks_decodes(self, data):
        """If received checks equal recomputed checks, syndrome is zero
        and the data word passes through unmodified."""
        width = 8
        n = hamming_sec_corrector(width)
        check_bits = len([i for i in n.inputs if i.startswith("c")])
        # Compute matching check bits: parity over data taps.
        checks = 0
        for j in range(check_bits):
            taps = [i for i in range(width) if ((i + 1) >> j) & 1] or [0]
            parity = 0
            for t in taps:
                parity ^= (data >> t) & 1
            checks |= parity << j
        bits = {**_word("d", data, width), **_word("c", checks, check_bits)}
        outs = evaluate(n, bits)
        assert _read_word(outs, "q", width) == data

    def test_nand_style_is_equivalent(self):
        a = hamming_sec_corrector(6)
        b = hamming_sec_corrector(6, nand_style=True)
        from repro.circuit.equivalence import check_equivalence

        assert check_equivalence(a, b).equivalent

    def test_nand_style_has_no_xor(self):
        n = hamming_sec_corrector(6, nand_style=True)
        kinds = {g.gtype for g in n.gates.values()}
        assert GateType.XOR not in kinds
        assert GateType.XNOR not in kinds


class TestPriorityController:
    def test_lowest_active_channel_wins(self):
        n = priority_controller(3, 2)
        bits = {}
        # channel 0 idle, channels 1,2 active and enabled
        for c in range(3):
            for i in range(2):
                bits[f"r{c}_{i}"] = 1 if c > 0 else 0
                bits[f"e{c}_{i}"] = 1
        outs = evaluate(n, bits)
        assert outs["g0"] == 0
        assert outs["g1"] == 1
        assert outs["g2"] == 0
        assert outs["any"] == 1

    def test_masked_requests_ignored(self):
        n = priority_controller(2, 2)
        bits = {f"r{c}_{i}": 1 for c in range(2) for i in range(2)}
        bits.update({f"e{c}_{i}": 0 for c in range(2) for i in range(2)})
        outs = evaluate(n, bits)
        assert outs["any"] == 0


class TestXorExpansion:
    @given(seed=st.integers(0, 2000))
    def test_equivalence(self, seed):
        from repro.circuit.random_circuits import random_netlist

        n = random_netlist(5, 20, seed=seed)
        expanded = expand_xor_to_nand(n)
        expanded.validate()
        tt_a, tt_b = truth_table(n), truth_table(expanded)
        assert all(tt_a[o] == tt_b[o] for o in n.outputs)
