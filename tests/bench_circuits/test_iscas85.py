"""ISCAS'85 stand-in tests: interfaces, scaling, the real c17."""

import pytest

from repro.bench_circuits.iscas85 import (
    ISCAS85_PROFILES,
    c17,
    iscas85_like,
    iscas85_names,
)
from repro.circuit.simulator import evaluate, truth_table


class TestC17:
    def test_structure(self):
        n = c17()
        assert len(n.inputs) == 5
        assert len(n.outputs) == 2
        assert n.num_gates == 6
        assert all(g.gtype.value == "NAND" for g in n.gates.values())

    def test_known_vectors(self):
        n = c17()
        # All-zero inputs: G11 = NAND(0,0)=1, G16 = NAND(0,1)=1,
        # G10 = 1, G19 = NAND(1,0)=1, G22 = NAND(1,1)=0, G23 = 0.
        outs = evaluate(n, {"G1": 0, "G2": 0, "G3": 0, "G6": 0, "G7": 0})
        assert outs == {"G22": 0, "G23": 0}
        outs = evaluate(n, {"G1": 1, "G2": 1, "G3": 1, "G6": 1, "G7": 1})
        assert outs == {"G22": 1, "G23": 0}

    def test_not_constant(self):
        tt = truth_table(c17())
        assert tt["G22"] not in (0, (1 << 32) - 1)


class TestProfiles:
    def test_all_names_build_small(self):
        for name in iscas85_names():
            n = iscas85_like(name, scale=0.2)
            n.validate()
            assert n.num_gates > 0

    @pytest.mark.parametrize(
        "name", ["c432", "c499", "c880", "c1355", "c1908", "c6288"]
    )
    def test_full_scale_interface_matches(self, name):
        profile = ISCAS85_PROFILES[name]
        n = iscas85_like(name, scale=1.0)
        assert len(n.inputs) == profile["pi"]
        assert len(n.outputs) == profile["po"]

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            iscas85_like("c9999")

    def test_bad_scale_rejected(self):
        with pytest.raises(ValueError):
            iscas85_like("c880", scale=0)

    def test_scale_monotone_in_gates(self):
        small = iscas85_like("c6288", 0.2)
        big = iscas85_like("c6288", 0.5)
        assert small.num_gates < big.num_gates

    def test_no_interface_matching(self):
        n = iscas85_like("c7552", 0.5, match_interface=False)
        n.validate()

    def test_padding_is_observable(self):
        """Padded inputs must influence padded outputs."""
        n = iscas85_like("c5315", 0.3)
        pads = [net for net in n.inputs if net.startswith("xpad")]
        assert pads
        base = {net: 0 for net in n.inputs}
        ref = evaluate(n, base)
        flipped = dict(base)
        flipped[pads[0]] = 1
        got = evaluate(n, flipped)
        assert got != ref

    def test_determinism(self):
        a = iscas85_like("c2670", 0.3)
        b = iscas85_like("c2670", 0.3)
        assert a.gates == b.gates
        assert a.inputs == b.inputs
