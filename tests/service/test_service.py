"""Service/Job behavior: streaming, results, cancellation, snapshots."""

from __future__ import annotations

import pytest

from repro.runner import ResultCache
from repro.service import (
    AttackRequest,
    BenchRequest,
    EnvelopeError,
    ExperimentRequest,
    MatrixRequest,
    Response,
    Service,
    from_json,
    to_json,
)

_TINY_MATRIX = dict(
    schemes=[["sarlock", {"key_size": 3}]],
    circuits=["c432"],
    scale=0.12,
    efforts=[1],
)


class TestMatrixJobs:
    def test_event_stream_shape(self):
        service = Service()
        job = service.submit(MatrixRequest(**_TINY_MATRIX))
        events = list(job.events())
        types = [e.type for e in events]
        assert types[0] == "job_started"
        assert types[-1] == "job_done"
        assert types.count("cell_done") == 1
        assert types.count("cell_started") == 1
        # seq is gapless and ordered.
        assert [e.seq for e in events] == list(range(len(events)))
        assert all(e.job_id == job.id for e in events)

    def test_cell_done_count_matches_grid_size(self):
        request = MatrixRequest(
            schemes=[["sarlock", {"key_size": 3}], ["xor", {"key_size": 3}]],
            engines=["sharded", "reference"],
            circuits=["c432"],
            scale=0.12,
            efforts=[1],
        )
        service = Service()
        job = service.submit(request)
        events = list(job.events())
        total = request.to_spec().size
        assert total == 4
        assert sum(e.type == "cell_done" for e in events) == total
        started = next(e for e in events if e.type == "job_started")
        assert started.data["total"] == total
        final_progress = [e for e in events if e.type == "progress"][-1]
        assert final_progress.data == {"done": 4, "total": 4, "fraction": 1.0}

    def test_response_matrix_round_trips(self):
        from repro.runner import Runner
        from repro.scenarios import run_matrix
        from repro.scenarios.matrix import MatrixResult

        request = MatrixRequest(**_TINY_MATRIX)
        service = Service(cache=ResultCache(None))
        response = service.run(request)
        assert response.status == "ok"
        # The wire envelope decodes back to an equal Response...
        assert from_json(to_json(response)) == response
        # ... and its payload reconstructs a MatrixResult equal to a
        # direct library run replayed from the same cache.
        rebuilt = MatrixResult.from_payload(response.result)
        direct = run_matrix(
            request.to_spec(), runner=Runner(cache=service.cache)
        )
        assert rebuilt == direct

    def test_partial_status_on_budget_stopped_cells(self):
        request = MatrixRequest(
            schemes=[["sarlock", {"key_size": 4}]],
            circuits=["c432"],
            scale=0.12,
            efforts=[1],
            max_dips_per_task=1,
        )
        response = Service().run(request)
        assert response.status == "partial"


class TestExperimentJobs:
    def test_figure1_round_trip_and_render(self):
        from repro.experiments.figure1 import run_figure1
        from repro.service import render_response

        response = Service().run(ExperimentRequest(experiment="figure1"))
        assert response.status == "ok"
        assert render_response(response) == run_figure1().format()

    def test_table1_streams_cells(self):
        request = ExperimentRequest(
            experiment="table1",
            params={"key_sizes": [3], "efforts": [0, 1], "scale": 0.12},
        )
        job = Service().submit(request)
        events = list(job.events())
        assert sum(e.type == "cell_done" for e in events) == 2
        assert job.result().status == "ok"

    def test_unhandled_worker_error_is_an_error_response(self):
        # antisat requires an even key size; the failure surfaces in
        # the job, not as a crash of the submitting thread.
        request = MatrixRequest(
            schemes=[["antisat", {"key_size": 3}]],
            circuits=["c432"],
            scale=0.12,
            efforts=[1],
        )
        job = Service().submit(request)
        events = list(job.events())
        response = job.result()
        assert response.status == "error"
        assert "even" in response.error
        assert any(e.type == "warning" for e in events)
        assert events[-1].type == "job_done"
        assert events[-1].data["status"] == "error"


class TestAttackJobs:
    def test_attack_job_and_text_parity(self):
        from repro.service import render_response

        request = AttackRequest(
            circuit="c1908",
            scheme="sarlock",
            scheme_params={"key_size": 4},
            effort=1,
            scale=0.2,
        )
        response = Service().run(request)
        assert response.status == "ok"
        assert response.result["exact"] is True
        assert response.result["composition_equivalent"] is True
        text = render_response(response)
        assert text.startswith("locked: LockedCircuit(sarlock")
        assert "multi-key composition equivalent: True" in text
        # quiet rendering drops the per-shard statistics only.
        quiet = render_response(response, verbose=False)
        assert "shard 0" not in quiet and "solver totals" not in quiet
        assert "multi-key composition equivalent: True" in quiet


class TestBenchJobs:
    def test_bench_payload(self):
        response = Service().run(BenchRequest(circuit="c432", scale=0.3))
        assert response.status == "ok"
        assert "INPUT(" in response.result["text"]
        assert response.result["name"]


class TestJobControl:
    def test_cancel_keeps_completed_cells(self):
        # Deterministic mid-run cancellation: cancel from inside the
        # first completion callback, then drive the job synchronously.
        # The runner polls ``should_stop`` between tasks, so exactly
        # one of the six cells completes.
        from repro.service.jobs import Job, _execute_matrix

        request = MatrixRequest(
            schemes=[["sarlock", {"key_size": 3}]],
            circuits=["c432"],
            scale=0.12,
            efforts=[1],
            seeds=list(range(6)),
        )
        service = Service()
        job = Job("cancelled-job", request)
        service._jobs[job.id] = job
        original = job._on_progress

        def cancel_after_first(result, done, total):
            original(result, done, total)
            job.cancel()

        job._on_progress = cancel_after_first
        service._run_job(job, _execute_matrix)
        response = job.result()
        assert response.status == "cancelled"
        assert len(response.result["cells"]) == 1
        assert job.snapshot()["status"] == "cancelled"
        events = list(job.events())
        assert events[-1].type == "job_done"
        assert events[-1].data["status"] == "cancelled"

    def test_snapshot_during_run(self):
        service = Service()
        job = service.submit(MatrixRequest(**_TINY_MATRIX))
        job.result()
        snapshot = job.snapshot()
        assert snapshot["status"] == "ok"
        assert [c["status"] for c in snapshot["completed"]] == ["ok"]

    def test_result_timeout(self):
        # An unstarted job never finishes: the wait must time out.
        from repro.service.jobs import Job

        job = Job("never-run", MatrixRequest(**_TINY_MATRIX))
        with pytest.raises(TimeoutError, match="still running"):
            job.result(timeout=0.01)

    def test_submitting_a_non_request_is_rejected(self):
        with pytest.raises(EnvelopeError, match="not a request"):
            Service().submit(Response(status="ok"))

    def test_duplicate_live_job_id_is_rejected(self):
        service = Service()
        job = service.submit(
            MatrixRequest(**_TINY_MATRIX), job_id="dup"
        )
        # A finished id may be reused; a live one may not.  Use a
        # barrier-free check: the first job may or may not be done yet,
        # so only assert the live-rejection when it is still running.
        if not job.done():
            with pytest.raises(EnvelopeError, match="already running"):
                service.submit(MatrixRequest(**_TINY_MATRIX), job_id="dup")
        job.result()
        service.submit(MatrixRequest(**_TINY_MATRIX), job_id="dup").result()

    def test_concurrent_jobs_share_one_cache(self, tmp_path):
        cache = ResultCache(tmp_path / "svc-cache")
        service = Service(cache=cache)
        first = service.run(MatrixRequest(**_TINY_MATRIX))
        assert first.status == "ok"
        # Two concurrent resubmissions of the same grid replay from
        # the shared cache: every cell_done reports cached=True.
        jobs = [service.submit(MatrixRequest(**_TINY_MATRIX)) for _ in range(2)]
        for job in jobs:
            events = list(job.events())
            cell_events = [e for e in events if e.type == "cell_done"]
            assert cell_events and all(e.data["cached"] for e in cell_events)
            assert job.result().result == first.result


class TestReviewHardening:
    """Regression locks for the service-layer review findings."""

    def test_cell_done_events_carry_submission_index(self):
        job = Service().submit(
            MatrixRequest(**{**_TINY_MATRIX, "seeds": [0, 1]})
        )
        events = list(job.events())
        started = {
            e.data["index"] for e in events if e.type == "cell_started"
        }
        done = {e.data["index"] for e in events if e.type == "cell_done"}
        assert started == done == {0, 1}
        job.result()

    def test_cancelled_single_task_experiment_is_cancelled_not_error(self):
        # figure1 is one fixed-shape task; cancelling before it runs
        # must yield a clean "cancelled" response, not the driver's
        # unpack ValueError dressed up as an error.
        from repro.service.jobs import Job, _execute_experiment

        service = Service()
        job = Job("pre-cancelled", ExperimentRequest(experiment="figure1"))
        service._jobs[job.id] = job
        job.cancel()
        service._run_job(job, _execute_experiment)
        response = job.result()
        assert response.status == "cancelled"
        assert response.error is None
        assert response.result == {"completed": []}

    def test_cancel_after_completion_stays_ok(self):
        # A cancel() landing after the last task finished must not
        # rewrite a complete result as cancelled.
        from repro.service.jobs import Job

        service = Service()
        job = Job("late-cancel", MatrixRequest(**_TINY_MATRIX))
        service._jobs[job.id] = job

        def executor(svc, j):
            j.emit("job_started", {"kind": "matrix", "total": 0})
            j.cancel()  # lands after all work completed, before response
            return {"cells": [], "spec": {}}, "ok"

        service._run_job(job, executor)
        assert job.result().status == "ok"

    def test_table2_partial_rows_reported_partial(self):
        from repro.experiments.table2 import Table2Result, Table2Row
        from repro.locking.lut_lock import LutModuleSpec
        from repro.service.jobs import _experiment_rows_ok

        def row(multikey_status, baseline_status="ok"):
            return Table2Row(
                circuit="c880",
                baseline_seconds=1.0,
                baseline_status=baseline_status,
                min_seconds=0.1,
                mean_seconds=0.1,
                max_seconds=0.1,
                multikey_status=multikey_status,
                ratio=0.1,
                baseline_dips=3,
                dips_per_task=[1],
            )

        spec = LutModuleSpec.tiny()
        ok = Table2Result(scale=0.2, effort=1, spec=spec, rows=[row("ok")])
        stalled = Table2Result(
            scale=0.2, effort=1, spec=spec, rows=[row("partial")]
        )
        baseline_stalled = Table2Result(
            scale=0.2, effort=1, spec=spec, rows=[row("ok", "timeout")]
        )
        assert _experiment_rows_ok(ok)
        assert not _experiment_rows_ok(stalled)
        assert not _experiment_rows_ok(baseline_stalled)

    def test_finished_jobs_are_pruned(self):
        service = Service(retain_finished=2)
        for i in range(5):
            service.run(BenchRequest(circuit="c432", scale=0.12))
        # Only the retained finished jobs (plus none running) remain.
        assert len(service._jobs) <= 3
        service.run(BenchRequest(circuit="c432", scale=0.12))
        assert len(service._jobs) <= 3

    def test_concurrent_jobs_share_the_slot_budget(self):
        # Two concurrent jobs against a one-slot service: every task
        # execution is serialized through the shared semaphore, yet
        # both jobs stream and complete.
        service = Service(jobs=1)
        request = MatrixRequest(**{**_TINY_MATRIX, "seeds": [0, 1]})
        jobs = [service.submit(request) for _ in range(2)]
        for job in jobs:
            events = list(job.events())
            assert sum(e.type == "cell_done" for e in events) == 2
            assert job.result().status == "ok"


class TestSecondReviewHardening:
    def test_parallel_attack_respects_a_one_slot_service(self):
        # On a jobs=1 service (a stock daemon) a parallel sharded
        # attack stays inside the budget: shards run through the
        # service runner instead of a private cpu_count pool, and the
        # attack still succeeds.
        request = AttackRequest(
            circuit="c1908",
            scheme="sarlock",
            scheme_params={"key_size": 4},
            effort=1,
            scale=0.2,
            parallel=True,
        )
        response = Service(jobs=1).run(request)
        assert response.status == "ok"
        assert response.result["composition_equivalent"] is True

    def test_render_cancelled_partial_payload(self):
        from repro.service import render_response

        response = Response(
            request_kind="experiment",
            status="cancelled",
            result={"completed": []},
        )
        assert "cancelled" in render_response(response)

    def test_auto_ids_skip_client_claimed_ids(self):
        service = Service()
        service.run(BenchRequest(circuit="c432", scale=0.12), job_id="job-1")
        auto = service.submit(BenchRequest(circuit="c432", scale=0.12))
        assert auto.id != "job-1"
        auto.result()
