"""Shared service-layer fixtures: readiness-signalled daemons.

Every in-process daemon here is started the same way: bind, serve on a
thread, then **wait on the server's ``ready`` event** before handing
it to a test.  No sleeps, no retry loops — the load harness surfaced
exactly this class of timing-dependent startup as the flake source, so
the pattern lives in one place.
"""

from __future__ import annotations

import json
import socket
import threading

import pytest

from repro.runner import ResultCache
from repro.service import SCHEMA_VERSION, Service
from repro.service.daemon import create_tcp_server
from repro.service.http import create_http_server


def matrix_request(job_id: str, seeds=(0,), key_size: int = 3) -> dict:
    """The tiny one-scheme grid every daemon test submits."""
    return {
        "schema_version": SCHEMA_VERSION,
        "kind": "matrix",
        "id": job_id,
        "schemes": [["sarlock", {"key_size": key_size}]],
        "circuits": ["c432"],
        "scale": 0.12,
        "efforts": [1],
        "seeds": list(seeds),
    }


def serve_on_thread(server):
    """Run ``serve_forever`` on a daemon thread; block until serving."""
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    assert server.ready.wait(10), "daemon never reached its serve loop"
    return thread


def shutdown_server(server, thread) -> None:
    server.shutdown()
    server.server_close()
    thread.join(timeout=10)


@pytest.fixture
def service(tmp_path):
    """One Service over a fresh sharded on-disk cache."""
    return Service(
        jobs=2, cache=ResultCache(tmp_path / "daemon-cache", backend="sharded")
    )


@pytest.fixture
def tcp_daemon(service):
    """An in-process TCP daemon on an ephemeral port, shared cache."""
    server = create_tcp_server(service, port=0)
    thread = serve_on_thread(server)
    try:
        yield server
    finally:
        shutdown_server(server, thread)


@pytest.fixture
def http_daemon(service):
    """An in-process HTTP gateway on an ephemeral port, shared cache."""
    server = create_http_server(service, port=0)
    thread = serve_on_thread(server)
    try:
        yield server
    finally:
        shutdown_server(server, thread)


def talk(address, lines: list, timeout: float = 120.0) -> list[dict]:
    """Send JSON lines over TCP, close the write side, read every reply.

    Dict lines are encoded as JSON; raw strings go down the wire
    verbatim (fault tests use them to send garbage and oversized
    lines).
    """
    with socket.create_connection(address[:2], timeout=timeout) as conn:
        with conn.makefile("rw", encoding="utf-8") as stream:
            for line in lines:
                if not isinstance(line, str):
                    line = json.dumps(line)
                stream.write(line + "\n")
            stream.flush()
            conn.shutdown(socket.SHUT_WR)
            return [json.loads(reply) for reply in stream]


class ExecutorGate:
    """Hooks for a deterministically *blocking* job executor.

    ``started`` is set when a gated job begins executing; the job then
    parks until ``release`` is set.  This is how fault/backpressure
    tests hold a job "in flight" for exactly as long as they need —
    no timing assumptions anywhere.
    """

    def __init__(self) -> None:
        self.started = threading.Event()
        self.release = threading.Event()
        self.runs = 0


@pytest.fixture
def gated_bench(monkeypatch):
    """Make every BenchRequest block on an :class:`ExecutorGate`."""
    from repro.service import jobs as jobs_module
    from repro.service.envelopes import BenchRequest

    gate = ExecutorGate()

    def blocked(service, job):
        job.emit("job_started", {"kind": "bench", "total": 1})
        gate.runs += 1
        gate.started.set()
        if not gate.release.wait(timeout=60):
            raise TimeoutError("gated bench job was never released")
        return {"name": "gated", "text": ""}, "ok"

    monkeypatch.setitem(jobs_module._EXECUTORS, BenchRequest, blocked)
    yield gate
    gate.release.set()  # never leave a job parked past the test


def bench_request(job_id: str) -> dict:
    return {
        "schema_version": SCHEMA_VERSION,
        "kind": "bench",
        "id": job_id,
        "circuit": "c432",
        "scale": 0.3,
    }
