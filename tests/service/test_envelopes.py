"""Envelope schema tests: round trips, tolerance, fail-fast validation."""

from __future__ import annotations

import json

import pytest

from repro.service import (
    SCHEMA_VERSION,
    AttackRequest,
    BenchRequest,
    EnvelopeError,
    Event,
    ExperimentRequest,
    MatrixRequest,
    Response,
    from_dict,
    from_json,
    to_dict,
    to_json,
)

#: One representative instance per envelope type, defaults and
#: non-defaults mixed, used by the generic round-trip tests.
ENVELOPES = [
    MatrixRequest(),
    MatrixRequest(
        schemes=[["sarlock", {"key_size": 4}], "xor"],
        attacks=["sat", ("appsat", {"error_threshold": 0.0})],
        engines=["sharded", "reference"],
        circuits=["c432", "c880"],
        scale=0.2,
        efforts=[1, 2],
        seeds=[0, 7],
        time_limit_per_task=30.0,
        max_dips_per_task=100,
        include_baseline=True,
        verify_composition=True,
        measure_resistance=True,
    ),
    AttackRequest(),
    AttackRequest(
        circuit="c1908",
        scheme="antisat",
        scheme_params={"key_size": 4},
        attack="appsat",
        attack_params={"error_threshold": 0.0},
        engine="reference",
        effort=1,
        scale=0.15,
        seed=3,
        time_limit_per_task=10.0,
        parallel=True,
    ),
    ExperimentRequest(),
    ExperimentRequest(experiment="table1", params={"key_sizes": [3], "scale": 0.12}),
    ExperimentRequest(experiment="defense", params={"key_size": 4}),
    BenchRequest(),
    BenchRequest(circuit="c432", scale=0.3),
    Response(request_kind="matrix", status="ok", job_id="j1", result={"cells": []}),
    Response(request_kind="attack", status="error", error="boom"),
    Response(request_kind="experiment", status="cancelled"),
]


class TestRoundTrips:
    @pytest.mark.parametrize(
        "envelope", ENVELOPES, ids=lambda e: type(e).__name__
    )
    def test_json_round_trip_is_identity(self, envelope):
        assert from_json(to_json(envelope)) == envelope

    @pytest.mark.parametrize(
        "envelope", ENVELOPES, ids=lambda e: type(e).__name__
    )
    def test_wire_shape_is_versioned_and_json_pure(self, envelope):
        payload = json.loads(to_json(envelope))
        assert payload["schema_version"] == SCHEMA_VERSION
        assert payload["kind"] == type(envelope).kind

    def test_event_round_trip(self):
        event = Event(
            type="cell_done",
            job_id="j9",
            seq=4,
            data={"label": "x", "done": 2, "total": 4},
        )
        decoded = from_json(event.to_json())
        assert decoded == event

    def test_axis_shapes_normalize_to_one_form(self):
        # str / (name, params) / {"name": ...} all decode equal.
        a = MatrixRequest(schemes=["sarlock"])
        b = MatrixRequest(schemes=[("sarlock", {})])
        c = MatrixRequest(schemes=[{"name": "sarlock"}])
        assert a == b == c


class TestTolerance:
    def test_unknown_fields_are_ignored(self):
        payload = json.loads(to_json(BenchRequest(circuit="c432")))
        payload["added_in_a_future_version"] = {"nested": True}
        assert from_dict(payload) == BenchRequest(circuit="c432")

    def test_unknown_event_data_keys_survive(self):
        payload = json.loads(
            Event(type="progress", job_id="j", seq=0, data={"done": 1}).to_json()
        )
        payload["extra"] = "ignored"
        assert from_dict(payload).data == {"done": 1}


class TestVersioning:
    def test_wrong_schema_version_is_rejected(self):
        payload = json.loads(to_json(BenchRequest()))
        payload["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(EnvelopeError, match="schema_version"):
            from_dict(payload)

    def test_missing_schema_version_is_rejected(self):
        payload = json.loads(to_json(BenchRequest()))
        del payload["schema_version"]
        with pytest.raises(EnvelopeError, match="schema_version"):
            from_dict(payload)

    def test_unknown_kind_lists_the_roster(self):
        with pytest.raises(EnvelopeError, match="matrix"):
            from_dict({"schema_version": SCHEMA_VERSION, "kind": "nope"})

    def test_non_object_payloads_are_rejected(self):
        with pytest.raises(EnvelopeError, match="JSON object"):
            from_dict([1, 2, 3])
        with pytest.raises(EnvelopeError, match="not valid JSON"):
            from_json("{nope")


class TestFailFastValidation:
    def test_matrix_unknown_scheme(self):
        with pytest.raises(ValueError, match="unknown locking scheme"):
            MatrixRequest(schemes=["nope"])

    def test_matrix_unknown_attack(self):
        with pytest.raises(ValueError, match="unknown attack"):
            MatrixRequest(attacks=["nope"])

    def test_matrix_unknown_engine(self):
        with pytest.raises(ValueError, match="unknown engine"):
            MatrixRequest(engines=["warp"])

    def test_attack_unknown_names(self):
        with pytest.raises(ValueError, match="unknown locking scheme"):
            AttackRequest(scheme="nope")
        with pytest.raises(ValueError, match="unknown attack"):
            AttackRequest(attack="nope")
        with pytest.raises(EnvelopeError, match="unknown engine"):
            AttackRequest(engine="warp")

    def test_experiment_roster(self):
        with pytest.raises(EnvelopeError, match="unknown experiment"):
            ExperimentRequest(experiment="table9")

    def test_experiment_param_names_checked_against_driver(self):
        with pytest.raises(EnvelopeError, match="key_sizes"):
            ExperimentRequest(experiment="defense", params={"key_sizes": [4]})
        # ... and the real knob is accepted.
        ExperimentRequest(experiment="defense", params={"key_size": 4})

    def test_bench_validation(self):
        with pytest.raises(EnvelopeError, match="circuit"):
            BenchRequest(circuit="")
        with pytest.raises(EnvelopeError, match="scale"):
            BenchRequest(scale=0)

    def test_response_status_roster(self):
        with pytest.raises(EnvelopeError, match="status"):
            Response(status="exploded")

    def test_unknown_event_type(self):
        from repro.service import EventError

        with pytest.raises(EventError, match="unknown event type"):
            Event(type="cell_exploded", job_id="j", seq=0)

    def test_validation_happens_on_decode_too(self):
        payload = json.loads(to_json(MatrixRequest()))
        payload["schemes"] = [["nope", {}]]
        with pytest.raises(ValueError, match="unknown locking scheme"):
            from_dict(payload)
