"""Daemon smoke tests: JSON-lines protocol over TCP and stdio.

The ``tcp_daemon`` fixture (``conftest.py``) is readiness-signalled —
it waits on the server's ``ready`` event instead of sleeping — so
these tests never race the serve loop's startup.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import threading
from pathlib import Path

from repro.service import SCHEMA_VERSION

from tests.service.conftest import matrix_request, talk

SRC_DIR = Path(__file__).resolve().parents[2] / "src"


class TestTcpDaemon:
    def test_single_job_streams_events_then_response(self, tcp_daemon):
        replies = talk(tcp_daemon.server_address, [matrix_request("j1")])
        kinds = [r["kind"] for r in replies]
        assert kinds[-1] == "response"
        events = [r for r in replies if r["kind"] == "event"]
        assert [e["type"] for e in events][0] == "job_started"
        assert [e["type"] for e in events][-1] == "job_done"
        assert sum(e["type"] == "cell_done" for e in events) == 1
        response = replies[-1]
        assert response["status"] == "ok"
        assert response["job_id"] == "j1"
        assert response["schema_version"] == SCHEMA_VERSION

    def test_lifecycle_events_carry_latency_breakdown(self, tcp_daemon):
        replies = talk(tcp_daemon.server_address, [matrix_request("lat")])
        events = {
            e["type"]: e for e in replies if e["kind"] == "event"
        }
        assert events["job_started"]["data"]["queued_seconds"] >= 0
        done = events["job_done"]["data"]
        assert done["queued_seconds"] >= 0
        assert done["run_seconds"] >= 0

    def test_two_concurrent_jobs_share_one_cache(self, tcp_daemon):
        # Warm the shared cache through one client, then two clients
        # submit the same grid concurrently: both must stream one
        # cell_done per cell — every one served from the shared cache
        # — and agree byte-for-byte on the payload (timings included,
        # because a warm replay returns the stored artifact).
        warm = talk(
            tcp_daemon.server_address, [matrix_request("warmup", seeds=(0, 1))]
        )
        assert warm[-1]["status"] == "ok"

        results: dict[str, list[dict]] = {}

        def client(job_id: str) -> None:
            results[job_id] = talk(
                tcp_daemon.server_address,
                [matrix_request(job_id, seeds=(0, 1))],
            )

        threads = [
            threading.Thread(target=client, args=(f"conc-{i}",))
            for i in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=240)
        assert set(results) == {"conc-0", "conc-1"}
        payloads = {}
        for job_id, replies in results.items():
            events = [r for r in replies if r["kind"] == "event"]
            cell_events = [e for e in events if e["type"] == "cell_done"]
            assert len(cell_events) == 2, f"{job_id} streamed wrong cell count"
            assert all(e["data"]["cached"] for e in cell_events)
            assert all(e["job_id"] == job_id for e in events)
            response = replies[-1]
            assert response["kind"] == "response"
            assert response["status"] == "ok"
            payloads[job_id] = response["result"]
        assert payloads["conc-0"] == payloads["conc-1"] == warm[-1]["result"]

    def test_response_envelope_matrix_round_trips(self, tcp_daemon):
        from repro.scenarios.matrix import MatrixResult
        from repro.service import from_dict

        replies = talk(tcp_daemon.server_address, [matrix_request("rt")])
        response = from_dict(replies[-1])
        result = MatrixResult.from_payload(response.result)
        assert len(result.cells) == 1
        assert result.cells[0].status == "ok"
        assert result.format().startswith("Scenario matrix: 1 cells")

    def test_cancel_unknown_job_and_malformed_lines(self, tcp_daemon):
        replies = talk(
            tcp_daemon.server_address,
            [
                {"kind": "cancel", "id": "ghost"},
                {"schema_version": SCHEMA_VERSION, "kind": "nope"},
            ],
        )
        assert len(replies) == 2
        assert all(r["kind"] == "response" for r in replies)
        assert all(r["status"] == "error" for r in replies)
        assert "no such job" in replies[0]["error"]
        assert "unknown envelope kind" in replies[1]["error"]

    def test_invalid_request_reports_roster_error(self, tcp_daemon):
        bad = matrix_request("bad")
        bad["schemes"] = [["nope", {}]]
        replies = talk(tcp_daemon.server_address, [bad])
        [response] = replies
        assert response["status"] == "error"
        assert "unknown locking scheme" in response["error"]
        assert response["job_id"] == "bad"


class TestStdioDaemon:
    def test_subprocess_smoke(self, tmp_path):
        """`repro serve` over stdio: submit, stream, shut down."""
        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC_DIR) + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        env["REPRO_CACHE_DIR"] = str(tmp_path / "stdio-cache")
        lines = (
            json.dumps(matrix_request("stdio-1"))
            + "\n"
            + json.dumps({"kind": "shutdown"})
            + "\n"
        )
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "serve"],
            input=lines,
            capture_output=True,
            text=True,
            env=env,
            timeout=240,
        )
        assert proc.returncode == 0, proc.stderr
        replies = [json.loads(line) for line in proc.stdout.splitlines()]
        events = [r for r in replies if r["kind"] == "event"]
        assert sum(e["type"] == "cell_done" for e in events) == 1
        assert replies[-1]["kind"] == "response"
        assert replies[-1]["status"] == "ok"
