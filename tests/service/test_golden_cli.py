"""Parity guard: the thin-client CLI renders pre-redesign bytes.

The service redesign moved every subcommand onto request envelopes and
event streams — but the *text* a user sees must not move.  Two locks:

* ``table1`` against a checked-in golden file (the table is fully
  deterministic: SARLock #DIP depends only on key size and effort), so
  drift in either the driver or the render path fails loudly.
* ``matrix`` (and ``table1``) against the library drivers' own
  ``format()`` through a shared warm cache — timings replay from
  stored artifacts, so the comparison is byte-exact.
"""

from __future__ import annotations

from pathlib import Path

from repro.cli import main

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"

_TABLE1_ARGS = ["--key-sizes", "3,4", "--efforts", "0,1,2", "--scale", "0.12"]


class TestGoldenTable1:
    def test_cli_matches_checked_in_golden(self, capsys):
        assert main(["table1", *_TABLE1_ARGS, "--no-cache", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert out == (GOLDEN_DIR / "table1_small.txt").read_text()

    def test_cli_matches_library_driver(self, capsys, tmp_path):
        from repro.experiments.table1 import run_table1
        from repro.runner import ResultCache, Runner

        cache_dir = tmp_path / "shared-cache"
        # Pre-redesign rendering: print(run_table1(...).format()).
        expected = (
            run_table1(
                key_sizes=(3, 4),
                efforts=(0, 1, 2),
                scale=0.12,
                runner=Runner(cache=ResultCache(cache_dir)),
            ).format()
            + "\n"
        )
        assert main(
            ["table1", *_TABLE1_ARGS, "--cache-dir", str(cache_dir), "--quiet"]
        ) == 0
        assert capsys.readouterr().out == expected


class TestGoldenMatrix:
    def test_cli_matches_library_driver_byte_for_byte(self, capsys, tmp_path):
        from repro.runner import ResultCache, Runner
        from repro.scenarios import ScenarioSpec, run_matrix

        cache_dir = tmp_path / "shared-cache"
        spec = ScenarioSpec(
            schemes=[
                ("sarlock", {"key_size": 3}),
                ("xor", {"key_size": 3}),
            ],
            attacks=("sat",),
            engines=("sharded", "reference"),
            circuits=("c432",),
            scale=0.12,
            efforts=(1,),
        )
        # Pre-redesign rendering: print(run_matrix(...).format()).
        expected = (
            run_matrix(spec, runner=Runner(cache=ResultCache(cache_dir))).format()
            + "\n"
        )
        assert main([
            "matrix", "--schemes", "sarlock,xor", "--attacks", "sat",
            "--engines", "sharded,reference", "--circuits", "c432",
            "--scale", "0.12", "--key-size", "3", "--efforts", "1",
            "--cache-dir", str(cache_dir), "--quiet",
        ]) == 0
        # Warm cache: every timing column replays from the stored
        # artifact, so the whole table is byte-identical.
        assert capsys.readouterr().out == expected

    def test_progress_lines_match_classic_renderer(self, capsys, tmp_path):
        """Streamed cell_done events render the classic progress line."""
        from repro.runner import ResultCache, Runner, print_progress
        from repro.scenarios import ScenarioSpec, run_matrix

        cache_dir = tmp_path / "shared-cache"
        spec = ScenarioSpec(
            schemes=[("sarlock", {"key_size": 3})],
            circuits=("c432",),
            scale=0.12,
            efforts=(1,),
        )
        run_matrix(spec, runner=Runner(cache=ResultCache(cache_dir)))
        capsys.readouterr()

        # Classic path: Runner(progress=print_progress) on a warm cache.
        assert main([
            "matrix", "--schemes", "sarlock", "--attacks", "sat",
            "--circuits", "c432", "--scale", "0.12", "--key-size", "3",
            "--efforts", "1", "--cache-dir", str(cache_dir),
        ]) == 0
        service_err = capsys.readouterr().err
        run_matrix(
            spec,
            runner=Runner(cache=ResultCache(cache_dir), progress=print_progress),
        )
        classic_err = capsys.readouterr().err
        assert service_err == classic_err
        assert "cached" in service_err
