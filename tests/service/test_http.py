"""HTTP gateway tests: endpoints, backpressure, cross-transport parity.

The parity tests are the contract that makes three transports one
protocol: for the same job over a warm shared cache, stdio, TCP and
HTTP must produce the *same JSON lines* — the terminal response
byte-for-byte, the events equal once wall-clock timing fields are
stripped.
"""

from __future__ import annotations

import http.client
import io
import json
import socket
import threading

import pytest

from repro.runner import ResultCache
from repro.service import SCHEMA_VERSION, Service
from repro.service.daemon import handle_stream
from repro.service.http import MAX_BODY_BYTES, create_http_server

from tests.service.conftest import (
    bench_request,
    matrix_request,
    serve_on_thread,
    shutdown_server,
    talk,
)

#: Event data fields that depend on the wall clock, not the work.
TIMING_FIELDS = {"queued_seconds", "run_seconds", "elapsed_seconds"}


def http_request(
    address,
    method: str,
    path: str,
    body: dict | str | None = None,
    timeout: float = 120.0,
):
    """One HTTP exchange; returns (status, headers, decoded body text)."""
    host, port = address[:2]
    conn = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        payload = (
            json.dumps(body) if isinstance(body, dict) else body
        )
        conn.request(
            method,
            path,
            body=payload,
            headers={"Content-Type": "application/json"}
            if payload is not None
            else {},
        )
        response = conn.getresponse()
        text = response.read().decode("utf-8")
        return response.status, dict(response.getheaders()), text
    finally:
        conn.close()


def submit_http(address, envelope: dict, timeout: float = 120.0):
    """POST a job and return (status, headers, parsed JSON lines, raw lines)."""
    status, headers, text = http_request(
        address, "POST", "/v1/jobs", body=envelope, timeout=timeout
    )
    raw_lines = text.splitlines(keepends=True)
    return status, headers, [json.loads(line) for line in raw_lines], raw_lines


def talk_raw(address, lines: list[dict], timeout: float = 120.0) -> list[str]:
    """Like ``talk`` but returns the raw reply lines (newline included)."""
    with socket.create_connection(address[:2], timeout=timeout) as conn:
        with conn.makefile("rw", encoding="utf-8") as stream:
            for line in lines:
                stream.write(json.dumps(line) + "\n")
            stream.flush()
            conn.shutdown(socket.SHUT_WR)
            return [reply for reply in stream]


def strip_timing(parsed_line: dict) -> dict:
    stripped = dict(parsed_line)
    if "data" in stripped:
        stripped["data"] = {
            k: v
            for k, v in stripped["data"].items()
            if k not in TIMING_FIELDS
        }
    return stripped


class TestEndpoints:
    def test_submit_streams_ndjson_events_then_response(self, http_daemon):
        status, headers, replies, _ = submit_http(
            http_daemon.server_address, matrix_request("h1")
        )
        assert status == 200
        assert headers["Content-Type"] == "application/x-ndjson"
        assert headers["Transfer-Encoding"] == "chunked"
        events = [r for r in replies if r["kind"] == "event"]
        assert [e["type"] for e in events][0] == "job_started"
        assert sum(e["type"] == "cell_done" for e in events) == 1
        response = replies[-1]
        assert response["kind"] == "response"
        assert response["status"] == "ok"
        assert response["job_id"] == "h1"
        assert response["schema_version"] == SCHEMA_VERSION

    def test_health_reports_load_counters(self, http_daemon, service):
        status, _, text = http_request(
            http_daemon.server_address, "GET", "/v1/health"
        )
        assert status == 200
        health = json.loads(text)
        assert health["status"] == "ok"
        assert health["active_jobs"] == 0
        assert health["jobs"] == service.jobs
        assert health["max_pending"] == service.max_pending

    def test_job_snapshot_after_completion(self, http_daemon):
        submit_http(http_daemon.server_address, matrix_request("snap"))
        status, _, text = http_request(
            http_daemon.server_address, "GET", "/v1/jobs/snap"
        )
        assert status == 200
        snapshot = json.loads(text)
        assert snapshot["job_id"] == "snap"
        assert snapshot["status"] == "ok"
        assert len(snapshot["completed"]) == 1

    def test_unknown_job_and_path_are_404(self, http_daemon):
        status, _, text = http_request(
            http_daemon.server_address, "GET", "/v1/jobs/ghost"
        )
        assert status == 404
        assert "no such job" in json.loads(text)["error"]
        status, _, text = http_request(
            http_daemon.server_address, "GET", "/v1/nope"
        )
        assert status == 404
        status, _, text = http_request(
            http_daemon.server_address, "POST", "/v1/jobs/ghost/cancel", body={}
        )
        assert status == 404

    def test_malformed_bodies_are_400_error_envelopes(self, http_daemon):
        status, _, text = http_request(
            http_daemon.server_address, "POST", "/v1/jobs", body="{nope"
        )
        assert status == 400
        error = json.loads(text)
        assert error["kind"] == "response" and error["status"] == "error"
        assert "not valid JSON" in error["error"]

        status, _, text = http_request(
            http_daemon.server_address, "POST", "/v1/jobs", body="[1, 2]"
        )
        assert status == 400
        assert "JSON object" in json.loads(text)["error"]

        bad = matrix_request("bad")
        bad["schemes"] = [["nope", {}]]
        status, _, text = http_request(
            http_daemon.server_address, "POST", "/v1/jobs", body=bad
        )
        assert status == 400
        error = json.loads(text)
        assert "unknown locking scheme" in error["error"]
        assert error["job_id"] == "bad"

    def test_oversized_body_is_413(self, http_daemon):
        """An absurd Content-Length is refused before the body is read."""
        host, port = http_daemon.server_address[:2]
        with socket.create_connection((host, port), timeout=30) as conn:
            conn.sendall(
                (
                    "POST /v1/jobs HTTP/1.1\r\n"
                    f"Host: {host}\r\n"
                    f"Content-Length: {MAX_BODY_BYTES + 1}\r\n"
                    "\r\n"
                ).encode("ascii")
            )
            data = b""
            while b"request body too large" not in data:
                chunk = conn.recv(65536)
                if not chunk:
                    break
                data += chunk
            reply = data.decode("utf-8", "replace")
        assert reply.startswith("HTTP/1.1 413")
        assert "request body too large" in reply


class TestBackpressure:
    def test_queue_full_is_503_with_retry_after(self, tmp_path, gated_bench):
        """Admission control over HTTP: 503 + Retry-After + queue_full body."""
        service = Service(jobs=1, max_pending=1)
        server = create_http_server(service, port=0)
        thread = serve_on_thread(server)
        try:
            first: dict = {}

            def stream_first() -> None:
                status, _, replies, _ = submit_http(
                    server.server_address, bench_request("bp-1")
                )
                first["status"] = status
                first["replies"] = replies

            streamer = threading.Thread(target=stream_first)
            streamer.start()
            assert gated_bench.started.wait(30), "gated job never started"

            # The table is full: the second submission must be refused
            # with explicit backpressure, not queued or dropped.
            status, headers, text = http_request(
                server.server_address, "POST", "/v1/jobs",
                body=bench_request("bp-2"),
            )
            assert status == 503
            assert int(headers["Retry-After"]) >= 1
            refusal = json.loads(text)
            assert refusal["status"] == "error"
            assert refusal["error"].startswith("queue_full:")
            assert refusal["result"]["retry_after_seconds"] >= 1.0
            assert refusal["job_id"] == "bp-2"

            gated_bench.release.set()
            streamer.join(timeout=60)
            assert first["status"] == 200
            assert first["replies"][-1]["status"] == "ok"

            # Capacity freed: the refused client's retry now succeeds.
            status, _, replies, _ = submit_http(
                server.server_address, bench_request("bp-2")
            )
            assert status == 200
            assert replies[-1]["status"] == "ok"
        finally:
            gated_bench.release.set()
            shutdown_server(server, thread)


class TestTransportParity:
    def test_same_job_same_lines_across_all_three_transports(
        self, service, tcp_daemon, http_daemon
    ):
        """stdio, TCP and HTTP speak *identical* JSON lines.

        One warm shared cache, one request, three transports run
        sequentially under the same job id: the terminal response line
        must match byte-for-byte, and the event lines must match once
        wall-clock timing fields are stripped from ``data``.
        """
        warm = talk(tcp_daemon.server_address, [matrix_request("warm")])
        assert warm[-1]["status"] == "ok"
        request = matrix_request("parity")

        stdio_out = io.StringIO()
        handle_stream(
            service, io.StringIO(json.dumps(request) + "\n"), stdio_out
        )
        stdio_lines = stdio_out.getvalue().splitlines(keepends=True)

        tcp_lines = talk_raw(tcp_daemon.server_address, [request])

        status, _, _, http_lines = submit_http(
            http_daemon.server_address, request
        )
        assert status == 200

        for lines in (tcp_lines, http_lines):
            assert len(lines) == len(stdio_lines)

        # Terminal response: byte-identical (warm cache => the result
        # payload, timings included, is the stored artifact).
        assert stdio_lines[-1] == tcp_lines[-1] == http_lines[-1]

        # Events: identical apart from wall-clock fields.
        stdio_events = [strip_timing(json.loads(l)) for l in stdio_lines[:-1]]
        tcp_events = [strip_timing(json.loads(l)) for l in tcp_lines[:-1]]
        http_events = [strip_timing(json.loads(l)) for l in http_lines[:-1]]
        assert stdio_events == tcp_events == http_events
        # Warm replays serve the cell straight from the cache — no
        # dispatch, so no cell_started.
        assert [e["type"] for e in stdio_events] == [
            "job_started",
            "cell_done",
            "progress",
            "job_done",
        ]

    def test_queue_full_envelope_matches_across_transports(
        self, tmp_path, gated_bench
    ):
        """The backpressure envelope is one schema on both wire types."""
        service = Service(jobs=1, max_pending=1)
        tcp = None
        http_server = create_http_server(service, port=0)
        http_thread = serve_on_thread(http_server)
        try:
            from repro.service.daemon import create_tcp_server

            tcp = create_tcp_server(service, port=0)
            tcp_thread = serve_on_thread(tcp)

            hold: dict = {}

            def stream_first() -> None:
                hold["result"] = submit_http(
                    http_server.server_address, bench_request("full-1")
                )

            streamer = threading.Thread(target=stream_first)
            streamer.start()
            assert gated_bench.started.wait(30)

            _, _, http_text = http_request(
                http_server.server_address, "POST", "/v1/jobs",
                body=bench_request("full-2"),
            )
            [tcp_line] = talk_raw(
                tcp.server_address, [bench_request("full-2")]
            )
            http_refusal = json.loads(http_text)
            tcp_refusal = json.loads(tcp_line)
            # Same envelope, field for field (the hint may differ only
            # if load changed between the two calls — it cannot here).
            assert http_refusal == tcp_refusal

            gated_bench.release.set()
            streamer.join(timeout=60)
            assert hold["result"][0] == 200
        finally:
            gated_bench.release.set()
            if tcp is not None:
                shutdown_server(tcp, tcp_thread)
            shutdown_server(http_server, http_thread)
