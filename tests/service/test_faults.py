"""Fault injection against the daemons: hostile clients, live shutdown.

Every scenario here is something a real deployment sees weekly —
clients that vanish mid-stream, garbage on the wire, readers that
stall, operators stopping a busy daemon — and the invariant under test
is always the same: **no deadlock, no lost or leaked jobs**, and the
daemon keeps serving everyone else.  Job-table health is asserted
through the service's own accounting (``active_count``/``job_count``),
not timing.
"""

from __future__ import annotations

import io
import json
import socket
import threading

from repro.service import Service
from repro.service.daemon import handle_stream

from tests.service.conftest import bench_request, matrix_request, talk


def _readline(stream_file) -> str:
    line = stream_file.readline()
    assert line, "daemon closed the stream unexpectedly"
    return line


class TestTcpFaults:
    def test_client_disconnect_mid_stream_job_still_completes(
        self, tcp_daemon, service, gated_bench
    ):
        """A vanished client must not kill or leak its job."""
        conn = socket.create_connection(
            tcp_daemon.server_address[:2], timeout=30
        )
        stream = conn.makefile("rw", encoding="utf-8")
        stream.write(json.dumps(bench_request("drop-1")) + "\n")
        stream.flush()
        assert gated_bench.started.wait(30), "job never started"
        # First event line arrives, then the client dies mid-stream.
        first = json.loads(_readline(stream))
        assert first["type"] == "job_started"
        conn.close()

        gated_bench.release.set()
        response = service.job("drop-1").result(timeout=60)
        assert response.status == "ok"
        assert service.active_count() == 0

        # The daemon shrugged it off: a fresh client gets full service.
        replies = talk(tcp_daemon.server_address, [matrix_request("after")])
        assert replies[-1]["status"] == "ok"

    def test_oversized_line_is_refused_daemon_keeps_serving(
        self, tcp_daemon, monkeypatch
    ):
        monkeypatch.setattr("repro.service.daemon.MAX_LINE_CHARS", 1000)
        replies = talk(
            tcp_daemon.server_address,
            ["x" * 2000, matrix_request("after-big")],
        )
        assert replies[0]["status"] == "error"
        assert "oversized request line" in replies[0]["error"]
        assert replies[-1]["status"] == "ok"
        assert replies[-1]["job_id"] == "after-big"

    def test_garbage_lines_then_valid_job_on_one_connection(self, tcp_daemon):
        replies = talk(
            tcp_daemon.server_address,
            ["not json at all", [1, 2, 3], matrix_request("after-junk")],
        )
        assert "not valid JSON" in replies[0]["error"]
        assert "JSON object" in replies[1]["error"]
        assert replies[-1]["status"] == "ok"

    def test_slow_reader_does_not_block_other_clients(self, tcp_daemon):
        """One stalled consumer must not starve the accept loop."""
        slow = socket.create_connection(
            tcp_daemon.server_address[:2], timeout=120
        )
        slow_stream = slow.makefile("rw", encoding="utf-8")
        slow_stream.write(json.dumps(matrix_request("slow")) + "\n")
        slow_stream.flush()
        # ... and then reads nothing while another client does a full job.
        replies = talk(tcp_daemon.server_address, [matrix_request("fast")])
        assert replies[-1]["status"] == "ok"
        # The slow reader eventually drains its complete stream too.
        slow.shutdown(socket.SHUT_WR)
        slow_replies = [json.loads(line) for line in slow_stream]
        slow.close()
        assert slow_replies[-1]["kind"] == "response"
        assert slow_replies[-1]["status"] == "ok"
        assert slow_replies[-1]["job_id"] == "slow"


class TestShutdownInFlight:
    def test_shutdown_drains_running_jobs_before_returning(self, gated_bench):
        """``shutdown`` with a job in flight still delivers its response."""
        service = Service(jobs=1)
        lines = (
            json.dumps(bench_request("inflight"))
            + "\n"
            + json.dumps({"kind": "shutdown"})
            + "\n"
        )
        out = io.StringIO()
        result: dict = {}

        def serve() -> None:
            result["shutdown"] = handle_stream(
                service, io.StringIO(lines), out
            )

        server_thread = threading.Thread(target=serve)
        server_thread.start()
        assert gated_bench.started.wait(30), "job never started"
        # The daemon has read the shutdown line but must now be parked
        # draining the pump; releasing the job lets it finish.
        gated_bench.release.set()
        server_thread.join(timeout=60)
        assert not server_thread.is_alive(), "handle_stream deadlocked"

        assert result["shutdown"] is True
        replies = [json.loads(line) for line in out.getvalue().splitlines()]
        assert replies[-1]["kind"] == "response"
        assert replies[-1]["job_id"] == "inflight"
        assert replies[-1]["status"] == "ok"
        assert service.active_count() == 0


class TestJobTableHygiene:
    def test_finished_jobs_are_pruned_to_the_retention_bound(self):
        service = Service(jobs=1, retain_finished=2)
        from repro.service.envelopes import BenchRequest

        for index in range(6):
            response = service.run(
                BenchRequest(circuit="c432", scale=0.3), job_id=f"prune-{index}"
            )
            assert response.status == "ok"
        # Each submit prunes finished jobs beyond the bound before
        # inserting, so the table never grows past retained + 1.
        assert service.job_count() <= 3
        assert service.active_count() == 0
        # The oldest handles are gone; the newest survives lookups.
        service.job("prune-5")
        try:
            service.job("prune-0")
            raise AssertionError("prune-0 should have been pruned")
        except KeyError:
            pass


class TestHttpFaults:
    def test_http_client_disconnect_mid_stream(
        self, http_daemon, service, gated_bench
    ):
        """Same contract as TCP: the job survives its client."""
        host, port = http_daemon.server_address[:2]
        body = json.dumps(bench_request("http-drop"))
        with socket.create_connection((host, port), timeout=30) as conn:
            conn.sendall(
                (
                    "POST /v1/jobs HTTP/1.1\r\n"
                    f"Host: {host}\r\n"
                    "Content-Type: application/json\r\n"
                    f"Content-Length: {len(body)}\r\n"
                    "\r\n"
                    f"{body}"
                ).encode("utf-8")
            )
            assert gated_bench.started.wait(30), "job never started"
            # Read just the status line, then slam the connection shut.
            assert conn.recv(16).startswith(b"HTTP/1.1 200")

        gated_bench.release.set()
        response = service.job("http-drop").result(timeout=60)
        assert response.status == "ok"
        assert service.active_count() == 0

        # The gateway is still healthy for everyone else.
        import http.client

        check = http.client.HTTPConnection(host, port, timeout=30)
        try:
            check.request("GET", "/v1/health")
            health = json.loads(check.getresponse().read())
        finally:
            check.close()
        assert health["status"] == "ok"
        assert health["active_jobs"] == 0
