"""Smoke-test every example script at a tiny problem size.

Examples are the repository's executable documentation: each script in
``examples/`` must keep running end to end as APIs evolve.  Every
script accepts positional size arguments precisely so this test can
shrink the workload to seconds while exercising the real code paths.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

_REPO_ROOT = Path(__file__).resolve().parent.parent
_EXAMPLES = _REPO_ROOT / "examples"

#: script -> tiny-size argv (kept in sync with each script's usage line).
_TINY_ARGS = {
    "quickstart.py": ["0.12", "4"],
    "attack_sarlock.py": ["3", "0.12", "2"],
    "attack_lut_insertion.py": ["c880", "0.15", "tiny"],
    "countermeasure_study.py": ["0.15", "4"],
    "defense_evaluation.py": ["0.15", "256", "tiny"],
    "multikey_parallel.py": ["c880", "0.15", "2"],
    "service_client.py": ["3", "0.12"],
}


def test_every_example_is_covered():
    """A new example must register tiny arguments here to be gated."""
    scripts = {path.name for path in _EXAMPLES.glob("*.py")}
    assert scripts == set(_TINY_ARGS), (
        "examples/ and the smoke-test roster disagree — add tiny-size "
        "arguments for new scripts to _TINY_ARGS"
    )


@pytest.mark.parametrize("script", sorted(_TINY_ARGS))
def test_example_runs(script):
    env = dict(os.environ)
    src = str(_REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.run(
        [sys.executable, str(_EXAMPLES / script), *_TINY_ARGS[script]],
        capture_output=True,
        text=True,
        env=env,
        timeout=300,
        cwd=_REPO_ROOT,
    )
    assert proc.returncode == 0, (
        f"{script} failed\nstdout:\n{proc.stdout}\nstderr:\n{proc.stderr}"
    )
    assert proc.stdout.strip(), f"{script} printed nothing"
