"""Runner subsystem tests: cache behavior, key stability, parallel parity."""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.runner import (
    ResultCache,
    Runner,
    TaskSpec,
    default_cache_dir,
    register_task,
    task_worker,
)

SRC_DIR = Path(__file__).resolve().parents[2] / "src"


@register_task("_test_double")
def _double_task(params: dict) -> dict:
    """Test worker: doubles a value; optionally logs each execution to a
    file so tests can count real computations across processes."""
    log = params.get("log_file")
    if log:
        with open(log, "a", encoding="utf-8") as handle:
            handle.write(f"{params['value']}\n")
    return {"doubled": params["value"] * 2, "pid": os.getpid()}


@register_task("_test_stamped_sleep")
def _stamped_sleep_task(params: dict) -> dict:
    """Test worker: sleeps briefly, logging timestamped enter/exit
    marks so tests can measure execution overlap across runners."""
    import time

    log = params["log_file"]
    with open(log, "a", encoding="utf-8") as handle:
        handle.write(f"{time.monotonic():.6f} enter\n")
    time.sleep(params["seconds"])
    with open(log, "a", encoding="utf-8") as handle:
        handle.write(f"{time.monotonic():.6f} exit\n")
    return {"value": params["value"]}


def _spec(value: int, log_file: str | None = None) -> TaskSpec:
    return TaskSpec(
        kind="_test_double",
        params={"value": value},
        context={"log_file": log_file} if log_file else None,
        label=f"double {value}",
    )


class TestTaskSpec:
    def test_cache_key_is_content_hash(self):
        a = TaskSpec("k", {"x": 1, "y": [1, 2]})
        b = TaskSpec("k", {"y": [1, 2], "x": 1})  # insertion order differs
        assert a.cache_key == b.cache_key
        assert len(a.cache_key) == 64

    def test_key_distinguishes_kind_and_params(self):
        base = TaskSpec("k", {"x": 1})
        assert base.cache_key != TaskSpec("k2", {"x": 1}).cache_key
        assert base.cache_key != TaskSpec("k", {"x": 2}).cache_key

    def test_context_excluded_from_key(self):
        plain = TaskSpec("k", {"x": 1})
        with_ctx = TaskSpec("k", {"x": 1}, context={"parallel": True})
        assert plain.cache_key == with_ctx.cache_key
        assert with_ctx.worker_params == {"x": 1, "parallel": True}

    def test_non_json_params_rejected(self):
        with pytest.raises(TypeError):
            TaskSpec("k", {"x": object()}).cache_key

    def test_key_stable_across_processes(self):
        """The same spec must hash identically in a fresh interpreter
        with a different PYTHONHASHSEED — that is what makes the
        on-disk cache shareable between runs."""
        spec = TaskSpec(
            "table2_row", {"circuit": "c880", "scale": 0.2, "seed": 1}
        )
        code = (
            "from repro.runner import TaskSpec\n"
            "print(TaskSpec('table2_row', "
            "{'circuit': 'c880', 'scale': 0.2, 'seed': 1}).cache_key)"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC_DIR)
        env["PYTHONHASHSEED"] = "12345"
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, env=env, check=True,
        )
        assert out.stdout.strip() == spec.cache_key

    def test_unknown_kind_lists_known(self):
        with pytest.raises(KeyError, match="_test_double"):
            task_worker("_no_such_kind")


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = _spec(21)
        assert cache.load(spec) is None
        cache.store(spec, {"doubled": 42}, elapsed_seconds=0.5)
        entry = cache.load(spec)
        assert entry["artifact"] == {"doubled": 42}
        assert entry["elapsed_seconds"] == 0.5
        assert cache.hits == 1 and cache.misses == 1

    def test_artifact_layout_on_disk(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = _spec(1)
        path = cache.store(spec, {"doubled": 2}, elapsed_seconds=0.0)
        assert path == tmp_path / "_test_double" / f"{spec.cache_key}.json"
        entry = json.loads(path.read_text())
        assert entry["kind"] == "_test_double"
        assert entry["params"] == {"value": 1}

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = _spec(3)
        path = cache.store(spec, {"doubled": 6}, elapsed_seconds=0.0)
        path.write_text("{not json")
        assert cache.load(spec) is None

    def test_clear_by_kind(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store(_spec(1), {"doubled": 2}, 0.0)
        cache.store(TaskSpec("_other", {"v": 1}), {}, 0.0)
        assert cache.clear(kind="_test_double") == 1
        assert cache.entry_count() == 1

    def test_default_dir_honors_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env-cache"))
        assert default_cache_dir() == tmp_path / "env-cache"

    def test_explicit_root_expands_tilde(self):
        root = ResultCache("~/some-cache").root
        assert "~" not in str(root)
        assert root.is_absolute()

    def test_orphaned_tmp_files_not_counted_but_reaped(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store(_spec(1), {"doubled": 2}, 0.0)
        stray = tmp_path / "_test_double" / ".tmp-dead.json"
        stray.write_text("{half-written")
        assert cache.entry_count() == 1
        assert cache.clear() == 1  # the stray doesn't inflate the count
        assert not stray.exists()  # ... but it does get reaped


class TestRunner:
    def test_second_run_is_cached_without_recompute(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        log = tmp_path / "executions.log"
        runner = Runner(jobs=1, cache=cache)

        first = runner.run([_spec(5, str(log))])
        second = runner.run([_spec(5, str(log))])

        assert first[0].artifact["doubled"] == 10
        assert second[0].artifact["doubled"] == 10
        assert not first[0].cached and second[0].cached
        # Exactly one real execution: the second run never ran the worker.
        assert log.read_text().splitlines() == ["5"]

    def test_no_cache_recomputes(self, tmp_path):
        log = tmp_path / "executions.log"
        runner = Runner(jobs=1, cache=None)
        runner.run([_spec(5, str(log))])
        runner.run([_spec(5, str(log))])
        assert log.read_text().splitlines() == ["5", "5"]

    def test_results_in_submission_order(self, tmp_path):
        runner = Runner(jobs=2, cache=None)
        results = runner.run([_spec(v) for v in (9, 3, 7, 1)])
        assert [r.artifact["doubled"] for r in results] == [18, 6, 14, 2]

    def test_parallel_uses_worker_processes(self):
        results = Runner(jobs=2).run([_spec(v) for v in range(4)])
        pids = {r.artifact["pid"] for r in results}
        assert os.getpid() not in pids

    def test_parallel_populates_cache_for_serial_reader(self, tmp_path):
        cache = ResultCache(tmp_path)
        Runner(jobs=2, cache=cache).run([_spec(v) for v in (1, 2, 3)])
        results = Runner(jobs=1, cache=ResultCache(tmp_path)).run(
            [_spec(v) for v in (1, 2, 3)]
        )
        assert all(r.cached for r in results)

    def test_pending_count_reflects_cache_state(self, tmp_path):
        cache = ResultCache(tmp_path)
        specs = [_spec(v) for v in (1, 2, 3)]
        uncached = Runner(jobs=1)
        assert uncached.pending_count(specs) == 3
        runner = Runner(jobs=1, cache=cache)
        runner.run(specs[:2])
        assert runner.pending_count(specs) == 1

    def test_progress_callback_sees_every_task(self):
        seen = []
        runner = Runner(
            jobs=1, progress=lambda res, done, total: seen.append((done, total))
        )
        runner.run([_spec(v) for v in (1, 2, 3)])
        assert seen == [(1, 3), (2, 3), (3, 3)]


class TestExperimentParity:
    """Parallel and serial execution produce identical experiment rows."""

    @staticmethod
    def _table2(runner):
        from repro.experiments.table2 import run_table2
        from repro.locking.lut_lock import LutModuleSpec

        return run_table2(
            circuits=("c880", "c1355"),
            scale=0.2,
            spec=LutModuleSpec.tiny(),
            effort=2,
            parallel=False,
            time_limit_per_task=60.0,
            runner=runner,
        )

    def test_table2_parallel_matches_serial(self):
        serial = self._table2(Runner(jobs=1))
        fanned = self._table2(Runner(jobs=2))
        for a, b in zip(serial.rows, fanned.rows):
            assert a.circuit == b.circuit
            assert a.dips_per_task == b.dips_per_task
            assert a.baseline_dips == b.baseline_dips
            assert a.baseline_status == b.baseline_status
            assert a.multikey_status == b.multikey_status
            assert a.composition_equivalent == b.composition_equivalent

    def test_table2_warm_cache_replays_identically(self, tmp_path):
        cold = self._table2(Runner(jobs=1, cache=ResultCache(tmp_path)))
        warm = self._table2(Runner(jobs=1, cache=ResultCache(tmp_path)))
        # Timing fields included: a cache hit replays the artifact verbatim,
        # so the formatted table is byte-identical.
        assert cold.rows == warm.rows
        assert cold.format() == warm.format()

    def test_table1_parallel_matches_serial(self):
        from repro.experiments.table1 import run_table1

        kwargs = dict(key_sizes=(3, 4), efforts=(0, 1), scale=0.12)
        serial = run_table1(runner=Runner(jobs=1), **kwargs)
        fanned = run_table1(runner=Runner(jobs=2), **kwargs)
        assert [c.__dict__ for c in serial.cells] == [
            c.__dict__ for c in fanned.cells
        ]

    def test_figure1_cache_round_trip(self, tmp_path):
        from repro.experiments.figure1 import run_figure1

        cold = run_figure1(runner=Runner(cache=ResultCache(tmp_path)))
        warm = run_figure1(runner=Runner(cache=ResultCache(tmp_path)))
        assert cold == warm
        assert isinstance(warm.incorrect_pair, tuple)


class TestRunIter:
    """The streaming surface behind the service layer's event bridge."""

    def test_yields_index_result_pairs_for_every_spec(self, tmp_path):
        runner = Runner(cache=ResultCache(tmp_path))
        specs = [_spec(v) for v in (1, 2, 3)]
        pairs = list(runner.run_iter(specs))
        assert sorted(index for index, _ in pairs) == [0, 1, 2]
        by_index = dict(pairs)
        assert [by_index[i].artifact["doubled"] for i in range(3)] == [2, 4, 6]

    def test_run_is_run_iter_in_submission_order(self, tmp_path):
        runner = Runner(cache=ResultCache(tmp_path))
        specs = [_spec(v) for v in (5, 1, 9)]
        results = runner.run(specs)
        assert [r.artifact["doubled"] for r in results] == [10, 2, 18]

    def test_cache_hits_stream_first_without_dispatch(self, tmp_path):
        cache = ResultCache(tmp_path)
        Runner(cache=cache).run([_spec(1)])
        dispatched = []
        runner = Runner(
            cache=cache,
            on_dispatch=lambda spec, index: dispatched.append(index),
        )
        pairs = list(runner.run_iter([_spec(2), _spec(1)]))
        # The hit (index 1) streams before the miss executes ...
        assert pairs[0][0] == 1 and pairs[0][1].cached
        assert pairs[1][0] == 0 and not pairs[1][1].cached
        # ... and only the miss dispatched.
        assert dispatched == [0]

    def test_on_dispatch_fires_per_miss_in_pool_mode(self):
        dispatched = []
        runner = Runner(
            jobs=2, on_dispatch=lambda spec, index: dispatched.append(index)
        )
        results = runner.run([_spec(v) for v in (1, 2, 3)])
        assert len(results) == 3
        assert sorted(dispatched) == [0, 1, 2]

    def test_progress_fires_before_each_yield(self):
        order = []
        runner = Runner(
            progress=lambda result, done, total: order.append(("cb", done, total))
        )
        for index, _ in runner.run_iter([_spec(v) for v in (1, 2)]):
            order.append(("yield", index))
        assert order == [("cb", 1, 2), ("yield", 0), ("cb", 2, 2), ("yield", 1)]

    def test_should_stop_before_start_runs_nothing(self):
        runner = Runner(should_stop=lambda: True)
        assert runner.run([_spec(1), _spec(2)]) == []

    def test_should_stop_mid_run_keeps_finished_results(self):
        stop = {"now": False}

        def progress(result, done, total):
            stop["now"] = True  # trip after the first completion

        runner = Runner(progress=progress, should_stop=lambda: stop["now"])
        results = runner.run([_spec(v) for v in (1, 2, 3)])
        assert len(results) == 1
        assert results[0].artifact["doubled"] == 2

    def test_should_stop_mid_run_in_pool_mode(self, tmp_path):
        stop = {"now": False}

        def progress(result, done, total):
            stop["now"] = True

        runner = Runner(
            jobs=2, progress=progress, should_stop=lambda: stop["now"]
        )
        results = runner.run([_spec(v) for v in range(8)])
        # At least the first completion is kept; queued work was
        # dropped once the stop tripped.
        assert 1 <= len(results) < 8

    def test_stopped_pool_run_still_caches_what_finished(self, tmp_path):
        cache = ResultCache(tmp_path)
        stop = {"now": False}

        def progress(result, done, total):
            stop["now"] = True

        runner = Runner(
            jobs=2, cache=cache, progress=progress,
            should_stop=lambda: stop["now"],
        )
        finished = runner.run([_spec(v) for v in range(6)])
        assert all(cache.contains(r.spec) for r in finished)


class TestSharedSlots:
    """The service-wide worker budget: one semaphore across runners."""

    def test_serial_runs_in_two_threads_never_overlap_with_one_slot(
        self, tmp_path
    ):
        import threading

        log = tmp_path / "overlap.log"

        specs = [
            TaskSpec(
                kind="_test_stamped_sleep",
                params={"value": v, "seconds": 0.05},
                context={"log_file": str(log)},
            )
            for v in range(3)
        ]
        slots = threading.Semaphore(1)
        runners = [Runner(slots=slots), Runner(slots=slots)]
        threads = [
            threading.Thread(target=runner.run, args=(specs[i::2],))
            for i, runner in enumerate(runners)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        events = []
        for line in log.read_text().splitlines():
            stamp, kind = line.split()
            events.append((float(stamp), kind))
        events.sort()
        depth = 0
        for _, kind in events:
            depth += 1 if kind == "enter" else -1
            assert depth <= 1, "two tasks executed concurrently despite 1 slot"
        assert sum(kind == "enter" for _, kind in events) == 3

    def test_pool_mode_bounds_inflight_tasks_to_slots(self, tmp_path):
        import threading

        log = tmp_path / "pool-overlap.log"
        specs = [
            TaskSpec(
                kind="_test_stamped_sleep",
                params={"value": v, "seconds": 0.05},
                context={"log_file": str(log)},
            )
            for v in range(5)
        ]
        runner = Runner(jobs=4, slots=threading.Semaphore(2))
        results = runner.run(specs)
        assert len(results) == 5
        events = sorted(
            (float(line.split()[0]), line.split()[1])
            for line in log.read_text().splitlines()
        )
        depth = 0
        for _, kind in events:
            depth += 1 if kind == "enter" else -1
            assert depth <= 2, "more in-flight tasks than shared slots"

    def test_results_carry_submission_index(self, tmp_path):
        cache = ResultCache(tmp_path)
        Runner(cache=cache).run([_spec(7)])
        runner = Runner(cache=cache)
        for index, result in runner.run_iter([_spec(8), _spec(7)]):
            assert result.index == index


class TestStopDrainsInflight:
    def test_pool_stop_keeps_inflight_results_and_caches_them(self, tmp_path):
        # Two workers, two tasks: both are on a worker when the first
        # completion trips the stop, so BOTH results must come back
        # (the pool shutdown waits for the second anyway) and both
        # must land in the cache.
        cache = ResultCache(tmp_path / "cache")
        log = tmp_path / "drain.log"
        stop = {"now": False}

        def progress(result, done, total):
            stop["now"] = True

        specs = [
            TaskSpec(
                kind="_test_stamped_sleep",
                params={"value": v, "seconds": 0.05},
                context={"log_file": str(log)},
            )
            for v in range(2)
        ]
        runner = Runner(
            jobs=2, cache=cache, progress=progress,
            should_stop=lambda: stop["now"],
        )
        results = runner.run(specs)
        assert len(results) == 2
        assert all(cache.contains(r.spec) for r in results)
